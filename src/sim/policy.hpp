/// \file
/// \brief Runtime exit-selection policy interface plus the static baseline
/// policy.
///
/// The paper's two sequential runtime decisions (Sec. IV) map to the two
/// virtuals: select_exit() when the event is picked up, continue_inference()
/// at each reached exit (incremental inference). Learning policies also get
/// observe() feedback after the event resolves.
#ifndef IMX_SIM_POLICY_HPP
#define IMX_SIM_POLICY_HPP

#include <limits>

#include "sim/inference_model.hpp"

namespace imx::sim {

/// \brief Energy situation visible to the runtime.
///
/// Carries the Q-learning state variables of the paper (available energy E
/// and charging efficiency P, both to be discretized by the policy) plus the
/// deadline slack of the in-flight event when the scenario runs under an
/// inference deadline (SimConfig::deadline_s).
struct EnergyState {
    double level_mj = 0.0;        ///< stored energy now
    double capacity_mj = 0.0;     ///< storage capacity
    double charge_rate_mw = 0.0;  ///< recent harvesting rate (EMA)
    double energy_per_mmac_mj = 1.5;  ///< MCU energy cost per million MACs
    /// Seconds left before the in-flight event's completion deadline; clamped
    /// at 0 once the deadline has passed, infinity when the run has no
    /// deadline. Deadline-aware policies can trade accuracy for timeliness
    /// on this signal; the built-in policies ignore it.
    double deadline_slack_s = std::numeric_limits<double>::infinity();
};

/// \brief Abstract runtime exit-selection policy (paper Sec. IV).
///
/// Implementations must be deterministic functions of their own state and
/// the arguments; the simulator calls them single-threadedly per run.
class ExitPolicy {
public:
    virtual ~ExitPolicy() = default;
    ExitPolicy() = default;
    ExitPolicy(const ExitPolicy&) = delete;
    ExitPolicy& operator=(const ExitPolicy&) = delete;

    /// \brief Choose the exit to run for a waiting event.
    /// \param state current energy situation (and deadline slack).
    /// \param model the deployed inference model (exit costs, exit count).
    /// \return the exit index to commit to, or -1 to keep waiting
    ///   (insufficient energy for any acceptable choice).
    virtual int select_exit(const EnergyState& state,
                            const InferenceModel& model) = 0;

    /// \brief Decide whether to spend more energy on incremental inference.
    /// \param state current energy situation.
    /// \param model the deployed inference model.
    /// \param current_exit the exit just reached.
    /// \param confidence the model's confidence at that exit.
    /// \return true to advance to the next exit, false to emit the result.
    virtual bool continue_inference(const EnergyState& state,
                                    const InferenceModel& model,
                                    int current_exit, double confidence) = 0;

    /// \brief Feedback after the event resolves (reward = outcome
    /// correctness per paper Sec. IV). Default: stateless policy ignores it.
    virtual void observe(const EnergyState& /*state_at_selection*/,
                         int /*exit_taken*/, bool /*correct*/) {}

    /// \brief A missed event (device never got to run it). Learning policies
    /// can penalize the preceding behaviour.
    virtual void observe_missed() {}
};

/// \brief The static-LUT baseline of Sec. IV / Fig. 7.
///
/// Greedily selects the deepest exit whose from-scratch energy cost fits the
/// currently stored energy; never runs incremental inference.
class GreedyAffordablePolicy final : public ExitPolicy {
public:
    /// \param safety_margin_mj energy kept in reserve so the run cannot
    ///   brown out.
    explicit GreedyAffordablePolicy(double safety_margin_mj = 0.0)
        : safety_margin_mj_(safety_margin_mj) {}

    int select_exit(const EnergyState& state, const InferenceModel& model) override;
    bool continue_inference(const EnergyState&, const InferenceModel&, int,
                            double) override {
        return false;
    }

private:
    double safety_margin_mj_;
};

/// \brief Energy cost of `macs` MACs at the state's energy-per-MMAC rate.
double macs_energy_mj(const EnergyState& state, std::int64_t macs);

}  // namespace imx::sim

#endif  // IMX_SIM_POLICY_HPP
