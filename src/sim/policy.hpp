/// \file
/// \brief Runtime exit-selection policy interface (paper Sec. IV).
///
/// The paper's two sequential runtime decisions map to the two virtuals:
/// select_exit() when the event is picked up, continue_inference() at each
/// reached exit (incremental inference). Learning policies also get
/// observe()/observe_missed() feedback after the event resolves.
///
/// The built-in implementations live in `sim/policies/` (greedy LUTs in
/// policies/greedy.hpp, the Q-learning runtime in policies/qlearning.hpp)
/// and are constructible by name through the registry in
/// policies/registry.hpp. docs/policies.md is the reference for the
/// contract, every built-in's decision rule, and custom registration.
#ifndef IMX_SIM_POLICY_HPP
#define IMX_SIM_POLICY_HPP

#include <cstdint>
#include <limits>

#include "sim/inference_model.hpp"

namespace imx::sim {

/// \brief Energy and timeliness situation visible to the runtime.
///
/// Carries the Q-learning state variables of the paper (available energy E
/// and charging efficiency P, both to be discretized by the policy) plus the
/// deadline slack of the in-flight event when the scenario runs under an
/// inference deadline (SimConfig::deadline_s).
struct EnergyState {
    /// Stored energy now, mJ.
    double level_mj = 0.0;
    /// Storage capacity, mJ (level_mj / capacity_mj is the paper's E).
    double capacity_mj = 0.0;
    /// Recent harvesting rate (EMA over harvested power), mW.
    double charge_rate_mw = 0.0;
    /// MCU energy cost per million MACs, mJ (paper: 1.5 mJ / MFLOP).
    double energy_per_mmac_mj = 1.5;
    /// Seconds left before the in-flight event's completion deadline;
    /// clamped at 0 once the deadline has passed, infinity when the run has
    /// no deadline. Deadline-aware policies trade accuracy for timeliness on
    /// this signal: SlackGreedyPolicy caps its exit depth through a
    /// slack-to-depth schedule, and the slack-binned Q-learning runtime
    /// discretizes it into its state space (RuntimeConfig::slack_bins). The
    /// slack-blind built-ins (GreedyAffordablePolicy and the default
    /// Q-learning configuration) ignore it.
    double deadline_slack_s = std::numeric_limits<double>::infinity();
    /// Requests waiting in the simulator's bounded queue, not counting the
    /// in-flight one. Always 0 when the run has no queue
    /// (SimConfig::queue_capacity == 0).
    int queue_depth = 0;
    /// Normalized backlog: queue_depth / queue_capacity in [0, 1]; 0.0 when
    /// the run has no queue. Load-aware policies shed exit depth on this
    /// signal (QueueSlackGreedyPolicy, and the Q runtime when
    /// RuntimeConfig::queue_bins > 1).
    double queue_backlog = 0.0;
};

/// \brief Abstract runtime exit-selection policy (paper Sec. IV).
///
/// Implementations must be deterministic functions of their own state and
/// the arguments; the simulator calls them single-threadedly per run.
class ExitPolicy {
public:
    virtual ~ExitPolicy() = default;
    ExitPolicy() = default;
    ExitPolicy(const ExitPolicy&) = delete;
    ExitPolicy& operator=(const ExitPolicy&) = delete;

    /// \brief Choose the exit to run for a waiting event.
    /// \param state current energy situation (and deadline slack).
    /// \param model the deployed inference model (exit costs, exit count).
    /// \return the exit index to commit to, or -1 to keep waiting
    ///   (insufficient energy for any acceptable choice).
    virtual int select_exit(const EnergyState& state,
                            const InferenceModel& model) = 0;

    /// \brief Decide whether to spend more energy on incremental inference.
    /// \param state current energy situation.
    /// \param model the deployed inference model.
    /// \param current_exit the exit just reached.
    /// \param confidence the model's confidence at that exit.
    /// \return true to advance to the next exit, false to emit the result.
    virtual bool continue_inference(const EnergyState& state,
                                    const InferenceModel& model,
                                    int current_exit, double confidence) = 0;

    /// \brief Feedback after the event resolves (reward = outcome
    /// correctness per paper Sec. IV, plus timeliness for deadline-aware
    /// learners). Default: stateless policy ignores it.
    /// \param state_at_selection the EnergyState passed to the select_exit
    ///   call that committed this event.
    /// \param exit_taken the exit that produced the result.
    /// \param correct whether the result was correct.
    /// \param deadline_met whether the result was produced within the run's
    ///   completion deadline; always true when the run has no deadline.
    virtual void observe(const EnergyState& /*state_at_selection*/,
                         int /*exit_taken*/, bool /*correct*/,
                         bool /*deadline_met*/) {}

    /// \brief A missed event (lost while the device was busy, or dropped as
    /// hopeless at its deadline). Learning policies can penalize the
    /// preceding behaviour.
    virtual void observe_missed() {}
};

/// \brief Energy cost of `macs` MACs at the state's energy-per-MMAC rate.
/// \param state supplies energy_per_mmac_mj.
/// \param macs the MAC count to price.
/// \return the cost in mJ.
double macs_energy_mj(const EnergyState& state, std::int64_t macs);

}  // namespace imx::sim

#endif  // IMX_SIM_POLICY_HPP
