// Runtime exit-selection policy interface plus the static baseline policy.
//
// The paper's two sequential runtime decisions (Sec. IV) map to the two
// virtuals: select_exit() when the event is picked up, continue_inference()
// at each reached exit (incremental inference). Learning policies also get
// observe() feedback after the event resolves.
#ifndef IMX_SIM_POLICY_HPP
#define IMX_SIM_POLICY_HPP

#include "sim/inference_model.hpp"

namespace imx::sim {

/// Energy situation visible to the runtime (the Q-learning state variables:
/// available energy E and charging efficiency P, both to be discretized by
/// the policy).
struct EnergyState {
    double level_mj = 0.0;        ///< stored energy now
    double capacity_mj = 0.0;     ///< storage capacity
    double charge_rate_mw = 0.0;  ///< recent harvesting rate (EMA)
    double energy_per_mmac_mj = 1.5;
};

class ExitPolicy {
public:
    virtual ~ExitPolicy() = default;
    ExitPolicy() = default;
    ExitPolicy(const ExitPolicy&) = delete;
    ExitPolicy& operator=(const ExitPolicy&) = delete;

    /// Choose the exit to run for a waiting event, or -1 to keep waiting
    /// (insufficient energy for any acceptable choice).
    virtual int select_exit(const EnergyState& state,
                            const InferenceModel& model) = 0;

    /// After reaching `current_exit` with `confidence`, decide whether to
    /// spend more energy to advance to the next exit.
    virtual bool continue_inference(const EnergyState& state,
                                    const InferenceModel& model,
                                    int current_exit, double confidence) = 0;

    /// Feedback after the event resolves (reward = outcome correctness per
    /// paper Sec. IV). Default: stateless policy ignores it.
    virtual void observe(const EnergyState& /*state_at_selection*/,
                         int /*exit_taken*/, bool /*correct*/) {}

    /// A missed event (device never got to run it). Learning policies can
    /// penalize the preceding behaviour.
    virtual void observe_missed() {}
};

/// The static-LUT baseline of Sec. IV / Fig. 7: greedily select the deepest
/// exit whose from-scratch energy cost fits the currently stored energy;
/// never runs incremental inference.
class GreedyAffordablePolicy final : public ExitPolicy {
public:
    /// safety_margin_mj is kept in reserve so the run cannot brown out.
    explicit GreedyAffordablePolicy(double safety_margin_mj = 0.0)
        : safety_margin_mj_(safety_margin_mj) {}

    int select_exit(const EnergyState& state, const InferenceModel& model) override;
    bool continue_inference(const EnergyState&, const InferenceModel&, int,
                            double) override {
        return false;
    }

private:
    double safety_margin_mj_;
};

/// Energy cost of `macs` at the state's energy-per-MMAC rate.
double macs_energy_mj(const EnergyState& state, std::int64_t macs);

}  // namespace imx::sim

#endif  // IMX_SIM_POLICY_HPP
