// Event-driven intermittent-inference simulator.
//
// Two execution models:
//  * kMultiExit — the paper's proposed runtime: when an event is picked up
//    the policy commits to an exit; the device charges until that exit's
//    energy cost is buffered, then completes the inference *within one power
//    cycle* (result guaranteed before any power failure). Afterwards the
//    policy may run incremental inference hops to deeper exits while energy
//    allows.
//  * kCheckpointed — the SONIC-style baseline runtime [Gobieski et al.]:
//    a single-exit network executes across as many power cycles as needed,
//    paying checkpoint overhead per task and wakeup overhead per power
//    cycle; the result arrives only when the whole forward pass finishes.
//
// Missed-event model: the sensor is single-context; by default an event
// arriving while the device is busy (waiting-to-run or running a previous
// event) is lost. This is what bounds the baselines' throughput: expensive
// inferences make the device busy for long stretches and most arrivals are
// dropped, which is exactly the paper's "N2 events are missed due to
// insufficient energy". SimConfig::queue_capacity > 0 relaxes this to a
// bounded FIFO request queue (drop-on-full) for the traffic-serving
// experiments; capacity 0 keeps the historical model bitwise.
#ifndef IMX_SIM_SIMULATOR_HPP
#define IMX_SIM_SIMULATOR_HPP

#include <limits>
#include <vector>

#include "energy/power_trace.hpp"
#include "energy/storage.hpp"
#include "mcu/device.hpp"
#include "sim/event_gen.hpp"
#include "sim/inference_model.hpp"
#include "sim/metrics.hpp"
#include "sim/policy.hpp"
#include "sim/recovery/strategy.hpp"
#include "sim/workspace.hpp"
#include "util/span.hpp"

namespace imx::sim {

enum class ExecutionMode { kMultiExit, kCheckpointed };

struct SimConfig {
    ExecutionMode mode = ExecutionMode::kMultiExit;
    double dt_s = 1.0;  ///< simulation step (paper latency unit: 1 s)
    energy::StorageConfig storage{};
    mcu::McuConfig mcu{};
    /// EMA smoothing for the charging-rate observation in EnergyState.
    double charge_rate_ema_alpha = 0.05;
    /// Optional deadline: a job that has not *started executing* within this
    /// many seconds of arrival is dropped (default: no deadline).
    double max_wait_s = std::numeric_limits<double>::infinity();
    /// Optional *completion* deadline (the deadline sweep axis): an event
    /// whose result is not produced within deadline_s of arrival counts as a
    /// deadline miss (SimResult::deadline_miss_rate()). A job still waiting
    /// for energy when its deadline passes is hopeless and is dropped, which
    /// frees the device for later arrivals. Policies see the remaining slack
    /// as EnergyState::deadline_slack_s. Default: no deadline.
    double deadline_s = std::numeric_limits<double>::infinity();
    /// Bounded request queue. 0 (default) reproduces the historical
    /// single-context model bitwise: an arrival while the device is busy is
    /// simply lost. With capacity N > 0, up to N arrivals wait FIFO while a
    /// request is in flight; an arrival finding the queue full is rejected
    /// (SimResult::dropped), and a queued request whose wait/completion
    /// deadline passes before it reaches the head is dropped as hopeless,
    /// like the historical waiting job. Policies observe the backlog as
    /// EnergyState::queue_depth / queue_backlog.
    int queue_capacity = 0;
    /// Power-failure model (sim/recovery/). Disabled by default, in which
    /// case the simulator's behaviour and output are bitwise identical to
    /// builds that predate the failure model. When enabled (kMultiExit mode
    /// only), committed inferences execute as pre-paid atomic units, the run
    /// can die below StorageConfig::death_threshold_mj while stalled between
    /// units, and the named recovery strategy decides what survives a reboot.
    RecoveryConfig recovery{};
};

class Simulator {
public:
    Simulator(const energy::PowerTrace& trace, const SimConfig& config);

    /// Run the event schedule through the model under the policy.
    /// The policy may be learning (its observe() hooks fire); run() does not
    /// reset policy state, so successive runs implement learning episodes.
    ///
    /// `events` is a span view (std::vector<Event> converts implicitly, so
    /// historical call sites compile unchanged) — arena-backed buffers and
    /// sub-ranges flow through without copies. `workspace`, when non-null,
    /// provides reusable per-worker buffers (queue ring, recovery unit
    /// plan) and the optional profiler; null reproduces the historical
    /// allocate-per-run behaviour bit for bit.
    SimResult run(util::Span<const Event> events, InferenceModel& model,
                  ExitPolicy& policy, ScenarioWorkspace* workspace = nullptr);

    /// run() into a caller-owned result (record capacity reused) — the
    /// allocation-free path for training episodes whose SimResult is
    /// consumed immediately. Produces exactly the values run() would.
    void run_into(util::Span<const Event> events, InferenceModel& model,
                  ExitPolicy& policy, SimResult& out,
                  ScenarioWorkspace* workspace = nullptr);

    [[nodiscard]] const SimConfig& config() const { return config_; }

private:
    const energy::PowerTrace* trace_;
    SimConfig config_;
    /// Cached at construction (the trace is immutable while a Simulator
    /// views it): total_energy() is an O(samples) scan, and the sweep hot
    /// path calls run() hundreds of times per Simulator for training
    /// episodes. Same summation as the per-run call, so the recorded
    /// SimResult values are bitwise unchanged.
    double trace_duration_s_ = 0.0;
    double trace_total_energy_mj_ = 0.0;
};

}  // namespace imx::sim

#endif  // IMX_SIM_SIMULATOR_HPP
