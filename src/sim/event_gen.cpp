#include "sim/event_gen.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace imx::sim {

std::vector<Event> generate_events(const EventGenConfig& config) {
    IMX_EXPECTS(config.count >= 0);
    IMX_EXPECTS(config.duration_s > 0.0);
    util::Rng rng(config.seed);
    std::vector<Event> events;
    events.reserve(static_cast<std::size_t>(config.count));

    switch (config.kind) {
        case ArrivalKind::kUniform: {
            for (int i = 0; i < config.count; ++i) {
                events.push_back({0, rng.uniform(0.0, config.duration_s)});
            }
            break;
        }
        case ArrivalKind::kPoisson: {
            const double rate =
                static_cast<double>(config.count) / config.duration_s;
            double t = 0.0;
            while (static_cast<int>(events.size()) < config.count) {
                t += rng.exponential(rate);
                if (t >= config.duration_s) t = rng.uniform(0.0, config.duration_s);
                events.push_back({0, t});
            }
            break;
        }
        case ArrivalKind::kBursty: {
            while (static_cast<int>(events.size()) < config.count) {
                const double burst_time = rng.uniform(0.0, config.duration_s);
                const auto burst_size = static_cast<int>(rng.uniform_int(2, 5));
                for (int b = 0; b < burst_size &&
                                static_cast<int>(events.size()) < config.count;
                     ++b) {
                    const double jitter = rng.uniform(0.0, 5.0);
                    events.push_back(
                        {0, std::min(burst_time + jitter, config.duration_s - 1e-6)});
                }
            }
            break;
        }
    }

    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.time_s < b.time_s; });
    for (std::size_t i = 0; i < events.size(); ++i) {
        events[i].id = static_cast<int>(i);
    }
    return events;
}

}  // namespace imx::sim
