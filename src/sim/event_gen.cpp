#include "sim/event_gen.hpp"

#include "sim/arrivals/registry.hpp"
#include "util/contracts.hpp"

namespace imx::sim {

const char* arrival_kind_name(ArrivalKind kind) {
    switch (kind) {
        case ArrivalKind::kUniform: return "uniform";
        case ArrivalKind::kPoisson: return "poisson";
        case ArrivalKind::kBursty: return "bursty";
    }
    IMX_EXPECTS(false && "unhandled ArrivalKind");
    return "uniform";
}

std::vector<Event> generate_events(const EventGenConfig& config) {
    return generate_arrivals(arrival_kind_name(config.kind),
                             {config.count, config.duration_s, config.seed});
}

}  // namespace imx::sim
