// Event arrivals ("interesting events" the sensor must classify).
#ifndef IMX_SIM_EVENT_GEN_HPP
#define IMX_SIM_EVENT_GEN_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace imx::sim {

struct Event {
    int id = 0;
    double time_s = 0.0;
};

/// Legacy arrival-process selector. Each value is sugar for an arrival
/// registry name (sim/arrivals/registry.hpp) — see arrival_kind_name();
/// generate_events() delegates to the registry, which owns the generators
/// (plus the newer "mmpp" / "diurnal" / "csv" sources the enum never had).
enum class ArrivalKind {
    kUniform,  ///< "uniform": paper Sec. V-A, random across the duration
    kPoisson,  ///< "poisson": exponential inter-arrivals at the mean rate
    kBursty,   ///< "bursty": bursts of 2-5 events (reservation stress test)
};

/// The arrival-registry name an ArrivalKind is sugar for.
[[nodiscard]] const char* arrival_kind_name(ArrivalKind kind);

struct EventGenConfig {
    int count = 500;
    double duration_s = 13000.0;
    ArrivalKind kind = ArrivalKind::kUniform;
    std::uint64_t seed = 99;
};

/// Generate time-sorted events over [0, duration_s). Sugar for
/// generate_arrivals(arrival_kind_name(kind), ...) with default parameters,
/// and bitwise identical to the pre-registry generators.
std::vector<Event> generate_events(const EventGenConfig& config);

}  // namespace imx::sim

#endif  // IMX_SIM_EVENT_GEN_HPP
