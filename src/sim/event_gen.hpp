// Event arrivals ("interesting events" the sensor must classify).
#ifndef IMX_SIM_EVENT_GEN_HPP
#define IMX_SIM_EVENT_GEN_HPP

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace imx::sim {

struct Event {
    int id = 0;
    double time_s = 0.0;
};

enum class ArrivalKind {
    kUniform,  ///< paper Sec. V-A: "randomly distributed across the duration"
    kPoisson,  ///< exponential inter-arrivals at matching mean rate
    kBursty,   ///< Poisson bursts of 2-5 events (stress test for reservation)
};

struct EventGenConfig {
    int count = 500;
    double duration_s = 13000.0;
    ArrivalKind kind = ArrivalKind::kUniform;
    std::uint64_t seed = 99;
};

/// Generate time-sorted events over [0, duration_s).
std::vector<Event> generate_events(const EventGenConfig& config);

}  // namespace imx::sim

#endif  // IMX_SIM_EVENT_GEN_HPP
