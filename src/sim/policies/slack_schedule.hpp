/// \file
/// \brief Slack-to-depth schedule shared by the deadline-aware policies
/// (SlackGreedyPolicy and the slack-aware Q-learning runtime).
#ifndef IMX_SIM_POLICIES_SLACK_SCHEDULE_HPP
#define IMX_SIM_POLICIES_SLACK_SCHEDULE_HPP

#include <vector>

namespace imx::sim {

/// \brief Maps remaining deadline slack to the deepest exit worth
/// committing to.
///
/// min_slack_s[e] is the minimum deadline slack (seconds) required to commit
/// to exit index e; exits past the end of the vector require the last entry.
/// Entries must be non-decreasing (deeper exits never need less slack) and
/// entry 0 must be 0 so the cheapest exit is never slack-blocked. The
/// defaults are calibrated against the paper setup's charge and compute
/// times (exit 2 ≈ 1 MMAC ≈ 1.5 mJ ≈ tens of seconds of solar charging).
struct SlackSchedule {
    std::vector<double> min_slack_s = {0.0, 45.0, 120.0};

    /// \brief Deepest exit index the schedule allows at a given slack.
    /// \param slack_s the remaining deadline slack (infinity = no deadline).
    /// \param num_exits the deployed model's exit count (> 0).
    /// \return the largest exit index in [0, num_exits) whose minimum slack
    ///   is <= slack_s; never negative because entry 0 is 0.
    [[nodiscard]] int max_depth(double slack_s, int num_exits) const;

    /// \brief Contract check (non-decreasing, first entry 0); called by the
    /// policies that consume a schedule.
    void validate() const;
};

}  // namespace imx::sim

#endif  // IMX_SIM_POLICIES_SLACK_SCHEDULE_HPP
