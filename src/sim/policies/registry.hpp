/// \file
/// \brief Name-based exit-policy registry: string -> factory, so benches,
/// tests, and bench CLIs can select policies without compile-time wiring.
///
/// Built-in names (always registered; docs/policies.md documents each
/// decision rule):
///  * "greedy"          — GreedyAffordablePolicy, the paper's static LUT.
///  * "slack-greedy"    — SlackGreedyPolicy, the deadline-aware LUT.
///  * "qlearning"       — QLearningExitPolicy with the context's
///                        RuntimeConfig as-is (slack-blind by default).
///  * "slack-qlearning" — QLearningExitPolicy under
///                        slack_aware_runtime_config() (slack-binned state,
///                        deadline-miss reward penalty).
///
/// Custom policies register at runtime through register_policy(); see the
/// worked example in docs/policies.md. The registry is mutex-guarded, so
/// make_policy() is safe from sweep worker threads.
#ifndef IMX_SIM_POLICIES_REGISTRY_HPP
#define IMX_SIM_POLICIES_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/policies/greedy.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/policy.hpp"

namespace imx::sim {

/// \brief Everything a policy factory may depend on. Fields irrelevant to a
/// given policy are simply ignored by its factory.
struct PolicyContext {
    int num_exits = 3;              ///< deployed model's exit count
    RuntimeConfig runtime{};        ///< Q-learning knobs (incl. seed)
    double safety_margin_mj = 0.0;  ///< greedy-family brown-out reserve
    SlackSchedule slack_schedule{}; ///< slack-greedy depth schedule
};

/// \brief Factory signature: build a fresh policy for one scenario run.
using PolicyFactory =
    std::function<std::unique_ptr<ExitPolicy>(const PolicyContext&)>;

/// \brief Construct a registered policy by name.
/// \param name a built-in or register_policy()'d name.
/// \param context the construction context.
/// \return a fresh policy instance.
/// \throws std::invalid_argument for unknown names (the message lists every
///   registered name, so CLI typos are self-explaining).
std::unique_ptr<ExitPolicy> make_policy(const std::string& name,
                                        const PolicyContext& context = {});

/// \brief Register (or replace) a named policy factory.
/// \param name the registry key; must be non-empty.
/// \param factory invoked by make_policy(); must not return nullptr.
void register_policy(const std::string& name, PolicyFactory factory);

/// \brief Whether `name` is currently registered.
[[nodiscard]] bool has_policy(const std::string& name);

/// \brief Every registered name, sorted (built-ins plus custom ones).
[[nodiscard]] std::vector<std::string> policy_names();

}  // namespace imx::sim

#endif  // IMX_SIM_POLICIES_REGISTRY_HPP
