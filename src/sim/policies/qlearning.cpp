#include "sim/policies/qlearning.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace imx::sim {

RuntimeConfig slack_aware_runtime_config(RuntimeConfig base) {
    // Two slack bins (urgent vs relaxed, split at max_slack_s / 2) keep the
    // state space small enough that the paper's short training schedules
    // still cover it; more bins dilute the per-state visit counts faster
    // than they add signal.
    if (base.slack_bins <= 1) {
        base.slack_bins = 2;
        base.max_slack_s = 60.0;
    }
    if (base.deadline_miss_penalty == 0.0) base.deadline_miss_penalty = 0.5;
    base.cap_depth_by_slack = true;
    return base;
}

QLearningExitPolicy::QLearningExitPolicy(int num_exits,
                                         const RuntimeConfig& config,
                                         SlackSchedule schedule)
    : num_exits_(num_exits),
      config_(config),
      schedule_(std::move(schedule)),
      exit_grid_({config.energy_bins, config.rate_bins, config.slack_bins,
                  config.queue_bins}),
      exit_q_(exit_grid_.states(), static_cast<std::size_t>(num_exits),
              config.exit_q, config.seed),
      incremental_q_(config.confidence_bins * config.incremental_energy_bins, 2,
                     config.incremental_q, config.seed ^ 0x99),
      level_bins_(0.0, 1.0, config.energy_bins),
      rate_bins_(0.0, config.max_rate_mw, config.rate_bins),
      slack_bins_(0.0, config.max_slack_s, config.slack_bins),
      queue_bins_(0.0, 1.0, config.queue_bins),
      conf_bins_(0.0, 1.0, config.confidence_bins),
      inc_level_bins_(0.0, 1.0, config.incremental_energy_bins) {
    IMX_EXPECTS(num_exits >= 1);
    IMX_EXPECTS(config.max_slack_s > 0.0);
    if (config_.cap_depth_by_slack) schedule_.validate();
}

std::size_t QLearningExitPolicy::exit_state(const EnergyState& s) const {
    const std::size_t level_bin =
        level_bins_.bin(s.level_mj / std::max(s.capacity_mj, 1e-9));
    const std::size_t rate_bin = rate_bins_.bin(s.charge_rate_mw);
    // Infinite slack (no deadline) clamps into the top bin, so a slack-blind
    // configuration (slack_bins == 1) reproduces the historical indices —
    // and likewise the load-blind queue_bins == 1 (trailing size-1 grid
    // dimension; backlog is 0 anyway when the run has no queue).
    const std::size_t slack_bin = slack_bins_.bin(s.deadline_slack_s);
    const std::size_t queue_bin = queue_bins_.bin(s.queue_backlog);
    return exit_grid_.flatten({level_bin, rate_bin, slack_bin, queue_bin});
}

std::size_t QLearningExitPolicy::incremental_state(const EnergyState& s,
                                                   double confidence) const {
    const std::size_t conf_bin = conf_bins_.bin(confidence);
    const std::size_t level_bin =
        inc_level_bins_.bin(s.level_mj / std::max(s.capacity_mj, 1e-9));
    return conf_bin * config_.incremental_energy_bins + level_bin;
}

int QLearningExitPolicy::select_exit(const EnergyState& state,
                                     const InferenceModel& model) {
    (void)model;
    const std::size_t s = exit_state(state);

    // Chain the previous event's transition now that s' is known (Eq. 16).
    if (pending_.has_value() && !eval_mode_) {
        exit_q_.update(pending_->state, pending_->action, pending_->reward, s);
    }

    std::size_t action = eval_mode_ ? exit_q_.greedy(s) : exit_q_.select(s);
    if (config_.cap_depth_by_slack) {
        // Project onto the depth the remaining slack permits. The pending
        // transition records the *executed* action, so off-policy Q-learning
        // stays consistent under the cap.
        const auto cap = static_cast<std::size_t>(
            schedule_.max_depth(state.deadline_slack_s, num_exits_));
        action = std::min(action, cap);
    }
    pending_ = Pending{s, action, 0.0};
    pending_incremental_.clear();
    return static_cast<int>(action);
}

bool QLearningExitPolicy::continue_inference(const EnergyState& state,
                                             const InferenceModel& model,
                                             int current_exit,
                                             double confidence) {
    if (!config_.enable_incremental) return false;
    if (current_exit + 1 >= num_exits_) return false;
    if (config_.cap_depth_by_slack &&
        schedule_.max_depth(state.deadline_slack_s, num_exits_) <=
            current_exit) {
        return false;  // no slack for a deeper hop; no learning signal
    }
    const std::int64_t inc =
        model.incremental_macs(current_exit, current_exit + 1);
    const double cost = macs_energy_mj(state, inc);
    if (cost + config_.incremental_headroom * state.capacity_mj >
        state.level_mj) {
        return false;  // not affordable with headroom; no learning signal
    }
    const std::size_t s = incremental_state(state, confidence);
    const std::size_t action =
        eval_mode_ ? incremental_q_.greedy(s) : incremental_q_.select(s);
    if (!eval_mode_) pending_incremental_.push_back({s, action});
    return action == 1;
}

void QLearningExitPolicy::observe(const EnergyState& /*state_at_selection*/,
                                  int /*exit_taken*/, bool correct,
                                  bool deadline_met) {
    double r = correct ? 1.0 : 0.0;
    if (!deadline_met) r -= config_.deadline_miss_penalty;
    if (pending_.has_value()) {
        // Stash; the bootstrap happens at the next select_exit call when the
        // successor state is known.
        pending_->reward += r;
    }
    if (!eval_mode_) {
        for (const PendingIncremental& pi : pending_incremental_) {
            const double r2 =
                r - (pi.action == 1 ? config_.continue_cost_penalty : 0.0);
            incremental_q_.update_terminal(pi.state, pi.action, r2);
        }
    }
    pending_incremental_.clear();
}

void QLearningExitPolicy::observe_missed() {
    if (pending_.has_value() && !eval_mode_) {
        pending_->reward -= config_.miss_penalty;
    }
}

void QLearningExitPolicy::set_eval_mode(bool eval) { eval_mode_ = eval; }

std::size_t QLearningExitPolicy::footprint_bytes() const {
    return exit_q_.footprint_bytes() + incremental_q_.footprint_bytes();
}

}  // namespace imx::sim
