// Thin wrapper over util::Registry<PolicyFactory>: the public free
// functions, their error messages, and the registered-name listing are
// byte-identical to the historical hand-rolled registry.
#include "sim/policies/registry.hpp"

#include <utility>

#include "util/contracts.hpp"
#include "util/registry.hpp"

namespace imx::sim {

namespace {

/// The registry instance, seeded with built-ins on first use — no
/// static-init-order or dead-translation-unit hazards.
util::Registry<PolicyFactory>& registry() {
    static util::Registry<PolicyFactory> instance("exit policy");
    static const bool seeded = [] {
        instance.add("greedy", [](const PolicyContext& ctx) {
            return std::make_unique<GreedyAffordablePolicy>(
                ctx.safety_margin_mj);
        });
        instance.add("slack-greedy", [](const PolicyContext& ctx) {
            return std::make_unique<SlackGreedyPolicy>(ctx.safety_margin_mj,
                                                       ctx.slack_schedule);
        });
        instance.add("queue-slack-greedy", [](const PolicyContext& ctx) {
            return std::make_unique<QueueSlackGreedyPolicy>(
                ctx.safety_margin_mj, ctx.slack_schedule);
        });
        instance.add("qlearning", [](const PolicyContext& ctx) {
            return std::make_unique<QLearningExitPolicy>(ctx.num_exits,
                                                         ctx.runtime);
        });
        instance.add("slack-qlearning", [](const PolicyContext& ctx) {
            return std::make_unique<QLearningExitPolicy>(
                ctx.num_exits, slack_aware_runtime_config(ctx.runtime),
                ctx.slack_schedule);
        });
        return true;
    }();
    (void)seeded;
    return instance;
}

}  // namespace

std::unique_ptr<ExitPolicy> make_policy(const std::string& name,
                                        const PolicyContext& context) {
    const PolicyFactory factory = registry().get(name);
    auto policy = factory(context);
    IMX_EXPECTS(policy != nullptr);
    return policy;
}

void register_policy(const std::string& name, PolicyFactory factory) {
    IMX_EXPECTS(factory != nullptr);
    registry().add(name, std::move(factory));
}

bool has_policy(const std::string& name) {
    return registry().contains(name);
}

std::vector<std::string> policy_names() { return registry().names(); }

}  // namespace imx::sim
