#include "sim/policies/registry.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace imx::sim {

namespace {

std::mutex& registry_mutex() {
    static std::mutex mutex;
    return mutex;
}

/// The registry map. An ordered map so policy_names() is sorted without a
/// separate pass. Built-ins are seeded on first use — no static-init-order
/// or dead-translation-unit hazards.
std::map<std::string, PolicyFactory>& registry_locked() {
    static std::map<std::string, PolicyFactory> factories = [] {
        std::map<std::string, PolicyFactory> builtins;
        builtins["greedy"] = [](const PolicyContext& ctx) {
            return std::make_unique<GreedyAffordablePolicy>(
                ctx.safety_margin_mj);
        };
        builtins["slack-greedy"] = [](const PolicyContext& ctx) {
            return std::make_unique<SlackGreedyPolicy>(ctx.safety_margin_mj,
                                                       ctx.slack_schedule);
        };
        builtins["queue-slack-greedy"] = [](const PolicyContext& ctx) {
            return std::make_unique<QueueSlackGreedyPolicy>(
                ctx.safety_margin_mj, ctx.slack_schedule);
        };
        builtins["qlearning"] = [](const PolicyContext& ctx) {
            return std::make_unique<QLearningExitPolicy>(ctx.num_exits,
                                                         ctx.runtime);
        };
        builtins["slack-qlearning"] = [](const PolicyContext& ctx) {
            return std::make_unique<QLearningExitPolicy>(
                ctx.num_exits, slack_aware_runtime_config(ctx.runtime),
                ctx.slack_schedule);
        };
        return builtins;
    }();
    return factories;
}

}  // namespace

std::unique_ptr<ExitPolicy> make_policy(const std::string& name,
                                        const PolicyContext& context) {
    PolicyFactory factory;
    {
        std::lock_guard<std::mutex> lock(registry_mutex());
        const auto& factories = registry_locked();
        const auto it = factories.find(name);
        if (it == factories.end()) {
            std::string known;
            for (const auto& [key, unused] : factories) {
                (void)unused;
                if (!known.empty()) known += ", ";
                known += key;
            }
            throw std::invalid_argument("unknown exit policy '" + name +
                                        "' (registered: " + known + ")");
        }
        factory = it->second;
    }
    auto policy = factory(context);
    IMX_EXPECTS(policy != nullptr);
    return policy;
}

void register_policy(const std::string& name, PolicyFactory factory) {
    IMX_EXPECTS(!name.empty());
    IMX_EXPECTS(factory != nullptr);
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry_locked()[name] = std::move(factory);
}

bool has_policy(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    return registry_locked().count(name) > 0;
}

std::vector<std::string> policy_names() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    std::vector<std::string> names;
    for (const auto& [key, unused] : registry_locked()) {
        (void)unused;
        names.push_back(key);
    }
    return names;
}

}  // namespace imx::sim
