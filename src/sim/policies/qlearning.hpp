/// \file
/// \brief The Q-learning exit runtime (paper Sec. IV), optionally
/// deadline-slack-aware.
///
/// Two Q-tables:
///  * exit table — state = (stored-energy bin x charging-rate bin
///    [x deadline-slack bin] [x queue-backlog bin]), actions = the m exits.
///    Rewards chain between
///    consecutive events (Eq. 16) so the policy learns energy *reservation*:
///    a high-accuracy expensive exit now is worth less if it starves the
///    next events. Missed events feed a penalty into the pending reward,
///    and (when configured) so do deadline-missed completions.
///  * incremental table — state = (confidence bin x energy bin), actions =
///    {emit, continue}; decides whether to propagate a low-confidence result
///    to the next exit (second decision of Sec. IV).
///
/// Historically this lived in core/runtime.hpp as
/// `core::QLearningExitPolicy`; core/runtime.hpp now aliases the names here
/// so existing call sites keep compiling.
#ifndef IMX_SIM_POLICIES_QLEARNING_HPP
#define IMX_SIM_POLICIES_QLEARNING_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "rl/qtable.hpp"
#include "sim/policies/slack_schedule.hpp"
#include "sim/policy.hpp"

namespace imx::sim {

/// \brief Knobs of the Q-learning exit runtime.
///
/// The defaults reproduce the paper's slack-blind configuration bitwise:
/// slack_bins == 1 collapses the slack dimension (every state maps to the
/// same single bin, so indices and table sizes equal the historical
/// two-dimensional layout) and deadline_miss_penalty == 0 keeps the reward
/// purely correctness-based. The "slack-qlearning" registry entry switches
/// both on via slack_aware_runtime_config().
struct RuntimeConfig {
    std::size_t energy_bins = 8;       ///< stored-energy bins (exit table)
    std::size_t rate_bins = 6;         ///< charging-rate bins (exit table)
    std::size_t confidence_bins = 5;   ///< confidence bins (incremental table)
    std::size_t incremental_energy_bins = 6;  ///< energy bins (incremental)
    /// Deadline-slack bins in the exit-table state. 1 = slack-blind (the
    /// historical state space); >= 2 adds a discretized
    /// EnergyState::deadline_slack_s dimension so the learner can trade
    /// depth for timeliness.
    std::size_t slack_bins = 1;
    /// Slack discretizer range, seconds: slack saturates at the top bin
    /// (infinite slack — no deadline — always lands there).
    double max_slack_s = 240.0;
    /// Queue-backlog bins in the exit-table state. 1 = load-blind (the
    /// historical state space: a trailing size-1 StateGrid dimension leaves
    /// every flat index — and therefore the seeded table — unchanged);
    /// >= 2 discretizes EnergyState::queue_backlog in [0, 1] so the learner
    /// can shed exit depth when the bounded request queue fills.
    std::size_t queue_bins = 1;
    rl::QLearningConfig exit_q{/*alpha=*/0.10, /*gamma=*/0.60,
                               /*epsilon=*/0.30, /*epsilon_decay=*/0.9997,
                               /*epsilon_min=*/0.02, /*initial_q=*/0.5};
    rl::QLearningConfig incremental_q{/*alpha=*/0.20, /*gamma=*/0.0,
                                      /*epsilon=*/0.15,
                                      /*epsilon_decay=*/0.999,
                                      /*epsilon_min=*/0.02, /*initial_q=*/0.4};
    double miss_penalty = 1.0;  ///< subtracted from the pending reward per miss
    /// Subtracted from the completion reward when the result arrived after
    /// the deadline (0 = deadline-blind reward, the historical behaviour).
    double deadline_miss_penalty = 0.0;
    /// When true, the selected exit is projected onto the depth the policy's
    /// SlackSchedule (a constructor argument) allows at the current slack,
    /// and incremental hops past that depth are refused. The Q-table still
    /// learns over the executed (capped) action, so the learner and the
    /// timeliness constraint compose instead of fighting. The Q policy
    /// commits the moment an event is picked up — selection-time slack
    /// equals the full deadline — so without this cap the slack bin alone
    /// cannot shed depth under a tight deadline.
    bool cap_depth_by_slack = false;
    bool enable_incremental = true;
    /// Energy headroom (fraction of capacity) required to consider continuing.
    double incremental_headroom = 0.05;
    /// Small cost term discouraging continuation that adds no correctness.
    double continue_cost_penalty = 0.10;
    /// Charging-rate discretizer range (mW); rates saturate at the top bin.
    double max_rate_mw = 0.05;
    std::uint64_t seed = 321;
};

/// \brief The slack-aware flavour of a runtime configuration: 2 slack bins
/// (urgent vs relaxed, split at max_slack_s / 2 = 30 s), a 0.5
/// deadline-miss reward penalty, and the slack-capped action set on top of
/// `base` (values already slack-aware in `base` are kept). This is what the
/// "slack-qlearning" registry entry applies.
[[nodiscard]] RuntimeConfig slack_aware_runtime_config(RuntimeConfig base = {});

/// \brief Learned exit selection + incremental inference (paper Sec. IV).
///
/// Deterministic for a fixed config/seed; the simulator drives it through
/// the ExitPolicy virtuals and the observe() reward hooks.
class QLearningExitPolicy final : public ExitPolicy {
public:
    /// \param num_exits the deployed model's exit count (>= 1).
    /// \param config runtime knobs; see RuntimeConfig.
    /// \param schedule slack-to-depth schedule, consulted only when
    ///   config.cap_depth_by_slack is set (shared shape with
    ///   SlackGreedyPolicy).
    QLearningExitPolicy(int num_exits, const RuntimeConfig& config,
                        SlackSchedule schedule = {});

    int select_exit(const EnergyState& state,
                    const InferenceModel& model) override;
    bool continue_inference(const EnergyState& state,
                            const InferenceModel& model, int current_exit,
                            double confidence) override;
    void observe(const EnergyState& state_at_selection, int exit_taken,
                 bool correct, bool deadline_met) override;
    void observe_missed() override;

    /// \brief Freeze both tables (greedy, no updates) for evaluation
    /// episodes.
    void set_eval_mode(bool eval);
    /// \brief Whether the tables are frozen.
    [[nodiscard]] bool eval_mode() const { return eval_mode_; }

    /// \brief Combined LUT footprint (paper: "the overhead of Q-learning is
    /// negligible"); tests assert this stays in the KB range.
    [[nodiscard]] std::size_t footprint_bytes() const;

    /// \brief The exit-selection table (read-only).
    [[nodiscard]] const rl::QTable& exit_table() const { return exit_q_; }
    /// \brief The incremental-inference table (read-only).
    [[nodiscard]] const rl::QTable& incremental_table() const {
        return incremental_q_;
    }

    /// \brief Flat exit-table state index for an energy situation — the
    /// (energy, rate[, slack]) discretization. Exposed so tests can pin the
    /// slack-binned layout (round-trip through rl::StateGrid).
    [[nodiscard]] std::size_t exit_state(const EnergyState& s) const;

private:
    [[nodiscard]] std::size_t incremental_state(const EnergyState& s,
                                                double confidence) const;

    int num_exits_;
    RuntimeConfig config_;
    SlackSchedule schedule_;
    rl::StateGrid exit_grid_;
    rl::QTable exit_q_;
    rl::QTable incremental_q_;
    rl::Discretizer level_bins_;
    rl::Discretizer rate_bins_;
    rl::Discretizer slack_bins_;
    rl::Discretizer queue_bins_;
    rl::Discretizer conf_bins_;
    rl::Discretizer inc_level_bins_;
    bool eval_mode_ = false;

    // Pending inter-event transition (Eq. 16 chaining).
    struct Pending {
        std::size_t state = 0;
        std::size_t action = 0;
        double reward = 0.0;
    };
    std::optional<Pending> pending_;

    // Pending incremental decisions for the in-flight event.
    struct PendingIncremental {
        std::size_t state = 0;
        std::size_t action = 0;
    };
    std::vector<PendingIncremental> pending_incremental_;
};

}  // namespace imx::sim

#endif  // IMX_SIM_POLICIES_QLEARNING_HPP
