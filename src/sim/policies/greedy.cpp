#include "sim/policies/greedy.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "util/contracts.hpp"

namespace imx::sim {

namespace {

/// Deepest exit in [0, num_exits) affordable at the current level under a
/// depth cap — the shared core of both greedy LUTs.
int deepest_affordable(const EnergyState& state, const InferenceModel& model,
                       double safety_margin_mj, int max_depth) {
    int chosen = -1;
    const int limit = std::min(max_depth, model.num_exits() - 1);
    for (int e = 0; e <= limit; ++e) {
        const double cost = macs_energy_mj(state, model.exit_macs(e));
        if (cost + safety_margin_mj <= state.level_mj) chosen = e;
    }
    return chosen;
}

}  // namespace

int GreedyAffordablePolicy::select_exit(const EnergyState& state,
                                        const InferenceModel& model) {
    return deepest_affordable(state, model, safety_margin_mj_,
                              model.num_exits() - 1);
}

SlackGreedyPolicy::SlackGreedyPolicy(double safety_margin_mj,
                                     SlackSchedule schedule)
    : safety_margin_mj_(safety_margin_mj), schedule_(std::move(schedule)) {
    schedule_.validate();
}

int SlackGreedyPolicy::select_exit(const EnergyState& state,
                                   const InferenceModel& model) {
    const int cap = schedule_.max_depth(state.deadline_slack_s,
                                        model.num_exits());
    return deepest_affordable(state, model, safety_margin_mj_, cap);
}

QueueSlackGreedyPolicy::QueueSlackGreedyPolicy(double safety_margin_mj,
                                               SlackSchedule schedule)
    : safety_margin_mj_(safety_margin_mj), schedule_(std::move(schedule)) {
    schedule_.validate();
}

int QueueSlackGreedyPolicy::max_depth_for_backlog(double backlog,
                                                  int num_exits) {
    IMX_EXPECTS(num_exits > 0);
    const double clamped = std::min(std::max(backlog, 0.0), 1.0);
    const int deepest = num_exits - 1;
    const int shed = static_cast<int>(clamped * deepest + 0.5);
    return deepest - shed;
}

int QueueSlackGreedyPolicy::select_exit(const EnergyState& state,
                                        const InferenceModel& model) {
    const int cap = std::min(
        schedule_.max_depth(state.deadline_slack_s, model.num_exits()),
        max_depth_for_backlog(state.queue_backlog, model.num_exits()));
    return deepest_affordable(state, model, safety_margin_mj_, cap);
}

}  // namespace imx::sim
