/// \file
/// \brief The static (non-learning) LUT policies: the paper's greedy
/// baseline and its deadline-slack-aware variant.
#ifndef IMX_SIM_POLICIES_GREEDY_HPP
#define IMX_SIM_POLICIES_GREEDY_HPP

#include "sim/policies/slack_schedule.hpp"
#include "sim/policy.hpp"

namespace imx::sim {

/// \brief The static-LUT baseline of Sec. IV / Fig. 7.
///
/// Greedily selects the deepest exit whose from-scratch energy cost fits the
/// currently stored energy; never runs incremental inference. Slack-blind:
/// EnergyState::deadline_slack_s does not influence the choice.
class GreedyAffordablePolicy final : public ExitPolicy {
public:
    /// \param safety_margin_mj energy kept in reserve so the run cannot
    ///   brown out.
    explicit GreedyAffordablePolicy(double safety_margin_mj = 0.0)
        : safety_margin_mj_(safety_margin_mj) {}

    int select_exit(const EnergyState& state,
                    const InferenceModel& model) override;
    bool continue_inference(const EnergyState&, const InferenceModel&, int,
                            double) override {
        return false;
    }

private:
    double safety_margin_mj_;
};

/// \brief Deadline-aware variant of the greedy LUT.
///
/// Applies the greedy affordability rule *under a depth cap from the slack
/// schedule*: as EnergyState::deadline_slack_s shrinks, deep exits drop out
/// of consideration, so the policy commits to a cheaper exit that charges
/// and computes within the remaining slack (and leaves the device free, and
/// the buffer full, for the next arrival). With no deadline (infinite
/// slack) the behaviour is identical to GreedyAffordablePolicy.
class SlackGreedyPolicy final : public ExitPolicy {
public:
    /// \param safety_margin_mj energy kept in reserve, as in the greedy LUT.
    /// \param schedule the slack-to-depth schedule (validated on
    ///   construction: non-decreasing, first entry 0).
    explicit SlackGreedyPolicy(double safety_margin_mj = 0.0,
                               SlackSchedule schedule = {});

    int select_exit(const EnergyState& state,
                    const InferenceModel& model) override;
    bool continue_inference(const EnergyState&, const InferenceModel&, int,
                            double) override {
        return false;
    }

    /// \brief The schedule's depth cap for a slack value (exposed so tests
    /// can pin the monotone shallowing directly).
    [[nodiscard]] int max_depth_for_slack(double slack_s, int num_exits) const {
        return schedule_.max_depth(slack_s, num_exits);
    }

private:
    double safety_margin_mj_;
    SlackSchedule schedule_;
};

/// \brief Load-aware variant of the slack-greedy LUT.
///
/// Applies the slack-greedy rule under a second depth cap driven by
/// EnergyState::queue_backlog: as the bounded request queue fills, deep
/// exits drop out of consideration so the device turns requests around
/// faster and drains the backlog before it overflows (tail-latency and
/// drop-rate relief under bursts). The cap is
///     num_exits-1 - round(queue_backlog * (num_exits-1)),
/// i.e. unconstrained at an empty queue and exit 0 only at a full one.
/// With no queue (backlog always 0) the behaviour — and with infinite slack
/// the whole policy — is identical to SlackGreedyPolicy.
class QueueSlackGreedyPolicy final : public ExitPolicy {
public:
    /// \param safety_margin_mj energy kept in reserve, as in the greedy LUT.
    /// \param schedule the slack-to-depth schedule (validated on
    ///   construction).
    explicit QueueSlackGreedyPolicy(double safety_margin_mj = 0.0,
                                    SlackSchedule schedule = {});

    int select_exit(const EnergyState& state,
                    const InferenceModel& model) override;
    bool continue_inference(const EnergyState&, const InferenceModel&, int,
                            double) override {
        return false;
    }

    /// \brief The backlog-driven depth cap (exposed so tests can pin the
    /// monotone shedding directly).
    [[nodiscard]] static int max_depth_for_backlog(double backlog,
                                                   int num_exits);

private:
    double safety_margin_mj_;
    SlackSchedule schedule_;
};

}  // namespace imx::sim

#endif  // IMX_SIM_POLICIES_GREEDY_HPP
