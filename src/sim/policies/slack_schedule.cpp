#include "sim/policies/slack_schedule.hpp"

#include <algorithm>
#include <cstddef>

#include "util/contracts.hpp"

namespace imx::sim {

int SlackSchedule::max_depth(double slack_s, int num_exits) const {
    IMX_EXPECTS(num_exits > 0);
    int depth = 0;
    for (int e = 1; e < num_exits; ++e) {
        const std::size_t i =
            std::min(static_cast<std::size_t>(e), min_slack_s.size() - 1);
        if (min_slack_s[i] <= slack_s) depth = e;
    }
    return depth;
}

void SlackSchedule::validate() const {
    IMX_EXPECTS(!min_slack_s.empty());
    IMX_EXPECTS(min_slack_s.front() == 0.0);
    for (std::size_t i = 1; i < min_slack_s.size(); ++i) {
        IMX_EXPECTS(min_slack_s[i] >= min_slack_s[i - 1]);
    }
}

}  // namespace imx::sim
