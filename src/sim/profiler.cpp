#include "sim/profiler.hpp"

#include <cinttypes>
#include <cstdio>

namespace imx::sim {

namespace {

constexpr const char* kPhaseNames[Profiler::kNumPhases] = {
    "harvest", "queue", "policy", "inference", "commit",
};

}  // namespace

void Profiler::merge(const Profiler& other) noexcept {
    for (int p = 0; p < kNumPhases; ++p) {
        stats_[static_cast<std::size_t>(p)].calls +=
            other.stats_[static_cast<std::size_t>(p)].calls;
        stats_[static_cast<std::size_t>(p)].ns +=
            other.stats_[static_cast<std::size_t>(p)].ns;
    }
    runs_ += other.runs_;
    scenarios_ += other.scenarios_;
}

std::uint64_t Profiler::total_ns() const {
    std::uint64_t total = 0;
    for (const PhaseStats& s : stats_) total += s.ns;
    return total;
}

const char* Profiler::phase_name(Phase phase) {
    return kPhaseNames[static_cast<std::size_t>(phase)];
}

std::string Profiler::table() const {
    const double total = static_cast<double>(total_ns());
    char line[160];
    std::string out;
    out += "phase        calls            time_ms    share\n";
    for (int p = 0; p < kNumPhases; ++p) {
        const PhaseStats& s = stats_[static_cast<std::size_t>(p)];
        const double share =
            total > 0.0 ? static_cast<double>(s.ns) / total : 0.0;
        std::snprintf(line, sizeof(line),
                      "%-10s %12" PRIu64 " %14.3f %7.1f%%\n",
                      kPhaseNames[static_cast<std::size_t>(p)], s.calls,
                      static_cast<double>(s.ns) / 1e6, share * 100.0);
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "total phase time %.3f ms over %" PRIu64
                  " scenario(s), %" PRIu64 " simulator run(s)\n",
                  total / 1e6, scenarios_, runs_);
    out += line;
    return out;
}

std::string Profiler::json() const {
    const double total = static_cast<double>(total_ns());
    char buf[160];
    std::string out = "{";
    std::snprintf(buf, sizeof(buf),
                  "\"runs\": %" PRIu64 ", \"scenarios\": %" PRIu64
                  ", \"total_ns\": %" PRIu64 ", \"phases\": {",
                  runs_, scenarios_, total_ns());
    out += buf;
    for (int p = 0; p < kNumPhases; ++p) {
        const PhaseStats& s = stats_[static_cast<std::size_t>(p)];
        const double share =
            total > 0.0 ? static_cast<double>(s.ns) / total : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "%s\"%s\": {\"calls\": %" PRIu64 ", \"ns\": %" PRIu64
                      ", \"share\": %.6f}",
                      p == 0 ? "" : ", ",
                      kPhaseNames[static_cast<std::size_t>(p)], s.calls, s.ns,
                      share);
        out += buf;
    }
    out += "}}";
    return out;
}

}  // namespace imx::sim
