#include "sim/policy.hpp"

namespace imx::sim {

double macs_energy_mj(const EnergyState& state, std::int64_t macs) {
    return static_cast<double>(macs) / 1e6 * state.energy_per_mmac_mj;
}

}  // namespace imx::sim
