#include "sim/policy.hpp"

namespace imx::sim {

double macs_energy_mj(const EnergyState& state, std::int64_t macs) {
    return static_cast<double>(macs) / 1e6 * state.energy_per_mmac_mj;
}

int GreedyAffordablePolicy::select_exit(const EnergyState& state,
                                        const InferenceModel& model) {
    int chosen = -1;
    for (int e = 0; e < model.num_exits(); ++e) {
        const double cost = macs_energy_mj(state, model.exit_macs(e));
        if (cost + safety_margin_mj_ <= state.level_mj) chosen = e;
    }
    return chosen;
}

}  // namespace imx::sim
