// Per-event records and the paper's evaluation metrics (Eq. 1 IEpmJ,
// all-event / processed-event accuracy, per-event and per-inference latency,
// exit histograms).
#ifndef IMX_SIM_METRICS_HPP
#define IMX_SIM_METRICS_HPP

#include <cstdint>
#include <limits>
#include <vector>

namespace imx::sim {

struct EventRecord {
    int event_id = -1;
    double arrival_time_s = 0.0;
    bool processed = false;
    bool correct = false;
    int exit_taken = -1;            ///< final exit index; -1 if missed
    int hops = 0;                   ///< 1 + number of incremental advances
    double completion_time_s = 0.0; ///< when the result was produced
    double inference_start_s = 0.0; ///< when execution (not waiting) began
    double energy_spent_mj = 0.0;
    std::int64_t macs = 0;          ///< MACs actually executed
};

struct SimResult {
    std::vector<EventRecord> records;
    double total_harvested_mj = 0.0;  ///< gross EH energy over the run
    double duration_s = 0.0;
    /// Inference deadline the run was simulated under (copied from
    /// SimConfig::deadline_s); infinity when the scenario had no deadline.
    double deadline_s = std::numeric_limits<double>::infinity();
    /// Power failures (brown-outs below StorageConfig::death_threshold_mj or
    /// failed checkpoint commits) suffered mid-inference. Always 0 when the
    /// failure model is disabled (SimConfig::recovery.enabled == false).
    int deaths = 0;
    /// Energy spent purely on surviving failures: checkpoint commit writes
    /// plus restore costs at reboot, mJ. Not part of any event's
    /// energy_spent_mj — it is runtime overhead, not inference work.
    double recovery_energy_mj = 0.0;
    /// Forward progress thrown away by deaths: MACs of execution units whose
    /// results did not survive a failure and had to be recomputed.
    std::int64_t wasted_macs = 0;
    /// Arrivals rejected because the bounded request queue was full
    /// (SimConfig::queue_capacity). Always 0 when the run has no queue —
    /// arrivals lost while busy then count as plain misses, as they always
    /// have.
    int dropped = 0;
    /// Requests still waiting in the queue — plus the executing one, if any
    /// — when the trace ended. Like drops they produced no result, so
    /// missed_count() (= total - processed) includes them; the conservation
    /// law is total_events == processed_count() + missed_count() with
    /// missed_count() decomposing into dropped + in_flight + expired
    /// (deadline/energy losses, the only ones the policy's observe_missed()
    /// hook sees besides drops). tests/test_arrivals.cpp pins it.
    int in_flight = 0;

    [[nodiscard]] int total_events() const {
        return static_cast<int>(records.size());
    }
    [[nodiscard]] int processed_count() const;
    [[nodiscard]] int missed_count() const;
    [[nodiscard]] int correct_count() const;

    /// Paper Eq. 1: correctly processed interesting events per harvested mJ.
    [[nodiscard]] double iepmj() const;

    /// Mean accuracy over all N events (missed events count 0).
    [[nodiscard]] double accuracy_all_events() const;

    /// Mean accuracy over processed events only.
    [[nodiscard]] double accuracy_processed() const;

    /// Mean per-event latency (arrival -> result) over processed events, s.
    [[nodiscard]] double mean_event_latency_s() const;

    /// Exact nearest-rank percentile of per-event latency (arrival ->
    /// result, i.e. queueing sojourn + execution) over processed events:
    /// q = 0.5 is the median, 0.95/0.99 the tail columns. 0.0 when no event
    /// was processed (mirrors mean_event_latency_s()).
    [[nodiscard]] double latency_percentile_s(double q) const;

    /// Mean per-inference latency (execution start -> result), s.
    [[nodiscard]] double mean_inference_latency_s() const;

    /// Mean executed MACs per processed event (the paper's per-inference
    /// latency proxy in Fig. 6).
    [[nodiscard]] double mean_inference_macs() const;

    /// Events that ended at each exit (length = num_exits).
    [[nodiscard]] std::vector<int> exit_histogram(int num_exits) const;

    /// Total energy consumed by inference, mJ.
    [[nodiscard]] double total_consumed_mj() const;

    /// Fraction of events (over all N) whose result was not produced within
    /// `deadline` seconds of arrival: processed-but-late events and events
    /// that produced no result at all both count as misses. An infinite
    /// deadline is never missed, so the rate is 0.0. Evaluating different
    /// thresholds on the same result is monotone: a tighter deadline can
    /// only raise the rate.
    [[nodiscard]] double deadline_miss_rate(double deadline) const;

    /// deadline_miss_rate() at the deadline the run was simulated under.
    [[nodiscard]] double deadline_miss_rate() const {
        return deadline_miss_rate(deadline_s);
    }

    /// Eq. 5 invariant: at no prefix of the event sequence does cumulative
    /// consumption exceed cumulative harvest plus the initial buffer.
    [[nodiscard]] bool energy_feasible(double initial_buffer_mj) const;
};

}  // namespace imx::sim

#endif  // IMX_SIM_METRICS_HPP
