#include "sim/metrics.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace imx::sim {

int SimResult::processed_count() const {
    int n = 0;
    for (const auto& r : records) n += r.processed ? 1 : 0;
    return n;
}

int SimResult::missed_count() const {
    return total_events() - processed_count();
}

int SimResult::correct_count() const {
    int n = 0;
    for (const auto& r : records) n += (r.processed && r.correct) ? 1 : 0;
    return n;
}

double SimResult::iepmj() const {
    IMX_EXPECTS(total_harvested_mj > 0.0);
    return static_cast<double>(correct_count()) / total_harvested_mj;
}

double SimResult::accuracy_all_events() const {
    if (records.empty()) return 0.0;
    return static_cast<double>(correct_count()) /
           static_cast<double>(records.size());
}

double SimResult::accuracy_processed() const {
    const int processed = processed_count();
    if (processed == 0) return 0.0;
    return static_cast<double>(correct_count()) / static_cast<double>(processed);
}

double SimResult::mean_event_latency_s() const {
    double sum = 0.0;
    int n = 0;
    for (const auto& r : records) {
        if (!r.processed) continue;
        IMX_ASSERT(r.completion_time_s >= r.arrival_time_s);
        sum += r.completion_time_s - r.arrival_time_s;
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

double SimResult::latency_percentile_s(double q) const {
    std::vector<double> latencies;
    latencies.reserve(records.size());
    for (const auto& r : records) {
        if (!r.processed) continue;
        IMX_ASSERT(r.completion_time_s >= r.arrival_time_s);
        latencies.push_back(r.completion_time_s - r.arrival_time_s);
    }
    if (latencies.empty()) return 0.0;
    std::sort(latencies.begin(), latencies.end());
    return util::percentile(latencies, q);
}

double SimResult::mean_inference_latency_s() const {
    double sum = 0.0;
    int n = 0;
    for (const auto& r : records) {
        if (!r.processed) continue;
        sum += r.completion_time_s - r.inference_start_s;
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

double SimResult::mean_inference_macs() const {
    double sum = 0.0;
    int n = 0;
    for (const auto& r : records) {
        if (!r.processed) continue;
        sum += static_cast<double>(r.macs);
        ++n;
    }
    return n == 0 ? 0.0 : sum / n;
}

std::vector<int> SimResult::exit_histogram(int num_exits) const {
    IMX_EXPECTS(num_exits > 0);
    std::vector<int> hist(static_cast<std::size_t>(num_exits), 0);
    for (const auto& r : records) {
        if (!r.processed) continue;
        IMX_EXPECTS(r.exit_taken >= 0 && r.exit_taken < num_exits);
        ++hist[static_cast<std::size_t>(r.exit_taken)];
    }
    return hist;
}

double SimResult::deadline_miss_rate(double deadline) const {
    IMX_EXPECTS(deadline > 0.0);
    if (records.empty()) return 0.0;
    if (deadline == std::numeric_limits<double>::infinity()) return 0.0;
    int missed = 0;
    for (const auto& r : records) {
        const bool on_time =
            r.processed && r.completion_time_s - r.arrival_time_s <= deadline;
        missed += on_time ? 0 : 1;
    }
    return static_cast<double>(missed) / static_cast<double>(records.size());
}

double SimResult::total_consumed_mj() const {
    double sum = 0.0;
    for (const auto& r : records) sum += r.energy_spent_mj;
    return sum;
}

bool SimResult::energy_feasible(double initial_buffer_mj) const {
    // Records are in arrival order; consumption is attributed at completion.
    // A conservative prefix check: cumulative spend through event j must not
    // exceed the total harvest plus the initial buffer.
    double spent = 0.0;
    for (const auto& r : records) {
        spent += r.energy_spent_mj;
        if (spent > total_harvested_mj + initial_buffer_mj + 1e-9) return false;
    }
    return true;
}

}  // namespace imx::sim
