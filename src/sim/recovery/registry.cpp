// Thin wrapper over util::Registry<RegistryEntry>: the public free
// functions, their error messages, and the registered-name listing are
// byte-identical to the historical hand-rolled registry.
#include "sim/recovery/registry.hpp"

#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"
#include "util/registry.hpp"

namespace imx::sim {

namespace {

class RestartStrategy final : public RecoveryStrategy {
public:
    double commit_cost_mj() const override { return 0.0; }
    int surviving_units(int) const override { return 0; }
    double restore_cost_mj(int) const override { return 0.0; }
};

class CheckpointStrategy final : public RecoveryStrategy {
public:
    explicit CheckpointStrategy(const RecoveryConfig& config)
        : write_mj_(config.checkpoint_energy_mj),
          restore_mj_(config.restore_energy_mj) {}
    double commit_cost_mj() const override { return write_mj_; }
    int surviving_units(int committed) const override { return committed; }
    double restore_cost_mj(int) const override { return restore_mj_; }

private:
    double write_mj_;
    double restore_mj_;
};

class CheckpointFreeStrategy final : public RecoveryStrategy {
public:
    explicit CheckpointFreeStrategy(const RecoveryConfig& config)
        : penalty_mj_(config.restore_penalty_mj) {}
    double commit_cost_mj() const override { return 0.0; }
    int surviving_units(int committed) const override { return committed; }
    double restore_cost_mj(int surviving) const override {
        return penalty_mj_ * surviving;
    }

private:
    double penalty_mj_;
};

struct RegistryEntry {
    RecoveryFactory factory;
    std::string description;
};

/// The registry instance, seeded with built-ins on first use — no
/// static-init-order or dead-translation-unit hazards.
util::Registry<RegistryEntry>& registry() {
    static util::Registry<RegistryEntry> instance("recovery strategy");
    static const bool seeded = [] {
        instance.add(
            "restart",
            {[](const RecoveryConfig&) {
                 return std::make_unique<RestartStrategy>();
             },
             "lose all in-flight progress on a power failure (free)"});
        instance.add(
            "checkpoint",
            {[](const RecoveryConfig& config) {
                 return std::make_unique<CheckpointStrategy>(config);
             },
             "NVM checkpoint per unit: checkpoint_mj per commit, restore_mj "
             "at reboot"});
        instance.add(
            "checkpoint-free",
            {[](const RecoveryConfig& config) {
                 return std::make_unique<CheckpointFreeStrategy>(config);
             },
             "progress preserved at zero write cost; restore_penalty_mj per "
             "surviving unit at reboot"});
        return true;
    }();
    (void)seeded;
    return instance;
}

}  // namespace

std::unique_ptr<RecoveryStrategy> make_recovery_strategy(
    const std::string& name, const RecoveryConfig& config) {
    // Cost parameters are validated here, not per strategy: a negative cost
    // would silently *refund* energy on every commit or reboot.
    if (config.checkpoint_energy_mj < 0.0 || config.restore_energy_mj < 0.0 ||
        config.restore_penalty_mj < 0.0 || config.active_power_mw < 0.0) {
        throw std::invalid_argument(
            "recovery cost parameters must be non-negative");
    }
    const RecoveryFactory factory =
        registry().read(name, [](const RegistryEntry& entry) {
            return entry.factory;
        });
    auto strategy = factory(config);
    IMX_EXPECTS(strategy != nullptr);
    return strategy;
}

void register_recovery_strategy(const std::string& name,
                                RecoveryFactory factory,
                                const std::string& description) {
    IMX_EXPECTS(factory != nullptr);
    registry().add(name, {std::move(factory), description});
}

bool has_recovery_strategy(const std::string& name) {
    return registry().contains(name);
}

std::vector<std::string> recovery_strategy_names() {
    return registry().names();
}

std::string recovery_strategy_description(const std::string& name) {
    return registry().read(
        name, [](const RegistryEntry& entry) { return entry.description; });
}

}  // namespace imx::sim
