#include "sim/recovery/registry.hpp"

#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace imx::sim {

namespace {

class RestartStrategy final : public RecoveryStrategy {
public:
    double commit_cost_mj() const override { return 0.0; }
    int surviving_units(int) const override { return 0; }
    double restore_cost_mj(int) const override { return 0.0; }
};

class CheckpointStrategy final : public RecoveryStrategy {
public:
    explicit CheckpointStrategy(const RecoveryConfig& config)
        : write_mj_(config.checkpoint_energy_mj),
          restore_mj_(config.restore_energy_mj) {}
    double commit_cost_mj() const override { return write_mj_; }
    int surviving_units(int committed) const override { return committed; }
    double restore_cost_mj(int) const override { return restore_mj_; }

private:
    double write_mj_;
    double restore_mj_;
};

class CheckpointFreeStrategy final : public RecoveryStrategy {
public:
    explicit CheckpointFreeStrategy(const RecoveryConfig& config)
        : penalty_mj_(config.restore_penalty_mj) {}
    double commit_cost_mj() const override { return 0.0; }
    int surviving_units(int committed) const override { return committed; }
    double restore_cost_mj(int surviving) const override {
        return penalty_mj_ * surviving;
    }

private:
    double penalty_mj_;
};

struct RegistryEntry {
    RecoveryFactory factory;
    std::string description;
};

std::mutex& registry_mutex() {
    static std::mutex mutex;
    return mutex;
}

/// The registry map. An ordered map so recovery_strategy_names() is sorted
/// without a separate pass. Built-ins are seeded on first use — no
/// static-init-order or dead-translation-unit hazards.
std::map<std::string, RegistryEntry>& registry_locked() {
    static std::map<std::string, RegistryEntry> entries = [] {
        std::map<std::string, RegistryEntry> builtins;
        builtins["restart"] = {
            [](const RecoveryConfig&) {
                return std::make_unique<RestartStrategy>();
            },
            "lose all in-flight progress on a power failure (free)"};
        builtins["checkpoint"] = {
            [](const RecoveryConfig& config) {
                return std::make_unique<CheckpointStrategy>(config);
            },
            "NVM checkpoint per unit: checkpoint_mj per commit, restore_mj "
            "at reboot"};
        builtins["checkpoint-free"] = {
            [](const RecoveryConfig& config) {
                return std::make_unique<CheckpointFreeStrategy>(config);
            },
            "progress preserved at zero write cost; restore_penalty_mj per "
            "surviving unit at reboot"};
        return builtins;
    }();
    return entries;
}

[[noreturn]] void unknown_strategy(
    const std::string& name,
    const std::map<std::string, RegistryEntry>& entries) {
    std::string known;
    for (const auto& [key, unused] : entries) {
        (void)unused;
        if (!known.empty()) known += ", ";
        known += key;
    }
    throw std::invalid_argument("unknown recovery strategy '" + name +
                                "' (registered: " + known + ")");
}

}  // namespace

std::unique_ptr<RecoveryStrategy> make_recovery_strategy(
    const std::string& name, const RecoveryConfig& config) {
    // Cost parameters are validated here, not per strategy: a negative cost
    // would silently *refund* energy on every commit or reboot.
    if (config.checkpoint_energy_mj < 0.0 || config.restore_energy_mj < 0.0 ||
        config.restore_penalty_mj < 0.0 || config.active_power_mw < 0.0) {
        throw std::invalid_argument(
            "recovery cost parameters must be non-negative");
    }
    RecoveryFactory factory;
    {
        std::lock_guard<std::mutex> lock(registry_mutex());
        const auto& entries = registry_locked();
        const auto it = entries.find(name);
        if (it == entries.end()) unknown_strategy(name, entries);
        factory = it->second.factory;
    }
    auto strategy = factory(config);
    IMX_EXPECTS(strategy != nullptr);
    return strategy;
}

void register_recovery_strategy(const std::string& name,
                                RecoveryFactory factory,
                                const std::string& description) {
    IMX_EXPECTS(!name.empty());
    IMX_EXPECTS(factory != nullptr);
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry_locked()[name] = {std::move(factory), description};
}

bool has_recovery_strategy(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    return registry_locked().count(name) > 0;
}

std::vector<std::string> recovery_strategy_names() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    std::vector<std::string> names;
    for (const auto& [key, unused] : registry_locked()) {
        (void)unused;
        names.push_back(key);
    }
    return names;
}

std::string recovery_strategy_description(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto& entries = registry_locked();
    const auto it = entries.find(name);
    if (it == entries.end()) unknown_strategy(name, entries);
    return it->second.description;
}

}  // namespace imx::sim
