/// \file
/// \brief Power-failure and recovery model of the intermittent runtime.
///
/// The recovery-enabled simulator executes a committed exit as a sequence of
/// *units* (per-layer or per-exit checkpoints of the exit's path). Each unit
/// is pre-paid and atomic — it starts only once its full energy cost is
/// buffered, exactly like the paper's pre-buffered runtime, so execution
/// itself never browns out. Between units the powered device idles, drawing
/// leakage plus RecoveryConfig::active_power_mw; when the buffer sags below
/// energy::StorageConfig::death_threshold_mj the run *dies*: committed
/// progress survives (or not) according to the RecoveryStrategy, the device
/// charges back to the turn-on threshold, pays the reboot/restore cost, and
/// resumes from the last surviving unit.
///
/// Built-in strategies (registry.hpp):
///  * "restart"         — SONIC's null hypothesis: all progress lost, free.
///  * "checkpoint"      — NVM checkpoint per unit (write cost per commit,
///                        flat restore cost at reboot) [arxiv 1810.07751].
///  * "checkpoint-free" — state held in retentive memory: zero write cost,
///                        per-surviving-unit restore penalty
///                        [arxiv 2503.06663].
#ifndef IMX_SIM_RECOVERY_STRATEGY_HPP
#define IMX_SIM_RECOVERY_STRATEGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/inference_model.hpp"

namespace imx::sim {

/// \brief How densely the execution plan is cut into commit units.
enum class CheckpointGranularity {
    kPerLayer,  ///< one unit per network layer on the exit's path
    kPerExit,   ///< one unit per intermediate-exit trunk junction
};

/// \brief Parse "layer" / "exit".
/// \throws std::invalid_argument on anything else.
CheckpointGranularity parse_granularity(const std::string& text);

/// \brief The inverse of parse_granularity().
std::string granularity_name(CheckpointGranularity granularity);

/// \brief All knobs of the failure/recovery model (sim::SimConfig::recovery).
/// The death threshold itself lives with the other power thresholds in
/// energy::StorageConfig::death_threshold_mj.
struct RecoveryConfig {
    /// Master switch. Off (the default) keeps the simulator on the historical
    /// pre-buffered atomic path, bit for bit.
    bool enabled = false;
    /// Recovery-strategy registry name (sim/recovery/registry.hpp).
    std::string strategy = "restart";
    CheckpointGranularity granularity = CheckpointGranularity::kPerLayer;
    /// "checkpoint": NVM write cost charged as each unit commits.
    double checkpoint_energy_mj = 0.02;
    /// "checkpoint": flat restore cost charged at reboot.
    double restore_energy_mj = 0.01;
    /// "checkpoint-free": restore penalty per surviving unit at reboot.
    double restore_penalty_mj = 0.002;
    /// Static draw of the powered device while it is stalled mid-inference
    /// waiting to afford its next unit. This is what drags the buffer below
    /// the death threshold when harvesting pauses; 0 leaves leakage as the
    /// only downward force.
    double active_power_mw = 0.0;
};

/// \brief Per-death decisions of one recovery strategy. Implementations must
/// be deterministic and thread-safe-by-confinement (one instance per run).
class RecoveryStrategy {
public:
    virtual ~RecoveryStrategy() = default;
    RecoveryStrategy() = default;
    RecoveryStrategy(const RecoveryStrategy&) = delete;
    RecoveryStrategy& operator=(const RecoveryStrategy&) = delete;

    /// \brief Energy charged as one execution unit commits (the NVM
    /// checkpoint write), mJ. Charged per unit, alongside its compute cost.
    [[nodiscard]] virtual double commit_cost_mj() const = 0;

    /// \brief How many of `committed` finished units survive a power
    /// failure. Must be in [0, committed].
    [[nodiscard]] virtual int surviving_units(int committed) const = 0;

    /// \brief Energy charged at reboot (on top of the MCU wakeup cost)
    /// before execution resumes, mJ, given the surviving unit count.
    [[nodiscard]] virtual double restore_cost_mj(int surviving) const = 0;
};

/// \brief Cut the work to advance from `from_exit` (-1 = from scratch) to
/// `to_exit` into commit units under the given granularity.
///
/// kPerLayer delegates to InferenceModel::segment_macs(); kPerExit places a
/// boundary where the target's path passes each intermediate exit's trunk
/// junction, derived from incremental_macs() alone so any model supports it.
/// Zero-MAC segments are dropped; the result is non-empty and sums to
/// incremental_macs(from_exit, to_exit).
std::vector<std::int64_t> recovery_units(const InferenceModel& model,
                                         int from_exit, int to_exit,
                                         CheckpointGranularity granularity);

/// \brief recovery_units() into a caller-owned buffer (replaced, capacity
/// reused) — the allocation-free path the simulator takes through
/// sim::ScenarioWorkspace. Produces exactly the values recovery_units()
/// would.
void recovery_units_into(const InferenceModel& model, int from_exit,
                         int to_exit, CheckpointGranularity granularity,
                         std::vector<std::int64_t>& units);

}  // namespace imx::sim

#endif  // IMX_SIM_RECOVERY_STRATEGY_HPP
