#include "sim/recovery/strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace imx::sim {

CheckpointGranularity parse_granularity(const std::string& text) {
    if (text == "layer") return CheckpointGranularity::kPerLayer;
    if (text == "exit") return CheckpointGranularity::kPerExit;
    throw std::invalid_argument("unknown checkpoint granularity '" + text +
                                "' (expected layer or exit)");
}

std::string granularity_name(CheckpointGranularity granularity) {
    return granularity == CheckpointGranularity::kPerLayer ? "layer" : "exit";
}

std::vector<std::int64_t> recovery_units(const InferenceModel& model,
                                         int from_exit, int to_exit,
                                         CheckpointGranularity granularity) {
    std::vector<std::int64_t> units;
    recovery_units_into(model, from_exit, to_exit, granularity, units);
    return units;
}

void recovery_units_into(const InferenceModel& model, int from_exit,
                         int to_exit, CheckpointGranularity granularity,
                         std::vector<std::int64_t>& units) {
    IMX_EXPECTS(from_exit >= -1);
    IMX_EXPECTS(to_exit > from_exit && to_exit < model.num_exits());
    const std::int64_t total = model.incremental_macs(from_exit, to_exit);

    units.clear();
    if (granularity == CheckpointGranularity::kPerLayer) {
        std::int64_t sum = 0;
        for (const std::int64_t macs : model.segment_macs(from_exit, to_exit)) {
            IMX_EXPECTS(macs >= 0);
            sum += macs;
            if (macs > 0) units.push_back(macs);
        }
        IMX_EXPECTS(sum == total);
    } else {
        // Boundary after the MACs of to_exit's path that exit k's path has
        // already covered; covered(k) is non-decreasing in k for a
        // chain-trunk network, but clamp anyway so an exotic model cannot
        // produce a negative unit.
        const auto covered = [&](int k) {
            if (k < 0) return std::int64_t{0};
            return total - model.incremental_macs(k, to_exit);
        };
        const std::int64_t base = covered(from_exit);
        std::int64_t done = 0;
        for (int k = from_exit + 1; k < to_exit; ++k) {
            const std::int64_t boundary =
                std::clamp(covered(k) - base, std::int64_t{0}, total);
            if (boundary > done) {
                units.push_back(boundary - done);
                done = boundary;
            }
        }
        if (total > done) units.push_back(total - done);
    }
    // A degenerate plan (total == 0) still needs one unit so the execution
    // machinery has a step to complete and evaluate on.
    if (units.empty()) units.push_back(total);
}

}  // namespace imx::sim
