/// \file
/// \brief Name-based recovery-strategy registry: string -> factory, so spec
/// files and the exp::recovery_patch() axis can select failure-recovery
/// semantics without compile-time wiring — mirroring sim/policies/registry
/// and energy/trace_registry.
///
/// Built-in names (always registered; docs/recovery.md documents each):
///  * "restart"         — all committed progress lost on a power failure.
///  * "checkpoint"      — every committed unit persists to NVM
///                        (RecoveryConfig::checkpoint_energy_mj per commit,
///                        restore_energy_mj flat at reboot).
///  * "checkpoint-free" — progress preserved at zero write cost;
///                        restore_penalty_mj per surviving unit at reboot.
///
/// Custom strategies register at runtime through
/// register_recovery_strategy(); see the worked example in docs/recovery.md.
/// The registry is mutex-guarded, so make_recovery_strategy() is safe from
/// sweep worker threads.
#ifndef IMX_SIM_RECOVERY_REGISTRY_HPP
#define IMX_SIM_RECOVERY_REGISTRY_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/recovery/strategy.hpp"

namespace imx::sim {

/// \brief Factory signature: build a fresh strategy for one scenario run.
using RecoveryFactory =
    std::function<std::unique_ptr<RecoveryStrategy>(const RecoveryConfig&)>;

/// \brief Construct a registered recovery strategy by name.
/// \param name a built-in or register_recovery_strategy()'d name.
/// \param config the run's recovery configuration (cost parameters).
/// \return a fresh strategy instance.
/// \throws std::invalid_argument for unknown names (the message lists every
///   registered name) or negative cost parameters.
std::unique_ptr<RecoveryStrategy> make_recovery_strategy(
    const std::string& name, const RecoveryConfig& config = {});

/// \brief Register (or replace) a named recovery-strategy factory.
/// \param name the registry key; must be non-empty.
/// \param factory invoked by make_recovery_strategy(); must not return
///   nullptr.
/// \param description one-line summary shown by `imx_sweep --list`.
void register_recovery_strategy(const std::string& name,
                                RecoveryFactory factory,
                                const std::string& description = "");

/// \brief Whether `name` is currently registered.
[[nodiscard]] bool has_recovery_strategy(const std::string& name);

/// \brief Every registered name, sorted (built-ins plus custom ones).
[[nodiscard]] std::vector<std::string> recovery_strategy_names();

/// \brief One-line description of a registered strategy (for --list).
/// \throws std::invalid_argument for unknown names.
[[nodiscard]] std::string recovery_strategy_description(
    const std::string& name);

}  // namespace imx::sim

#endif  // IMX_SIM_RECOVERY_REGISTRY_HPP
