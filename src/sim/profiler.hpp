/// \file
/// \brief Zero-overhead-when-off phase profiler for the simulator hot path.
///
/// The sweep engine's unit of work is one simulator step, executed billions
/// of times per grid; attributing wall time to one scenarios/sec scalar
/// says nothing about *where* a regression lives. The Profiler splits the
/// inner loop into five phases (docs/profiling.md has the full taxonomy):
///
///  * harvest   — per-step energy income: trace lookup, storage integration,
///                charge-rate EMA (including the batched drain loops).
///  * queue     — arrival scan, bounded-queue admission/pickup, deadline
///                drops.
///  * policy    — ExitPolicy::select_exit / continue_inference decisions.
///  * inference — execution bookkeeping: segment starts/finishes, hops,
///                model evaluation, checkpointed compute steps.
///  * commit    — recovery-mode unit machinery: commit writes, deaths,
///                reboots/restores, stall drain.
///
/// Off is the default and costs exactly one null-pointer test per hook
/// (`sim::ScopedPhase` reads no clock and touches no counter when
/// constructed with a null profiler — tests/test_hotpath.cpp pins both the
/// triviality properties and bitwise output equality profiler-on vs off).
/// On, each hook adds two steady_clock reads; the per-phase shares remain
/// meaningful because every phase pays the same overhead.
///
/// Aggregation: each sweep worker owns one Profiler (via its
/// ScenarioWorkspace); the runner merge()s them after the grid and the exp
/// layer renders the table / BENCH_profile.json.
#ifndef IMX_SIM_PROFILER_HPP
#define IMX_SIM_PROFILER_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

namespace imx::sim {

class Profiler {
public:
    enum class Phase : int {
        kHarvest = 0,
        kQueue,
        kPolicy,
        kInference,
        kCommit,
    };
    static constexpr int kNumPhases = 5;

    struct PhaseStats {
        std::uint64_t calls = 0;  ///< hook entries (steps, decisions, ...)
        std::uint64_t ns = 0;     ///< wall time inside the phase
    };

    /// \brief Record `calls` entries and `ns` nanoseconds against a phase.
    void add(Phase phase, std::uint64_t calls, std::uint64_t ns) noexcept {
        PhaseStats& s = stats_[static_cast<std::size_t>(phase)];
        s.calls += calls;
        s.ns += ns;
    }

    /// \brief Count one completed Simulator::run.
    void count_run() noexcept { ++runs_; }

    /// \brief Count one completed scenario (the sweep's throughput unit).
    void count_scenario() noexcept { ++scenarios_; }

    /// \brief Fold another profiler (e.g. a worker's) into this one.
    void merge(const Profiler& other) noexcept;

    [[nodiscard]] const PhaseStats& stats(Phase phase) const {
        return stats_[static_cast<std::size_t>(phase)];
    }
    [[nodiscard]] std::uint64_t runs() const { return runs_; }
    [[nodiscard]] std::uint64_t scenarios() const { return scenarios_; }
    [[nodiscard]] std::uint64_t total_ns() const;

    /// \brief Stable machine name of a phase ("harvest", "queue", ...).
    [[nodiscard]] static const char* phase_name(Phase phase);

    /// \brief Human-readable per-phase breakdown (the --profile table).
    [[nodiscard]] std::string table() const;

    /// \brief Machine-readable breakdown (the BENCH_profile.json payload,
    /// minus the envelope the exp layer adds around it): an object with
    /// "runs", "scenarios", and per-phase {"calls", "ns", "share"} entries.
    [[nodiscard]] std::string json() const;

private:
    std::array<PhaseStats, kNumPhases> stats_{};
    std::uint64_t runs_ = 0;
    std::uint64_t scenarios_ = 0;
};

/// \brief RAII phase timer. With a null profiler the constructor and
/// destructor reduce to one pointer test each — no clock read, no stores —
/// which is what keeps the default (profiling off) path free.
class ScopedPhase {
public:
    ScopedPhase(Profiler* profiler, Profiler::Phase phase) noexcept
        : profiler_(profiler), phase_(phase) {
        if (profiler_ != nullptr) {
            start_ = std::chrono::steady_clock::now();
        }
    }

    ~ScopedPhase() {
        if (profiler_ != nullptr) {
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - start_)
                                .count();
            profiler_->add(phase_, 1, static_cast<std::uint64_t>(ns));
        }
    }

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

private:
    Profiler* profiler_;
    Profiler::Phase phase_;
    std::chrono::steady_clock::time_point start_{};
};

}  // namespace imx::sim

#endif  // IMX_SIM_PROFILER_HPP
