#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace imx::sim {

namespace {

/// In-flight work for one event.
struct Job {
    int event_id = -1;
    double arrival_s = 0.0;
    // Multi-exit bookkeeping.
    bool committed = false;
    int committed_exit = -1;
    int reached_exit = -1;
    EnergyState state_at_selection{};
    // Execution bookkeeping (both modes).
    bool executing = false;
    double exec_finish_s = 0.0;   ///< for atomic multi-exit segments
    std::int64_t remaining_macs = 0;  ///< for checkpointed mode
    double inference_start_s = -1.0;
    double energy_spent_mj = 0.0;
    std::int64_t macs_done = 0;
    int hops = 0;
};

}  // namespace

Simulator::Simulator(const energy::PowerTrace& trace, const SimConfig& config)
    : trace_(&trace), config_(config) {
    IMX_EXPECTS(config.dt_s > 0.0);
    IMX_EXPECTS(config.charge_rate_ema_alpha > 0.0 &&
                config.charge_rate_ema_alpha <= 1.0);
}

SimResult Simulator::run(const std::vector<Event>& events,
                         InferenceModel& model, ExitPolicy& policy) {
    IMX_EXPECTS(std::is_sorted(events.begin(), events.end(),
                               [](const Event& a, const Event& b) {
                                   return a.time_s < b.time_s;
                               }));
    if (config_.mode == ExecutionMode::kCheckpointed) {
        IMX_EXPECTS(model.num_exits() == 1);
    }

    const mcu::McuModel device(config_.mcu);
    energy::EnergyStorage storage(config_.storage);
    util::Ema charge_rate(config_.charge_rate_ema_alpha);
    charge_rate.update(0.0);

    SimResult result;
    result.records.resize(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        result.records[i].event_id = events[i].id;
        result.records[i].arrival_time_s = events[i].time_s;
    }
    result.duration_s = trace_->duration();
    result.total_harvested_mj = trace_->total_energy();
    result.deadline_s = config_.deadline_s;

    const double dt = config_.dt_s;
    std::size_t next_event = 0;
    bool busy = false;
    Job job;
    bool device_on = false;  // checkpointed-mode power state (hysteresis)

    auto energy_state = [&](double now) {
        EnergyState s;
        s.level_mj = storage.level();
        s.capacity_mj = storage.capacity();
        s.charge_rate_mw = charge_rate.value();
        s.energy_per_mmac_mj = config_.mcu.energy_per_mmac_mj;
        // Remaining time before the in-flight event's completion deadline;
        // infinity when the run has no deadline.
        if (config_.deadline_s !=
            std::numeric_limits<double>::infinity()) {
            s.deadline_slack_s =
                std::max(0.0, job.arrival_s + config_.deadline_s - now);
        }
        return s;
    };

    auto finish_event = [&](EventRecord& record, const ExitOutcome& outcome,
                            double now) {
        record.processed = true;
        record.correct = outcome.correct;
        record.exit_taken = job.reached_exit;
        record.hops = job.hops;
        record.completion_time_s = now;
        record.inference_start_s = job.inference_start_s;
        record.energy_spent_mj = job.energy_spent_mj;
        record.macs = job.macs_done;
        // An infinite deadline is always met; otherwise compare the result's
        // completion time against the event's own deadline.
        const bool deadline_met = now - job.arrival_s <= config_.deadline_s;
        policy.observe(job.state_at_selection, job.reached_exit,
                       outcome.correct, deadline_met);
        busy = false;
    };

    const double duration = trace_->duration();
    for (double now = 0.0; now < duration; now += dt) {
        // 1. Harvest this step; track the net charging rate the runtime sees.
        const double power = trace_->power_at(now);
        const double stored = storage.harvest(power, dt);
        charge_rate.update(std::max(stored, 0.0) / dt);

        // 2. Event arrivals: first arrival is picked up if idle; arrivals
        // while busy are lost.
        while (next_event < events.size() &&
               events[next_event].time_s < now + dt) {
            const Event& ev = events[next_event];
            EventRecord& record = result.records[next_event];
            ++next_event;
            if (busy) {
                policy.observe_missed();
                (void)record;  // remains processed=false
                continue;
            }
            busy = true;
            job = Job{};
            job.event_id = ev.id;
            job.arrival_s = ev.time_s;
            if (config_.mode == ExecutionMode::kCheckpointed) {
                job.remaining_macs = model.exit_macs(0);
                job.reached_exit = 0;
            }
        }

        if (!busy) continue;
        EventRecord& record =
            result.records[static_cast<std::size_t>(job.event_id)];

        // 3. Deadline check (only before execution starts): a waiting job
        // past its start deadline — or past its completion deadline, which
        // it can now only miss — is dropped so the device frees up.
        if (!job.executing && job.inference_start_s < 0.0 &&
            now - job.arrival_s >
                std::min(config_.max_wait_s, config_.deadline_s)) {
            policy.observe_missed();
            busy = false;
            continue;
        }

        if (config_.mode == ExecutionMode::kMultiExit) {
            // 3a. Finish an atomic execution segment.
            if (job.executing) {
                if (now + dt >= job.exec_finish_s) {
                    job.executing = false;
                    const ExitOutcome outcome =
                        model.evaluate(job.event_id, job.reached_exit);
                    const int next_exit = job.reached_exit + 1;
                    bool advanced = false;
                    if (next_exit < model.num_exits() &&
                        policy.continue_inference(energy_state(now), model,
                                                  job.reached_exit,
                                                  outcome.confidence)) {
                        const std::int64_t inc_macs =
                            model.incremental_macs(job.reached_exit, next_exit);
                        const double cost =
                            macs_energy_mj(energy_state(now), inc_macs);
                        if (storage.try_consume(cost)) {
                            job.energy_spent_mj += cost;
                            job.macs_done += inc_macs;
                            job.reached_exit = next_exit;
                            ++job.hops;
                            job.executing = true;
                            job.exec_finish_s =
                                job.exec_finish_s + device.compute_time(inc_macs);
                            advanced = true;
                        }
                    }
                    if (!advanced) {
                        finish_event(record, outcome, job.exec_finish_s);
                    }
                }
                continue;
            }

            // 3b. Waiting: ask (or re-ask) the policy, then start when the
            // committed exit is affordable.
            if (!job.committed) {
                const EnergyState s = energy_state(now);
                const int choice = policy.select_exit(s, model);
                if (choice >= 0) {
                    IMX_EXPECTS(choice < model.num_exits());
                    job.committed = true;
                    job.committed_exit = choice;
                    job.state_at_selection = s;
                }
            }
            if (job.committed) {
                const std::int64_t macs = model.exit_macs(job.committed_exit);
                const double cost = macs_energy_mj(energy_state(now), macs) +
                                    config_.mcu.wakeup_energy_mj;
                if (storage.try_consume(cost)) {
                    job.energy_spent_mj += cost;
                    job.macs_done += macs;
                    job.reached_exit = job.committed_exit;
                    job.hops = 1;
                    // Execution can begin within the arrival step; the start
                    // time is never earlier than the arrival itself.
                    job.inference_start_s = std::max(now, job.arrival_s);
                    job.executing = true;
                    job.exec_finish_s = job.inference_start_s +
                                        config_.mcu.wakeup_time_s +
                                        device.compute_time(macs);
                }
            }
            continue;
        }

        // Checkpointed (baseline) mode -------------------------------------
        // Hysteresis power state.
        if (!device_on && storage.can_turn_on()) {
            device_on = true;
            if (!storage.try_consume(config_.mcu.wakeup_energy_mj)) {
                device_on = false;
            } else {
                job.energy_spent_mj += config_.mcu.wakeup_energy_mj;
            }
        }
        if (device_on && storage.must_turn_off()) device_on = false;
        if (!device_on) continue;

        // Execute up to one step of checkpointed compute.
        const auto step_macs = std::min<std::int64_t>(
            job.remaining_macs,
            static_cast<std::int64_t>(config_.mcu.mmacs_per_second * 1e6 * dt));
        const double step_cost = device.checkpointed_energy(step_macs);
        if (!storage.try_consume(step_cost)) {
            device_on = false;  // brown-out; progress kept at last checkpoint
            continue;
        }
        if (job.inference_start_s < 0.0) {
            job.inference_start_s = std::max(now, job.arrival_s);
        }
        job.energy_spent_mj += step_cost;
        job.macs_done += step_macs;
        job.remaining_macs -= step_macs;
        if (job.remaining_macs <= 0) {
            const ExitOutcome outcome = model.evaluate(job.event_id, 0);
            finish_event(record, outcome, now + dt);
        }
    }

    // Unfinished in-flight work at trace end counts as missed (no result).
    return result;
}

}  // namespace imx::sim
