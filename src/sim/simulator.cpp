#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/profiler.hpp"
#include "sim/recovery/registry.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace imx::sim {

namespace {

/// In-flight work for one event. The recovery unit plan is deliberately NOT
/// part of the job: it lives in a run-level buffer (reused through the
/// ScenarioWorkspace) so starting a job never heap-allocates.
struct Job {
    int event_id = -1;
    double arrival_s = 0.0;
    // Multi-exit bookkeeping.
    bool committed = false;
    int committed_exit = -1;
    int reached_exit = -1;
    EnergyState state_at_selection{};
    // Execution bookkeeping (both modes).
    bool executing = false;
    double exec_finish_s = 0.0;   ///< for atomic multi-exit segments
    std::int64_t remaining_macs = 0;  ///< for checkpointed mode
    double inference_start_s = -1.0;
    double energy_spent_mj = 0.0;
    std::int64_t macs_done = 0;
    int hops = 0;
    // Historical multi-exit path: the committed exit's start cost, computed
    // once at commit time. Both inputs (exit MACs, per-MMAC energy) are
    // constant while the job waits, and the expression is the same one the
    // step loop used to re-evaluate every step, so the value is bitwise
    // identical.
    std::int64_t pending_macs = 0;
    double pending_cost_mj = 0.0;
    // Recovery-mode bookkeeping (SimConfig::recovery.enabled only).
    int units_done = 0;  ///< units of the current plan committed so far
    int target_exit = -1;  ///< exit the current plan executes toward
    bool dead = false;  ///< powered off after a mid-inference death
};

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
}

}  // namespace

Simulator::Simulator(const energy::PowerTrace& trace, const SimConfig& config)
    : trace_(&trace),
      config_(config),
      trace_duration_s_(trace.duration()),
      trace_total_energy_mj_(trace.total_energy()) {
    IMX_EXPECTS(config.dt_s > 0.0);
    IMX_EXPECTS(config.charge_rate_ema_alpha > 0.0 &&
                config.charge_rate_ema_alpha <= 1.0);
    IMX_EXPECTS(config.queue_capacity >= 0);
    if (config.recovery.enabled) {
        // The failure model replaces the multi-exit execution path only; a
        // reboot waits for can_turn_on(), so the on threshold must sit at or
        // above the death threshold or the device would re-die instantly.
        IMX_EXPECTS(config.mode == ExecutionMode::kMultiExit);
        IMX_EXPECTS(config.storage.on_threshold_mj >=
                    config.storage.death_threshold_mj);
    }
}

SimResult Simulator::run(util::Span<const Event> events, InferenceModel& model,
                         ExitPolicy& policy, ScenarioWorkspace* workspace) {
    SimResult result;
    run_into(events, model, policy, result, workspace);
    return result;
}

void Simulator::run_into(util::Span<const Event> events, InferenceModel& model,
                         ExitPolicy& policy, SimResult& out,
                         ScenarioWorkspace* workspace) {
    IMX_EXPECTS(std::is_sorted(events.begin(), events.end(),
                               [](const Event& a, const Event& b) {
                                   return a.time_s < b.time_s;
                               }));
    if (config_.mode == ExecutionMode::kCheckpointed) {
        IMX_EXPECTS(model.num_exits() == 1);
    }

    const mcu::McuModel device(config_.mcu);
    energy::EnergyStorage storage(config_.storage);
    util::Ema charge_rate(config_.charge_rate_ema_alpha);
    charge_rate.update(0.0);

    // Failure model: constructed only when enabled, so the historical
    // execution path below stays untouched (and bit-identical) by default.
    std::unique_ptr<RecoveryStrategy> strategy;
    if (config_.recovery.enabled) {
        strategy =
            make_recovery_strategy(config_.recovery.strategy, config_.recovery);
    }

    ScenarioWorkspace* const ws = workspace;
    Profiler* const prof = ws != nullptr ? ws->profiler : nullptr;
    // Reset up front (not at exit) so an exception can never leave a stale
    // cursor for the next scenario that borrows this workspace.
    if (ws != nullptr) ws->arena.reset();

    SimResult& result = out;
    result.records.clear();
    result.records.resize(events.size());  // value-initialized records
    for (std::size_t i = 0; i < events.size(); ++i) {
        result.records[i].event_id = events[i].id;
        result.records[i].arrival_time_s = events[i].time_s;
    }
    result.duration_s = trace_duration_s_;
    result.total_harvested_mj = trace_total_energy_mj_;
    result.deadline_s = config_.deadline_s;
    result.deaths = 0;
    result.recovery_energy_mj = 0.0;
    result.wasted_macs = 0;
    result.dropped = 0;
    result.in_flight = 0;

    const double dt = config_.dt_s;
    const std::size_t num_events = events.size();
    std::size_t next_event = 0;
    bool busy = false;
    Job job;
    bool device_on = false;  // checkpointed-mode power state (hysteresis)

    // The start-deadline bound of steps 2b/3 — constant over the run.
    const double wait_limit = std::min(config_.max_wait_s, config_.deadline_s);

    // Bitwise-identical to macs_energy_mj(energy_state(now), macs): the
    // per-MMAC energy is a run constant, so the EnergyState the historical
    // code constructed to pass it along was pure overhead.
    auto macs_cost_mj = [this](std::int64_t macs) {
        return static_cast<double>(macs) / 1e6 * config_.mcu.energy_per_mmac_mj;
    };

    // Bounded FIFO request queue (indices into events/records), held as a
    // fixed-capacity ring: arena-backed per-worker scratch under a
    // workspace, a one-off local buffer otherwise. Never touched when
    // queue_capacity == 0 — the historical single-context model.
    const int cap = config_.queue_capacity;
    std::vector<std::size_t> queue_fallback;
    std::size_t* queue_slots = nullptr;
    if (cap > 0) {
        if (ws != nullptr) {
            queue_slots =
                ws->arena.allocate_array<std::size_t>(static_cast<std::size_t>(cap));
        } else {
            queue_fallback.resize(static_cast<std::size_t>(cap));
            queue_slots = queue_fallback.data();
        }
    }
    std::size_t queue_head = 0;
    int queue_count = 0;
    auto queue_push = [&](std::size_t index) {
        queue_slots[(queue_head + static_cast<std::size_t>(queue_count)) %
                    static_cast<std::size_t>(cap)] = index;
        ++queue_count;
    };
    auto queue_pop = [&]() {
        const std::size_t index = queue_slots[queue_head];
        queue_head = (queue_head + 1) % static_cast<std::size_t>(cap);
        --queue_count;
        return index;
    };

    // Run-level recovery unit plan (see Job). At most one job is in flight,
    // and every plan is rewritten via recovery_units_into() before use.
    std::vector<std::int64_t> units_fallback;
    std::vector<std::int64_t>& units =
        ws != nullptr ? ws->units : units_fallback;

    auto energy_state = [&](double now) {
        EnergyState s;
        s.level_mj = storage.level();
        s.capacity_mj = storage.capacity();
        s.charge_rate_mw = charge_rate.value();
        s.energy_per_mmac_mj = config_.mcu.energy_per_mmac_mj;
        s.queue_depth = queue_count;
        s.queue_backlog = cap > 0 ? static_cast<double>(queue_count) /
                                        static_cast<double>(cap)
                                  : 0.0;
        // Remaining time before the in-flight event's completion deadline;
        // infinity when the run has no deadline.
        if (config_.deadline_s !=
            std::numeric_limits<double>::infinity()) {
            s.deadline_slack_s =
                std::max(0.0, job.arrival_s + config_.deadline_s - now);
        }
        return s;
    };

    auto finish_event = [&](EventRecord& record, const ExitOutcome& outcome,
                            double now) {
        record.processed = true;
        record.correct = outcome.correct;
        record.exit_taken = job.reached_exit;
        record.hops = job.hops;
        record.completion_time_s = now;
        record.inference_start_s = job.inference_start_s;
        record.energy_spent_mj = job.energy_spent_mj;
        record.macs = job.macs_done;
        // An infinite deadline is always met; otherwise compare the result's
        // completion time against the event's own deadline.
        const bool deadline_met = now - job.arrival_s <= config_.deadline_s;
        policy.observe(job.state_at_selection, job.reached_exit,
                       outcome.correct, deadline_met);
        busy = false;
    };

    // -- Recovery-mode helpers (used only when a strategy is constructed) --

    // A death: wasted progress is whatever the strategy does not preserve
    // (plus the in-flight unit on a failed checkpoint commit). macs_done and
    // energy_spent_mj are *not* rolled back — they record work actually
    // executed, including work that later has to be redone.
    auto die = [&](bool lose_inflight_unit) {
        ++result.deaths;
        if (lose_inflight_unit) {
            result.wasted_macs += units[static_cast<std::size_t>(job.units_done)];
        }
        const int surviving = strategy->surviving_units(job.units_done);
        IMX_EXPECTS(surviving >= 0 && surviving <= job.units_done);
        for (int u = surviving; u < job.units_done; ++u) {
            result.wasted_macs += units[static_cast<std::size_t>(u)];
        }
        job.units_done = surviving;
        job.executing = false;
        job.dead = true;
    };

    // Pre-paid atomic unit start: the unit begins only once its full compute
    // energy (plus the one-off wakeup on the very first start) is buffered,
    // so execution itself can never brown out. The gate also requires the
    // checkpoint commit write to be affordable — a real runtime would not
    // start work it cannot persist — but the commit itself is charged at
    // completion, so income lost to leakage while the unit runs can still
    // (rarely) fail the write and kill the run.
    auto try_start_unit = [&](double now) {
        IMX_EXPECTS(job.units_done < static_cast<int>(units.size()));
        const std::int64_t unit_macs =
            units[static_cast<std::size_t>(job.units_done)];
        const bool first_start = job.inference_start_s < 0.0;
        const double cost =
            macs_cost_mj(unit_macs) +
            (first_start ? config_.mcu.wakeup_energy_mj : 0.0);
        if (storage.level() < cost + strategy->commit_cost_mj()) return false;
        if (!storage.try_consume(cost)) return false;
        job.energy_spent_mj += cost;
        job.macs_done += unit_macs;
        if (first_start) {
            job.inference_start_s = std::max(now, job.arrival_s);
            job.hops = 1;
            job.exec_finish_s = job.inference_start_s +
                                config_.mcu.wakeup_time_s +
                                device.compute_time(unit_macs);
        } else {
            // Seamless after a unit that completed this step (exec_finish_s
            // is still ahead of now); a fresh start after a stall or reboot.
            job.exec_finish_s = std::max(now, job.exec_finish_s) +
                                device.compute_time(unit_macs);
        }
        job.executing = true;
        return true;
    };

    // Event pickup: an arrival is picked up immediately if the device is
    // idle (and no older request waits ahead of it).
    auto start_job = [&](const Event& ev) {
        busy = true;
        job = Job{};
        job.event_id = ev.id;
        job.arrival_s = ev.time_s;
        if (config_.mode == ExecutionMode::kCheckpointed) {
            job.remaining_macs = model.exit_macs(0);
            job.reached_exit = 0;
        }
    };

    // Per-step energy income; track the net charging rate the runtime sees.
    auto harvest_step = [&](double now) {
        const double power = trace_->power_at(now);
        const double stored = storage.harvest(power, dt);
        charge_rate.update(std::max(stored, 0.0) / dt);
    };

    // One full simulation step — the historical loop body verbatim (with
    // `return` where it said `continue`), instrumented with phase scopes.
    auto full_step = [&](double now) {
        {
            ScopedPhase phase(prof, Profiler::Phase::kHarvest);
            harvest_step(now);
        }

        {
            ScopedPhase phase(prof, Profiler::Phase::kQueue);
            // 2. Event arrivals: an arrival is picked up immediately if the
            // device is idle (and no older request waits ahead of it);
            // otherwise it queues while there is room, and is lost — a plain
            // miss without a queue, a counted drop with one — when there is
            // none.
            while (next_event < num_events &&
                   events[next_event].time_s < now + dt) {
                const Event& ev = events[next_event];
                const std::size_t index = next_event;
                ++next_event;
                if (busy || queue_count != 0) {
                    if (queue_count < cap) {
                        queue_push(index);
                    } else {
                        if (cap > 0) ++result.dropped;
                        policy.observe_missed();  // record stays processed=false
                    }
                    continue;
                }
                start_job(ev);
            }

            // 2b. Idle pickup from the queue head (FIFO). A request whose
            // wait/completion deadline passed while it queued is hopeless and
            // is dropped at the head, exactly like the waiting job in step 3.
            while (!busy && queue_count != 0) {
                const Event& ev = events[queue_pop()];
                if (now - ev.time_s > wait_limit) {
                    policy.observe_missed();
                    continue;
                }
                start_job(ev);
            }
        }

        if (!busy) return;
        EventRecord& record =
            result.records[static_cast<std::size_t>(job.event_id)];

        // 3. Deadline check (only before execution starts): a waiting job
        // past its start deadline — or past its completion deadline, which
        // it can now only miss — is dropped so the device frees up.
        if (!job.executing && job.inference_start_s < 0.0 &&
            now - job.arrival_s > wait_limit) {
            ScopedPhase phase(prof, Profiler::Phase::kQueue);
            policy.observe_missed();
            busy = false;
            return;
        }

        if (config_.mode == ExecutionMode::kMultiExit) {
            // Recovery-enabled execution (pre-paid atomic units with
            // death/reboot). Entirely separate from the historical path
            // below, which stays bit-identical when the model is disabled.
            if (strategy) {
                // r1. Dead: recharge to the turn-on threshold, then reboot —
                // wakeup plus the strategy's restore cost — and fall through
                // to resume within this same step.
                if (job.dead) {
                    ScopedPhase phase(prof, Profiler::Phase::kCommit);
                    if (!storage.can_turn_on()) return;
                    const double restore =
                        strategy->restore_cost_mj(job.units_done);
                    if (!storage.try_consume(config_.mcu.wakeup_energy_mj +
                                             restore)) {
                        return;
                    }
                    job.energy_spent_mj += config_.mcu.wakeup_energy_mj;
                    result.recovery_energy_mj += restore;
                    job.dead = false;
                }

                // r0. Complete the in-flight unit: pay the checkpoint commit
                // (a failed commit write is itself a death that loses the
                // unit), then either evaluate/hop/finish at the end of the
                // plan or chain straight into the next unit.
                if (job.executing) {
                    if (now + dt >= job.exec_finish_s) {
                        job.executing = false;
                        bool commit_ok = false;
                        {
                            ScopedPhase phase(prof, Profiler::Phase::kCommit);
                            const double commit = strategy->commit_cost_mj();
                            if (!storage.try_consume(commit)) {
                                die(/*lose_inflight_unit=*/true);
                            } else {
                                result.recovery_energy_mj += commit;
                                ++job.units_done;
                                commit_ok = true;
                            }
                        }
                        if (!commit_ok) return;
                        if (job.units_done == static_cast<int>(units.size())) {
                            ScopedPhase phase(prof,
                                              Profiler::Phase::kInference);
                            job.reached_exit = job.target_exit;
                            const ExitOutcome outcome = model.evaluate(
                                job.event_id, job.reached_exit);
                            const int next_exit = job.reached_exit + 1;
                            bool advanced = false;
                            if (next_exit < model.num_exits() &&
                                policy.continue_inference(
                                    energy_state(now), model,
                                    job.reached_exit, outcome.confidence)) {
                                // Hop: plan the incremental advance. As in
                                // the historical path the hop is
                                // opportunistic — if even its first unit is
                                // unaffordable right now, keep the result.
                                recovery_units_into(
                                    model, job.reached_exit, next_exit,
                                    config_.recovery.granularity, units);
                                job.units_done = 0;
                                job.target_exit = next_exit;
                                if (try_start_unit(now)) {
                                    ++job.hops;
                                    advanced = true;
                                }
                            }
                            if (!advanced) {
                                finish_event(record, outcome,
                                             job.exec_finish_s);
                            }
                        } else {
                            ScopedPhase phase(prof, Profiler::Phase::kCommit);
                            (void)try_start_unit(now);
                        }
                    }
                    return;
                }

                // r2. Not yet committed: ask the policy, then plan the
                // committed exit's execution as commit units.
                if (!job.committed) {
                    ScopedPhase phase(prof, Profiler::Phase::kPolicy);
                    const EnergyState s = energy_state(now);
                    const int choice = policy.select_exit(s, model);
                    if (choice >= 0) {
                        IMX_EXPECTS(choice < model.num_exits());
                        job.committed = true;
                        job.committed_exit = choice;
                        job.state_at_selection = s;
                        job.target_exit = choice;
                        recovery_units_into(model, -1, choice,
                                            config_.recovery.granularity,
                                            units);
                        job.units_done = 0;
                    }
                }
                if (job.committed) {
                    ScopedPhase phase(prof, Profiler::Phase::kCommit);
                    // r3. Stalled mid-inference: the powered device draws
                    // active_power_mw while waiting to afford its next unit,
                    // and dies if the buffer sags below the death threshold.
                    // Before the first unit the device is still asleep, as in
                    // the historical wait path — no draw, no death.
                    if (job.inference_start_s >= 0.0) {
                        storage.drain(config_.recovery.active_power_mw * dt);
                        if (storage.below_death_threshold()) {
                            die(/*lose_inflight_unit=*/false);
                            return;
                        }
                    }
                    // r4. Start the next unit once it is affordable.
                    (void)try_start_unit(now);
                }
                return;
            }

            // 3a. Finish an atomic execution segment.
            if (job.executing) {
                if (now + dt >= job.exec_finish_s) {
                    ScopedPhase phase(prof, Profiler::Phase::kInference);
                    job.executing = false;
                    const ExitOutcome outcome =
                        model.evaluate(job.event_id, job.reached_exit);
                    const int next_exit = job.reached_exit + 1;
                    bool advanced = false;
                    if (next_exit < model.num_exits() &&
                        policy.continue_inference(energy_state(now), model,
                                                  job.reached_exit,
                                                  outcome.confidence)) {
                        const std::int64_t inc_macs =
                            model.incremental_macs(job.reached_exit, next_exit);
                        const double cost = macs_cost_mj(inc_macs);
                        if (storage.try_consume(cost)) {
                            job.energy_spent_mj += cost;
                            job.macs_done += inc_macs;
                            job.reached_exit = next_exit;
                            ++job.hops;
                            job.executing = true;
                            job.exec_finish_s =
                                job.exec_finish_s + device.compute_time(inc_macs);
                            advanced = true;
                        }
                    }
                    if (!advanced) {
                        finish_event(record, outcome, job.exec_finish_s);
                    }
                }
                return;
            }

            // 3b. Waiting: ask (or re-ask) the policy, then start when the
            // committed exit is affordable.
            if (!job.committed) {
                ScopedPhase phase(prof, Profiler::Phase::kPolicy);
                const EnergyState s = energy_state(now);
                const int choice = policy.select_exit(s, model);
                if (choice >= 0) {
                    IMX_EXPECTS(choice < model.num_exits());
                    job.committed = true;
                    job.committed_exit = choice;
                    job.state_at_selection = s;
                    job.pending_macs = model.exit_macs(choice);
                    job.pending_cost_mj = macs_cost_mj(job.pending_macs) +
                                          config_.mcu.wakeup_energy_mj;
                }
            }
            if (job.committed) {
                ScopedPhase phase(prof, Profiler::Phase::kInference);
                if (storage.try_consume(job.pending_cost_mj)) {
                    job.energy_spent_mj += job.pending_cost_mj;
                    job.macs_done += job.pending_macs;
                    job.reached_exit = job.committed_exit;
                    job.hops = 1;
                    // Execution can begin within the arrival step; the start
                    // time is never earlier than the arrival itself.
                    job.inference_start_s = std::max(now, job.arrival_s);
                    job.executing = true;
                    job.exec_finish_s = job.inference_start_s +
                                        config_.mcu.wakeup_time_s +
                                        device.compute_time(job.pending_macs);
                }
            }
            return;
        }

        // Checkpointed (baseline) mode -------------------------------------
        ScopedPhase phase(prof, Profiler::Phase::kInference);
        // Hysteresis power state.
        if (!device_on && storage.can_turn_on()) {
            device_on = true;
            if (!storage.try_consume(config_.mcu.wakeup_energy_mj)) {
                device_on = false;
            } else {
                job.energy_spent_mj += config_.mcu.wakeup_energy_mj;
            }
        }
        if (device_on && storage.must_turn_off()) device_on = false;
        if (!device_on) return;

        // Execute up to one step of checkpointed compute.
        const auto step_macs = std::min<std::int64_t>(
            job.remaining_macs,
            static_cast<std::int64_t>(config_.mcu.mmacs_per_second * 1e6 * dt));
        const double step_cost = device.checkpointed_energy(step_macs);
        if (!storage.try_consume(step_cost)) {
            device_on = false;  // brown-out; progress kept at last checkpoint
            return;
        }
        if (job.inference_start_s < 0.0) {
            job.inference_start_s = std::max(now, job.arrival_s);
        }
        job.energy_spent_mj += step_cost;
        job.macs_done += step_macs;
        job.remaining_macs -= step_macs;
        if (job.remaining_macs <= 0) {
            const ExitOutcome outcome = model.evaluate(job.event_id, 0);
            finish_event(record, outcome, now + dt);
        }
    };

    // Batched event-drain loop. The fast paths below skip straight through
    // runs of steps whose full-step body provably reduces to the harvest
    // line, performing the identical harvest/EMA updates at the identical
    // `now` values — the `now += dt` accumulation sequence is exactly the
    // historical one — so every observable value stays bitwise equal to the
    // step-at-a-time loop (tests/test_hotpath.cpp and the --quick goldens
    // pin this).
    const double duration = trace_duration_s_;
    double now = 0.0;
    while (now < duration) {
        if (!busy && queue_count == 0) {
            // Nothing in flight and nothing queued. With no arrivals left
            // either, no SimResult field can change any more (the remaining
            // harvest-only steps are unobservable), so stop early.
            if (next_event == num_events) break;
            // Idle drain: harvest-only steps until the next arrival's step.
            const double arrival = events[next_event].time_s;
            if (arrival >= now + dt) {
                const auto t0 =
                    prof != nullptr ? Clock::now() : Clock::time_point{};
                std::uint64_t steps = 0;
                do {
                    harvest_step(now);
                    now += dt;
                    ++steps;
                } while (now < duration && arrival >= now + dt);
                if (prof != nullptr) {
                    prof->add(Profiler::Phase::kHarvest, steps, ns_since(t0));
                }
                continue;
            }
        } else if (busy && job.executing &&
                   config_.mode == ExecutionMode::kMultiExit &&
                   now + dt < job.exec_finish_s &&
                   (next_event == num_events ||
                    events[next_event].time_s >= now + dt)) {
            // Executing drain: while an atomic segment (or recovery unit) is
            // mid-flight and no arrival lands in the step, the full step does
            // nothing but harvest — the finish check fails, and recovery's
            // stall drain/death only runs between units.
            const auto t0 =
                prof != nullptr ? Clock::now() : Clock::time_point{};
            std::uint64_t steps = 0;
            do {
                harvest_step(now);
                now += dt;
                ++steps;
            } while (now < duration && now + dt < job.exec_finish_s &&
                     (next_event == num_events ||
                      events[next_event].time_s >= now + dt));
            if (prof != nullptr) {
                prof->add(Profiler::Phase::kHarvest, steps, ns_since(t0));
            }
            continue;
        }
        full_step(now);
        now += dt;
    }

    // Unfinished in-flight work at trace end produced no result; it is
    // reported separately from misses so traffic accounting stays exact:
    // total_events == processed + dropped + in_flight + misses.
    result.in_flight = queue_count + (busy ? 1 : 0);
    if (prof != nullptr) prof->count_run();
}

}  // namespace imx::sim
