#include "sim/simulator.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>

#include "sim/recovery/registry.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace imx::sim {

namespace {

/// In-flight work for one event.
struct Job {
    int event_id = -1;
    double arrival_s = 0.0;
    // Multi-exit bookkeeping.
    bool committed = false;
    int committed_exit = -1;
    int reached_exit = -1;
    EnergyState state_at_selection{};
    // Execution bookkeeping (both modes).
    bool executing = false;
    double exec_finish_s = 0.0;   ///< for atomic multi-exit segments
    std::int64_t remaining_macs = 0;  ///< for checkpointed mode
    double inference_start_s = -1.0;
    double energy_spent_mj = 0.0;
    std::int64_t macs_done = 0;
    int hops = 0;
    // Recovery-mode bookkeeping (SimConfig::recovery.enabled only).
    std::vector<std::int64_t> units;  ///< commit units of the current plan
    int units_done = 0;  ///< units of the current plan committed so far
    int target_exit = -1;  ///< exit the current plan executes toward
    bool dead = false;  ///< powered off after a mid-inference death
};

}  // namespace

Simulator::Simulator(const energy::PowerTrace& trace, const SimConfig& config)
    : trace_(&trace), config_(config) {
    IMX_EXPECTS(config.dt_s > 0.0);
    IMX_EXPECTS(config.charge_rate_ema_alpha > 0.0 &&
                config.charge_rate_ema_alpha <= 1.0);
    IMX_EXPECTS(config.queue_capacity >= 0);
    if (config.recovery.enabled) {
        // The failure model replaces the multi-exit execution path only; a
        // reboot waits for can_turn_on(), so the on threshold must sit at or
        // above the death threshold or the device would re-die instantly.
        IMX_EXPECTS(config.mode == ExecutionMode::kMultiExit);
        IMX_EXPECTS(config.storage.on_threshold_mj >=
                    config.storage.death_threshold_mj);
    }
}

SimResult Simulator::run(const std::vector<Event>& events,
                         InferenceModel& model, ExitPolicy& policy) {
    IMX_EXPECTS(std::is_sorted(events.begin(), events.end(),
                               [](const Event& a, const Event& b) {
                                   return a.time_s < b.time_s;
                               }));
    if (config_.mode == ExecutionMode::kCheckpointed) {
        IMX_EXPECTS(model.num_exits() == 1);
    }

    const mcu::McuModel device(config_.mcu);
    energy::EnergyStorage storage(config_.storage);
    util::Ema charge_rate(config_.charge_rate_ema_alpha);
    charge_rate.update(0.0);

    // Failure model: constructed only when enabled, so the historical
    // execution path below stays untouched (and bit-identical) by default.
    std::unique_ptr<RecoveryStrategy> strategy;
    if (config_.recovery.enabled) {
        strategy =
            make_recovery_strategy(config_.recovery.strategy, config_.recovery);
    }

    SimResult result;
    result.records.resize(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        result.records[i].event_id = events[i].id;
        result.records[i].arrival_time_s = events[i].time_s;
    }
    result.duration_s = trace_->duration();
    result.total_harvested_mj = trace_->total_energy();
    result.deadline_s = config_.deadline_s;

    const double dt = config_.dt_s;
    std::size_t next_event = 0;
    bool busy = false;
    Job job;
    bool device_on = false;  // checkpointed-mode power state (hysteresis)
    // Bounded FIFO request queue (indices into events/records). Empty for
    // the whole run when queue_capacity == 0 — the historical model.
    std::deque<std::size_t> queue;

    auto energy_state = [&](double now) {
        EnergyState s;
        s.level_mj = storage.level();
        s.capacity_mj = storage.capacity();
        s.charge_rate_mw = charge_rate.value();
        s.energy_per_mmac_mj = config_.mcu.energy_per_mmac_mj;
        s.queue_depth = static_cast<int>(queue.size());
        s.queue_backlog =
            config_.queue_capacity > 0
                ? static_cast<double>(queue.size()) /
                      static_cast<double>(config_.queue_capacity)
                : 0.0;
        // Remaining time before the in-flight event's completion deadline;
        // infinity when the run has no deadline.
        if (config_.deadline_s !=
            std::numeric_limits<double>::infinity()) {
            s.deadline_slack_s =
                std::max(0.0, job.arrival_s + config_.deadline_s - now);
        }
        return s;
    };

    auto finish_event = [&](EventRecord& record, const ExitOutcome& outcome,
                            double now) {
        record.processed = true;
        record.correct = outcome.correct;
        record.exit_taken = job.reached_exit;
        record.hops = job.hops;
        record.completion_time_s = now;
        record.inference_start_s = job.inference_start_s;
        record.energy_spent_mj = job.energy_spent_mj;
        record.macs = job.macs_done;
        // An infinite deadline is always met; otherwise compare the result's
        // completion time against the event's own deadline.
        const bool deadline_met = now - job.arrival_s <= config_.deadline_s;
        policy.observe(job.state_at_selection, job.reached_exit,
                       outcome.correct, deadline_met);
        busy = false;
    };

    // -- Recovery-mode helpers (used only when a strategy is constructed) --

    // A death: wasted progress is whatever the strategy does not preserve
    // (plus the in-flight unit on a failed checkpoint commit). macs_done and
    // energy_spent_mj are *not* rolled back — they record work actually
    // executed, including work that later has to be redone.
    auto die = [&](SimResult& res, bool lose_inflight_unit) {
        ++res.deaths;
        if (lose_inflight_unit) {
            res.wasted_macs += job.units[static_cast<std::size_t>(job.units_done)];
        }
        const int surviving = strategy->surviving_units(job.units_done);
        IMX_EXPECTS(surviving >= 0 && surviving <= job.units_done);
        for (int u = surviving; u < job.units_done; ++u) {
            res.wasted_macs += job.units[static_cast<std::size_t>(u)];
        }
        job.units_done = surviving;
        job.executing = false;
        job.dead = true;
    };

    // Pre-paid atomic unit start: the unit begins only once its full compute
    // energy (plus the one-off wakeup on the very first start) is buffered,
    // so execution itself can never brown out. The gate also requires the
    // checkpoint commit write to be affordable — a real runtime would not
    // start work it cannot persist — but the commit itself is charged at
    // completion, so income lost to leakage while the unit runs can still
    // (rarely) fail the write and kill the run.
    auto try_start_unit = [&](double now) {
        IMX_EXPECTS(job.units_done <
                    static_cast<int>(job.units.size()));
        const std::int64_t unit_macs =
            job.units[static_cast<std::size_t>(job.units_done)];
        const bool first_start = job.inference_start_s < 0.0;
        const double cost =
            macs_energy_mj(energy_state(now), unit_macs) +
            (first_start ? config_.mcu.wakeup_energy_mj : 0.0);
        if (storage.level() < cost + strategy->commit_cost_mj()) return false;
        if (!storage.try_consume(cost)) return false;
        job.energy_spent_mj += cost;
        job.macs_done += unit_macs;
        if (first_start) {
            job.inference_start_s = std::max(now, job.arrival_s);
            job.hops = 1;
            job.exec_finish_s = job.inference_start_s +
                                config_.mcu.wakeup_time_s +
                                device.compute_time(unit_macs);
        } else {
            // Seamless after a unit that completed this step (exec_finish_s
            // is still ahead of now); a fresh start after a stall or reboot.
            job.exec_finish_s = std::max(now, job.exec_finish_s) +
                                device.compute_time(unit_macs);
        }
        job.executing = true;
        return true;
    };

    const double duration = trace_->duration();
    for (double now = 0.0; now < duration; now += dt) {
        // 1. Harvest this step; track the net charging rate the runtime sees.
        const double power = trace_->power_at(now);
        const double stored = storage.harvest(power, dt);
        charge_rate.update(std::max(stored, 0.0) / dt);

        // 2. Event arrivals: an arrival is picked up immediately if the
        // device is idle (and no older request waits ahead of it); otherwise
        // it queues while there is room, and is lost — a plain miss without
        // a queue, a counted drop with one — when there is none.
        auto start_job = [&](const Event& ev) {
            busy = true;
            job = Job{};
            job.event_id = ev.id;
            job.arrival_s = ev.time_s;
            if (config_.mode == ExecutionMode::kCheckpointed) {
                job.remaining_macs = model.exit_macs(0);
                job.reached_exit = 0;
            }
        };
        while (next_event < events.size() &&
               events[next_event].time_s < now + dt) {
            const Event& ev = events[next_event];
            const std::size_t index = next_event;
            ++next_event;
            if (busy || !queue.empty()) {
                if (static_cast<int>(queue.size()) < config_.queue_capacity) {
                    queue.push_back(index);
                } else {
                    if (config_.queue_capacity > 0) ++result.dropped;
                    policy.observe_missed();  // record remains processed=false
                }
                continue;
            }
            start_job(ev);
        }

        // 2b. Idle pickup from the queue head (FIFO). A request whose
        // wait/completion deadline passed while it queued is hopeless and is
        // dropped at the head, exactly like the waiting job in step 3.
        while (!busy && !queue.empty()) {
            const Event& ev = events[queue.front()];
            queue.pop_front();
            if (now - ev.time_s >
                std::min(config_.max_wait_s, config_.deadline_s)) {
                policy.observe_missed();
                continue;
            }
            start_job(ev);
        }

        if (!busy) continue;
        EventRecord& record =
            result.records[static_cast<std::size_t>(job.event_id)];

        // 3. Deadline check (only before execution starts): a waiting job
        // past its start deadline — or past its completion deadline, which
        // it can now only miss — is dropped so the device frees up.
        if (!job.executing && job.inference_start_s < 0.0 &&
            now - job.arrival_s >
                std::min(config_.max_wait_s, config_.deadline_s)) {
            policy.observe_missed();
            busy = false;
            continue;
        }

        if (config_.mode == ExecutionMode::kMultiExit) {
            // Recovery-enabled execution (pre-paid atomic units with
            // death/reboot). Entirely separate from the historical path
            // below, which stays bit-identical when the model is disabled.
            if (strategy) {
                // r1. Dead: recharge to the turn-on threshold, then reboot —
                // wakeup plus the strategy's restore cost — and fall through
                // to resume within this same step.
                if (job.dead) {
                    if (!storage.can_turn_on()) continue;
                    const double restore =
                        strategy->restore_cost_mj(job.units_done);
                    if (!storage.try_consume(config_.mcu.wakeup_energy_mj +
                                             restore)) {
                        continue;
                    }
                    job.energy_spent_mj += config_.mcu.wakeup_energy_mj;
                    result.recovery_energy_mj += restore;
                    job.dead = false;
                }

                // r0. Complete the in-flight unit: pay the checkpoint commit
                // (a failed commit write is itself a death that loses the
                // unit), then either evaluate/hop/finish at the end of the
                // plan or chain straight into the next unit.
                if (job.executing) {
                    if (now + dt >= job.exec_finish_s) {
                        job.executing = false;
                        const double commit = strategy->commit_cost_mj();
                        if (!storage.try_consume(commit)) {
                            die(result, /*lose_inflight_unit=*/true);
                            continue;
                        }
                        result.recovery_energy_mj += commit;
                        ++job.units_done;
                        if (job.units_done ==
                            static_cast<int>(job.units.size())) {
                            job.reached_exit = job.target_exit;
                            const ExitOutcome outcome = model.evaluate(
                                job.event_id, job.reached_exit);
                            const int next_exit = job.reached_exit + 1;
                            bool advanced = false;
                            if (next_exit < model.num_exits() &&
                                policy.continue_inference(
                                    energy_state(now), model,
                                    job.reached_exit, outcome.confidence)) {
                                // Hop: plan the incremental advance. As in
                                // the historical path the hop is
                                // opportunistic — if even its first unit is
                                // unaffordable right now, keep the result.
                                job.units = recovery_units(
                                    model, job.reached_exit, next_exit,
                                    config_.recovery.granularity);
                                job.units_done = 0;
                                job.target_exit = next_exit;
                                if (try_start_unit(now)) {
                                    ++job.hops;
                                    advanced = true;
                                }
                            }
                            if (!advanced) {
                                finish_event(record, outcome,
                                             job.exec_finish_s);
                            }
                        } else {
                            (void)try_start_unit(now);
                        }
                    }
                    continue;
                }

                // r2. Not yet committed: ask the policy, then plan the
                // committed exit's execution as commit units.
                if (!job.committed) {
                    const EnergyState s = energy_state(now);
                    const int choice = policy.select_exit(s, model);
                    if (choice >= 0) {
                        IMX_EXPECTS(choice < model.num_exits());
                        job.committed = true;
                        job.committed_exit = choice;
                        job.state_at_selection = s;
                        job.target_exit = choice;
                        job.units = recovery_units(
                            model, -1, choice, config_.recovery.granularity);
                        job.units_done = 0;
                    }
                }
                if (job.committed) {
                    // r3. Stalled mid-inference: the powered device draws
                    // active_power_mw while waiting to afford its next unit,
                    // and dies if the buffer sags below the death threshold.
                    // Before the first unit the device is still asleep, as in
                    // the historical wait path — no draw, no death.
                    if (job.inference_start_s >= 0.0) {
                        storage.drain(config_.recovery.active_power_mw * dt);
                        if (storage.below_death_threshold()) {
                            die(result, /*lose_inflight_unit=*/false);
                            continue;
                        }
                    }
                    // r4. Start the next unit once it is affordable.
                    (void)try_start_unit(now);
                }
                continue;
            }

            // 3a. Finish an atomic execution segment.
            if (job.executing) {
                if (now + dt >= job.exec_finish_s) {
                    job.executing = false;
                    const ExitOutcome outcome =
                        model.evaluate(job.event_id, job.reached_exit);
                    const int next_exit = job.reached_exit + 1;
                    bool advanced = false;
                    if (next_exit < model.num_exits() &&
                        policy.continue_inference(energy_state(now), model,
                                                  job.reached_exit,
                                                  outcome.confidence)) {
                        const std::int64_t inc_macs =
                            model.incremental_macs(job.reached_exit, next_exit);
                        const double cost =
                            macs_energy_mj(energy_state(now), inc_macs);
                        if (storage.try_consume(cost)) {
                            job.energy_spent_mj += cost;
                            job.macs_done += inc_macs;
                            job.reached_exit = next_exit;
                            ++job.hops;
                            job.executing = true;
                            job.exec_finish_s =
                                job.exec_finish_s + device.compute_time(inc_macs);
                            advanced = true;
                        }
                    }
                    if (!advanced) {
                        finish_event(record, outcome, job.exec_finish_s);
                    }
                }
                continue;
            }

            // 3b. Waiting: ask (or re-ask) the policy, then start when the
            // committed exit is affordable.
            if (!job.committed) {
                const EnergyState s = energy_state(now);
                const int choice = policy.select_exit(s, model);
                if (choice >= 0) {
                    IMX_EXPECTS(choice < model.num_exits());
                    job.committed = true;
                    job.committed_exit = choice;
                    job.state_at_selection = s;
                }
            }
            if (job.committed) {
                const std::int64_t macs = model.exit_macs(job.committed_exit);
                const double cost = macs_energy_mj(energy_state(now), macs) +
                                    config_.mcu.wakeup_energy_mj;
                if (storage.try_consume(cost)) {
                    job.energy_spent_mj += cost;
                    job.macs_done += macs;
                    job.reached_exit = job.committed_exit;
                    job.hops = 1;
                    // Execution can begin within the arrival step; the start
                    // time is never earlier than the arrival itself.
                    job.inference_start_s = std::max(now, job.arrival_s);
                    job.executing = true;
                    job.exec_finish_s = job.inference_start_s +
                                        config_.mcu.wakeup_time_s +
                                        device.compute_time(macs);
                }
            }
            continue;
        }

        // Checkpointed (baseline) mode -------------------------------------
        // Hysteresis power state.
        if (!device_on && storage.can_turn_on()) {
            device_on = true;
            if (!storage.try_consume(config_.mcu.wakeup_energy_mj)) {
                device_on = false;
            } else {
                job.energy_spent_mj += config_.mcu.wakeup_energy_mj;
            }
        }
        if (device_on && storage.must_turn_off()) device_on = false;
        if (!device_on) continue;

        // Execute up to one step of checkpointed compute.
        const auto step_macs = std::min<std::int64_t>(
            job.remaining_macs,
            static_cast<std::int64_t>(config_.mcu.mmacs_per_second * 1e6 * dt));
        const double step_cost = device.checkpointed_energy(step_macs);
        if (!storage.try_consume(step_cost)) {
            device_on = false;  // brown-out; progress kept at last checkpoint
            continue;
        }
        if (job.inference_start_s < 0.0) {
            job.inference_start_s = std::max(now, job.arrival_s);
        }
        job.energy_spent_mj += step_cost;
        job.macs_done += step_macs;
        job.remaining_macs -= step_macs;
        if (job.remaining_macs <= 0) {
            const ExitOutcome outcome = model.evaluate(job.event_id, 0);
            finish_event(record, outcome, now + dt);
        }
    }

    // Unfinished in-flight work at trace end produced no result; it is
    // reported separately from misses so traffic accounting stays exact:
    // total_events == processed + dropped + in_flight + misses.
    result.in_flight = static_cast<int>(queue.size()) + (busy ? 1 : 0);
    return result;
}

}  // namespace imx::sim
