// What the simulator needs to know about a deployed network: per-exit cost
// and, per (event, exit), whether the classification is correct and how
// confident the exit's softmax is. Implementations: an oracle calibrated to
// paper accuracies (core/), a real ExitGraph on real images (core/), and the
// fixed-cost single-exit baselines (baselines/).
#ifndef IMX_SIM_INFERENCE_MODEL_HPP
#define IMX_SIM_INFERENCE_MODEL_HPP

#include <cstdint>
#include <vector>

namespace imx::sim {

/// Result of evaluating one event at one exit.
struct ExitOutcome {
    bool correct = false;
    /// Confidence in [0,1] = 1 - normalized softmax entropy (paper Sec. IV
    /// uses entropy; we report its complement so higher = more confident).
    double confidence = 1.0;
};

class InferenceModel {
public:
    virtual ~InferenceModel() = default;
    InferenceModel() = default;
    InferenceModel(const InferenceModel&) = delete;
    InferenceModel& operator=(const InferenceModel&) = delete;

    [[nodiscard]] virtual int num_exits() const = 0;

    /// MACs to compute exit `exit` from scratch.
    [[nodiscard]] virtual std::int64_t exit_macs(int exit) const = 0;

    /// MACs to advance from `from_exit` to `to_exit` reusing trunk state
    /// (from_exit == -1 means from scratch).
    [[nodiscard]] virtual std::int64_t incremental_macs(int from_exit,
                                                        int to_exit) const = 0;

    /// Per-layer breakdown of incremental_macs(from_exit, to_exit), in
    /// execution order. Zero-cost layers may be included or omitted; the sum
    /// must equal incremental_macs(from_exit, to_exit). The failure model
    /// (sim/recovery/) uses these as per-layer checkpoint boundaries. The
    /// default treats the whole advance as one opaque segment, which is
    /// always sound.
    [[nodiscard]] virtual std::vector<std::int64_t> segment_macs(
        int from_exit, int to_exit) const {
        return {incremental_macs(from_exit, to_exit)};
    }

    /// Deterministic per (event_id, exit): same event re-evaluated at the
    /// same exit gives the same outcome.
    [[nodiscard]] virtual ExitOutcome evaluate(int event_id, int exit) = 0;

    /// Deployed weight storage in bytes (for flash-fit checks).
    [[nodiscard]] virtual double model_bytes() const = 0;
};

}  // namespace imx::sim

#endif  // IMX_SIM_INFERENCE_MODEL_HPP
