/// \file
/// \brief Per-worker reusable scenario state: the allocation backbone of
/// the sweep hot path.
///
/// A sweep worker executes thousands of scenarios back to back; before this
/// existed, every scenario (and every Q-learning training episode inside
/// it) re-heap-allocated the same short-lived buffers — the training event
/// schedule, the SimResult record vector, the recovery unit plan, the
/// bounded-queue ring. A ScenarioWorkspace owns one reusable copy of each,
/// sized by the largest scenario seen so far, so a worker's steady state
/// performs no heap allocation at all.
///
/// Ownership and threading: exp::run_sweep keeps a pool of workspaces and
/// hands each scenario exactly one for the duration of its execution
/// (confinement — no locking inside). Passing a null workspace anywhere
/// restores the historical allocate-per-run behaviour, bit for bit: the
/// workspace only changes *where* buffers live, never the values written
/// through them (tests/test_hotpath.cpp pins SimResult and CSV equality
/// workspace-on vs workspace-off across every registered experiment).
#ifndef IMX_SIM_WORKSPACE_HPP
#define IMX_SIM_WORKSPACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/profiler.hpp"
#include "util/arena.hpp"

namespace imx::sim {

struct ScenarioWorkspace {
    /// Bump-allocated POD scratch for buffers whose size is only known at
    /// run start (the simulator's bounded-queue ring lives here). Reset at
    /// the end of every Simulator::run; capacity is retained across
    /// scenarios.
    util::Arena arena;

    /// Reused training-episode event schedule
    /// (ArrivalSource::generate_into writes over it each episode).
    std::vector<Event> train_events;

    /// Reused result buffer for training runs whose SimResult is consumed
    /// immediately (Simulator::run_into reuses records capacity).
    SimResult train_result;

    /// Reused recovery unit plan (recovery_units_into writes over it each
    /// time a scenario's job commits or hops).
    std::vector<std::int64_t> units;

    /// Per-worker profiler; null (the default) means profiling is off and
    /// every hook reduces to a pointer test.
    Profiler* profiler = nullptr;
};

}  // namespace imx::sim

#endif  // IMX_SIM_WORKSPACE_HPP
