// Name-based request-arrival registry: string -> ArrivalSource factory, so
// benches, spec files, and tests can select workload processes without
// compile-time wiring — the traffic-side sibling of energy/trace_registry,
// sim/policies/registry, and sim/recovery/registry.
//
// Built-in sources (always registered; docs/workloads.md documents every
// parameter with defaults):
//  * "uniform" — the paper's Sec. V-A stream ("randomly distributed across
//                the duration"); with default parameters it is bitwise
//                identical to the historical ArrivalKind::kUniform stream.
//  * "poisson" — exponential inter-arrivals at the mean rate implied by the
//                requested count (optionally scaled).
//  * "bursty"  — uniformly placed bursts of jittered arrivals (the historical
//                ArrivalKind::kBursty stress stream, parameters exposed).
//  * "mmpp"    — Markov-modulated Poisson process: exponential idle/burst
//                dwells with a rate multiplier during bursts.
//  * "diurnal" — Poisson process whose rate follows a day-cycle profile
//                (cosine modulation around a peak time).
//  * "csv"     — time-stamped replay of a real request trace from a CSV
//                file (first column = arrival time in seconds).
//
// Every source takes a validated key=value parameter map: unknown keys,
// malformed numbers, and out-of-range values throw std::invalid_argument
// naming the source, the parameter, and (for unknown keys) everything the
// source accepts. Custom sources register at runtime through
// register_arrival_source(); see the worked example in docs/workloads.md.
// The registry is mutex-guarded, so make_arrival_source() is safe from
// sweep worker threads.
#ifndef IMX_SIM_ARRIVALS_REGISTRY_HPP
#define IMX_SIM_ARRIVALS_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_gen.hpp"
#include "util/param_reader.hpp"

namespace imx::sim {

/// Source parameters as parsed text, e.g. {{"mean_burst_s", "120"}}.
/// Values are validated by the source factory via ArrivalParamReader.
using ArrivalParams = std::map<std::string, std::string>;

/// What every source receives besides its own parameters: how many events
/// to schedule, over what horizon, and the deterministic seed (stochastic
/// sources only). File-backed sources may return fewer events (the file's).
struct ArrivalContext {
    int count = 500;
    double duration_s = 13000.0;
    std::uint64_t seed = 99;
};

/// \brief One constructed arrival process. Construction (through the
/// factory) validates parameters; generate() may then be called any number
/// of times with different contexts — the replica machinery reuses one
/// source across independently seeded streams.
class ArrivalSource {
public:
    virtual ~ArrivalSource() = default;
    ArrivalSource() = default;
    ArrivalSource(const ArrivalSource&) = delete;
    ArrivalSource& operator=(const ArrivalSource&) = delete;

    /// \brief Generate the event schedule: time-sorted over [0, duration_s),
    /// ids renumbered 0..n-1. Deterministic for a fixed context.
    [[nodiscard]] std::vector<Event> generate(
        const ArrivalContext& context) const;

    /// \brief generate() into a caller-owned buffer (replaced, capacity
    /// reused) — the allocation-free path the sweep hot loop takes through
    /// sim::ScenarioWorkspace. Produces exactly the bytes generate() would.
    void generate_into(const ArrivalContext& context,
                       std::vector<Event>& out) const;

protected:
    /// Raw arrival times in any order; generate() sorts and renumbers.
    [[nodiscard]] virtual std::vector<Event> sample(
        const ArrivalContext& context) const = 0;

    /// sample() into a caller-owned buffer (cleared first). The default
    /// falls back to sample(); built-in sources override it to append into
    /// the reused buffer so a steady-state worker makes no heap allocation.
    virtual void sample_into(const ArrivalContext& context,
                             std::vector<Event>& out) const {
        out = sample(context);
    }
};

/// \brief Factory signature: build (and validate) a source for one
/// parameter map. Must reject unknown keys / bad values with
/// std::invalid_argument — ArrivalParamReader does both bookkeeping parts.
using ArrivalSourceFactory =
    std::function<std::unique_ptr<ArrivalSource>(const ArrivalParams&)>;

/// \brief Typed, validating view over an ArrivalParams map.
///
/// A thin subclass of util::ParamReader fixing the diagnostic prefix to
/// "arrival source '<name>': " — the getters (number/positive/non_negative/
/// fraction/text/required_text), done()'s unknown-key rejection, and fail()
/// are all inherited, byte-identical to the historical per-registry copy.
///
///     ArrivalParamReader reader("mmpp", params);
///     cfg.mean_burst_s = reader.positive("mean_burst_s", 120.0);
///     reader.done();
class ArrivalParamReader : public util::ParamReader {
public:
    ArrivalParamReader(std::string source, const ArrivalParams& params)
        : util::ParamReader("arrival source", std::move(source), params) {}
};

/// \brief Build an arrival source from a registered name.
/// \param source a built-in or register_arrival_source()'d name.
/// \param params source parameters; unknown keys or bad values throw.
/// \throws std::invalid_argument for unknown sources (the message lists
///   every registered name) and for parameter-map violations.
std::unique_ptr<ArrivalSource> make_arrival_source(
    const std::string& source, const ArrivalParams& params = {});

/// make_arrival_source(source, params)->generate(context) in one call.
std::vector<Event> generate_arrivals(const std::string& source,
                                     const ArrivalContext& context = {},
                                     const ArrivalParams& params = {});

/// \brief Register (or replace) a named arrival source.
/// \param name the registry key; must be non-empty.
/// \param factory invoked by make_arrival_source().
/// \param description one-liner for listings (imx_sweep --list).
/// \param param_names the parameter keys the source accepts; consumers
///   (e.g. the spec parser) use it to reject unknown keys early with
///   file:line diagnostics. Empty = accept any key at name-check time and
///   rely on the factory's own validation.
void register_arrival_source(const std::string& name,
                             ArrivalSourceFactory factory,
                             std::string description = "",
                             std::vector<std::string> param_names = {});

/// \brief Whether `name` is currently registered.
[[nodiscard]] bool has_arrival_source(const std::string& name);

/// \brief Every registered name, sorted (built-ins plus custom ones).
[[nodiscard]] std::vector<std::string> arrival_source_names();

/// \brief One-line description of a registered source.
[[nodiscard]] std::string arrival_source_description(const std::string& name);

/// \brief The parameter keys a source declared at registration (sorted);
/// empty for sources registered without a key list.
[[nodiscard]] std::vector<std::string> arrival_source_param_names(
    const std::string& name);

}  // namespace imx::sim

#endif  // IMX_SIM_ARRIVALS_REGISTRY_HPP
