// Thin wrapper over util::Registry<ArrivalSourceEntry>: the public free
// functions, their error messages, and the registered-name listing are
// byte-identical to the historical hand-rolled registry. The built-in
// source classes themselves live here.
#include "sim/arrivals/registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"
#include "util/registry.hpp"
#include "util/rng.hpp"

namespace imx::sim {

namespace {

struct ArrivalSourceEntry {
    ArrivalSourceFactory factory;
    std::string description;
    std::vector<std::string> param_names;
};

/// The paper's Sec. V-A stream: `count` arrival times drawn independently
/// and uniformly over the duration. The sampling order (one uniform() draw
/// per event, before the shared sort) MUST stay in lockstep with the
/// historical ArrivalKind::kUniform switch branch: the "uniform" source is
/// the canonical event schedule, bitwise (tests/test_arrivals.cpp pins it).
class UniformArrivalSource final : public ArrivalSource {
public:
    explicit UniformArrivalSource(const ArrivalParams& params) {
        ArrivalParamReader reader("uniform", params);
        reader.done();
    }

protected:
    std::vector<Event> sample(const ArrivalContext& ctx) const override {
        std::vector<Event> events;
        sample_into(ctx, events);
        return events;
    }

    // The Q-learning training loop regenerates this stream once per episode
    // per scenario; appending into the workspace buffer makes that
    // allocation-free in steady state.
    void sample_into(const ArrivalContext& ctx,
                     std::vector<Event>& out) const override {
        util::Rng rng(ctx.seed);
        out.clear();
        out.reserve(static_cast<std::size_t>(ctx.count));
        for (int i = 0; i < ctx.count; ++i) {
            out.push_back({0, rng.uniform(0.0, ctx.duration_s)});
        }
    }
};

/// Exponential inter-arrivals at rate_scale x (count / duration). Arrivals
/// that would fall past the horizon wrap to a uniform draw so the schedule
/// always carries exactly `count` events (the historical kPoisson rule).
class PoissonArrivalSource final : public ArrivalSource {
public:
    explicit PoissonArrivalSource(const ArrivalParams& params) {
        ArrivalParamReader reader("poisson", params);
        rate_scale_ = reader.positive("rate_scale", 1.0);
        reader.done();
    }

protected:
    std::vector<Event> sample(const ArrivalContext& ctx) const override {
        std::vector<Event> events;
        sample_into(ctx, events);
        return events;
    }

    void sample_into(const ArrivalContext& ctx,
                     std::vector<Event>& out) const override {
        util::Rng rng(ctx.seed);
        out.clear();
        out.reserve(static_cast<std::size_t>(ctx.count));
        const double rate =
            rate_scale_ * static_cast<double>(ctx.count) / ctx.duration_s;
        double t = 0.0;
        while (static_cast<int>(out.size()) < ctx.count) {
            t += rng.exponential(rate);
            if (t >= ctx.duration_s) t = rng.uniform(0.0, ctx.duration_s);
            out.push_back({0, t});
        }
    }

private:
    double rate_scale_ = 1.0;
};

/// Uniformly placed bursts of burst_min..burst_max arrivals, each jittered
/// within jitter_s of the burst epoch — the historical kBursty stress
/// stream with its constants exposed as parameters.
class BurstyArrivalSource final : public ArrivalSource {
public:
    explicit BurstyArrivalSource(const ArrivalParams& params) {
        ArrivalParamReader reader("bursty", params);
        burst_min_ = static_cast<int>(reader.positive("burst_min", 2.0));
        burst_max_ = static_cast<int>(reader.positive("burst_max", 5.0));
        jitter_s_ = reader.positive("jitter_s", 5.0);
        reader.done();
        if (burst_min_ > burst_max_) {
            reader.fail("needs burst_min <= burst_max");
        }
    }

protected:
    std::vector<Event> sample(const ArrivalContext& ctx) const override {
        util::Rng rng(ctx.seed);
        std::vector<Event> events;
        events.reserve(static_cast<std::size_t>(ctx.count));
        while (static_cast<int>(events.size()) < ctx.count) {
            const double burst_time = rng.uniform(0.0, ctx.duration_s);
            const auto burst_size =
                static_cast<int>(rng.uniform_int(burst_min_, burst_max_));
            for (int b = 0; b < burst_size &&
                            static_cast<int>(events.size()) < ctx.count;
                 ++b) {
                const double jitter = rng.uniform(0.0, jitter_s_);
                events.push_back({0, std::min(burst_time + jitter,
                                              ctx.duration_s - 1e-6)});
            }
        }
        return events;
    }

private:
    int burst_min_ = 2;
    int burst_max_ = 5;
    double jitter_s_ = 5.0;
};

/// Two-state Markov-modulated Poisson process: exponential idle and burst
/// dwells, with arrivals burst_rate_factor times denser during bursts. The
/// per-state rates are solved so the long-run mean matches count/duration;
/// like "poisson", arrivals past the horizon wrap to a uniform draw so the
/// schedule carries exactly `count` events.
class MmppArrivalSource final : public ArrivalSource {
public:
    explicit MmppArrivalSource(const ArrivalParams& params) {
        ArrivalParamReader reader("mmpp", params);
        mean_burst_s_ = reader.positive("mean_burst_s", 120.0);
        mean_idle_s_ = reader.positive("mean_idle_s", 600.0);
        burst_rate_factor_ = reader.positive("burst_rate_factor", 8.0);
        reader.done();
        if (burst_rate_factor_ < 1.0) {
            reader.fail("burst_rate_factor must be >= 1");
        }
    }

protected:
    std::vector<Event> sample(const ArrivalContext& ctx) const override {
        util::Rng rng(ctx.seed);
        std::vector<Event> events;
        events.reserve(static_cast<std::size_t>(ctx.count));
        const double mean_rate =
            static_cast<double>(ctx.count) / ctx.duration_s;
        // Solve f * (k * r) + (1 - f) * r = mean_rate for the idle rate r,
        // where f is the long-run burst-state fraction and k the factor.
        const double burst_fraction =
            mean_burst_s_ / (mean_burst_s_ + mean_idle_s_);
        const double idle_rate =
            mean_rate / (burst_fraction * burst_rate_factor_ +
                         (1.0 - burst_fraction));
        const double burst_rate = burst_rate_factor_ * idle_rate;

        bool burst = false;
        double t = 0.0;
        double dwell_end = rng.exponential(1.0 / mean_idle_s_);
        while (static_cast<int>(events.size()) < ctx.count) {
            const double gap =
                rng.exponential(burst ? burst_rate : idle_rate);
            if (t + gap >= dwell_end) {
                // State switch before the next arrival would land.
                t = dwell_end;
                burst = !burst;
                dwell_end =
                    t + rng.exponential(burst ? 1.0 / mean_burst_s_
                                              : 1.0 / mean_idle_s_);
                continue;
            }
            t += gap;
            if (t >= ctx.duration_s) {
                // Horizon wrap (poisson rule): restart the walk at a
                // uniform epoch so the count is always met.
                t = rng.uniform(0.0, ctx.duration_s);
                dwell_end = t + rng.exponential(burst ? 1.0 / mean_burst_s_
                                                      : 1.0 / mean_idle_s_);
            }
            events.push_back({0, t});
        }
        return events;
    }

private:
    double mean_burst_s_ = 120.0;
    double mean_idle_s_ = 600.0;
    double burst_rate_factor_ = 8.0;
};

/// Poisson arrivals whose rate follows a day-cycle profile: intensity
/// 1 + depth * cos(2 pi (t / period - peak_frac)), peaking at
/// peak_frac * period into each cycle. Exactly `count` events are placed by
/// rejection sampling against the intensity envelope.
class DiurnalArrivalSource final : public ArrivalSource {
public:
    explicit DiurnalArrivalSource(const ArrivalParams& params) {
        ArrivalParamReader reader("diurnal", params);
        depth_ = reader.fraction("depth", 0.8);
        peak_frac_ = reader.fraction("peak_frac", 0.5);
        period_s_ = reader.non_negative("period_s", 0.0);
        reader.done();
    }

protected:
    std::vector<Event> sample(const ArrivalContext& ctx) const override {
        util::Rng rng(ctx.seed);
        std::vector<Event> events;
        events.reserve(static_cast<std::size_t>(ctx.count));
        // period_s = 0 (the default) means one cycle per run: the horizon
        // is the day.
        const double period = period_s_ > 0.0 ? period_s_ : ctx.duration_s;
        const double two_pi = 2.0 * 3.14159265358979323846;
        while (static_cast<int>(events.size()) < ctx.count) {
            const double t = rng.uniform(0.0, ctx.duration_s);
            const double weight =
                1.0 + depth_ * std::cos(two_pi * (t / period - peak_frac_));
            if (rng.uniform(0.0, 1.0 + depth_) <= weight) {
                events.push_back({0, t});
            }
        }
        return events;
    }

private:
    double depth_ = 0.8;
    double peak_frac_ = 0.5;
    double period_s_ = 0.0;
};

/// Time-stamped replay of a real request trace: one arrival per data line,
/// first comma/whitespace-separated field = arrival time in seconds
/// (blank lines and '#' comments skipped). Replay is seed-independent;
/// times outside [0, duration_s) are dropped and the schedule is capped at
/// the context's event count (quick mode shrinks real traces this way).
class CsvArrivalSource final : public ArrivalSource {
public:
    explicit CsvArrivalSource(const ArrivalParams& params) {
        ArrivalParamReader reader("csv", params);
        const std::string path = reader.required_text("path");
        time_scale_ = reader.positive("time_scale", 1.0);
        reader.done();

        std::ifstream file(path);
        if (!file) {
            reader.fail("cannot open '" + path + "'");
        }
        std::string line;
        int line_no = 0;
        while (std::getline(file, line)) {
            ++line_no;
            const auto first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos || line[first] == '#') continue;
            const auto end = line.find_first_of(", \t\r", first);
            const std::string field =
                line.substr(first, end == std::string::npos ? std::string::npos
                                                            : end - first);
            char* parse_end = nullptr;
            errno = 0;
            const double value = std::strtod(field.c_str(), &parse_end);
            if (parse_end == field.c_str() || *parse_end != '\0' ||
                errno == ERANGE || !(value >= 0.0)) {
                reader.fail("'" + path + "' line " + std::to_string(line_no) +
                            ": expects a non-negative arrival time, got '" +
                            field + "'");
            }
            times_s_.push_back(value);
        }
        if (times_s_.empty()) {
            reader.fail("'" + path + "' contains no arrival times");
        }
    }

protected:
    std::vector<Event> sample(const ArrivalContext& ctx) const override {
        std::vector<double> times;
        times.reserve(times_s_.size());
        for (const double t : times_s_) {
            const double scaled = t * time_scale_;
            if (scaled < ctx.duration_s) times.push_back(scaled);
        }
        std::sort(times.begin(), times.end());
        if (static_cast<int>(times.size()) > ctx.count) {
            times.resize(static_cast<std::size_t>(ctx.count));
        }
        std::vector<Event> events;
        events.reserve(times.size());
        for (const double t : times) events.push_back({0, t});
        return events;
    }

private:
    std::vector<double> times_s_;
    double time_scale_ = 1.0;
};

/// The registry instance, seeded with built-ins on first use — no
/// static-init-order or dead-translation-unit hazards.
util::Registry<ArrivalSourceEntry>& registry() {
    static util::Registry<ArrivalSourceEntry> instance("arrival source");
    static const bool seeded = [] {
        instance.add(
            "uniform",
            {[](const ArrivalParams& params)
                 -> std::unique_ptr<ArrivalSource> {
                 return std::make_unique<UniformArrivalSource>(params);
             },
             "independent uniform arrival times (paper Sec. V-A stream)",
             {}});
        instance.add(
            "poisson",
            {[](const ArrivalParams& params)
                 -> std::unique_ptr<ArrivalSource> {
                 return std::make_unique<PoissonArrivalSource>(params);
             },
             "exponential inter-arrivals at the count-implied mean rate",
             {"rate_scale"}});
        instance.add(
            "bursty",
            {[](const ArrivalParams& params)
                 -> std::unique_ptr<ArrivalSource> {
                 return std::make_unique<BurstyArrivalSource>(params);
             },
             "uniformly placed bursts of jittered arrivals",
             {"burst_min", "burst_max", "jitter_s"}});
        instance.add(
            "mmpp",
            {[](const ArrivalParams& params)
                 -> std::unique_ptr<ArrivalSource> {
                 return std::make_unique<MmppArrivalSource>(params);
             },
             "Markov-modulated Poisson process (exponential idle/burst "
             "dwells)",
             {"mean_burst_s", "mean_idle_s", "burst_rate_factor"}});
        instance.add(
            "diurnal",
            {[](const ArrivalParams& params)
                 -> std::unique_ptr<ArrivalSource> {
                 return std::make_unique<DiurnalArrivalSource>(params);
             },
             "Poisson arrivals under a day-cycle (cosine) rate profile",
             {"depth", "peak_frac", "period_s"}});
        instance.add(
            "csv",
            {[](const ArrivalParams& params)
                 -> std::unique_ptr<ArrivalSource> {
                 return std::make_unique<CsvArrivalSource>(params);
             },
             "time-stamped replay of a request trace from a CSV file",
             {"path", "time_scale"}});
        return true;
    }();
    (void)seeded;
    return instance;
}

}  // namespace

std::vector<Event> ArrivalSource::generate(const ArrivalContext& ctx) const {
    std::vector<Event> events;
    generate_into(ctx, events);
    return events;
}

void ArrivalSource::generate_into(const ArrivalContext& ctx,
                                  std::vector<Event>& out) const {
    IMX_EXPECTS(ctx.count >= 0);
    IMX_EXPECTS(ctx.duration_s > 0.0);
    sample_into(ctx, out);
    std::sort(out.begin(), out.end(),
              [](const Event& a, const Event& b) { return a.time_s < b.time_s; });
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i].id = static_cast<int>(i);
    }
}

std::unique_ptr<ArrivalSource> make_arrival_source(
    const std::string& source, const ArrivalParams& params) {
    const ArrivalSourceFactory factory =
        registry().read(source, [](const ArrivalSourceEntry& entry) {
            return entry.factory;
        });
    auto built = factory(params);
    IMX_EXPECTS(built != nullptr);
    return built;
}

std::vector<Event> generate_arrivals(const std::string& source,
                                     const ArrivalContext& context,
                                     const ArrivalParams& params) {
    return make_arrival_source(source, params)->generate(context);
}

void register_arrival_source(const std::string& name,
                             ArrivalSourceFactory factory,
                             std::string description,
                             std::vector<std::string> param_names) {
    IMX_EXPECTS(factory != nullptr);
    registry().add(name, {std::move(factory), std::move(description),
                          std::move(param_names)});
}

bool has_arrival_source(const std::string& name) {
    return registry().contains(name);
}

std::vector<std::string> arrival_source_names() { return registry().names(); }

std::string arrival_source_description(const std::string& name) {
    return registry().read(name, [](const ArrivalSourceEntry& entry) {
        return entry.description;
    });
}

std::vector<std::string> arrival_source_param_names(const std::string& name) {
    auto names = registry().read(name, [](const ArrivalSourceEntry& entry) {
        return entry.param_names;
    });
    std::sort(names.begin(), names.end());
    return names;
}

}  // namespace imx::sim
