/// \file
/// \brief Built-in ablation experiments (harvester / recovery / runtime /
/// search / trace / storage-deadline / deadline-policy). Like
/// experiments_figs.cpp, every grid ported from a bench main keeps its
/// replica-0 output byte-identical; harvester-ablation and recovery-ablation
/// are registry-native (traces from the energy trace registry, recovery
/// cells from the recovery-strategy registry, mirrored by the shipped
/// harvester_ablation.ini / recovery_ablation.ini specs).
#include "exp/experiments_builtin.hpp"

#include <algorithm>
#include <any>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"
#include "energy/solar.hpp"
#include "energy/trace_registry.hpp"
#include "exp/aggregate.hpp"
#include "exp/report.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/policies/registry.hpp"
#include "util/table.hpp"

namespace imx::exp::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The policy zoo for the queueless grids. They run with
/// queue_capacity == 0, where queue-slack-greedy *is* slack-greedy by
/// construction (docs/workloads.md) — including it would duplicate every
/// slack-greedy cell under a second label. Custom-registered policies
/// still appear, exactly as before.
std::vector<std::string> queueless_policy_names() {
    auto names = sim::policy_names();
    names.erase(std::remove(names.begin(), names.end(),
                            std::string("queue-slack-greedy")),
                names.end());
    return names;
}

// --- ablation-storage-deadline --------------------------------------------

int storage_deadline_report(const ExperimentRunContext& ctx) {
    aggregate_table(
        aggregate(ctx.specs, ctx.outcomes),
        {"iepmj", "processed", "deadline_miss_pct", "acc_all_pct",
         "event_latency_s"},
        "Storage x deadline x policy sweep (" +
            std::to_string(ctx.options.replicas) +
            " replica(s); mean ± 95% CI when > 1)")
        .print(std::cout);

    std::printf(
        "\nnotes: a tight deadline turns slow waiting into explicit misses "
        "(deadline_miss_pct) but frees the device for the next arrival; "
        "larger storage buffers more night/cloud energy, which lifts "
        "processed counts until capacity stops binding; the slack-aware "
        "policies (pol-slack-*) trade exit depth for timeliness when the "
        "deadline bites. Groups are trace/ours/capXmJ+ddlYs+pol-NAME; use "
        "--csv for the full per-cell statistics.\n");
    return 0;
}

Experiment storage_deadline_experiment() {
    Experiment e;
    e.spec.name = "ablation-storage-deadline";
    e.spec.description =
        "Design-space sweep: energy-storage capacity x inference deadline x "
        "every registered exit policy";
    // One multi-exit system; the policy axis picks the exit policy per cell
    // (train_episodes only applies to the learning policies).
    e.spec.systems = {{"ours", "ours-policy", "", 12, 4}};
    e.spec.storage_mj = {3.0, 6.0, 12.0};
    e.spec.deadline_s = {60.0, 240.0, kInf};
    e.spec.policies = queueless_policy_names();
    e.spec.metrics = {"iepmj", "processed", "deadline_miss_pct",
                      "acc_all_pct", "event_latency_s"};
    e.report = storage_deadline_report;
    return e;
}

// --- ablation-deadline-policy ---------------------------------------------

std::vector<std::string> parse_policy_list(const SweepCli& options) {
    if (options.positional.empty()) return queueless_policy_names();
    if (options.positional.size() > 1) {
        std::fprintf(stderr, "error: unexpected argument '%s'\n",
                     options.positional[1].c_str());
        std::exit(2);
    }
    std::vector<std::string> names;
    const std::string& list = options.positional[0];
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!name.empty()) names.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    for (std::size_t i = 0; i < names.size(); ++i) {
        // A duplicate would register two identical grid cells under one
        // group label and silently skew the aggregation's replica counts.
        for (std::size_t j = 0; j < i; ++j) {
            if (names[i] == names[j]) {
                std::fprintf(stderr, "error: duplicate policy '%s'\n",
                             names[i].c_str());
                std::exit(2);
            }
        }
        const std::string& name = names[i];
        if (!sim::has_policy(name)) {
            // Reuse the registry's own diagnostic (it lists every
            // registered name) instead of duplicating the format here.
            try {
                (void)sim::make_policy(name);
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
            }
            std::exit(2);
        }
    }
    if (names.empty()) {
        std::fprintf(stderr, "error: empty policy list\n");
        std::exit(2);
    }
    return names;
}

/// The deadline axis both the build and the report walk — one constant so
/// the slack-aware-vs-blind comparison can never look up cells the sweep
/// did not register.
constexpr double kPolicyAblationDeadlines[] = {30.0, 60.0, 120.0, 240.0,
                                               kInf};

Experiment deadline_policy_experiment() {
    Experiment e;
    e.spec.name = "ablation-deadline-policy";
    e.spec.description =
        "Deadline x exit-policy ablation: slack-aware vs slack-blind miss "
        "rate and accuracy (optional positional: policy,policy,...)";
    e.spec.metrics = {"deadline_miss_pct", "acc_all_pct", "iepmj",
                      "processed", "event_latency_s"};
    e.allow_positional = true;
    const auto policies = std::make_shared<std::vector<std::string>>();
    e.build = [policies](const ExperimentSpec&, const SweepCli& options) {
        *policies = parse_policy_list(options);

        PaperSweep sweep;
        sweep.traces = {{"paper-solar", sweep_setup_config(options)}};
        sweep.systems = {{"ours", SystemKind::kOursPolicy,
                          sweep_episodes(options, 12), {}, ""}};
        std::vector<SimPatch> deadline_axis;
        for (const double d : kPolicyAblationDeadlines) {
            deadline_axis.push_back(deadline_patch(d));
        }
        std::vector<SimPatch> policy_axis;
        for (const auto& name : *policies) {
            policy_axis.push_back(policy_patch(name));
        }
        sweep.patches = cross_patches(deadline_axis, policy_axis);
        sweep.replicas = options.replicas;
        sweep.base_seed = options.base_seed;
        return build_paper_scenarios(sweep);
    };
    e.report = [policies](const ExperimentRunContext& ctx) -> int {
        aggregate_table(
            aggregate(ctx.specs, ctx.outcomes),
            {"deadline_miss_pct", "acc_all_pct", "iepmj", "processed",
             "event_latency_s"},
            "Deadline x policy ablation (" +
                std::to_string(ctx.options.replicas) +
                " replica(s); mean ± 95% CI when > 1)")
            .print(std::cout);

        // Canonical (replica-0) slack-aware vs slack-blind comparison per
        // finite-deadline cell: the pairs share everything but slack
        // awareness.
        std::vector<SimPatch> deadline_axis;
        for (const double d : kPolicyAblationDeadlines) {
            deadline_axis.push_back(deadline_patch(d));
        }
        const auto group_for = [&](const std::string& policy,
                                   const SimPatch& ddl) {
            return "paper-solar/ours/" + ddl.label + "+pol-" + policy;
        };
        const auto have = [&](const std::string& name) {
            for (const auto& p : *policies) {
                if (p == name) return true;
            }
            return false;
        };
        const struct {
            const char* blind;
            const char* aware;
        } pairs[] = {{"greedy", "slack-greedy"},
                     {"qlearning", "slack-qlearning"}};
        std::printf("\nslack-aware vs slack-blind, canonical run:\n");
        for (const auto& pair : pairs) {
            if (!have(pair.blind) || !have(pair.aware)) continue;
            for (const auto& ddl : deadline_axis) {
                if (ddl.label == "ddl-none") continue;
                const auto& blind = canonical_metrics(
                    ctx.specs, ctx.outcomes, group_for(pair.blind, ddl));
                const auto& aware = canonical_metrics(
                    ctx.specs, ctx.outcomes, group_for(pair.aware, ddl));
                const double blind_miss = blind.at("deadline_miss_pct");
                const double aware_miss = aware.at("deadline_miss_pct");
                std::printf(
                    "  %-8s %-15s -> %-15s miss %6.1f%% -> %6.1f%%  "
                    "acc(all) %5.1f%% -> %5.1f%%  %s\n",
                    ddl.label.c_str(), pair.blind, pair.aware, blind_miss,
                    aware_miss, blind.at("acc_all_pct"),
                    aware.at("acc_all_pct"),
                    aware_miss < blind_miss   ? "(miss rate down)"
                    : aware_miss > blind_miss ? "(miss rate up)"
                                              : "(tied)");
            }
        }

        std::printf(
            "\nnotes: with no deadline (ddl-none) the slack-aware policies "
            "collapse onto their slack-blind counterparts (infinite slack caps "
            "nothing). Under tight deadlines they commit to shallower exits, "
            "which finishes sooner, spends less per event, and frees the device "
            "for the next arrival — fewer deadline misses at some accuracy "
            "cost.\n");
        return 0;
    };
    return e;
}

// --- harvester-ablation ---------------------------------------------------

int harvester_report(const ExperimentRunContext& ctx) {
    const int code = generic_report(ctx);
    std::printf(
        "\nnotes: every environment is rescaled to the same %.1f mJ harvest "
        "budget, so the comparison isolates income *shape*: rf-bursty "
        "delivers it in short random dwells with dead gaps, ou-wind as a "
        "wandering trickle, duty-cycle as a fixed on/off schedule, and "
        "paper-solar as the diurnal envelope. Sources are spec-level config "
        "(docs/energy-sources.md) — add a [trace.<label>] section to a copy "
        "of examples/experiments/harvester_ablation.ini to test a new "
        "environment without recompiling.\n",
        sweep_setup_config(ctx.options).total_harvest_mj);
    return code;
}

Experiment harvester_experiment() {
    Experiment e;
    e.spec.name = "harvester-ablation";
    e.spec.description =
        "Harvesting-environment ablation: solar / RF-bursty / OU-wind / "
        "duty-cycle sources x every exit policy at one energy budget";
    e.spec.title =
        "Harvesting source x exit policy (same budget, 60 s deadline)";
    const auto trace = [](const char* label, const char* source,
                          energy::TraceParams params) {
        TraceEntry entry;
        entry.label = label;
        entry.config.trace_source = source;
        entry.config.trace_params = std::move(params);
        return entry;
    };
    // Keep these parameter maps in lockstep with the shipped spec
    // examples/experiments/harvester_ablation.ini — the round-trip test
    // pins the expanded grids against each other.
    e.spec.traces = {
        TraceEntry{},  // the canonical paper-solar environment
        trace("rf-bursty", "rf-bursty",
              {{"burst_power_mw", "0.6"},
               {"mean_on_s", "2"},
               {"mean_off_s", "18"}}),
        trace("ou-wind", "ou-wind", {}),
        trace("duty-cycle", "duty-cycle",
              {{"period_s", "120"}, {"duty", "0.25"}}),
    };
    e.spec.systems = {{"ours", "ours-policy", "", 12, 4}};
    e.spec.deadline_s = {60.0};
    e.spec.policies = queueless_policy_names();
    e.spec.metrics = {"iepmj", "deadline_miss_pct", "acc_all_pct",
                      "processed"};
    e.report = harvester_report;
    return e;
}

// --- recovery-ablation ----------------------------------------------------

int recovery_report(const ExperimentRunContext& ctx) {
    const int code = generic_report(ctx);
    std::printf(
        "\nnotes: rec-none is the historical failure-free runtime (deaths "
        "is 0 by construction). The other cells run the same grid under the "
        "power-failure model: while an inference stalls waiting to afford "
        "its next execution unit the powered device drains active_power_mw, "
        "and a sag below death_threshold_mj kills the run. rec-restart then "
        "recomputes everything (wasted_macs_m), rec-ckpt-* persist committed "
        "units to NVM at a per-commit write cost (recovery_mj), and "
        "rec-ckpt-free restores for a small per-unit penalty. Strategies are "
        "spec-level config (docs/recovery.md) — edit the [recovery.*] "
        "sections of examples/experiments/recovery_ablation.ini, or register "
        "a custom strategy, without recompiling.\n");
    return code;
}

Experiment recovery_experiment() {
    Experiment e;
    e.spec.name = "recovery-ablation";
    e.spec.description =
        "Power-failure ablation: recovery strategy (restart / checkpoint / "
        "checkpoint-free) x harvesting source x deadline";
    e.spec.title =
        "Recovery strategy x harvesting source x deadline (greedy policy)";
    const auto trace = [](const char* label, const char* source,
                          energy::TraceParams params) {
        TraceEntry entry;
        entry.label = label;
        entry.config.trace_source = source;
        entry.config.trace_params = std::move(params);
        return entry;
    };
    // Keep traces and cells in lockstep with the shipped spec
    // examples/experiments/recovery_ablation.ini — the round-trip test pins
    // the expanded grids against each other. rf-bursty's dead gaps are what
    // make mid-inference brown-outs likely; paper-solar is the benign
    // diurnal envelope.
    e.spec.traces = {
        TraceEntry{},  // the canonical paper-solar environment
        trace("rf-bursty", "rf-bursty",
              {{"burst_power_mw", "0.6"},
               {"mean_on_s", "2"},
               {"mean_off_s", "18"}}),
    };
    e.spec.systems = {{"ours", "ours-policy", "greedy", 12, 4}};
    e.spec.deadline_s = {120.0, kInf};
    const auto cell = [](const char* label, const char* strategy,
                         sim::CheckpointGranularity granularity) {
        RecoveryCell c;
        c.label = label;
        if (std::string(strategy) == "none") return c;  // disabled baseline
        c.config.enabled = true;
        c.config.strategy = strategy;
        c.config.granularity = granularity;
        // The stalled device's static draw and the brown-out line: deep
        // enough below on_threshold (0.5 mJ) that short income gaps are
        // survivable, high enough that rf-bursty's long gaps kill.
        c.config.active_power_mw = 0.02;
        c.death_threshold_mj = 0.3;
        return c;
    };
    e.spec.recoveries = {
        cell("none", "none", sim::CheckpointGranularity::kPerLayer),
        cell("restart", "restart", sim::CheckpointGranularity::kPerLayer),
        cell("ckpt-layer", "checkpoint",
             sim::CheckpointGranularity::kPerLayer),
        cell("ckpt-exit", "checkpoint", sim::CheckpointGranularity::kPerExit),
        cell("ckpt-free", "checkpoint-free",
             sim::CheckpointGranularity::kPerLayer),
    };
    e.spec.metrics = {"deaths",      "wasted_macs_m", "recovery_mj",
                      "iepmj",       "processed",     "deadline_miss_pct"};
    e.report = recovery_report;
    return e;
}

// --- traffic-ablation -----------------------------------------------------

/// The arrival-cell labels and bounded capacities both the spec and the
/// report walk — one constant so the queue-aware-vs-blind comparison can
/// never look up cells the sweep did not register.
const char* const kTrafficArrivalLabels[] = {"uniform", "flash-crowd", "mmpp",
                                             "diurnal"};
constexpr int kTrafficBoundedCapacities[] = {4, 16};

int traffic_report(const ExperimentRunContext& ctx) {
    const int code = generic_report(ctx);

    // Canonical (replica-0) queue-aware vs queue-blind comparison per
    // arrival cell and bounded capacity: the pairs share everything but the
    // policy's backlog awareness (q0 is the historical unbuffered model,
    // where the two policies coincide by construction).
    std::printf("\nqueue-aware vs queue-blind (ddl60s, canonical run):\n");
    for (const char* arrival : kTrafficArrivalLabels) {
        for (const int capacity : kTrafficBoundedCapacities) {
            const std::string prefix = "paper-solar/ours/arr-" +
                                       std::string(arrival) + "+ddl60s+q" +
                                       std::to_string(capacity);
            const auto& blind = canonical_metrics(ctx.specs, ctx.outcomes,
                                                  prefix +
                                                      "+pol-slack-greedy");
            const auto& aware = canonical_metrics(
                ctx.specs, ctx.outcomes, prefix + "+pol-queue-slack-greedy");
            const double blind_p95 = blind.at("p95_latency_s");
            const double aware_p95 = aware.at("p95_latency_s");
            const double blind_drop = blind.at("dropped");
            const double aware_drop = aware.at("dropped");
            std::printf(
                "  %-12s q%-3d miss %5.1f%% -> %5.1f%%  p95 %6.1fs -> "
                "%6.1fs  dropped %3.0f -> %3.0f  %s\n",
                arrival, capacity, blind.at("deadline_miss_pct"),
                aware.at("deadline_miss_pct"), blind_p95, aware_p95,
                blind_drop, aware_drop,
                aware_p95 < blind_p95 || aware_drop < blind_drop
                    ? "(queue-aware better)"
                : aware_p95 > blind_p95 || aware_drop > blind_drop
                    ? "(queue-aware worse)"
                    : "(tied)");
        }
    }

    std::printf(
        "\nnotes: q0 is the historical unbuffered model (an arrival during a "
        "busy inference is missed outright; dropped stays 0 and the two "
        "policies coincide). A bounded queue converts those misses into "
        "waiting time — p95_latency_s — until it fills, then into explicit "
        "drops. queue-slack-greedy sheds exit depth as the backlog grows, "
        "finishing each inference sooner to drain the queue; under bursty "
        "traffic that lowers tail latency and drop counts at some accuracy "
        "cost. Workloads are spec-level config (docs/workloads.md) — edit "
        "the [arrivals.*] sections of "
        "examples/experiments/traffic_ablation.ini, or register a custom "
        "arrival source, without recompiling.\n");
    return code;
}

Experiment traffic_experiment() {
    Experiment e;
    e.spec.name = "traffic-ablation";
    e.spec.description =
        "Request-traffic ablation: arrival source x bounded queue capacity "
        "x queue-aware vs queue-blind slack policy";
    e.spec.title =
        "Arrival source x queue capacity x policy (60 s deadline)";
    // One multi-exit system; the policy axis picks the exit policy per cell.
    e.spec.systems = {{"ours", "ours-policy", "", 12, 4}};
    const auto cell = [](const char* label, const char* source,
                         sim::ArrivalParams params) {
        ArrivalCell c;
        c.label = label;
        c.source = source;
        c.params = std::move(params);
        return c;
    };
    // Keep cells in lockstep with the shipped spec
    // examples/experiments/traffic_ablation.ini — the round-trip test pins
    // the expanded grids against each other. flash-crowd's oversized bursts
    // are what make the bounded queue (and backlog shedding) bite;
    // mmpp/diurnal probe correlated and slowly-varying load.
    e.spec.arrivals = {
        cell(kTrafficArrivalLabels[0], "uniform", {}),
        cell(kTrafficArrivalLabels[1], "bursty",
             {{"burst_min", "6"}, {"burst_max", "12"}, {"jitter_s", "2"}}),
        cell(kTrafficArrivalLabels[2], "mmpp", {}),
        cell(kTrafficArrivalLabels[3], "diurnal", {}),
    };
    e.spec.deadline_s = {60.0};
    e.spec.queue_capacity = {0, kTrafficBoundedCapacities[0],
                             kTrafficBoundedCapacities[1]};
    e.spec.policies = {"slack-greedy", "queue-slack-greedy"};
    e.spec.metrics = {"deadline_miss_pct", "p95_latency_s", "dropped",
                      "processed", "iepmj"};
    e.report = traffic_report;
    return e;
}

// --- ablation-runtime -----------------------------------------------------

constexpr double kPenalties[] = {0.0, 0.5, 1.0, 2.0};
constexpr double kCapacities[] = {1.5, 3.0, 6.0, 12.0};

Experiment runtime_experiment() {
    Experiment e;
    e.spec.name = "ablation-runtime";
    e.spec.description =
        "Runtime ablations: incremental inference on/off, miss-penalty "
        "sweep, storage-capacity sensitivity";
    e.spec.metrics = {"iepmj", "acc_all_pct", "processed"};
    e.build = [](const ExperimentSpec&, const SweepCli& options) {
        const auto setup_cfg = sweep_setup_config(options);
        const auto setup = std::make_shared<const core::ExperimentSetup>(
            core::make_paper_setup(setup_cfg));
        const TraceSpec trace{"paper-solar", setup_cfg, setup};
        const int eps_full = sweep_episodes(options, 16);
        const int eps_capacity = sweep_episodes(options, 12);

        // Grid 1: incremental inference (the second Q-table) on/off.
        PaperSweep incremental_sweep;
        incremental_sweep.traces = {trace};
        sim::RuntimeConfig no_incremental;
        no_incremental.enable_incremental = false;
        incremental_sweep.systems = {
            {"with incremental (paper)", SystemKind::kOursQLearning,
             eps_full, {}, ""},
            {"without", SystemKind::kOursQLearning, eps_full,
             no_incremental, ""}};
        incremental_sweep.replicas = options.replicas;
        incremental_sweep.base_seed = options.base_seed;
        auto specs = build_paper_scenarios(incremental_sweep);

        // Grid 2: miss-penalty (energy-reservation signal) sweep.
        PaperSweep penalty_sweep;
        penalty_sweep.traces = {trace};
        for (const double penalty : kPenalties) {
            sim::RuntimeConfig cfg;
            cfg.miss_penalty = penalty;
            penalty_sweep.systems.push_back(
                {"penalty " + util::fixed(penalty, 1),
                 SystemKind::kOursQLearning, eps_full, cfg, ""});
        }
        penalty_sweep.replicas = options.replicas;
        penalty_sweep.base_seed = options.base_seed;
        for (auto& spec : build_paper_scenarios(penalty_sweep)) {
            specs.push_back(std::move(spec));
        }

        // Grid 3: storage-capacity axis (QL vs static LUT per capacity).
        PaperSweep capacity_sweep;
        capacity_sweep.traces = {trace};
        capacity_sweep.systems = {
            {"Q-learning", SystemKind::kOursQLearning, eps_capacity, {}, ""},
            {"static LUT", SystemKind::kOursStatic, 0, {}, ""}};
        capacity_sweep.patches.clear();  // only the explicit capacities run
        for (const double capacity : kCapacities) {
            capacity_sweep.patches.push_back(storage_patch(capacity));
        }
        capacity_sweep.replicas = options.replicas;
        capacity_sweep.base_seed = options.base_seed;
        for (auto& spec : build_paper_scenarios(capacity_sweep)) {
            specs.push_back(std::move(spec));
        }
        return specs;
    };
    e.report = [](const ExperimentRunContext& ctx) -> int {
        util::Table t1("Ablation — incremental inference (second Q-table)");
        t1.header(
            {"variant", "IEpmJ", "acc all %", "acc processed %", "processed"});
        for (const char* variant : {"with incremental (paper)", "without"}) {
            const auto& r = canonical_sim(ctx.specs, ctx.outcomes,
                                          std::string("paper-solar/") +
                                              variant);
            t1.row({variant, util::fixed(r.iepmj(), 3),
                    util::fixed(100.0 * r.accuracy_all_events(), 1),
                    util::fixed(100.0 * r.accuracy_processed(), 1),
                    std::to_string(r.processed_count())});
        }
        t1.print(std::cout);

        util::Table t2("Ablation — miss penalty (energy-reservation signal)");
        t2.header({"miss penalty", "IEpmJ", "acc all %", "exit-1 share %"});
        for (const double penalty : kPenalties) {
            const auto& r = canonical_sim(
                ctx.specs, ctx.outcomes,
                "paper-solar/penalty " + util::fixed(penalty, 1));
            const auto hist = r.exit_histogram(3);
            t2.row({util::fixed(penalty, 1), util::fixed(r.iepmj(), 3),
                    util::fixed(100.0 * r.accuracy_all_events(), 1),
                    util::fixed(100.0 * hist[0] /
                                    std::max(r.processed_count(), 1),
                                1)});
        }
        t2.print(std::cout);

        util::Table t3("Ablation — storage capacity (mJ)");
        t3.header(
            {"capacity", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL/LUT"});
        for (const double capacity : kCapacities) {
            const std::string suffix = "/" + storage_patch(capacity).label;
            const auto& ql = canonical_sim(ctx.specs, ctx.outcomes,
                                           "paper-solar/Q-learning" + suffix);
            const auto& lut = canonical_sim(ctx.specs, ctx.outcomes,
                                            "paper-solar/static LUT" + suffix);
            t3.row({util::fixed(capacity, 1), util::fixed(ql.iepmj(), 3),
                    util::fixed(lut.iepmj(), 3),
                    std::to_string(ql.processed_count()) + "/" +
                        std::to_string(lut.processed_count())});
        }
        t3.print(std::cout);

        std::printf(
            "\nnotes: the reservation signal (miss penalty) is what teaches "
            "the runtime to favor cheap exits; with penalty 0 the learner "
            "chases per-event accuracy like the static LUT does.\n");

        print_replica_aggregate(ctx.specs, ctx.outcomes,
                                {"iepmj", "acc_all_pct", "processed"},
                                ctx.options);
        return 0;
    };
    return e;
}

// --- ablation-search ------------------------------------------------------

Experiment search_experiment() {
    Experiment e;
    e.spec.name = "ablation-search";
    e.spec.description =
        "Compression-search algorithm comparison plus the trace-aware-reward "
        "ablation (optional positional: episode count)";
    e.spec.metrics = {"best_racc", "evaluations", "feasible"};
    e.allow_positional = true;
    auto setup = std::make_shared<
        std::shared_ptr<const core::ExperimentSetup>>();
    e.build = [setup](const ExperimentSpec&, const SweepCli& options) {
        // An explicit positional episode count always wins over --quick.
        const int episodes =
            positional_int(options, 0, options.quick ? 40 : 240);

        *setup = std::make_shared<const core::ExperimentSetup>(
            core::make_paper_setup(sweep_setup_config(options)));
        core::SearchConfig cfg;
        cfg.episodes = episodes;
        core::SearchConfig blind_cfg = cfg;
        blind_cfg.trace_aware = false;

        const struct {
            SearchAlgo algo;
            const char* label;
            const core::SearchConfig* config;
        } searches[] = {
            {SearchAlgo::kDdpg, "DDPG (paper)", &cfg},
            {SearchAlgo::kDdpgRefined, "DDPG + refine", &cfg},
            {SearchAlgo::kRandom, "random", &cfg},
            {SearchAlgo::kAnnealing, "annealing", &cfg},
            {SearchAlgo::kDdpgRefined, "DDPG + refine (trace-blind)",
             &blind_cfg},
        };
        std::vector<ScenarioSpec> specs;
        for (const auto& search : searches) {
            for (int replica = 0; replica < options.replicas; ++replica) {
                specs.push_back(make_search_scenario(*setup, search.algo,
                                                     search.label,
                                                     *search.config, replica,
                                                     options.base_seed));
            }
        }
        return specs;
    };
    e.report = [setup](const ExperimentRunContext& ctx) -> int {
        const auto canonical_result = [&](const char* label) {
            for (std::size_t i = 0; i < ctx.specs.size(); ++i) {
                if (ctx.specs[i].group == std::string("search/") + label &&
                    ctx.specs[i].replica == 0) {
                    return std::any_cast<core::SearchResult>(
                        ctx.outcomes[i].payload);
                }
            }
            std::fprintf(stderr, "no search result for %s\n", label);
            std::abort();
        };

        // The deployed evaluation stack (trace-aware reward) for the
        // reference rows and the trace-awareness comparison below.
        const auto& desc = (*setup)->network;
        const core::AccuracyModel oracle(
            desc, {core::kPaperFullPrecisionAcc.begin(),
                   core::kPaperFullPrecisionAcc.end()});
        const core::StaticTraceEvaluator trace_eval(
            (*setup)->trace, (*setup)->events, core::paper_storage_config(),
            core::kEnergyPerMMacMj);
        const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                              core::paper_constraints(),
                                              true);

        util::Table table(
            "Ablation — search algorithms, equal evaluation budget");
        table.header({"algorithm", "evals", "feasible", "best Racc"});
        for (const char* label :
             {"DDPG (paper)", "DDPG + refine", "random", "annealing"}) {
            const auto r = canonical_result(label);
            table.row({label, std::to_string(r.evaluations),
                       r.found_feasible ? "yes" : "no",
                       util::fixed(r.best_reward, 4)});
        }
        table.row(
            {"uniform fit", "1", "yes",
             util::fixed(evaluator.score(core::uniform_baseline_policy()).racc,
                         4)});
        table.row({"reference nonuniform", "1", "yes",
                   util::fixed(
                       evaluator.score(core::reference_nonuniform_policy())
                           .racc,
                       4)});
        table.print(std::cout);

        // --- Trace-awareness ablation ---
        // Search with the plain mean-accuracy reward, then evaluate BOTH
        // winners under the trace objective: ignoring the power trace picks
        // policies whose expensive exits miss events.
        const auto blind_best =
            canonical_result("DDPG + refine (trace-blind)");
        const auto aware_best = canonical_result("DDPG + refine");

        const double blind_under_trace =
            evaluator.score(blind_best.best_policy).racc;
        const double aware_under_trace =
            evaluator.score(aware_best.best_policy).racc;

        util::Table t2(
            "Ablation — power-trace-aware reward (Eq. 10) vs plain mean");
        t2.header({"search reward", "Racc under trace objective"});
        t2.row({"trace-aware (paper)", util::fixed(aware_under_trace, 4)});
        t2.row({"plain mean accuracy", util::fixed(blind_under_trace, 4)});
        t2.print(std::cout);
        std::printf(
            "\ntrace-aware search wins by %+.1f%% on the deployed objective\n",
            100.0 * (aware_under_trace - blind_under_trace) /
                std::max(blind_under_trace, 1e-9));

        print_replica_aggregate(ctx.specs, ctx.outcomes,
                                {"best_racc", "evaluations", "feasible"},
                                ctx.options);
        return 0;
    };
    return e;
}

// --- ablation-trace -------------------------------------------------------

/// Swap the power trace under the deployed system: rescale to the canonical
/// harvest budget and regenerate the canonical event schedule over the new
/// trace's duration.
std::shared_ptr<const core::ExperimentSetup> with_trace(
    const core::ExperimentSetup& base, const core::SetupConfig& cfg,
    energy::PowerTrace trace, const std::string& arrivals,
    std::uint64_t event_seed) {
    auto setup = std::make_shared<core::ExperimentSetup>(base);
    trace.rescale_total_energy(cfg.total_harvest_mj);
    setup->events = sim::generate_arrivals(
        arrivals, {cfg.event_count, trace.duration(), event_seed});
    setup->trace = std::move(trace);
    setup->config.arrival_source = arrivals;
    setup->config.arrival_params.clear();
    return setup;
}

const char* const kTraceLabels[] = {"daylight solar (paper setup)",
                                    "full day incl. night",
                                    "square wave 60s/50%", "constant power"};

const struct ArrivalCase {
    const char* source;  ///< arrival registry name
    const char* label;
} kArrivalCases[] = {{"uniform", "uniform (paper)"},
                     {"poisson", "Poisson"},
                     {"bursty", "bursty 2-5"}};

Experiment trace_experiment() {
    Experiment e;
    e.spec.name = "ablation-trace";
    e.spec.description =
        "Environment robustness: power-trace shapes (solar / night gap / "
        "square / constant) and arrival processes";
    e.spec.metrics = {"iepmj", "processed", "event_latency_s"};
    e.build = [](const ExperimentSpec&, const SweepCli& options) {
        const auto setup_cfg = sweep_setup_config(options);
        const auto base = std::make_shared<const core::ExperimentSetup>(
            core::make_paper_setup(setup_cfg));
        const int episodes = sweep_episodes(options, 12);

        // Trace-shape axis (same harvest budget for every shape).
        energy::SolarConfig full_day;
        full_day.dt_s = 1.0;
        full_day.peak_power_mw = 0.08;
        full_day.time_compression =
            86400.0 / setup_cfg.duration_s;  // night gap
        PaperSweep shape_sweep;
        shape_sweep.traces = {
            {kTraceLabels[0],
             setup_cfg,
             with_trace(*base, setup_cfg, base->trace,
                        "uniform", setup_cfg.event_seed)},
            {kTraceLabels[1],
             setup_cfg,
             with_trace(*base, setup_cfg, energy::make_solar_trace(full_day),
                        "uniform", setup_cfg.event_seed)},
            {kTraceLabels[2],
             setup_cfg,
             with_trace(*base, setup_cfg,
                        energy::PowerTrace::square_wave(
                            0.05, 60.0, 0.5, setup_cfg.duration_s, 1.0),
                        "uniform", setup_cfg.event_seed)},
            {kTraceLabels[3],
             setup_cfg,
             with_trace(*base, setup_cfg,
                        energy::PowerTrace::constant(
                            0.0217, setup_cfg.duration_s, 1.0),
                        "uniform", setup_cfg.event_seed)},
        };
        shape_sweep.systems = {
            {"Q-learning", SystemKind::kOursQLearning, episodes, {}, ""},
            {"static LUT", SystemKind::kOursStatic, 0, {}, ""}};
        shape_sweep.replicas = options.replicas;
        shape_sweep.base_seed = options.base_seed;
        auto specs = build_paper_scenarios(shape_sweep);

        // Arrival-process axis (daylight solar, fresh arrival seed 321).
        PaperSweep arrival_sweep;
        arrival_sweep.traces.clear();  // drop the default paper-solar spec
        for (const auto& c : kArrivalCases) {
            auto setup = std::make_shared<core::ExperimentSetup>(*base);
            setup->events = sim::generate_arrivals(
                c.source,
                {setup_cfg.event_count, base->trace.duration(), 321});
            setup->config.arrival_source = c.source;
            arrival_sweep.traces.push_back(
                {c.label, setup_cfg, std::move(setup)});
        }
        arrival_sweep.systems = shape_sweep.systems;
        arrival_sweep.replicas = options.replicas;
        arrival_sweep.base_seed = options.base_seed;
        for (auto& spec : build_paper_scenarios(arrival_sweep)) {
            specs.push_back(std::move(spec));
        }
        return specs;
    };
    e.report = [](const ExperimentRunContext& ctx) -> int {
        const auto setup_cfg = sweep_setup_config(ctx.options);
        util::Table t1("Ablation — power trace shape (same " +
                       util::fixed(setup_cfg.total_harvest_mj, 1) +
                       " mJ budget)");
        t1.header(
            {"trace", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL", "lat QL"});
        for (const char* label : kTraceLabels) {
            const auto& ql = canonical_sim(ctx.specs, ctx.outcomes,
                                           std::string(label) + "/Q-learning");
            const auto& lut = canonical_sim(ctx.specs, ctx.outcomes,
                                            std::string(label) +
                                                "/static LUT");
            t1.row({label, util::fixed(ql.iepmj(), 3),
                    util::fixed(lut.iepmj(), 3),
                    std::to_string(ql.processed_count()),
                    util::fixed(ql.mean_event_latency_s(), 1) + " s"});
        }
        t1.print(std::cout);

        util::Table t2("Ablation — event arrival process (daylight solar)");
        t2.header(
            {"arrivals", "IEpmJ (QL)", "IEpmJ (LUT)", "processed QL/LUT"});
        for (const auto& c : kArrivalCases) {
            const auto& ql = canonical_sim(ctx.specs, ctx.outcomes,
                                           std::string(c.label) +
                                               "/Q-learning");
            const auto& lut = canonical_sim(ctx.specs, ctx.outcomes,
                                            std::string(c.label) +
                                                "/static LUT");
            t2.row({c.label, util::fixed(ql.iepmj(), 3),
                    util::fixed(lut.iepmj(), 3),
                    std::to_string(ql.processed_count()) + "/" +
                        std::to_string(lut.processed_count())});
        }
        t2.print(std::cout);

        std::printf(
            "\nnotes: the night gap roughly halves IEpmJ for every policy "
            "(half the events arrive with no income and a small buffer); "
            "burstiness favors the learned policy, which holds reserve for "
            "followers.\n");

        print_replica_aggregate(ctx.specs, ctx.outcomes,
                                {"iepmj", "processed", "event_latency_s"},
                                ctx.options);
        return 0;
    };
    return e;
}

}  // namespace

void register_ablation_experiments(
    std::map<std::string, ExperimentFactory>& into) {
    into["harvester-ablation"] = harvester_experiment;
    into["ablation-deadline-policy"] = deadline_policy_experiment;
    into["ablation-runtime"] = runtime_experiment;
    into["ablation-search"] = search_experiment;
    into["ablation-storage-deadline"] = storage_deadline_experiment;
    into["ablation-trace"] = trace_experiment;
    into["recovery-ablation"] = recovery_experiment;
    into["traffic-ablation"] = traffic_experiment;
}

}  // namespace imx::exp::detail
