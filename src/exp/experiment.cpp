#include "exp/experiment.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <iostream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "energy/trace_registry.hpp"
#include "exp/aggregate.hpp"
#include "exp/experiments_builtin.hpp"
#include "exp/journal.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "sim/policies/registry.hpp"
#include "sim/profiler.hpp"
#include "util/contracts.hpp"

namespace imx::exp {

namespace {

std::mutex& registry_mutex() {
    static std::mutex mutex;
    return mutex;
}

/// The registry map. An ordered map so experiment_names() is sorted without
/// a separate pass. Built-ins are seeded on first use by direct calls into
/// the experiments_*.cpp translation units — no static-init-order or
/// dead-translation-unit hazards.
std::map<std::string, ExperimentFactory>& registry_locked() {
    static std::map<std::string, ExperimentFactory> factories = [] {
        std::map<std::string, ExperimentFactory> builtins;
        detail::register_fig_experiments(builtins);
        detail::register_ablation_experiments(builtins);
        return builtins;
    }();
    return factories;
}

[[noreturn]] void unknown_experiment(
    const std::string& name,
    const std::map<std::string, ExperimentFactory>& factories) {
    std::string known;
    for (const auto& [key, unused] : factories) {
        (void)unused;
        if (!known.empty()) known += ", ";
        known += key;
    }
    throw std::invalid_argument("unknown experiment '" + name +
                                "' (registered: " + known + ")");
}

}  // namespace

SystemKind parse_system_kind(const std::string& kind) {
    if (kind == "ours-qlearning") return SystemKind::kOursQLearning;
    if (kind == "ours-static") return SystemKind::kOursStatic;
    if (kind == "ours-policy") return SystemKind::kOursPolicy;
    if (kind == "sonic") return SystemKind::kSonicNet;
    if (kind == "sparse") return SystemKind::kSpArSeNet;
    if (kind == "lenet") return SystemKind::kLeNetCifar;
    throw std::invalid_argument(
        "unknown system kind '" + kind +
        "' (expected ours-qlearning, ours-static, ours-policy, sonic, "
        "sparse, lenet)");
}

core::SetupConfig quick_setup_config(core::SetupConfig config) {
    // Shrink only: a spec-file trace already below the smoke-run scale must
    // not be inflated (stretching it to 4000 s would *add* harvest energy
    // and events, making --quick heavier than the full run). File-backed
    // sources (csv) take their length from the file, not duration_s:
    // scaling their harvest budget would starve the same-length replay
    // instead of shortening it, so quick mode only caps their schedule.
    const double quick_duration_s = 4000.0;
    if (energy::trace_source_uses_context_duration(config.trace_source) &&
        config.duration_s > quick_duration_s) {
        config.total_harvest_mj *= quick_duration_s / config.duration_s;
        config.duration_s = quick_duration_s;
    }
    config.event_count = std::min(config.event_count, 150);
    return config;
}

core::SetupConfig sweep_setup_config(const SweepCli& options) {
    core::SetupConfig config;
    if (options.quick) config = quick_setup_config(config);
    return config;
}

int sweep_episodes(const SweepCli& options, int full_default) {
    return options.quick ? 4 : full_default;
}

SweepCli resolve_options(const ExperimentSpec& spec, const SweepCli& options) {
    SweepCli resolved = options;
    if (!resolved.replicas_given) resolved.replicas = spec.replicas;
    if (resolved.replicas < 1) resolved.replicas = 1;
    if (!resolved.base_seed_given) resolved.base_seed = spec.base_seed;
    return resolved;
}

PaperSweep make_sweep(const ExperimentSpec& spec, const SweepCli& options) {
    const SweepCli resolved = resolve_options(spec, options);
    if (spec.systems.empty()) {
        throw std::invalid_argument("experiment '" + spec.name +
                                    "' declares no [system]");
    }
    const bool has_policy_axis = !spec.policies.empty();
    const bool has_recovery_axis = !spec.recoveries.empty();

    PaperSweep sweep;
    sweep.replicas = resolved.replicas;
    sweep.base_seed = resolved.base_seed;

    sweep.traces.clear();
    for (const auto& trace : spec.traces) {
        if (trace.label.empty()) {
            throw std::invalid_argument("experiment '" + spec.name +
                                        "': trace with empty label");
        }
        // A repeated label would expand to colliding scenario ids/groups:
        // aggregation would silently fold distinct cells together and
        // canonical lookups would only ever see the first.
        for (const auto& existing : sweep.traces) {
            if (existing.label == trace.label) {
                throw std::invalid_argument("experiment '" + spec.name +
                                            "': duplicate trace label '" +
                                            trace.label + "'");
            }
        }
        core::SetupConfig config = trace.config;
        if (resolved.quick) config = quick_setup_config(config);
        sweep.traces.emplace_back(trace.label, config);
    }

    sweep.systems.clear();
    for (const auto& entry : spec.systems) {
        if (entry.label.empty()) {
            throw std::invalid_argument("experiment '" + spec.name +
                                        "': system with empty label");
        }
        for (const auto& existing : sweep.systems) {
            if (existing.label == entry.label) {
                throw std::invalid_argument("experiment '" + spec.name +
                                            "': duplicate system label '" +
                                            entry.label + "'");
            }
        }
        const SystemKind kind = parse_system_kind(entry.kind);
        const bool multi_exit = kind == SystemKind::kOursQLearning ||
                                kind == SystemKind::kOursStatic ||
                                kind == SystemKind::kOursPolicy;
        if (!multi_exit && !entry.policy.empty()) {
            throw std::invalid_argument(
                "system '" + entry.label + "': baseline kind '" + entry.kind +
                "' cannot name an exit policy");
        }
        if (!multi_exit && has_policy_axis) {
            throw std::invalid_argument(
                "system '" + entry.label + "': a [patch.policy] axis cannot "
                "cross a checkpointed baseline (no exit choice to override)");
        }
        if (!multi_exit && has_recovery_axis) {
            throw std::invalid_argument(
                "system '" + entry.label + "': a [recovery.*] axis cannot "
                "cross a checkpointed baseline (it models its own intrinsic "
                "checkpointing)");
        }
        if (kind == SystemKind::kOursPolicy && entry.policy.empty() &&
            !has_policy_axis) {
            throw std::invalid_argument(
                "system '" + entry.label +
                "': kind ours-policy needs a policy name (or a "
                "[patch.policy] axis)");
        }
        if (!entry.policy.empty() && !sim::has_policy(entry.policy)) {
            throw std::invalid_argument("system '" + entry.label +
                                        "': unknown exit policy '" +
                                        entry.policy + "'");
        }
        SystemSpec system;
        system.label = entry.label;
        system.kind = kind;
        system.policy = entry.policy;
        system.train_episodes = resolved.quick ? entry.quick_train_episodes
                                               : entry.train_episodes;
        sweep.systems.push_back(std::move(system));
    }

    // Axis values must be unique: like a duplicate trace label, a repeated
    // value would register two identical grid cells under one group and
    // silently skew the aggregation's replica counts.
    const auto push_unique = [&](std::vector<SimPatch>& axis,
                                 SimPatch patch) {
        for (const auto& existing : axis) {
            if (existing.label == patch.label) {
                throw std::invalid_argument(
                    "duplicate value '" + patch.label +
                    "' on a patch axis of experiment '" + spec.name + "'");
            }
        }
        axis.push_back(std::move(patch));
    };
    std::vector<std::vector<SimPatch>> axes;
    if (!spec.arrivals.empty()) {
        std::vector<SimPatch> axis;
        for (const auto& cell : spec.arrivals) {
            // arrival_patch() trial-builds the source, so unknown names and
            // bad parameters throw here with the axis context.
            push_unique(axis, arrival_patch(cell));
        }
        axes.push_back(std::move(axis));
    }
    if (!spec.storage_mj.empty()) {
        std::vector<SimPatch> axis;
        for (const double capacity : spec.storage_mj) {
            if (!(capacity > 0.0)) {
                throw std::invalid_argument(
                    "storage capacity must be positive, got " +
                    std::to_string(capacity));
            }
            push_unique(axis, storage_patch(capacity));
        }
        axes.push_back(std::move(axis));
    }
    if (!spec.deadline_s.empty()) {
        std::vector<SimPatch> axis;
        for (const double deadline : spec.deadline_s) {
            if (!(deadline > 0.0)) {
                throw std::invalid_argument(
                    "deadline must be positive (or inf), got " +
                    std::to_string(deadline));
            }
            push_unique(axis, deadline_patch(deadline));
        }
        axes.push_back(std::move(axis));
    }
    if (!spec.queue_capacity.empty()) {
        std::vector<SimPatch> axis;
        for (const int capacity : spec.queue_capacity) {
            if (capacity < 0) {
                throw std::invalid_argument(
                    "queue capacity must be >= 0, got " +
                    std::to_string(capacity));
            }
            push_unique(axis, queue_patch(capacity));
        }
        axes.push_back(std::move(axis));
    }
    if (has_policy_axis) {
        std::vector<SimPatch> axis;
        for (const auto& policy : spec.policies) {
            if (!sim::has_policy(policy)) {
                throw std::invalid_argument("unknown exit policy '" + policy +
                                            "' on the [patch.policy] axis");
            }
            push_unique(axis, policy_patch(policy));
        }
        axes.push_back(std::move(axis));
    }
    if (has_recovery_axis) {
        std::vector<SimPatch> axis;
        for (const auto& cell : spec.recoveries) {
            // recovery_patch() trial-builds the strategy, so unknown names
            // and bad cost parameters throw here with the axis context.
            push_unique(axis, recovery_patch(cell));
        }
        axes.push_back(std::move(axis));
    }
    if (!axes.empty()) {
        std::vector<SimPatch> grid = axes.front();
        for (std::size_t i = 1; i < axes.size(); ++i) {
            grid = cross_patches(grid, axes[i]);
        }
        sweep.patches = std::move(grid);
    }
    return sweep;
}

std::vector<ScenarioSpec> expand_experiment(const ExperimentSpec& spec,
                                            const SweepCli& options) {
    return build_paper_scenarios(make_sweep(spec, options));
}

Experiment make_experiment(const std::string& name) {
    ExperimentFactory factory;
    {
        std::lock_guard<std::mutex> lock(registry_mutex());
        const auto& factories = registry_locked();
        const auto it = factories.find(name);
        if (it == factories.end()) unknown_experiment(name, factories);
        factory = it->second;
    }
    Experiment experiment = factory();
    IMX_EXPECTS(!experiment.spec.name.empty());
    return experiment;
}

void register_experiment(const std::string& name, ExperimentFactory factory) {
    IMX_EXPECTS(!name.empty());
    IMX_EXPECTS(factory != nullptr);
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry_locked()[name] = std::move(factory);
}

bool has_experiment(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    return registry_locked().count(name) > 0;
}

std::vector<std::string> experiment_names() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    std::vector<std::string> names;
    for (const auto& [key, unused] : registry_locked()) {
        (void)unused;
        names.push_back(key);
    }
    return names;
}

std::string experiment_description(const std::string& name) {
    return make_experiment(name).spec.description;
}

std::vector<ScenarioSpec> build_experiment_scenarios(
    const Experiment& experiment, const SweepCli& options) {
    const SweepCli resolved = resolve_options(experiment.spec, options);
    if (!experiment.allow_positional) require_no_positional(resolved);
    if (experiment.build) return experiment.build(experiment.spec, resolved);
    return expand_experiment(experiment.spec, resolved);
}

namespace {

void write_csv_if_requested(const SweepCli& resolved,
                            const std::vector<ScenarioSpec>& specs,
                            const std::vector<ScenarioOutcome>& outcomes) {
    if (resolved.csv.empty()) return;
    // A bad path must not lose the sweep results that follow.
    try {
        write_aggregate_csv(resolved.csv, aggregate(specs, outcomes));
        std::printf("aggregate CSV written to %s\n", resolved.csv.c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: %s\n", e.what());
    }
}

/// The --profile epilogue: merged per-phase table to stdout (after the
/// report, so golden-pinned tables stay byte-identical without the flag)
/// plus the BENCH_profile.json artifact CI's perf lane uploads next to
/// BENCH_sweep.json. Format: docs/profiling.md.
void emit_profile(const sim::Profiler& profiler) {
    std::printf("\nsimulator hot-path profile (docs/profiling.md):\n%s",
                profiler.table().c_str());
    const char* path = "BENCH_profile.json";
    std::FILE* file = std::fopen(path, "w");
    if (file == nullptr) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    std::fputs(profiler.json().c_str(), file);
    std::fputc('\n', file);
    std::fclose(file);
    std::printf("profile JSON written to %s\n", path);
}

}  // namespace

int run_experiment(const Experiment& experiment, const SweepCli& options) {
    const SweepCli resolved = resolve_options(experiment.spec, options);
    const auto specs = build_experiment_scenarios(experiment, resolved);

    JournalHeader header;
    header.experiment = experiment.spec.name;
    header.total_specs = specs.size();
    header.shard = resolved.shard;
    header.base_seed = resolved.base_seed;
    header.quick = resolved.quick;
    header.replicas = resolved.replicas;

    if (!resolved.merge.empty()) {
        if (resolved.profile) {
            std::fprintf(stderr,
                         "warning: --profile ignored with --merge (no "
                         "scenarios execute)\n");
        }
        const auto outcomes =
            merge_journal_outcomes(header, specs, resolved.merge);
        write_csv_if_requested(resolved, specs, outcomes);
        const ExperimentRunContext context{experiment.spec, resolved, specs,
                                           outcomes};
        // Journals carry scalar metrics only (no SimResults), so merged runs
        // report through the generic aggregate path — which is exactly what
        // makes the merged table/CSV byte-identical to a single-process run
        // of a spec-file grid.
        return generic_report(context);
    }

    RunnerConfig runner;
    runner.threads = resolved.threads;
    sim::Profiler profiler;
    if (resolved.profile) runner.profiler = &profiler;
    const ShardRunResult shard_run =
        run_shard(specs, header, runner, resolved.journal, resolved.resume);
    if (shard_run.reused > 0) {
        std::fprintf(stderr, "resumed %zu of %zu scenario(s) from %s\n",
                     shard_run.reused, shard_run.specs.size(),
                     resolved.journal.c_str());
    }
    write_csv_if_requested(resolved, shard_run.specs, shard_run.outcomes);
    const ExperimentRunContext context{experiment.spec, resolved,
                                       shard_run.specs, shard_run.outcomes};
    // Custom reports may read per-event SimResults and expect the full grid;
    // a sharded slice or a resume (whose replayed outcomes are metrics-only)
    // falls back to the generic aggregate table. The default unsharded,
    // non-resumed path is bit-for-bit the historical behaviour.
    const bool full_grid =
        resolved.shard.count == 1 && shard_run.reused == 0;
    const int code = full_grid && experiment.report
                         ? experiment.report(context)
                         : generic_report(context);
    if (resolved.profile) emit_profile(profiler);
    return code;
}

int experiment_main(const std::string& name, int argc, char** argv) {
    const SweepCli options = parse_sweep_cli(argc, argv);
    try {
        return run_experiment(make_experiment(name), options);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
}

}  // namespace imx::exp
