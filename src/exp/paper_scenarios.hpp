/// \file
/// \brief Declarative scenario registry for the paper's evaluation grid:
/// power trace x system (ours vs SONIC-style checkpointed baselines) x
/// sim-config patch (storage capacity, deadline, ...) x seed replica,
/// anchored on the canonical setups from core/experiment_setup.
/// build_paper_scenarios() expands the grid into self-contained
/// ScenarioSpecs for the parallel runner; the make_*_scenario factories
/// wrap the search, learning-curve, and exit-accuracy experiments the
/// remaining benches need.
///
/// Replica semantics: replica 0 reproduces the canonical single-run numbers
/// the fig* benches have always printed (event seed 99, Q-learning training
/// schedules 2000+ep, runtime seed from RuntimeConfig); replicas >= 1 derive
/// fresh event-arrival and learning streams from the scenario seed, giving
/// independent samples for the mean/CI aggregation.
#ifndef IMX_EXP_PAPER_SCENARIOS_HPP
#define IMX_EXP_PAPER_SCENARIOS_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment_setup.hpp"
#include "core/search.hpp"
#include "exp/cli.hpp"  // kDefaultBaseSeed
#include "exp/scenario.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/recovery/strategy.hpp"

namespace imx::exp {

enum class SystemKind {
    kOursQLearning,  ///< multi-exit runtime, learned exit policy
    kOursStatic,     ///< multi-exit runtime, static greedy LUT
    kOursPolicy,     ///< multi-exit runtime, policy named by SystemSpec /
                     ///< policy_patch via the sim::policies registry
    kSonicNet,       ///< checkpointed baselines [Gobieski et al.]
    kSpArSeNet,
    kLeNetCifar,
};

struct SystemSpec {
    std::string label;
    SystemKind kind = SystemKind::kOursQLearning;
    int train_episodes = 16;            ///< learning policies only
    sim::RuntimeConfig runtime = {};    ///< learning policies only
    /// Registry name of the exit policy to run (sim::make_policy). Resolved
    /// per scenario: an explicit name (or one injected by policy_patch) wins;
    /// otherwise kOursQLearning implies "qlearning" and kOursStatic implies
    /// "greedy". Must be empty for the checkpointed baseline kinds, and
    /// non-empty (or patched in) for kOursPolicy.
    std::string policy;
};

struct TraceSpec {
    TraceSpec() = default;
    /// `prebuilt` is an optional already-constructed setup; when set,
    /// build_paper_scenarios() shares it instead of building one from
    /// `config` (which is then ignored).
    TraceSpec(std::string label_, core::SetupConfig config_,
              std::shared_ptr<const core::ExperimentSetup> prebuilt_ = nullptr)
        : label(std::move(label_)),
          config(config_),
          prebuilt(std::move(prebuilt_)) {}

    std::string label = "paper-solar";
    core::SetupConfig config = {};
    std::shared_ptr<const core::ExperimentSetup> prebuilt;
};

/// Optional sim-config axis (e.g. storage capacity, deadline sweeps). The
/// patch is applied to copies of both the multi-exit and checkpointed
/// SimConfig before the scenario runs. An empty label means "no patch" and
/// is omitted from scenario ids.
struct SimPatch {
    std::string label;
    std::function<void(sim::SimConfig&)> apply;
    /// Optional setup-level hook, applied once to the cell's copied setup
    /// (after `apply` patched both SimConfigs). Axes that change the
    /// workload itself — e.g. arrival_patch() regenerating the event
    /// schedule — live here; sim-config-only axes leave it empty.
    std::function<void(core::ExperimentSetup&)> apply_setup;
    /// Extra axis labels merged into every member spec's dims (and therefore
    /// into aggregate CSV columns), e.g. {"storage_mj", "3.0"}.
    std::map<std::string, std::string> dims;
    /// Optional exit-policy override (a sim::policies registry name): every
    /// multi-exit "ours" system in the patched cell runs this policy instead
    /// of its kind's default. Empty = no override. Crossing a policy patch
    /// with a checkpointed baseline system is a contract violation (the
    /// baselines have no exit choice to override).
    std::string policy;
};

// --- Patch-axis factories -------------------------------------------------

/// Energy-storage capacity axis (wired through energy::StorageConfig): sets
/// storage.capacity_mj, clamping initial_mj to the new capacity. Labels the
/// cell "capXmJ" with dims {"storage_mj": "X"}.
SimPatch storage_patch(double capacity_mj);

/// Inference-deadline axis: sets sim::SimConfig::deadline_s so the sweep
/// reports a deadline_miss_pct metric and the simulator drops hopelessly
/// late waiting jobs. Labels the cell "ddlXs" with dims {"deadline_s": "X"};
/// an infinite deadline yields the explicit no-deadline cell "ddl-none".
/// \pre deadline_s > 0 (infinity allowed).
SimPatch deadline_patch(double deadline_s);

/// Exit-policy axis: names a sim::policies registry policy (validated at
/// patch construction, so typos fail before the sweep runs) that every
/// "ours" system in the cell must run. Labels the cell "pol-<name>" with
/// dims {"policy": name}. The SimConfig itself is untouched.
SimPatch policy_patch(const std::string& policy_name);

/// One cell of the power-failure/recovery axis: a failure-model
/// configuration plus an optional death-threshold override.
struct RecoveryCell {
    /// Cell label (the axis value, without the "rec-" prefix). Empty derives
    /// one: "none" when the model is disabled, otherwise the strategy name
    /// with a "-layer"/"-exit" granularity suffix (omitted for "restart",
    /// whose granularity is irrelevant).
    std::string label;
    sim::RecoveryConfig config;
    /// Override for energy::StorageConfig::death_threshold_mj; negative
    /// (the default) keeps the storage config's own threshold. Setting it on
    /// a disabled cell is a contract violation (it could never take effect).
    double death_threshold_mj = -1.0;
};

/// Power-failure/recovery axis: patches sim::SimConfig::recovery (and
/// optionally the storage death threshold) onto the multi-exit runtime.
/// Checkpointed baselines in a crossed cell are left untouched — they model
/// their own intrinsic checkpointing. The strategy name and cost parameters
/// are validated at patch construction by trial-building the strategy.
/// Labels the cell "rec-<label>" with dims {"recovery", <label>}.
SimPatch recovery_patch(const RecoveryCell& cell);

/// One cell of the request-workload axis: an arrival registry source plus
/// its parameters.
struct ArrivalCell {
    /// Cell label (the axis value, without the "arr-" prefix). Empty
    /// derives the source name.
    std::string label;
    std::string source = "uniform";  ///< sim arrival-registry name
    sim::ArrivalParams params;
};

/// Request-workload axis: regenerates the cell's event schedule through the
/// named arrival source (sim/arrivals/registry.hpp) over the setup's own
/// trace duration, event count, and event seed, and records the source in
/// the setup config so replicas >= 1 draw independent streams from the same
/// process. The source name and parameters are validated at patch
/// construction by trial-building the source. Labels the cell
/// "arr-<label>" with dims {"arrivals", <label>}.
SimPatch arrival_patch(const ArrivalCell& cell);

/// Bounded-request-queue axis: sets sim::SimConfig::queue_capacity (0 = the
/// historical no-queue model). Labels the cell "qN" with dims
/// {"queue_capacity", "N"}.
/// \pre capacity >= 0.
SimPatch queue_patch(int capacity);

/// Cross product of two patch axes, in a-major order: each combination
/// applies both patches (a's then b's), joins non-empty labels with "+",
/// and merges dims (b wins on key collision; likewise a non-empty policy
/// override in b wins over a's). Use to register e.g. a storage x deadline
/// x policy grid as one PaperSweep patch axis.
std::vector<SimPatch> cross_patches(const std::vector<SimPatch>& a,
                                    const std::vector<SimPatch>& b);

struct PaperSweep {
    std::vector<TraceSpec> traces = {TraceSpec{}};
    std::vector<SystemSpec> systems;  ///< default: paper_systems()
    std::vector<SimPatch> patches = {SimPatch{}};
    int replicas = 1;
    std::uint64_t base_seed = kDefaultBaseSeed;
};

/// The Fig. 5 comparison set: ours (Q-learning) plus the three baselines.
std::vector<SystemSpec> paper_systems(int train_episodes = 16);

/// paper_systems() plus the static-LUT variant of ours (Fig. 7 comparison).
std::vector<SystemSpec> paper_systems_with_static(int train_episodes = 16);

/// Expand the grid. Scenario ids are "trace/system[/patch]#replica"; the
/// group (aggregation key) is the id minus the replica suffix.
std::vector<ScenarioSpec> build_paper_scenarios(const PaperSweep& sweep);

/// Run one system on a prebuilt setup under the replica semantics above.
/// Multi-exit systems resolve their exit policy through the sim::policies
/// registry (SystemSpec::policy, with kOursQLearning defaulting to
/// "qlearning" and kOursStatic to "greedy"); trainable policies get
/// system.train_episodes training episodes first. Exposed for the
/// learning-curve scenarios and targeted tests.
ScenarioOutcome run_system_scenario(const core::ExperimentSetup& setup,
                                    const SystemSpec& system,
                                    const ScenarioContext& ctx,
                                    std::vector<double>* learning_curve = nullptr);

// --- Learning-curve scenarios (fig7a) -------------------------------------

/// A system scenario that additionally records the per-training-episode
/// all-event accuracy (%) as metrics "curve_ep01", "curve_ep02", ... —
/// 1-based and zero-padded, so MetricMap order is episode order — alongside
/// the standard sim metrics. With --replicas N the aggregation therefore
/// yields a mean/CI learning curve per episode. Replica semantics match
/// run_system_scenario(); only Q-learning systems produce curve points.
ScenarioSpec make_learning_curve_scenario(
    std::shared_ptr<const core::ExperimentSetup> setup,
    const SystemSpec& system, const std::string& trace_label = "paper-solar",
    int replica = 0, std::uint64_t base_seed = kDefaultBaseSeed);

// --- Exit-accuracy scenarios (fig1b) --------------------------------------

/// The Fig. 1b compression variants of the deployed multi-exit network.
enum class CompressionVariant { kFullPrecision, kUniform, kNonuniform };

/// A deterministic, simulation-free scenario computing the per-exit oracle
/// accuracy of one compression variant on the paper network, plus its
/// footprint. Metrics: exit1_acc_pct..exit3_acc_pct, total_macs_m, model_kb.
/// Being RNG-free, every replica returns identical numbers.
ScenarioSpec make_exit_accuracy_scenario(CompressionVariant variant,
                                         const std::string& label,
                                         int replica = 0,
                                         std::uint64_t base_seed = kDefaultBaseSeed);

// --- Compression-search scenarios (fig4 / example_compression_search) -----

enum class SearchAlgo { kDdpg, kDdpgRefined, kRandom, kAnnealing };

/// A search scenario: builds its own evaluator stack over the shared setup,
/// runs the algorithm, and returns metrics (best_racc, evaluations,
/// feasible, total_macs_m, model_kb) with the full core::SearchResult in the
/// outcome payload. Replica 0 keeps the canonical SearchConfig seed.
ScenarioSpec make_search_scenario(
    std::shared_ptr<const core::ExperimentSetup> setup, SearchAlgo algo,
    const std::string& label, const core::SearchConfig& config,
    int replica = 0, std::uint64_t base_seed = kDefaultBaseSeed);

}  // namespace imx::exp

#endif  // IMX_EXP_PAPER_SCENARIOS_HPP
