/// \file
/// \brief Shared CLI surface for sweep-driven binaries:
///   [--quick] [--replicas N] [--threads N] [--csv PATH] [--base-seed N]
///   [positional...]
///
/// Flags are consumed; anything else lands in `positional` in order, so
/// callers can accept e.g. an episode count before or after the flags.
/// Unknown `--flags` and value-taking flags with a missing value are hard
/// errors: a misspelled `--thread 4` must not silently become positional[0]
/// and change what the binary computes. The implementation lives in
/// cli.cpp — this header stays declaration-only so the parser is compiled
/// once into the library instead of into every binary.
#ifndef IMX_EXP_CLI_HPP
#define IMX_EXP_CLI_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace imx::exp {

/// The sweep-wide base seed every bench has always run under. CLI overrides
/// (`--base-seed`) re-roll replicated sweeps; this default keeps replica-0
/// outputs bitwise identical to the historical runs.
inline constexpr std::uint64_t kDefaultBaseSeed = 0xD5EEDULL;

struct SweepCli {
    bool quick = false;   ///< smoke mode: shorter trace, fewer episodes
    int replicas = 1;     ///< seed replicas per scenario group
    int threads = 0;      ///< sweep worker threads; 0 = hardware concurrency
    std::string csv;      ///< optional aggregate CSV output path
    /// Sweep base seed threaded into scenario_seed(); the default keeps
    /// every bench's replica-0 output bitwise identical to the historical
    /// runs, `--base-seed N` re-rolls all replica streams.
    std::uint64_t base_seed = kDefaultBaseSeed;
    bool replicas_given = false;   ///< --replicas appeared on the command line
    bool base_seed_given = false;  ///< --base-seed appeared on the command line
    std::vector<std::string> positional;  ///< non-flag arguments, in order
};

/// \brief Parse the shared sweep flags out of argv.
/// \return the parsed options; calls std::exit(2) with a diagnostic on any
///   unknown flag, missing value, or malformed number.
SweepCli parse_sweep_cli(int argc, char** argv);

/// Positional argument `index` as an int, or `fallback` when absent.
/// Non-numeric or out-of-range text is a hard error, like flag parsing.
int positional_int(const SweepCli& options, std::size_t index, int fallback);

/// For binaries that accept no positional arguments: reject strays so a
/// forgotten flag (`bench 8` instead of `bench --replicas 8`) cannot
/// silently run with defaults.
void require_no_positional(const SweepCli& options);

}  // namespace imx::exp

#endif  // IMX_EXP_CLI_HPP
