/// \file
/// \brief Shared CLI surface for sweep-driven binaries:
///   [--quick] [--replicas N] [--threads N] [--csv PATH] [positional...]
///
/// Flags are consumed; anything else lands in `positional` in order, so
/// callers can accept e.g. an episode count before or after the flags.
/// Unknown `--flags` and value-taking flags with a missing value are hard
/// errors: a misspelled `--thread 4` must not silently become positional[0]
/// and change what the binary computes.
#ifndef IMX_EXP_CLI_HPP
#define IMX_EXP_CLI_HPP

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace imx::exp {

struct SweepCli {
    bool quick = false;   ///< smoke mode: shorter trace, fewer episodes
    int replicas = 1;     ///< seed replicas per scenario group
    int threads = 0;      ///< sweep worker threads; 0 = hardware concurrency
    std::string csv;      ///< optional aggregate CSV output path
    std::vector<std::string> positional;  ///< non-flag arguments, in order
};

inline SweepCli parse_sweep_cli(int argc, char** argv) {
    SweepCli options;
    const auto require_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    const auto require_int = [](const char* flag, const char* text) -> int {
        char* end = nullptr;
        errno = 0;
        const long value = std::strtol(text, &end, 10);
        if (end == text || *end != '\0' || errno == ERANGE ||
            value < INT_MIN || value > INT_MAX) {
            std::fprintf(stderr, "error: %s expects an integer, got '%s'\n",
                         flag, text);
            std::exit(2);
        }
        return static_cast<int>(value);
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            options.quick = true;
        } else if (std::strcmp(argv[i], "--replicas") == 0) {
            options.replicas = require_int("--replicas", require_value(i));
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            options.threads = require_int("--threads", require_value(i));
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            options.csv = require_value(i);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "error: unknown option '%s' (expected --quick, "
                         "--replicas N, --threads N, --csv PATH)\n",
                         argv[i]);
            std::exit(2);
        } else {
            options.positional.emplace_back(argv[i]);
        }
    }
    if (options.replicas < 1) options.replicas = 1;
    return options;
}

/// Positional argument `index` as an int, or `fallback` when absent.
/// Non-numeric or out-of-range text is a hard error, like flag parsing.
inline int positional_int(const SweepCli& options, std::size_t index,
                          int fallback) {
    if (index >= options.positional.size()) return fallback;
    const std::string& text = options.positional[index];
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        value < INT_MIN || value > INT_MAX) {
        std::fprintf(stderr, "error: expected an integer argument, got '%s'\n",
                     text.c_str());
        std::exit(2);
    }
    return static_cast<int>(value);
}

/// For binaries that accept no positional arguments: reject strays so a
/// forgotten flag (`bench 8` instead of `bench --replicas 8`) cannot
/// silently run with defaults.
inline void require_no_positional(const SweepCli& options) {
    if (options.positional.empty()) return;
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 options.positional.front().c_str());
    std::exit(2);
}

}  // namespace imx::exp

#endif  // IMX_EXP_CLI_HPP
