/// \file
/// \brief Shared CLI surface for sweep-driven binaries — one flag table,
/// consumed identically by `imx_sweep` and every bench shim:
///
///   flag         value  meaning
///   --quick      —      smoke mode: shorter trace, fewer episodes
///   --replicas   N      seed replicas per scenario group
///   --threads    N      sweep worker threads (0 = hardware concurrency)
///   --csv        PATH   write the aggregate CSV
///   --base-seed  N      sweep base seed (default 0xD5EED re-rolls nothing)
///   --shard      i/N    run only the i-th of N deterministic grid shards
///                       (spec indices j with j % N == i; placement cannot
///                       change numbers — seeds depend only on names)
///   --journal    PATH   stream per-scenario outcomes to a JSONL journal
///   --resume     —      skip scenarios already present in --journal's file
///                       (tolerates a truncated tail from a crashed run)
///   --merge      PATH   repeatable; fold shard journals back into the
///                       exact single-process aggregate table/CSV without
///                       running anything
///   --profile    —      per-phase simulator hot-path breakdown: print the
///                       sim::Profiler table after the report and write
///                       BENCH_profile.json (docs/profiling.md)
///
/// Flags are consumed; anything else lands in `positional` in order, so
/// callers can accept e.g. an episode count before or after the flags.
/// Unknown `--flags`, value-taking flags with a missing value, and
/// malformed `--shard i/N` strings (i >= N, N = 0, non-numeric) are hard
/// errors: a misspelled `--thread 4` must not silently become
/// positional[0] and change what the binary computes. The implementation
/// lives in cli.cpp — this header stays declaration-only so the parser is
/// compiled once into the library instead of into every binary.
#ifndef IMX_EXP_CLI_HPP
#define IMX_EXP_CLI_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace imx::exp {

/// The sweep-wide base seed every bench has always run under. CLI overrides
/// (`--base-seed`) re-roll replicated sweeps; this default keeps replica-0
/// outputs bitwise identical to the historical runs.
inline constexpr std::uint64_t kDefaultBaseSeed = 0xD5EEDULL;

/// One deterministic slice of a sweep grid: shard `index` of `count` runs
/// the spec indices j with j % count == index. The default 0/1 is the whole
/// grid. Because scenario seeds depend only on (base_seed, group, replica),
/// shard composition cannot change any number.
struct ShardSpec {
    int index = 0;
    int count = 1;
};

/// \brief Parse an "i/N" shard string.
/// \throws std::invalid_argument on malformed input: not of the form i/N,
///   N = 0, i >= N, or negative/non-numeric components.
ShardSpec parse_shard_spec(const std::string& text);

/// The spec indices belonging to `shard` out of `total` specs, ascending.
/// Shards with index >= total are empty (an uneven split is legal).
std::vector<std::size_t> shard_indices(std::size_t total,
                                       const ShardSpec& shard);

struct SweepCli {
    bool quick = false;   ///< smoke mode: shorter trace, fewer episodes
    int replicas = 1;     ///< seed replicas per scenario group
    int threads = 0;      ///< sweep worker threads; 0 = hardware concurrency
    std::string csv;      ///< optional aggregate CSV output path
    /// Sweep base seed threaded into scenario_seed(); the default keeps
    /// every bench's replica-0 output bitwise identical to the historical
    /// runs, `--base-seed N` re-rolls all replica streams.
    std::uint64_t base_seed = kDefaultBaseSeed;
    ShardSpec shard;           ///< --shard i/N; default 0/1 = whole grid
    std::string journal;       ///< --journal PATH (JSONL outcome journal)
    bool resume = false;       ///< --resume (requires --journal)
    /// --merge PATH, repeatable: shard journals to fold into the exact
    /// single-process aggregate output. Non-empty selects merge mode — no
    /// scenarios are executed.
    std::vector<std::string> merge;
    /// --profile: run with per-worker sim::Profilers, print the merged
    /// per-phase table after the report, write BENCH_profile.json. Ignored
    /// in --merge mode (nothing executes there).
    bool profile = false;
    bool replicas_given = false;   ///< --replicas appeared on the command line
    bool base_seed_given = false;  ///< --base-seed appeared on the command line
    bool shard_given = false;      ///< --shard appeared on the command line
    std::vector<std::string> positional;  ///< non-flag arguments, in order
};

/// \brief Parse the shared sweep flags out of argv.
/// \return the parsed options; calls std::exit(2) with a diagnostic on any
///   unknown flag, missing value, malformed number or shard string, or
///   inconsistent combination (--resume without --journal; --merge mixed
///   with --shard/--journal/--resume).
SweepCli parse_sweep_cli(int argc, char** argv);

/// Positional argument `index` as an int, or `fallback` when absent.
/// Non-numeric or out-of-range text is a hard error, like flag parsing.
int positional_int(const SweepCli& options, std::size_t index, int fallback);

/// For binaries that accept no positional arguments: reject strays so a
/// forgotten flag (`bench 8` instead of `bench --replicas 8`) cannot
/// silently run with defaults.
void require_no_positional(const SweepCli& options);

}  // namespace imx::exp

#endif  // IMX_EXP_CLI_HPP
