#include "exp/thread_pool.hpp"

#include <utility>

namespace imx::exp {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ with a drained queue
            job = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace imx::exp
