/// \file
/// \brief Fixed-size worker pool for the scenario-sweep engine.
///
/// Deliberately minimal: submit() enqueues fire-and-forget jobs, wait_idle()
/// blocks until every submitted job has finished. Determinism of sweep
/// results does not depend on scheduling order — the runner writes each
/// scenario's outcome into a pre-sized slot — so the pool needs no ordering
/// guarantees beyond "every job runs exactly once".
#ifndef IMX_EXP_THREAD_POOL_HPP
#define IMX_EXP_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace imx::exp {

class ThreadPool {
public:
    /// Spawns `num_threads` workers (minimum 1).
    explicit ThreadPool(std::size_t num_threads);
    ~ThreadPool();
    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a job. Jobs must not throw; wrap fallible work and capture
    /// errors out-of-band (the runner stores std::exception_ptr per slot).
    void submit(std::function<void()> job);

    /// Block until the queue is empty and no worker is mid-job.
    void wait_idle();

    [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

}  // namespace imx::exp

#endif  // IMX_EXP_THREAD_POOL_HPP
