#include "exp/sink.hpp"

#include <utility>

#include "util/contracts.hpp"

namespace imx::exp {

CollectSink::CollectSink(std::size_t expected) { outcomes_.resize(expected); }

void CollectSink::on_outcome(std::size_t spec_index, ScenarioOutcome outcome) {
    if (spec_index >= outcomes_.size()) outcomes_.resize(spec_index + 1);
    outcomes_[spec_index] = std::move(outcome);
}

void CollectSink::finish() { finished_ = true; }

std::vector<ScenarioOutcome> CollectSink::take() {
    return std::move(outcomes_);
}

TeeSink::TeeSink(std::vector<ResultSink*> sinks) : sinks_(std::move(sinks)) {
    for (const ResultSink* sink : sinks_) IMX_EXPECTS(sink != nullptr);
}

void TeeSink::on_outcome(std::size_t spec_index, ScenarioOutcome outcome) {
    if (sinks_.empty()) return;
    for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) {
        sinks_[i]->on_outcome(spec_index, outcome);  // copy
    }
    sinks_.back()->on_outcome(spec_index, std::move(outcome));
}

void TeeSink::finish() {
    for (ResultSink* sink : sinks_) sink->finish();
}

}  // namespace imx::exp
