#include "exp/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <ostream>

#include "energy/trace_registry.hpp"
#include "exp/aggregate.hpp"
#include "exp/experiment.hpp"
#include "sim/arrivals/registry.hpp"
#include "sim/recovery/registry.hpp"
#include "util/table.hpp"

namespace imx::exp {

const sim::SimResult& canonical_sim(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<ScenarioOutcome>& outcomes, const std::string& group) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].group == group && specs[i].replica == 0 &&
            outcomes[i].sim.has_value()) {
            return *outcomes[i].sim;
        }
    }
    std::fprintf(stderr, "no canonical sim result for group %s\n",
                 group.c_str());
    std::abort();
}

const MetricMap& canonical_metrics(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<ScenarioOutcome>& outcomes, const std::string& group) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].group == group && specs[i].replica == 0) {
            return outcomes[i].metrics;
        }
    }
    std::fprintf(stderr, "no canonical outcome for group %s\n", group.c_str());
    std::abort();
}

void print_replica_aggregate(const std::vector<ScenarioSpec>& specs,
                             const std::vector<ScenarioOutcome>& outcomes,
                             const std::vector<std::string>& metric_names,
                             const SweepCli& options) {
    if (options.replicas <= 1) return;
    std::cout << '\n';
    aggregate_table(aggregate(specs, outcomes), metric_names,
                    "seed-replica aggregation (mean ± 95% CI, " +
                        std::to_string(options.replicas) + " replicas)")
        .print(std::cout);
}

std::string vs_paper(double measured, double paper, int precision) {
    return util::fixed(measured, precision) + " (paper " +
           util::fixed(paper, precision) + ")";
}

int generic_report(const ExperimentRunContext& context) {
    const auto& spec = context.spec;
    const std::string title = spec.title.empty() ? spec.name : spec.title;
    aggregate_table(aggregate(context.specs, context.outcomes), spec.metrics,
                    title + " (" + std::to_string(context.options.replicas) +
                        " replica(s); mean ± 95% CI when > 1)")
        .print(std::cout);
    return 0;
}

void print_scenario_grid(const std::vector<ScenarioSpec>& specs,
                         std::ostream& out) {
    util::Table table("expanded scenario grid (dry run — nothing executed)");
    table.header({"id", "seed", "dims"});
    for (const auto& spec : specs) {
        std::string dims;
        for (const auto& [key, value] : spec.dims) {
            if (!dims.empty()) dims += " ";
            dims += key + "=" + value;
        }
        char seed[32];
        std::snprintf(seed, sizeof(seed), "%016llx",
                      static_cast<unsigned long long>(spec.seed));
        table.row({spec.id, seed, dims});
    }
    table.print(out);
    out << specs.size() << " scenario(s)\n";
}

void describe_all(std::FILE* out) {
    std::fprintf(out, "registered experiments:\n");
    for (const auto& name : experiment_names()) {
        std::fprintf(out, "  %-28s %s\n", name.c_str(),
                     experiment_description(name).c_str());
    }
    std::fprintf(out,
                 "\nregistered trace sources (spec `[trace.<label>]` "
                 "sections, docs/energy-sources.md):\n");
    for (const auto& name : energy::trace_source_names()) {
        std::fprintf(out, "  %-28s %s\n", name.c_str(),
                     energy::trace_source_description(name).c_str());
    }
    std::fprintf(out,
                 "\nregistered arrival sources (spec `[arrivals.<label>]` "
                 "sections, docs/workloads.md):\n");
    for (const auto& name : sim::arrival_source_names()) {
        std::fprintf(out, "  %-28s %s\n", name.c_str(),
                     sim::arrival_source_description(name).c_str());
    }
    std::fprintf(out,
                 "\nregistered recovery strategies (spec `[recovery.<label>]` "
                 "sections, docs/recovery.md):\n");
    for (const auto& name : sim::recovery_strategy_names()) {
        std::fprintf(out, "  %-28s %s\n", name.c_str(),
                     sim::recovery_strategy_description(name).c_str());
    }
}

}  // namespace imx::exp
