/// \file
/// \brief Reporting helpers over sweep results: canonical (replica-0)
/// outcome lookup, the seed-replica aggregation table, the generic
/// experiment report, and the --dry-run grid listing.
///
/// These used to live in bench/bench_common.hpp; they moved into the
/// library so registered experiments (src/exp/experiments_*.cpp) can print
/// the exact tables the bench binaries have always printed.
#ifndef IMX_EXP_REPORT_HPP
#define IMX_EXP_REPORT_HPP

#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/scenario.hpp"

namespace imx::exp {

struct ExperimentRunContext;

/// \brief The replica-0 simulation result for a scenario group (the
/// canonical run every figure table is built from).
/// \note Aborts with a diagnostic when the group has no canonical
///   simulation outcome — a grid-construction bug, not a runtime condition.
const sim::SimResult& canonical_sim(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<ScenarioOutcome>& outcomes, const std::string& group);

/// \brief The replica-0 metric map for a scenario group (for
/// simulation-free scenarios, where there is no SimResult to fetch).
const MetricMap& canonical_metrics(const std::vector<ScenarioSpec>& specs,
                                   const std::vector<ScenarioOutcome>& outcomes,
                                   const std::string& group);

/// \brief Print the "mean ± 95% CI" seed-replica aggregation table over the
/// selected metrics; no-op for single-replica runs (where the canonical
/// tables already tell the whole story).
void print_replica_aggregate(const std::vector<ScenarioSpec>& specs,
                             const std::vector<ScenarioOutcome>& outcomes,
                             const std::vector<std::string>& metric_names,
                             const SweepCli& options);

/// "measured (paper X)" cell.
std::string vs_paper(double measured, double paper, int precision = 2);

/// \brief The default experiment report: the aggregate table over the
/// spec's metric selection.
/// \return the process exit code (always 0).
int generic_report(const ExperimentRunContext& context);

/// \brief Print the expanded grid without running it: one line per scenario
/// (id, seed, dims), plus a summary count — the driver's --dry-run output.
void print_scenario_grid(const std::vector<ScenarioSpec>& specs,
                         std::ostream& out);

/// \brief Print every registry a sweep can draw from — experiments, trace
/// sources, arrival sources, recovery strategies — one "  name description"
/// section each with its spec-section/doc heading. This IS the `imx_sweep
/// --list` body (the driver adds only its trailing usage hint), kept in the
/// library so shims and tools list the world identically.
void describe_all(std::FILE* out);

}  // namespace imx::exp

#endif  // IMX_EXP_REPORT_HPP
