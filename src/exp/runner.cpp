#include "exp/runner.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "exp/thread_pool.hpp"
#include "sim/profiler.hpp"
#include "sim/workspace.hpp"

namespace imx::exp {

namespace {

/// Checkout pool of per-worker scenario workspaces (each with its private
/// profiler). The thread pool exposes no worker identity, so workspaces are
/// leased per task from a mutex-guarded freelist instead of indexed by
/// worker: a task checks one out, runs its scenario with exclusive access
/// (confinement), and returns it. Steady state holds exactly one workspace
/// per concurrently running task — i.e. per worker thread — each already
/// warmed to the largest scenario it has seen.
class WorkspacePool {
public:
    explicit WorkspacePool(bool with_profiler)
        : with_profiler_(with_profiler) {}

    struct Lease {
        sim::ScenarioWorkspace workspace;
        sim::Profiler profiler;
    };

    Lease* acquire() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!free_.empty()) {
                Lease* lease = free_.back();
                free_.pop_back();
                return lease;
            }
        }
        auto lease = std::make_unique<Lease>();
        if (with_profiler_) lease->workspace.profiler = &lease->profiler;
        Lease* raw = lease.get();
        std::lock_guard<std::mutex> lock(mutex_);
        all_.push_back(std::move(lease));
        return raw;
    }

    void release(Lease* lease) {
        std::lock_guard<std::mutex> lock(mutex_);
        free_.push_back(lease);
    }

    /// Fold every workspace's profiler into `target` (post-sweep, after
    /// wait_idle — no leases are outstanding).
    void merge_profiles(sim::Profiler& target) {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& lease : all_) target.merge(lease->profiler);
    }

private:
    bool with_profiler_;
    std::mutex mutex_;
    std::vector<std::unique_ptr<Lease>> all_;
    std::vector<Lease*> free_;
};

}  // namespace

void run_sweep(const std::vector<ScenarioSpec>& specs, ResultSink& sink,
               const RunnerConfig& config) {
    if (specs.empty()) {
        sink.finish();
        return;
    }

    std::size_t threads = config.threads > 0
                              ? static_cast<std::size_t>(config.threads)
                              : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, specs.size());

    WorkspacePool workspaces(config.profiler != nullptr);

    // Completed-but-undelivered outcomes wait in their slots; the cursor
    // walks them in index order so the sink sees a deterministic stream.
    // A slot is released as soon as it is delivered, bounding memory to the
    // out-of-order window instead of the whole grid.
    std::vector<std::optional<ScenarioOutcome>> slots(specs.size());
    std::vector<std::exception_ptr> errors(specs.size());
    std::mutex delivery_mutex;
    std::size_t cursor = 0;
    bool blocked = false;  // first error (in index order) stops the stream

    ThreadPool pool(threads);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        pool.submit([&specs, &sink, &slots, &errors, &delivery_mutex, &cursor,
                     &blocked, &workspaces, i] {
            std::optional<ScenarioOutcome> outcome;
            std::exception_ptr error;
            WorkspacePool::Lease* lease = workspaces.acquire();
            try {
                ScenarioContext ctx;
                ctx.seed = specs[i].seed;
                ctx.replica = specs[i].replica;
                ctx.workspace = &lease->workspace;
                outcome = specs[i].run(ctx);
                if (lease->workspace.profiler != nullptr) {
                    lease->workspace.profiler->count_scenario();
                }
            } catch (...) {
                error = std::current_exception();
            }
            workspaces.release(lease);

            std::lock_guard<std::mutex> lock(delivery_mutex);
            slots[i] = std::move(outcome);
            errors[i] = error;
            while (!blocked && cursor < specs.size() &&
                   (slots[cursor].has_value() || errors[cursor])) {
                if (errors[cursor]) {
                    blocked = true;
                    break;
                }
                try {
                    sink.on_outcome(cursor, std::move(*slots[cursor]));
                } catch (...) {
                    // A sink failure (e.g. journal disk full) is surfaced
                    // like a scenario failure at the same index.
                    errors[cursor] = std::current_exception();
                    blocked = true;
                    break;
                }
                slots[cursor].reset();
                ++cursor;
            }
        });
    }
    pool.wait_idle();

    if (config.profiler != nullptr) {
        workspaces.merge_profiles(*config.profiler);
    }

    for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }
    sink.finish();
}

std::vector<ScenarioOutcome> run_sweep(const std::vector<ScenarioSpec>& specs,
                                       const RunnerConfig& config) {
    CollectSink sink(specs.size());
    run_sweep(specs, sink, config);
    return sink.take();
}

}  // namespace imx::exp
