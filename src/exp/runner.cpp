#include "exp/runner.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "exp/thread_pool.hpp"

namespace imx::exp {

std::vector<ScenarioOutcome> run_sweep(const std::vector<ScenarioSpec>& specs,
                                       const RunnerConfig& config) {
    std::vector<ScenarioOutcome> results(specs.size());
    if (specs.empty()) return results;

    std::size_t threads = config.threads > 0
                              ? static_cast<std::size_t>(config.threads)
                              : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, specs.size());

    std::vector<std::exception_ptr> errors(specs.size());
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        pool.submit([&specs, &results, &errors, i] {
            try {
                ScenarioContext ctx;
                ctx.seed = specs[i].seed;
                ctx.replica = specs[i].replica;
                results[i] = specs[i].run(ctx);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.wait_idle();

    for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }
    return results;
}

}  // namespace imx::exp
