#include "exp/runner.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "exp/thread_pool.hpp"

namespace imx::exp {

void run_sweep(const std::vector<ScenarioSpec>& specs, ResultSink& sink,
               const RunnerConfig& config) {
    if (specs.empty()) {
        sink.finish();
        return;
    }

    std::size_t threads = config.threads > 0
                              ? static_cast<std::size_t>(config.threads)
                              : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, specs.size());

    // Completed-but-undelivered outcomes wait in their slots; the cursor
    // walks them in index order so the sink sees a deterministic stream.
    // A slot is released as soon as it is delivered, bounding memory to the
    // out-of-order window instead of the whole grid.
    std::vector<std::optional<ScenarioOutcome>> slots(specs.size());
    std::vector<std::exception_ptr> errors(specs.size());
    std::mutex delivery_mutex;
    std::size_t cursor = 0;
    bool blocked = false;  // first error (in index order) stops the stream

    ThreadPool pool(threads);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        pool.submit([&specs, &sink, &slots, &errors, &delivery_mutex, &cursor,
                     &blocked, i] {
            std::optional<ScenarioOutcome> outcome;
            std::exception_ptr error;
            try {
                ScenarioContext ctx;
                ctx.seed = specs[i].seed;
                ctx.replica = specs[i].replica;
                outcome = specs[i].run(ctx);
            } catch (...) {
                error = std::current_exception();
            }

            std::lock_guard<std::mutex> lock(delivery_mutex);
            slots[i] = std::move(outcome);
            errors[i] = error;
            while (!blocked && cursor < specs.size() &&
                   (slots[cursor].has_value() || errors[cursor])) {
                if (errors[cursor]) {
                    blocked = true;
                    break;
                }
                try {
                    sink.on_outcome(cursor, std::move(*slots[cursor]));
                } catch (...) {
                    // A sink failure (e.g. journal disk full) is surfaced
                    // like a scenario failure at the same index.
                    errors[cursor] = std::current_exception();
                    blocked = true;
                    break;
                }
                slots[cursor].reset();
                ++cursor;
            }
        });
    }
    pool.wait_idle();

    for (const auto& error : errors) {
        if (error) std::rethrow_exception(error);
    }
    sink.finish();
}

std::vector<ScenarioOutcome> run_sweep(const std::vector<ScenarioSpec>& specs,
                                       const RunnerConfig& config) {
    CollectSink sink(specs.size());
    run_sweep(specs, sink, config);
    return sink.take();
}

}  // namespace imx::exp
