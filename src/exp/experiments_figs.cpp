/// \file
/// \brief Built-in figure experiments. Each registration carries the exact
/// grid and report the corresponding bench binary has always produced —
/// the bench mains are now one-line shims over experiment_main(), and the
/// tables here must stay byte-identical to the pre-registry output
/// (replica-0 pins in tests/test_exp_axes.cpp).
#include "exp/experiments_builtin.hpp"

#include <any>
#include <cstdio>
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "compress/fit.hpp"
#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/search.hpp"
#include "exp/aggregate.hpp"
#include "exp/report.hpp"
#include "util/table.hpp"

namespace imx::exp::detail {

namespace {

/// The Fig. 5 comparison set as declarative entries (paper_systems()).
std::vector<SystemEntry> paper_system_entries() {
    return {{"Our Approach", "ours-qlearning", "", 16, 4},
            {"SonicNet", "sonic", "", 0, 0},
            {"SpArSeNet", "sparse", "", 0, 0},
            {"LeNet-Cifar", "lenet", "", 0, 0}};
}

/// The trace entry every paper bench sweeps (canonical setup; quick mode
/// shrinks it at expansion time).
core::SetupConfig report_setup_config(const ExperimentRunContext& ctx) {
    core::SetupConfig config = ctx.spec.traces.front().config;
    if (ctx.options.quick) config = quick_setup_config(config);
    return config;
}

// --- fig5 -----------------------------------------------------------------

int fig5_report(const ExperimentRunContext& ctx) {
    const std::string prefix = ctx.spec.traces.front().label + "/";
    const auto config = report_setup_config(ctx);

    struct Row {
        const char* name;
        double paper_iepmj;
        double paper_acc_all;
        double paper_acc_proc;
    };
    const Row rows[] = {
        {"Our Approach", 0.89, 50.1, 65.4},
        {"SonicNet", 0.25, 14.0, 75.4},
        {"SpArSeNet", 0.05, 2.6, 82.7},
        {"LeNet-Cifar", 0.70, 39.2, 74.7},
    };

    util::Table table("Fig. 5 — IEpmJ and Sec. V-C accuracy, measured (paper)");
    table.header({"system", "IEpmJ", "acc all events %", "acc processed %",
                  "processed/" + std::to_string(config.event_count)});
    for (const Row& row : rows) {
        const auto& r = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + row.name);
        table.row({row.name,
                   vs_paper(r.iepmj(), row.paper_iepmj),
                   vs_paper(100.0 * r.accuracy_all_events(),
                            row.paper_acc_all, 1),
                   vs_paper(100.0 * r.accuracy_processed(),
                            row.paper_acc_proc, 1),
                   std::to_string(r.processed_count())});
    }
    table.print(std::cout);

    std::cout << "\nIEpmJ bars:\n";
    for (const Row& row : rows) {
        const auto& r = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + row.name);
        std::printf("%-12s |%s| %.3f\n", row.name,
                    util::bar(r.iepmj(), 1.0, 40).c_str(), r.iepmj());
    }

    const auto& ours = canonical_sim(ctx.specs, ctx.outcomes,
                                     prefix + "Our Approach");
    const auto& sonic = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + "SonicNet");
    const auto& sparse = canonical_sim(ctx.specs, ctx.outcomes,
                                       prefix + "SpArSeNet");
    const auto& lenet = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + "LeNet-Cifar");
    std::printf(
        "\nimprovement factors (IEpmJ): ours/Sonic %.1fx (paper 3.6x), "
        "ours/SpArSe %.1fx (paper 18.9x), ours/LeNet %.2fx (paper 1.28x)\n",
        ours.iepmj() / sonic.iepmj(), ours.iepmj() / sparse.iepmj(),
        ours.iepmj() / lenet.iepmj());
    std::printf("harvested energy over the run: %.1f mJ across %d events\n",
                ours.total_harvested_mj, ours.total_events());

    print_replica_aggregate(
        ctx.specs, ctx.outcomes,
        {"iepmj", "acc_all_pct", "acc_processed_pct", "processed"},
        ctx.options);
    return 0;
}

Experiment fig5_experiment() {
    Experiment e;
    e.spec.name = "fig5-iepmj";
    e.spec.description =
        "Fig. 5 IEpmJ + Sec. V-C accuracy: ours vs the three checkpointed "
        "baselines on the paper solar trace";
    e.spec.systems = paper_system_entries();
    e.spec.metrics = {"iepmj", "acc_all_pct", "acc_processed_pct",
                      "processed"};
    e.report = fig5_report;
    return e;
}

// --- latency-table --------------------------------------------------------

int latency_report(const ExperimentRunContext& ctx) {
    const std::string prefix = ctx.spec.traces.front().label + "/";

    struct Row {
        const char* name;
        double paper_event_latency;
    };
    const Row rows[] = {
        {"Our Approach", 18.0},
        {"SonicNet", 139.9},
        {"SpArSeNet", 183.4},
        {"LeNet-Cifar", 56.7},
    };

    util::Table table("Sec. V-D — latency (time units of 1 s), measured (paper)");
    table.header({"system", "per-event latency", "per-inference latency",
                  "mean MACs/inference (M)"});
    for (const Row& row : rows) {
        const auto& r = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + row.name);
        table.row({row.name,
                   vs_paper(r.mean_event_latency_s(),
                            row.paper_event_latency, 1),
                   util::fixed(r.mean_inference_latency_s(), 1),
                   util::fixed(r.mean_inference_macs() / 1e6, 3)});
    }
    table.print(std::cout);

    const auto& ours = canonical_sim(ctx.specs, ctx.outcomes,
                                     prefix + "Our Approach");
    const auto& sonic = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + "SonicNet");
    const auto& sparse = canonical_sim(ctx.specs, ctx.outcomes,
                                       prefix + "SpArSeNet");
    const auto& lenet = canonical_sim(ctx.specs, ctx.outcomes,
                                      prefix + "LeNet-Cifar");
    std::printf(
        "\nper-event latency improvement: vs SonicNet %.1fx (paper 7.8x), "
        "vs SpArSeNet %.1fx (paper 10.2x), vs LeNet-Cifar %.2fx (paper 3.15x)\n",
        sonic.mean_event_latency_s() / ours.mean_event_latency_s(),
        sparse.mean_event_latency_s() / ours.mean_event_latency_s(),
        lenet.mean_event_latency_s() / ours.mean_event_latency_s());
    std::printf(
        "note: SpArSeNet's absolute latency exceeds the paper's 183.4 in this "
        "calibration (its 17.1 mJ inferences only complete near solar noon); "
        "the ordering and all other factors match. See EXPERIMENTS.md.\n");

    print_replica_aggregate(
        ctx.specs, ctx.outcomes,
        {"event_latency_s", "inference_latency_s", "inference_macs_m"},
        ctx.options);
    return 0;
}

Experiment latency_experiment() {
    Experiment e;
    e.spec.name = "latency-table";
    e.spec.description =
        "Sec. V-D per-event / per-inference latency comparison: ours vs the "
        "three checkpointed baselines";
    e.spec.systems = paper_system_entries();
    e.spec.metrics = {"event_latency_s", "inference_latency_s",
                      "inference_macs_m"};
    e.report = latency_report;
    return e;
}

// --- fig7b ----------------------------------------------------------------

int fig7b_report(const ExperimentRunContext& ctx) {
    const std::string prefix = ctx.spec.traces.front().label + "/";

    const auto& learned = canonical_sim(ctx.specs, ctx.outcomes,
                                        prefix + "Q-learning");
    const auto& lut = canonical_sim(ctx.specs, ctx.outcomes,
                                    prefix + "static LUT");
    const int n = learned.total_events();

    const auto hist_q = learned.exit_histogram(3);
    const auto hist_lut = lut.exit_histogram(3);

    const double paper_q[3] = {71.0, 2.8, 11.4};
    const double paper_lut[3] = {57.6, 3.8, 15.2};

    util::Table table("Fig. 7b — processed events per exit, measured (paper %)");
    table.header({"exit", "Q-learning", "Q %", "static LUT", "LUT %"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        table.row({"exit " + std::to_string(e + 1),
                   std::to_string(hist_q[i]),
                   vs_paper(100.0 * hist_q[i] / n, paper_q[e], 1),
                   std::to_string(hist_lut[i]),
                   vs_paper(100.0 * hist_lut[i] / n, paper_lut[e], 1)});
    }
    table.row({"total processed", std::to_string(learned.processed_count()), "",
               std::to_string(lut.processed_count()), ""});
    table.print(std::cout);

    std::printf(
        "\nQ-learning processes %+.1f%% events vs static LUT (paper: +11.2%%)\n",
        100.0 *
            (learned.processed_count() - lut.processed_count()) /
            static_cast<double>(lut.processed_count()));
    std::printf(
        "exit-1 share of processed events: Q %.1f%% vs LUT %.1f%% — the "
        "learned policy shifts toward the cheap exit (paper Fig. 7b)\n",
        100.0 * hist_q[0] / learned.processed_count(),
        100.0 * hist_lut[0] / lut.processed_count());

    print_replica_aggregate(ctx.specs, ctx.outcomes,
                            {"processed", "acc_all_pct", "iepmj"},
                            ctx.options);
    return 0;
}

Experiment fig7b_experiment() {
    Experiment e;
    e.spec.name = "fig7b-exit-distribution";
    e.spec.description =
        "Fig. 7b processed events per exit: learned Q-policy vs static LUT";
    e.spec.systems = {{"Q-learning", "ours-qlearning", "", 16, 4},
                      {"static LUT", "ours-static", "", 0, 0}};
    e.spec.metrics = {"processed", "acc_all_pct", "iepmj"};
    e.report = fig7b_report;
    return e;
}

// --- fig1b ----------------------------------------------------------------

int fig1b_report(const ExperimentRunContext& ctx) {
    const auto& full =
        canonical_metrics(ctx.specs, ctx.outcomes, "fig1b/full-precision");
    const auto& uni = canonical_metrics(ctx.specs, ctx.outcomes,
                                        "fig1b/uniform");
    const auto& non = canonical_metrics(ctx.specs, ctx.outcomes,
                                        "fig1b/nonuniform");
    const auto exit_acc = [](const MetricMap& m, int e) {
        return m.at("exit" + std::to_string(e + 1) + "_acc_pct");
    };

    util::Table table(
        "Fig. 1b — per-exit accuracy (%), measured (paper)");
    table.header({"exit", "full precision", "uniform", "nonuniform"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        table.row({"exit " + std::to_string(e + 1),
                   vs_paper(exit_acc(full, e),
                            core::kPaperFullPrecisionAcc[i], 1),
                   vs_paper(exit_acc(uni, e), core::kPaperUniformAcc[i],
                            1),
                   vs_paper(exit_acc(non, e),
                            core::kPaperNonuniformAcc[i], 1)});
    }
    table.print(std::cout);

    std::cout << "\nbars (55..75 %):\n";
    for (int e = 0; e < 3; ++e) {
        auto bar_of = [](double v) { return util::bar(v - 55.0, 20.0, 36); };
        std::printf("exit %d full    |%s| %.1f\n", e + 1,
                    bar_of(exit_acc(full, e)).c_str(), exit_acc(full, e));
        std::printf("exit %d uniform |%s| %.1f\n", e + 1,
                    bar_of(exit_acc(uni, e)).c_str(), exit_acc(uni, e));
        std::printf("exit %d nonunif |%s| %.1f\n\n", e + 1,
                    bar_of(exit_acc(non, e)).c_str(), exit_acc(non, e));
    }

    std::printf("constraints: FLOPs %.3fM (uniform) / %.3fM (nonuniform) "
                "<= %.2fM target; size %.1f / %.1f <= %.1f KB target\n",
                uni.at("total_macs_m"), non.at("total_macs_m"),
                core::kFlopsTargetMacs / 1e6, uni.at("model_kb"),
                non.at("model_kb"), core::kSizeTargetBytes / 1024.0);
    return 0;
}

Experiment fig1b_experiment() {
    Experiment e;
    e.spec.name = "fig1b-exit-accuracy";
    e.spec.description =
        "Fig. 1b per-exit accuracy under full-precision / uniform / "
        "nonuniform compression (RNG-free)";
    e.spec.metrics = {"exit1_acc_pct", "exit2_acc_pct", "exit3_acc_pct",
                      "total_macs_m", "model_kb"};
    e.build = [](const ExperimentSpec&, const SweepCli& options) {
        struct Variant {
            CompressionVariant kind;
            const char* label;
        };
        const Variant variants[] = {
            {CompressionVariant::kFullPrecision, "full-precision"},
            {CompressionVariant::kUniform, "uniform"},
            {CompressionVariant::kNonuniform, "nonuniform"},
        };
        std::vector<ScenarioSpec> specs;
        for (const auto& variant : variants) {
            for (int replica = 0; replica < options.replicas; ++replica) {
                specs.push_back(make_exit_accuracy_scenario(
                    variant.kind, variant.label, replica, options.base_seed));
            }
        }
        return specs;
    };
    e.report = fig1b_report;
    return e;
}

// --- fig4 -----------------------------------------------------------------

Experiment fig4_experiment() {
    Experiment e;
    e.spec.name = "fig4-compression-policy";
    e.spec.description =
        "Fig. 4 layer-wise compression policy from the trace-aware DDPG "
        "search (optional positional: episode count)";
    e.spec.metrics = {"best_racc", "evaluations", "feasible", "total_macs_m",
                      "model_kb"};
    e.allow_positional = true;
    // The search setup is built once in `build` and shared with `report`
    // (the Fig. 4 tables need the layer table the searched policy indexes).
    auto setup = std::make_shared<
        std::shared_ptr<const core::ExperimentSetup>>();
    e.build = [setup](const ExperimentSpec&, const SweepCli& options) {
        // An explicit positional episode count always wins over --quick.
        const int episodes =
            positional_int(options, 0, options.quick ? 60 : 300);
        *setup = std::make_shared<const core::ExperimentSetup>(
            core::make_paper_setup(sweep_setup_config(options)));
        core::SearchConfig cfg;
        cfg.episodes = episodes;
        std::vector<ScenarioSpec> specs;
        for (int replica = 0; replica < options.replicas; ++replica) {
            specs.push_back(make_search_scenario(*setup,
                                                 SearchAlgo::kDdpgRefined,
                                                 "ddpg-refined", cfg, replica,
                                                 options.base_seed));
        }
        return specs;
    };
    e.report = [setup](const ExperimentRunContext& ctx) -> int {
        const auto& desc = (*setup)->network;
        // The canonical (replica 0) policy feeds the Fig. 4 tables below.
        const auto result =
            std::any_cast<core::SearchResult>(ctx.outcomes.front().payload);

        if (!result.found_feasible) {
            std::printf("search found no feasible policy (unexpected)\n");
            return 1;
        }
        const auto& policy = result.best_policy;

        util::Table table(
            "Fig. 4 — layer-wise compression policy at 1.15 MFLOP / 16 KB");
        table.header({"layer", "preserve ratio", "", "w bits", "a bits"});
        for (std::size_t l = 0; l < desc.num_layers(); ++l) {
            table.row({desc.layers[l].name,
                       util::fixed(policy[l].preserve_ratio, 2),
                       util::bar(policy[l].preserve_ratio, 1.0, 20),
                       std::to_string(policy[l].weight_bits),
                       std::to_string(policy[l].activation_bits)});
        }
        table.print(std::cout);

        const core::AccuracyModel oracle(
            desc, {core::kPaperFullPrecisionAcc.begin(),
                   core::kPaperFullPrecisionAcc.end()});
        const auto acc = oracle.exit_accuracy(policy);
        std::printf(
            "\nsearched policy: Racc %.4f | exits %.1f / %.1f / %.1f %% | "
            "%.3fM MACs (target %.2fM) | %.1f KB (target %.1f KB)\n",
            result.best_reward, acc[0], acc[1], acc[2],
            static_cast<double>(compress::total_macs(desc, policy)) / 1e6,
            core::kFlopsTargetMacs / 1e6,
            compress::model_bytes(desc, policy) / 1024.0,
            core::kSizeTargetBytes / 1024.0);

        // Qualitative Fig. 4 shape checks the paper reports in prose.
        double conv_bits = 0.0;
        int conv_count = 0;
        for (std::size_t l = 0; l < desc.num_layers(); ++l) {
            if (desc.layers[l].kind == compress::LayerKind::kConv) {
                conv_bits += policy[l].weight_bits;
                ++conv_count;
            }
        }
        const int fc_b21_bits =
            policy[static_cast<std::size_t>(desc.layer_index("FC-B21"))]
                .weight_bits;
        const int fc_b31_bits =
            policy[static_cast<std::size_t>(desc.layer_index("FC-B31"))]
                .weight_bits;
        std::printf(
            "shape: mean conv weight bits %.1f (paper: 8); large FCs FC-B21=%d, "
            "FC-B31=%d bits (paper: 1)\n",
            conv_bits / conv_count, fc_b21_bits, fc_b31_bits);
        std::printf("search evaluations: %d\n", result.evaluations);

        print_replica_aggregate(ctx.specs, ctx.outcomes,
                                {"best_racc", "evaluations", "feasible",
                                 "total_macs_m", "model_kb"},
                                ctx.options);
        return 0;
    };
    return e;
}

// --- fig6 -----------------------------------------------------------------

Experiment fig6_experiment() {
    Experiment e;
    e.spec.name = "fig6-flops";
    e.spec.description =
        "Fig. 6 per-exit FLOPs before/after nonuniform compression plus the "
        "per-inference average under the learned runtime";
    e.spec.metrics = {"inference_macs_m", "iepmj", "processed"};
    auto setup = std::make_shared<
        std::shared_ptr<const core::ExperimentSetup>>();
    e.build = [setup](const ExperimentSpec&, const SweepCli& options) {
        // Built once, shared with the report via TraceSpec::prebuilt.
        *setup = std::make_shared<const core::ExperimentSetup>(
            core::make_paper_setup(sweep_setup_config(options)));
        PaperSweep sweep;
        sweep.traces = {{"paper-solar", {}, *setup}};
        sweep.systems = {{"Our Approach", SystemKind::kOursQLearning,
                          sweep_episodes(options, 16), {}, ""}};
        sweep.replicas = options.replicas;
        sweep.base_seed = options.base_seed;
        return build_paper_scenarios(sweep);
    };
    e.report = [setup](const ExperimentRunContext& ctx) -> int {
        const auto& desc = (*setup)->network;
        const auto full = compress::Policy::full_precision(desc.num_layers());
        const auto before = compress::per_exit_macs(desc, full);
        const auto after =
            compress::per_exit_macs(desc, (*setup)->deployed_policy);

        const double paper_ratio[3] = {0.67, 0.44, 0.31};

        util::Table table("Fig. 6 — per-exit FLOPs before/after compression");
        table.header({"exit", "before (MFLOPs)", "after (MFLOPs)",
                      "ratio, measured (paper)"});
        for (int e2 = 0; e2 < 3; ++e2) {
            const auto i = static_cast<std::size_t>(e2);
            const double ratio = static_cast<double>(after[i]) /
                                 static_cast<double>(before[i]);
            table.row({"exit " + std::to_string(e2 + 1),
                       util::fixed(static_cast<double>(before[i]) / 1e6, 4),
                       util::fixed(static_cast<double>(after[i]) / 1e6, 4),
                       vs_paper(ratio, paper_ratio[e2])});
        }
        table.row({"SonicNet", "2.0000", "-", "-"});
        table.row({"SpArSeNet", "11.4000", "-", "-"});
        table.row({"LeNet-Cifar", "0.7200", "-", "-"});
        table.print(std::cout);

        // Per-inference FLOPs average under the learned runtime (the paper's
        // "Aver." bar and the 4.1x / 23.2x / 0.46x annotations).
        const auto groups = aggregate(ctx.specs, ctx.outcomes);
        const double avg_macs =
            groups.front().metrics.at("inference_macs_m").mean * 1e6;
        std::printf(
            "\nmean per-inference FLOPs (ours, learned runtime): %.3fM\n",
            avg_macs / 1e6);
        std::printf(
            "per-inference improvement: vs SonicNet %.1fx (paper 4.1x), "
            "vs SpArSeNet %.1fx (paper 23.2x), vs LeNet-Cifar %.2fx (paper 0.46x"
            " — i.e. LeNet-Cifar is cheaper per inference)\n",
            2.0e6 / avg_macs, 11.4e6 / avg_macs, 0.72e6 / avg_macs);

        std::cout << "\nFLOPs bars (MFLOPs, 0..2):\n";
        for (int e2 = 0; e2 < 3; ++e2) {
            const auto i = static_cast<std::size_t>(e2);
            std::printf(
                "exit %d before |%s| %.3f\n", e2 + 1,
                util::bar(static_cast<double>(before[i]) / 1e6, 2.0, 40)
                    .c_str(),
                static_cast<double>(before[i]) / 1e6);
            std::printf(
                "exit %d after  |%s| %.3f\n", e2 + 1,
                util::bar(static_cast<double>(after[i]) / 1e6, 2.0, 40)
                    .c_str(),
                static_cast<double>(after[i]) / 1e6);
        }
        return 0;
    };
    return e;
}

// --- fig7a ----------------------------------------------------------------

int fig7a_report(const ExperimentRunContext& ctx) {
    const auto& lut_sim =
        canonical_sim(ctx.specs, ctx.outcomes, "paper-solar/static LUT");
    const double lut_acc = 100.0 * lut_sim.accuracy_all_events();

    const auto& learned_sim =
        canonical_sim(ctx.specs, ctx.outcomes, "paper-solar/Q-learning");
    const double final_acc = 100.0 * learned_sim.accuracy_all_events();
    const auto& learned_metrics =
        canonical_metrics(ctx.specs, ctx.outcomes, "paper-solar/Q-learning");
    std::vector<double> curve;
    for (const auto& [name, value] : learned_metrics) {
        // MetricMap is ordered and the keys are zero-padded, so this walks
        // the episodes in training order.
        if (name.rfind("curve_ep", 0) == 0) curve.push_back(value);
    }

    util::Table table("Fig. 7a — runtime learning curve (avg accuracy, %)");
    table.header({"episode", "Q-learning", "", "static LUT"});
    for (std::size_t ep = 0; ep < curve.size(); ++ep) {
        table.row({std::to_string(ep + 1), util::fixed(curve[ep], 1),
                   util::bar(curve[ep] - 30.0, 30.0, 30),
                   util::fixed(lut_acc, 1)});
    }
    table.row({"eval (greedy)", util::fixed(final_acc, 1),
               util::bar(final_acc - 30.0, 30.0, 30), util::fixed(lut_acc, 1)});
    table.print(std::cout);

    std::printf(
        "\nQ-learning final vs static LUT: %.1f%% vs %.1f%% -> %+.1f%% "
        "relative (paper: +10.2%%)\n",
        final_acc, lut_acc, 100.0 * (final_acc - lut_acc) / lut_acc);
    std::printf("learning curve start -> end: %.1f%% -> %.1f%%\n",
                curve.front(), curve.back());

    print_replica_aggregate(ctx.specs, ctx.outcomes,
                            {"acc_all_pct", "iepmj", "processed"},
                            ctx.options);
    return 0;
}

Experiment fig7a_experiment() {
    Experiment e;
    e.spec.name = "fig7a-runtime-learning";
    e.spec.description =
        "Fig. 7a runtime adaptation learning curve: Q-learning exit "
        "selection vs the static LUT";
    e.spec.metrics = {"acc_all_pct", "iepmj", "processed"};
    e.build = [](const ExperimentSpec&, const SweepCli& options) {
        const auto setup = std::make_shared<const core::ExperimentSetup>(
            core::make_paper_setup(sweep_setup_config(options)));
        const SystemSpec lut{"static LUT", SystemKind::kOursStatic, 0, {}, ""};
        const SystemSpec learned{"Q-learning", SystemKind::kOursQLearning,
                                 sweep_episodes(options, 16), {}, ""};

        std::vector<ScenarioSpec> specs;
        for (int replica = 0; replica < options.replicas; ++replica) {
            specs.push_back(make_learning_curve_scenario(
                setup, lut, "paper-solar", replica, options.base_seed));
            specs.push_back(make_learning_curve_scenario(
                setup, learned, "paper-solar", replica, options.base_seed));
        }
        return specs;
    };
    e.report = fig7a_report;
    return e;
}

}  // namespace

void register_fig_experiments(
    std::map<std::string, ExperimentFactory>& into) {
    into["fig1b-exit-accuracy"] = fig1b_experiment;
    into["fig4-compression-policy"] = fig4_experiment;
    into["fig5-iepmj"] = fig5_experiment;
    into["fig6-flops"] = fig6_experiment;
    into["fig7a-runtime-learning"] = fig7a_experiment;
    into["fig7b-exit-distribution"] = fig7b_experiment;
    into["latency-table"] = latency_experiment;
}

}  // namespace imx::exp::detail
