/// \file
/// \brief Internal: built-in experiment registrations. The registry in
/// experiment.cpp seeds itself by calling these on first use (direct calls
/// instead of static initializers, so a static-library link can never drop
/// the translation units). Not part of the public API.
#ifndef IMX_EXP_EXPERIMENTS_BUILTIN_HPP
#define IMX_EXP_EXPERIMENTS_BUILTIN_HPP

#include <map>
#include <string>

#include "exp/experiment.hpp"

namespace imx::exp::detail {

/// The figure reproductions: fig1b, fig4, fig5, fig6, fig7a, fig7b, and
/// the Sec. V-D latency table.
void register_fig_experiments(std::map<std::string, ExperimentFactory>& into);

/// The ablations: harvester (trace-registry sources), runtime, search,
/// trace, storage-deadline, deadline-policy.
void register_ablation_experiments(
    std::map<std::string, ExperimentFactory>& into);

}  // namespace imx::exp::detail

#endif  // IMX_EXP_EXPERIMENTS_BUILTIN_HPP
