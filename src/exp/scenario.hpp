/// \file
/// \brief Scenario layer of the sweep engine.
///
/// One ScenarioSpec = one self-contained, deterministic experiment (a point
/// in a trace x system x config x seed grid). Specs carry their own RNG
/// stream seed and a run function that constructs every piece of mutable
/// state (models, policies, simulators) so scenarios can execute on any
/// thread in any order without sharing state.
#ifndef IMX_EXP_SCENARIO_HPP
#define IMX_EXP_SCENARIO_HPP

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "sim/metrics.hpp"

namespace imx::sim {
struct ScenarioWorkspace;
}  // namespace imx::sim

namespace imx::exp {

/// Named scalar metrics. An ordered map so that every iteration (tables,
/// CSV columns, aggregation) is deterministic.
using MetricMap = std::map<std::string, double>;

/// What a scenario hands back to the runner.
struct ScenarioOutcome {
    MetricMap metrics;
    /// Full per-event record when the scenario is simulation-based.
    std::optional<sim::SimResult> sim;
    /// Escape hatch for rich results (e.g. a searched compression policy).
    std::any payload;
};

/// Everything the run function may depend on besides the spec itself.
struct ScenarioContext {
    std::uint64_t seed = 0;  ///< per-scenario RNG stream seed
    int replica = 0;         ///< seed-replica index within the group
    /// Per-worker reusable buffers (and optional profiler), lent by the
    /// runner for the duration of this scenario — confinement, no locking.
    /// Null (e.g. a scenario run standalone in a test) restores the
    /// historical allocate-per-run behaviour, bit for bit.
    sim::ScenarioWorkspace* workspace = nullptr;
};

using ScenarioFn = std::function<ScenarioOutcome(const ScenarioContext&)>;

struct ScenarioSpec {
    std::string id;     ///< unique within a sweep, e.g. "paper/SonicNet#1"
    std::string group;  ///< replicas of the same cell share a group
    /// Axis label -> value ("trace" -> "paper-solar", "system" -> "SonicNet");
    /// carried into aggregation and CSV output.
    std::map<std::string, std::string> dims;
    int replica = 0;
    std::uint64_t seed = 0;
    ScenarioFn run;
};

/// \brief Derive the deterministic stream seed for (group, replica) under a
/// sweep base seed.
///
/// Depends only on those values — not on the spec's position in the grid —
/// so adding or reordering scenarios never perturbs others.
/// \param base_seed the sweep-wide base seed.
/// \param group the scenario's aggregation-cell name.
/// \param replica the seed-replica index within the group.
/// \return a well-mixed 64-bit stream seed.
std::uint64_t scenario_seed(std::uint64_t base_seed, const std::string& group,
                            int replica);

/// The standard scalar metrics extracted from a simulation result. Keys:
/// iepmj, acc_all_pct, acc_processed_pct, processed, missed,
/// event_latency_s, p50/p95/p99_latency_s (nearest-rank per-event latency
/// percentiles), inference_latency_s, inference_macs_m,
/// deadline_miss_pct (0 when the run had no deadline), dropped and
/// in_flight (queue accounting; 0 without a bounded queue), harvested_mj,
/// consumed_mj, deaths, recovery_mj, wasted_macs_m.
MetricMap sim_metrics(const sim::SimResult& result);

}  // namespace imx::exp

#endif  // IMX_EXP_SCENARIO_HPP
