/// \file
/// \brief Streaming result consumption for the sweep runner.
///
/// A ResultSink observes a sweep as it executes instead of waiting for a
/// fully materialized outcome vector — the enabling abstraction for
/// journaled shards, incremental aggregation, and grids too large to hold
/// in memory. run_sweep() delivers outcomes to the sink in strictly
/// increasing spec-index order (out-of-order completions are buffered in
/// their slots until the stream catches up), so every sink observes the
/// identical deterministic stream regardless of thread count — the same
/// contract the index-ordered outcome vector has always provided.
///
/// Delivery happens on worker threads but is serialized by the runner:
/// on_outcome()/finish() never run concurrently with themselves or each
/// other, so sinks need no locking of their own. A sink that throws aborts
/// the stream: no further outcomes are delivered, finish() is not called,
/// and run_sweep rethrows the error after the pool drains.
#ifndef IMX_EXP_SINK_HPP
#define IMX_EXP_SINK_HPP

#include <cstddef>
#include <vector>

#include "exp/scenario.hpp"

namespace imx::exp {

/// Streaming consumer of sweep outcomes (see file comment for the delivery
/// contract). Outcomes are passed by value so a sink can keep them without
/// a copy; `spec_index` is the index into the spec vector handed to
/// run_sweep().
class ResultSink {
public:
    virtual ~ResultSink() = default;
    /// One completed scenario. Called in strictly increasing spec_index
    /// order, starting at 0 with no gaps.
    virtual void on_outcome(std::size_t spec_index, ScenarioOutcome outcome) = 0;
    /// Called exactly once, after the last on_outcome() of a fully
    /// successful sweep. Not called when the sweep failed.
    virtual void finish() = 0;
};

/// The in-memory sink: collects outcomes into the index-addressed vector
/// run_sweep() has always returned. Preserves the historical behavior
/// bitwise — the vector-returning run_sweep() overload is a thin wrapper
/// over this sink.
class CollectSink final : public ResultSink {
public:
    /// \param expected pre-sizes the vector (the sweep's spec count).
    explicit CollectSink(std::size_t expected = 0);
    void on_outcome(std::size_t spec_index, ScenarioOutcome outcome) override;
    void finish() override;

    [[nodiscard]] bool finished() const { return finished_; }
    [[nodiscard]] const std::vector<ScenarioOutcome>& outcomes() const {
        return outcomes_;
    }
    /// Move the collected outcomes out (invalidates the sink).
    std::vector<ScenarioOutcome> take();

private:
    std::vector<ScenarioOutcome> outcomes_;
    bool finished_ = false;
};

/// Fan one outcome stream out to several sinks (e.g. collect + journal).
/// Children receive deliveries in constructor order; the outcome is copied
/// for all but the last child, which receives the original.
class TeeSink final : public ResultSink {
public:
    explicit TeeSink(std::vector<ResultSink*> sinks);
    void on_outcome(std::size_t spec_index, ScenarioOutcome outcome) override;
    void finish() override;

private:
    std::vector<ResultSink*> sinks_;
};

}  // namespace imx::exp

#endif  // IMX_EXP_SINK_HPP
