#include "exp/cli.hpp"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace imx::exp {

namespace {

int require_int(const char* flag, const char* text) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < INT_MIN ||
        value > INT_MAX) {
        std::fprintf(stderr, "error: %s expects an integer, got '%s'\n", flag,
                     text);
        std::exit(2);
    }
    return static_cast<int>(value);
}

std::uint64_t require_uint64(const char* flag, const char* text) {
    char* end = nullptr;
    errno = 0;
    // Base 0 so seeds read naturally in decimal or hex (0xD5EED).
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return static_cast<std::uint64_t>(value);
}

}  // namespace

SweepCli parse_sweep_cli(int argc, char** argv) {
    SweepCli options;
    const auto require_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            options.quick = true;
        } else if (std::strcmp(argv[i], "--replicas") == 0) {
            options.replicas = require_int("--replicas", require_value(i));
            options.replicas_given = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            options.threads = require_int("--threads", require_value(i));
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            options.csv = require_value(i);
        } else if (std::strcmp(argv[i], "--base-seed") == 0) {
            options.base_seed =
                require_uint64("--base-seed", require_value(i));
            options.base_seed_given = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "error: unknown option '%s' (expected --quick, "
                         "--replicas N, --threads N, --csv PATH, "
                         "--base-seed N)\n",
                         argv[i]);
            std::exit(2);
        } else {
            options.positional.emplace_back(argv[i]);
        }
    }
    if (options.replicas < 1) options.replicas = 1;
    return options;
}

int positional_int(const SweepCli& options, std::size_t index, int fallback) {
    if (index >= options.positional.size()) return fallback;
    const std::string& text = options.positional[index];
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        value < INT_MIN || value > INT_MAX) {
        std::fprintf(stderr, "error: expected an integer argument, got '%s'\n",
                     text.c_str());
        std::exit(2);
    }
    return static_cast<int>(value);
}

void require_no_positional(const SweepCli& options) {
    if (options.positional.empty()) return;
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 options.positional.front().c_str());
    std::exit(2);
}

}  // namespace imx::exp
