#include "exp/cli.hpp"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "nn/kernels/dispatch.hpp"

namespace imx::exp {

namespace {

int require_int(const char* flag, const char* text) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < INT_MIN ||
        value > INT_MAX) {
        std::fprintf(stderr, "error: %s expects an integer, got '%s'\n", flag,
                     text);
        std::exit(2);
    }
    return static_cast<int>(value);
}

std::uint64_t require_uint64(const char* flag, const char* text) {
    char* end = nullptr;
    errno = 0;
    // Base 0 so seeds read naturally in decimal or hex (0xD5EED).
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0' || errno == ERANGE || text[0] == '-') {
        std::fprintf(stderr,
                     "error: %s expects a non-negative integer, got '%s'\n",
                     flag, text);
        std::exit(2);
    }
    return static_cast<std::uint64_t>(value);
}

}  // namespace

ShardSpec parse_shard_spec(const std::string& text) {
    const auto fail = [&text](const char* why) {
        throw std::invalid_argument("malformed shard '" + text + "': " + why +
                                    " (expected i/N with 0 <= i < N)");
    };
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos || text.find('/', slash + 1) !=
                                          std::string::npos) {
        fail("expected exactly one '/'");
    }
    const std::string index_text = text.substr(0, slash);
    const std::string count_text = text.substr(slash + 1);
    const auto parse_component = [&fail](const std::string& part,
                                         const char* what) -> long {
        if (part.empty() || part[0] == '-' || part[0] == '+') {
            fail(what);
        }
        char* end = nullptr;
        errno = 0;
        const long value = std::strtol(part.c_str(), &end, 10);
        if (end == part.c_str() || *end != '\0' || errno == ERANGE ||
            value > INT_MAX) {
            fail(what);
        }
        return value;
    };
    ShardSpec shard;
    shard.index = static_cast<int>(
        parse_component(index_text, "the shard index is not a number"));
    shard.count = static_cast<int>(
        parse_component(count_text, "the shard count is not a number"));
    if (shard.count == 0) fail("the shard count must be >= 1");
    if (shard.index >= shard.count) fail("the shard index must be < N");
    return shard;
}

std::vector<std::size_t> shard_indices(std::size_t total,
                                       const ShardSpec& shard) {
    std::vector<std::size_t> indices;
    for (std::size_t i = static_cast<std::size_t>(shard.index); i < total;
         i += static_cast<std::size_t>(shard.count)) {
        indices.push_back(i);
    }
    return indices;
}

SweepCli parse_sweep_cli(int argc, char** argv) {
    // Dispatch resolution is lazy, and the sweep path may never invoke a
    // float kernel — validate IMX_KERNEL here so a mistyped pin fails the
    // run instead of silently selecting nothing.
    try {
        (void)nn::kernels::env_forced_backend();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
    SweepCli options;
    const auto require_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "error: %s requires a value\n", argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            options.quick = true;
        } else if (std::strcmp(argv[i], "--replicas") == 0) {
            options.replicas = require_int("--replicas", require_value(i));
            options.replicas_given = true;
        } else if (std::strcmp(argv[i], "--threads") == 0) {
            options.threads = require_int("--threads", require_value(i));
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            options.csv = require_value(i);
        } else if (std::strcmp(argv[i], "--base-seed") == 0) {
            options.base_seed =
                require_uint64("--base-seed", require_value(i));
            options.base_seed_given = true;
        } else if (std::strcmp(argv[i], "--shard") == 0) {
            try {
                options.shard = parse_shard_spec(require_value(i));
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                std::exit(2);
            }
            options.shard_given = true;
        } else if (std::strcmp(argv[i], "--journal") == 0) {
            options.journal = require_value(i);
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            options.resume = true;
        } else if (std::strcmp(argv[i], "--merge") == 0) {
            options.merge.emplace_back(require_value(i));
        } else if (std::strcmp(argv[i], "--profile") == 0) {
            options.profile = true;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "error: unknown option '%s' (expected --quick, "
                         "--replicas N, --threads N, --csv PATH, "
                         "--base-seed N, --shard i/N, --journal PATH, "
                         "--resume, --merge PATH, --profile)\n",
                         argv[i]);
            std::exit(2);
        } else {
            options.positional.emplace_back(argv[i]);
        }
    }
    if (options.replicas < 1) options.replicas = 1;
    if (options.resume && options.journal.empty()) {
        std::fprintf(stderr,
                     "error: --resume requires --journal PATH (the journal "
                     "to resume from)\n");
        std::exit(2);
    }
    if (!options.merge.empty() &&
        (options.shard_given || !options.journal.empty() || options.resume)) {
        std::fprintf(stderr,
                     "error: --merge folds existing journals and cannot be "
                     "combined with --shard/--journal/--resume\n");
        std::exit(2);
    }
    return options;
}

int positional_int(const SweepCli& options, std::size_t index, int fallback) {
    if (index >= options.positional.size()) return fallback;
    const std::string& text = options.positional[index];
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
        value < INT_MIN || value > INT_MAX) {
        std::fprintf(stderr, "error: expected an integer argument, got '%s'\n",
                     text.c_str());
        std::exit(2);
    }
    return static_cast<int>(value);
}

void require_no_positional(const SweepCli& options) {
    if (options.positional.empty()) return;
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 options.positional.front().c_str());
    std::exit(2);
}

}  // namespace imx::exp
