#include "exp/paper_scenarios.hpp"

#include <utility>

#include "baselines/baseline_models.hpp"
#include "compress/fit.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "core/trace_eval.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace imx::exp {

namespace {

/// Training-episode event seeds: the canonical 2000+ep stream for replica 0
/// (bit-compatible with the historical bench behaviour), a scenario-seed
/// derived stream otherwise.
std::uint64_t train_seed(const ScenarioContext& ctx, int episode) {
    if (ctx.replica == 0) return 2000 + static_cast<std::uint64_t>(episode);
    std::uint64_t state = ctx.seed ^ 0x7261696eULL;  // "rain"
    (void)util::splitmix64(state);
    state += static_cast<std::uint64_t>(episode);
    return util::splitmix64(state);
}

baselines::FixedBaselineModel make_baseline(SystemKind kind) {
    switch (kind) {
        case SystemKind::kSonicNet:
            return baselines::make_sonic_net();
        case SystemKind::kSpArSeNet:
            return baselines::make_sparse_net();
        default:
            return baselines::make_lenet_cifar();
    }
}

ScenarioOutcome outcome_from(sim::SimResult result) {
    ScenarioOutcome outcome;
    outcome.metrics = sim_metrics(result);
    outcome.sim = std::move(result);
    return outcome;
}

}  // namespace

std::vector<SystemSpec> paper_systems(int train_episodes) {
    std::vector<SystemSpec> systems;
    systems.push_back(
        {"Our Approach", SystemKind::kOursQLearning, train_episodes, {}});
    systems.push_back({"SonicNet", SystemKind::kSonicNet, 0, {}});
    systems.push_back({"SpArSeNet", SystemKind::kSpArSeNet, 0, {}});
    systems.push_back({"LeNet-Cifar", SystemKind::kLeNetCifar, 0, {}});
    return systems;
}

std::vector<SystemSpec> paper_systems_with_static(int train_episodes) {
    auto systems = paper_systems(train_episodes);
    systems.insert(systems.begin() + 1,
                   {"Ours (static LUT)", SystemKind::kOursStatic, 0, {}});
    return systems;
}

ScenarioOutcome run_system_scenario(const core::ExperimentSetup& setup,
                                    const SystemSpec& system,
                                    const ScenarioContext& ctx,
                                    std::vector<double>* learning_curve) {
    // Replica 0 evaluates on the canonical event schedule; later replicas
    // draw an independent arrival stream over the same trace.
    std::vector<sim::Event> events = setup.events;
    if (ctx.replica != 0) {
        std::uint64_t state = ctx.seed ^ 0x6576656eULL;  // "even"
        events = sim::generate_events({static_cast<int>(setup.events.size()),
                                       setup.trace.duration(),
                                       sim::ArrivalKind::kUniform,
                                       util::splitmix64(state)});
    }

    switch (system.kind) {
        case SystemKind::kOursQLearning: {
            core::OracleInferenceModel model(setup.network,
                                             setup.deployed_policy,
                                             setup.exit_accuracy);
            core::RuntimeConfig runtime_cfg = system.runtime;
            if (ctx.replica != 0) {
                std::uint64_t state = ctx.seed ^ 0x71706f6cULL;  // "qpol"
                runtime_cfg.seed = util::splitmix64(state);
            }
            core::QLearningExitPolicy policy(setup.network.num_exits,
                                             runtime_cfg);
            sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
            for (int ep = 0; ep < system.train_episodes; ++ep) {
                const auto train_events = sim::generate_events(
                    {static_cast<int>(setup.events.size()),
                     setup.trace.duration(), sim::ArrivalKind::kUniform,
                     train_seed(ctx, ep)});
                const auto r = simulator.run(train_events, model, policy);
                if (learning_curve != nullptr) {
                    learning_curve->push_back(100.0 * r.accuracy_all_events());
                }
            }
            policy.set_eval_mode(true);
            return outcome_from(simulator.run(events, model, policy));
        }
        case SystemKind::kOursStatic: {
            core::OracleInferenceModel model(setup.network,
                                             setup.deployed_policy,
                                             setup.exit_accuracy);
            sim::GreedyAffordablePolicy policy;
            sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
            return outcome_from(simulator.run(events, model, policy));
        }
        default: {
            auto model = make_baseline(system.kind);
            sim::GreedyAffordablePolicy policy;
            sim::Simulator simulator(setup.trace, setup.checkpointed_sim);
            return outcome_from(simulator.run(events, model, policy));
        }
    }
}

std::vector<ScenarioSpec> build_paper_scenarios(const PaperSweep& sweep) {
    const auto systems =
        sweep.systems.empty() ? paper_systems() : sweep.systems;
    const auto patches =
        sweep.patches.empty() ? std::vector<SimPatch>{SimPatch{}} : sweep.patches;

    std::vector<ScenarioSpec> specs;
    for (const auto& trace_spec : sweep.traces) {
        // One shared, immutable setup per trace; scenarios only read it.
        auto base = trace_spec.prebuilt
                        ? trace_spec.prebuilt
                        : std::make_shared<const core::ExperimentSetup>(
                              core::make_paper_setup(trace_spec.config));
        for (const auto& patch : patches) {
            // Apply the patch once per (trace, patch) cell; scenarios share
            // the resulting immutable setup instead of copying it per run.
            auto cell = base;
            if (patch.apply) {
                auto patched =
                    std::make_shared<core::ExperimentSetup>(*base);
                patch.apply(patched->multi_exit_sim);
                patch.apply(patched->checkpointed_sim);
                cell = std::move(patched);
            }
            for (const auto& system : systems) {
                std::string group = trace_spec.label + "/" + system.label;
                if (!patch.label.empty()) group += "/" + patch.label;
                for (int replica = 0; replica < sweep.replicas; ++replica) {
                    ScenarioSpec spec;
                    spec.group = group;
                    spec.id = group + "#" + std::to_string(replica);
                    spec.dims = {{"trace", trace_spec.label},
                                 {"system", system.label}};
                    if (!patch.label.empty()) spec.dims["patch"] = patch.label;
                    spec.replica = replica;
                    spec.seed = scenario_seed(sweep.base_seed, group, replica);
                    spec.run = [cell, system](const ScenarioContext& ctx) {
                        return run_system_scenario(*cell, system, ctx);
                    };
                    specs.push_back(std::move(spec));
                }
            }
        }
    }
    return specs;
}

ScenarioSpec make_search_scenario(
    std::shared_ptr<const core::ExperimentSetup> setup, SearchAlgo algo,
    const std::string& label, const core::SearchConfig& config, int replica,
    std::uint64_t base_seed) {
    ScenarioSpec spec;
    spec.group = "search/" + label;
    spec.id = spec.group + "#" + std::to_string(replica);
    spec.dims = {{"algo", label}};
    spec.replica = replica;
    spec.seed = scenario_seed(base_seed, spec.group, replica);
    spec.run = [setup = std::move(setup), algo,
                config](const ScenarioContext& ctx) -> ScenarioOutcome {
        // The evaluator stack is rebuilt per scenario: PolicyEvaluator keeps
        // raw pointers into it, so everything must share the run's lifetime.
        const auto& desc = setup->network;
        const core::AccuracyModel oracle(
            desc, {core::kPaperFullPrecisionAcc.begin(),
                   core::kPaperFullPrecisionAcc.end()});
        const core::StaticTraceEvaluator trace_eval(
            setup->trace, setup->events, core::paper_storage_config(),
            core::kEnergyPerMMacMj);
        const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                              core::paper_constraints(),
                                              config.trace_aware);

        core::SearchConfig cfg = config;
        if (ctx.replica != 0) {
            std::uint64_t state = ctx.seed ^ 0x73726368ULL;  // "srch"
            cfg.seed = util::splitmix64(state);
        }
        core::CompressionSearch search(evaluator, cfg);
        core::SearchResult result;
        switch (algo) {
            case SearchAlgo::kDdpg:
                result = search.run_ddpg();
                break;
            case SearchAlgo::kDdpgRefined:
                result = search.run_ddpg_refined();
                break;
            case SearchAlgo::kRandom:
                result = search.run_random();
                break;
            case SearchAlgo::kAnnealing:
                result = search.run_annealing();
                break;
        }

        ScenarioOutcome outcome;
        outcome.metrics["best_racc"] = result.best_reward;
        outcome.metrics["evaluations"] = result.evaluations;
        outcome.metrics["feasible"] = result.found_feasible ? 1.0 : 0.0;
        if (result.found_feasible) {
            outcome.metrics["total_macs_m"] =
                static_cast<double>(
                    compress::total_macs(desc, result.best_policy)) /
                1e6;
            outcome.metrics["model_kb"] =
                compress::model_bytes(desc, result.best_policy) / 1024.0;
        }
        outcome.payload = std::move(result);
        return outcome;
    };
    return spec;
}

}  // namespace imx::exp
