#include "exp/paper_scenarios.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "baselines/baseline_models.hpp"
#include "compress/fit.hpp"
#include "core/accuracy_model.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "core/trace_eval.hpp"
#include "sim/arrivals/registry.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/policies/registry.hpp"
#include "sim/recovery/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/workspace.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace imx::exp {

namespace {

/// Shortest-form numeric label component ("1.5", "60", "1e+04").
std::string compact_number(double value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
    return buffer;
}

/// Training-episode event seeds: the canonical 2000+ep stream for replica 0
/// (bit-compatible with the historical bench behaviour), a scenario-seed
/// derived stream otherwise.
std::uint64_t train_seed(const ScenarioContext& ctx, int episode) {
    if (ctx.replica == 0) return 2000 + static_cast<std::uint64_t>(episode);
    std::uint64_t state = ctx.seed ^ 0x7261696eULL;  // "rain"
    (void)util::splitmix64(state);
    state += static_cast<std::uint64_t>(episode);
    return util::splitmix64(state);
}

baselines::FixedBaselineModel make_baseline(SystemKind kind) {
    switch (kind) {
        case SystemKind::kSonicNet:
            return baselines::make_sonic_net();
        case SystemKind::kSpArSeNet:
            return baselines::make_sparse_net();
        default:
            return baselines::make_lenet_cifar();
    }
}

ScenarioOutcome outcome_from(sim::SimResult result) {
    ScenarioOutcome outcome;
    outcome.metrics = sim_metrics(result);
    outcome.sim = std::move(result);
    return outcome;
}

}  // namespace

SimPatch storage_patch(double capacity_mj) {
    SimPatch patch;
    const std::string value = compact_number(capacity_mj);
    patch.label = "cap" + value + "mJ";
    patch.dims = {{"storage_mj", value}};
    patch.apply = [capacity_mj](sim::SimConfig& cfg) {
        cfg.storage.capacity_mj = capacity_mj;
        cfg.storage.initial_mj =
            std::min(cfg.storage.initial_mj, capacity_mj);
    };
    return patch;
}

SimPatch deadline_patch(double deadline_s) {
    // Fail at axis construction, not deep inside the sweep: the metrics
    // layer rejects non-positive deadlines (sim/metrics.cpp).
    IMX_EXPECTS(deadline_s > 0.0);
    SimPatch patch;
    if (deadline_s == std::numeric_limits<double>::infinity()) {
        patch.label = "ddl-none";
        patch.dims = {{"deadline_s", "inf"}};
        patch.apply = [](sim::SimConfig&) {};
        return patch;
    }
    const std::string value = compact_number(deadline_s);
    patch.label = "ddl" + value + "s";
    patch.dims = {{"deadline_s", value}};
    patch.apply = [deadline_s](sim::SimConfig& cfg) {
        cfg.deadline_s = deadline_s;
    };
    return patch;
}

SimPatch policy_patch(const std::string& policy_name) {
    // Fail at axis construction, not mid-sweep on a worker thread: the name
    // must already be registered (built-in or register_policy()'d).
    IMX_EXPECTS(sim::has_policy(policy_name));
    SimPatch patch;
    patch.label = "pol-" + policy_name;
    patch.dims = {{"policy", policy_name}};
    patch.apply = [](sim::SimConfig&) {};
    patch.policy = policy_name;
    return patch;
}

SimPatch recovery_patch(const RecoveryCell& cell) {
    // Fail at axis construction, not mid-sweep on a worker thread: trial-
    // build the strategy so unknown names and negative costs surface here.
    if (cell.config.enabled) {
        (void)sim::make_recovery_strategy(cell.config.strategy, cell.config);
    }
    // A death-threshold override on a disabled cell could never take effect.
    IMX_EXPECTS(cell.death_threshold_mj < 0.0 || cell.config.enabled);
    std::string label = cell.label;
    if (label.empty()) {
        if (!cell.config.enabled) {
            label = "none";
        } else {
            label = cell.config.strategy;
            if (cell.config.strategy != "restart") {
                label += "-" + sim::granularity_name(cell.config.granularity);
            }
        }
    }
    SimPatch patch;
    patch.label = "rec-" + label;
    patch.dims = {{"recovery", label}};
    patch.apply = [config = cell.config,
                   death = cell.death_threshold_mj](sim::SimConfig& cfg) {
        // The failure model only exists on the multi-exit runtime; a
        // checkpointed baseline sharing the cell keeps its own intrinsic
        // checkpointing model.
        if (cfg.mode != sim::ExecutionMode::kMultiExit) return;
        cfg.recovery = config;
        if (death >= 0.0) cfg.storage.death_threshold_mj = death;
    };
    return patch;
}

SimPatch arrival_patch(const ArrivalCell& cell) {
    // Fail at axis construction, not mid-sweep on a worker thread: trial-
    // build the source so unknown names and bad parameters surface here.
    (void)sim::make_arrival_source(cell.source, cell.params);
    const std::string label = cell.label.empty() ? cell.source : cell.label;
    SimPatch patch;
    patch.label = "arr-" + label;
    patch.dims = {{"arrivals", label}};
    patch.apply_setup = [source = cell.source,
                         params = cell.params](core::ExperimentSetup& setup) {
        setup.config.arrival_source = source;
        setup.config.arrival_params = params;
        setup.events = sim::generate_arrivals(
            source,
            {setup.config.event_count, setup.trace.duration(),
             setup.config.event_seed},
            params);
    };
    return patch;
}

SimPatch queue_patch(int capacity) {
    IMX_EXPECTS(capacity >= 0);
    SimPatch patch;
    const std::string value = std::to_string(capacity);
    patch.label = "q" + value;
    patch.dims = {{"queue_capacity", value}};
    patch.apply = [capacity](sim::SimConfig& cfg) {
        cfg.queue_capacity = capacity;
    };
    return patch;
}

std::vector<SimPatch> cross_patches(const std::vector<SimPatch>& a,
                                    const std::vector<SimPatch>& b) {
    std::vector<SimPatch> product;
    product.reserve(a.size() * b.size());
    for (const auto& pa : a) {
        for (const auto& pb : b) {
            SimPatch combined;
            combined.label = pa.label.empty() || pb.label.empty()
                                 ? pa.label + pb.label
                                 : pa.label + "+" + pb.label;
            combined.dims = pa.dims;
            for (const auto& [k, v] : pb.dims) combined.dims[k] = v;
            combined.apply = [apply_a = pa.apply,
                              apply_b = pb.apply](sim::SimConfig& cfg) {
                if (apply_a) apply_a(cfg);
                if (apply_b) apply_b(cfg);
            };
            if (pa.apply_setup || pb.apply_setup) {
                combined.apply_setup =
                    [setup_a = pa.apply_setup,
                     setup_b = pb.apply_setup](core::ExperimentSetup& setup) {
                        if (setup_a) setup_a(setup);
                        if (setup_b) setup_b(setup);
                    };
            }
            combined.policy = pb.policy.empty() ? pa.policy : pb.policy;
            product.push_back(std::move(combined));
        }
    }
    return product;
}

std::vector<SystemSpec> paper_systems(int train_episodes) {
    std::vector<SystemSpec> systems;
    systems.push_back(
        {"Our Approach", SystemKind::kOursQLearning, train_episodes, {}, ""});
    systems.push_back({"SonicNet", SystemKind::kSonicNet, 0, {}, ""});
    systems.push_back({"SpArSeNet", SystemKind::kSpArSeNet, 0, {}, ""});
    systems.push_back({"LeNet-Cifar", SystemKind::kLeNetCifar, 0, {}, ""});
    return systems;
}

std::vector<SystemSpec> paper_systems_with_static(int train_episodes) {
    auto systems = paper_systems(train_episodes);
    systems.insert(systems.begin() + 1,
                   {"Ours (static LUT)", SystemKind::kOursStatic, 0, {}, ""});
    return systems;
}

ScenarioOutcome run_system_scenario(const core::ExperimentSetup& setup,
                                    const SystemSpec& system,
                                    const ScenarioContext& ctx,
                                    std::vector<double>* learning_curve) {
    // Replica 0 evaluates on the canonical event schedule; later replicas
    // draw an independent arrival stream over the same trace.
    std::vector<sim::Event> events = setup.events;
    if (ctx.replica != 0) {
        std::uint64_t state = ctx.seed ^ 0x6576656eULL;  // "even"
        events = sim::generate_arrivals(
            setup.config.arrival_source,
            {static_cast<int>(setup.events.size()), setup.trace.duration(),
             util::splitmix64(state)},
            setup.config.arrival_params);
    }

    switch (system.kind) {
        case SystemKind::kOursQLearning:
        case SystemKind::kOursStatic:
        case SystemKind::kOursPolicy: {
            // Unified multi-exit path: resolve the exit policy by registry
            // name. The historical kinds are sugar for their default names,
            // so "qlearning"/"greedy" cells stay bitwise identical to the
            // pre-registry code paths.
            std::string policy_name = system.policy;
            if (policy_name.empty()) {
                IMX_EXPECTS(system.kind != SystemKind::kOursPolicy);
                policy_name = system.kind == SystemKind::kOursQLearning
                                  ? "qlearning"
                                  : "greedy";
            }
            core::OracleInferenceModel model(setup.network,
                                             setup.deployed_policy,
                                             setup.exit_accuracy);
            sim::PolicyContext policy_ctx;
            policy_ctx.num_exits = setup.network.num_exits;
            policy_ctx.runtime = system.runtime;
            if (ctx.replica != 0) {
                std::uint64_t state = ctx.seed ^ 0x71706f6cULL;  // "qpol"
                policy_ctx.runtime.seed = util::splitmix64(state);
            }
            const auto policy = sim::make_policy(policy_name, policy_ctx);
            sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
            // Learning policies train first (same canonical episode seeds as
            // the historical Q-learning path), then evaluate frozen.
            if (auto* learner =
                    dynamic_cast<sim::QLearningExitPolicy*>(policy.get())) {
                // Training episodes draw the canonical uniform stream
                // regardless of the evaluation workload (pinned: matches the
                // historical Q-learning path bitwise; the bench goldens
                // train-on-uniform / evaluate-on-cell by design). Episode
                // buffers come from the workspace when one is attached, so a
                // worker's steady-state training loop never heap-allocates.
                sim::ScenarioWorkspace* const ws = ctx.workspace;
                std::vector<sim::Event> train_events_local;
                sim::SimResult train_result_local;
                std::vector<sim::Event>& train_events =
                    ws != nullptr ? ws->train_events : train_events_local;
                sim::SimResult& train_result =
                    ws != nullptr ? ws->train_result : train_result_local;
                const auto uniform = sim::make_arrival_source("uniform");
                for (int ep = 0; ep < system.train_episodes; ++ep) {
                    uniform->generate_into(
                        {static_cast<int>(setup.events.size()),
                         setup.trace.duration(), train_seed(ctx, ep)},
                        train_events);
                    simulator.run_into(train_events, model, *policy,
                                       train_result, ws);
                    if (learning_curve != nullptr) {
                        learning_curve->push_back(
                            100.0 * train_result.accuracy_all_events());
                    }
                }
                learner->set_eval_mode(true);
            }
            return outcome_from(
                simulator.run(events, model, *policy, ctx.workspace));
        }
        default: {
            IMX_EXPECTS(system.policy.empty());
            auto model = make_baseline(system.kind);
            sim::GreedyAffordablePolicy policy;
            sim::Simulator simulator(setup.trace, setup.checkpointed_sim);
            return outcome_from(
                simulator.run(events, model, policy, ctx.workspace));
        }
    }
}

std::vector<ScenarioSpec> build_paper_scenarios(const PaperSweep& sweep) {
    const auto systems =
        sweep.systems.empty() ? paper_systems() : sweep.systems;
    const auto patches =
        sweep.patches.empty() ? std::vector<SimPatch>{SimPatch{}} : sweep.patches;

    std::vector<ScenarioSpec> specs;
    for (const auto& trace_spec : sweep.traces) {
        // One shared, immutable setup per trace; scenarios only read it.
        auto base = trace_spec.prebuilt
                        ? trace_spec.prebuilt
                        : std::make_shared<const core::ExperimentSetup>(
                              core::make_paper_setup(trace_spec.config));
        for (const auto& patch : patches) {
            // Apply the patch once per (trace, patch) cell; scenarios share
            // the resulting immutable setup instead of copying it per run.
            auto cell = base;
            if (patch.apply || patch.apply_setup) {
                auto patched =
                    std::make_shared<core::ExperimentSetup>(*base);
                if (patch.apply) {
                    patch.apply(patched->multi_exit_sim);
                    patch.apply(patched->checkpointed_sim);
                }
                if (patch.apply_setup) patch.apply_setup(*patched);
                cell = std::move(patched);
            }
            for (const auto& base_system : systems) {
                SystemSpec system = base_system;
                if (!patch.policy.empty()) {
                    // A policy override only makes sense on the multi-exit
                    // runtime; crossing it with a checkpointed baseline is a
                    // grid-construction error.
                    IMX_EXPECTS(system.kind == SystemKind::kOursQLearning ||
                                system.kind == SystemKind::kOursStatic ||
                                system.kind == SystemKind::kOursPolicy);
                    system.policy = patch.policy;
                }
                std::string group = trace_spec.label + "/" + system.label;
                if (!patch.label.empty()) group += "/" + patch.label;
                for (int replica = 0; replica < sweep.replicas; ++replica) {
                    ScenarioSpec spec;
                    spec.group = group;
                    spec.id = group + "#" + std::to_string(replica);
                    spec.dims = {{"trace", trace_spec.label},
                                 {"system", system.label}};
                    if (!patch.label.empty()) spec.dims["patch"] = patch.label;
                    for (const auto& [k, v] : patch.dims) spec.dims[k] = v;
                    spec.replica = replica;
                    spec.seed = scenario_seed(sweep.base_seed, group, replica);
                    spec.run = [cell, system](const ScenarioContext& ctx) {
                        return run_system_scenario(*cell, system, ctx);
                    };
                    specs.push_back(std::move(spec));
                }
            }
        }
    }
    return specs;
}

ScenarioSpec make_learning_curve_scenario(
    std::shared_ptr<const core::ExperimentSetup> setup,
    const SystemSpec& system, const std::string& trace_label, int replica,
    std::uint64_t base_seed) {
    ScenarioSpec spec;
    spec.group = trace_label + "/" + system.label;
    spec.id = spec.group + "#" + std::to_string(replica);
    spec.dims = {{"trace", trace_label}, {"system", system.label}};
    spec.replica = replica;
    spec.seed = scenario_seed(base_seed, spec.group, replica);
    spec.run = [setup = std::move(setup),
                system](const ScenarioContext& ctx) {
        std::vector<double> curve;
        auto outcome = run_system_scenario(*setup, system, ctx, &curve);
        // Zero-pad to the curve's own width (>= 2) so the lexicographic
        // MetricMap order is episode order for any episode count.
        int width = 2;
        for (std::size_t n = curve.size(); n > 99; n /= 10) ++width;
        for (std::size_t ep = 0; ep < curve.size(); ++ep) {
            char key[32];
            std::snprintf(key, sizeof(key), "curve_ep%0*u", width,
                          static_cast<unsigned>(ep + 1));
            outcome.metrics[key] = curve[ep];
        }
        return outcome;
    };
    return spec;
}

ScenarioSpec make_exit_accuracy_scenario(CompressionVariant variant,
                                         const std::string& label,
                                         int replica,
                                         std::uint64_t base_seed) {
    ScenarioSpec spec;
    spec.group = "fig1b/" + label;
    spec.id = spec.group + "#" + std::to_string(replica);
    spec.dims = {{"variant", label}};
    spec.replica = replica;
    spec.seed = scenario_seed(base_seed, spec.group, replica);
    spec.run = [variant](const ScenarioContext&) -> ScenarioOutcome {
        const auto desc = core::make_paper_network_desc();
        const core::AccuracyModel oracle(
            desc, {core::kPaperFullPrecisionAcc.begin(),
                   core::kPaperFullPrecisionAcc.end()});
        compress::Policy policy;
        switch (variant) {
            case CompressionVariant::kFullPrecision:
                policy = compress::Policy::full_precision(desc.num_layers());
                break;
            case CompressionVariant::kUniform:
                policy = core::uniform_baseline_policy();
                break;
            case CompressionVariant::kNonuniform:
                policy = core::reference_nonuniform_policy();
                break;
        }
        const auto acc = oracle.exit_accuracy(policy);
        ScenarioOutcome outcome;
        for (std::size_t e = 0; e < acc.size(); ++e) {
            outcome.metrics["exit" + std::to_string(e + 1) + "_acc_pct"] =
                acc[e];
        }
        outcome.metrics["total_macs_m"] =
            static_cast<double>(compress::total_macs(desc, policy)) / 1e6;
        outcome.metrics["model_kb"] =
            compress::model_bytes(desc, policy) / 1024.0;
        outcome.payload = policy;
        return outcome;
    };
    return spec;
}

ScenarioSpec make_search_scenario(
    std::shared_ptr<const core::ExperimentSetup> setup, SearchAlgo algo,
    const std::string& label, const core::SearchConfig& config, int replica,
    std::uint64_t base_seed) {
    ScenarioSpec spec;
    spec.group = "search/" + label;
    spec.id = spec.group + "#" + std::to_string(replica);
    spec.dims = {{"algo", label}};
    spec.replica = replica;
    spec.seed = scenario_seed(base_seed, spec.group, replica);
    spec.run = [setup = std::move(setup), algo,
                config](const ScenarioContext& ctx) -> ScenarioOutcome {
        // The evaluator stack is rebuilt per scenario: PolicyEvaluator keeps
        // raw pointers into it, so everything must share the run's lifetime.
        const auto& desc = setup->network;
        const core::AccuracyModel oracle(
            desc, {core::kPaperFullPrecisionAcc.begin(),
                   core::kPaperFullPrecisionAcc.end()});
        const core::StaticTraceEvaluator trace_eval(
            setup->trace, setup->events, core::paper_storage_config(),
            core::kEnergyPerMMacMj);
        const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                              core::paper_constraints(),
                                              config.trace_aware);

        core::SearchConfig cfg = config;
        if (ctx.replica != 0) {
            std::uint64_t state = ctx.seed ^ 0x73726368ULL;  // "srch"
            cfg.seed = util::splitmix64(state);
        }
        core::CompressionSearch search(evaluator, cfg);
        core::SearchResult result;
        switch (algo) {
            case SearchAlgo::kDdpg:
                result = search.run_ddpg();
                break;
            case SearchAlgo::kDdpgRefined:
                result = search.run_ddpg_refined();
                break;
            case SearchAlgo::kRandom:
                result = search.run_random();
                break;
            case SearchAlgo::kAnnealing:
                result = search.run_annealing();
                break;
        }

        ScenarioOutcome outcome;
        outcome.metrics["best_racc"] = result.best_reward;
        outcome.metrics["evaluations"] = result.evaluations;
        outcome.metrics["feasible"] = result.found_feasible ? 1.0 : 0.0;
        if (result.found_feasible) {
            outcome.metrics["total_macs_m"] =
                static_cast<double>(
                    compress::total_macs(desc, result.best_policy)) /
                1e6;
            outcome.metrics["model_kb"] =
                compress::model_bytes(desc, result.best_policy) / 1024.0;
        }
        outcome.payload = std::move(result);
        return outcome;
    };
    return spec;
}

}  // namespace imx::exp
