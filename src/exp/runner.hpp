/// \file
/// \brief Parallel sweep runner: fans ScenarioSpecs out over a fixed-size
/// thread pool and streams outcomes to a ResultSink in spec order.
///
/// Because every scenario is self-contained (own seed stream, own
/// model/policy instances) and the sink observes outcomes in strictly
/// increasing spec-index order (out-of-order completions are buffered), the
/// delivered stream — and anything folded over it in order, like the
/// aggregation layer — is bitwise identical for any thread count. The
/// vector-returning overload is a thin CollectSink wrapper kept for callers
/// that want the historical "two parallel vectors" shape.
#ifndef IMX_EXP_RUNNER_HPP
#define IMX_EXP_RUNNER_HPP

#include <vector>

#include "exp/scenario.hpp"
#include "exp/sink.hpp"

namespace imx::sim {
class Profiler;
}  // namespace imx::sim

namespace imx::exp {

struct RunnerConfig {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    int threads = 0;
    /// When non-null, every worker profiles its scenarios into a private
    /// sim::Profiler (through its ScenarioWorkspace) and the runner merges
    /// them all into this one after the sweep. Null (the default) keeps
    /// profiling off — each simulator hook is a single pointer test.
    sim::Profiler* profiler = nullptr;
};

/// \brief Run every scenario in parallel, streaming outcomes to `sink`.
/// \param specs the expanded grid; each spec's run function must be set.
/// \param sink receives every outcome in strictly increasing spec-index
///   order (serialized — the sink needs no locking), then finish() exactly
///   once on success. On failure the stream ends before the lowest failing
///   index and finish() is not called.
/// \param config worker-thread count (0 = all hardware threads).
/// \throws whatever the lowest-index failing scenario (or the sink) threw,
///   rethrown after all workers finish (deterministic error behaviour
///   regardless of scheduling).
void run_sweep(const std::vector<ScenarioSpec>& specs, ResultSink& sink,
               const RunnerConfig& config = {});

/// \brief Run every scenario in parallel and collect the outcomes.
/// \return outcomes such that results[i] corresponds to specs[i] —
///   equivalent to streaming into a CollectSink, bitwise.
std::vector<ScenarioOutcome> run_sweep(const std::vector<ScenarioSpec>& specs,
                                       const RunnerConfig& config = {});

}  // namespace imx::exp

#endif  // IMX_EXP_RUNNER_HPP
