/// \file
/// \brief Parallel sweep runner: fans ScenarioSpecs out over a fixed-size
/// thread pool and returns outcomes in spec order.
///
/// Because every scenario is self-contained (own seed stream, own
/// model/policy instances) and outcomes land in index-addressed slots, the
/// returned vector — and anything folded over it in order, like the
/// aggregation layer — is bitwise identical for any thread count.
#ifndef IMX_EXP_RUNNER_HPP
#define IMX_EXP_RUNNER_HPP

#include <vector>

#include "exp/scenario.hpp"

namespace imx::exp {

struct RunnerConfig {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    int threads = 0;
};

/// \brief Run every scenario in parallel.
/// \param specs the expanded grid; each spec's run function must be set.
/// \param config worker-thread count (0 = all hardware threads).
/// \return outcomes such that results[i] corresponds to specs[i].
/// \throws whatever the lowest-index failing scenario threw, rethrown after
///   all workers finish (deterministic error behaviour regardless of
///   scheduling).
std::vector<ScenarioOutcome> run_sweep(const std::vector<ScenarioSpec>& specs,
                                       const RunnerConfig& config = {});

}  // namespace imx::exp

#endif  // IMX_EXP_RUNNER_HPP
