#include "exp/aggregate.hpp"

#include <cmath>
#include <set>
#include <utility>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace imx::exp {

void GroupAggregator::add(const ScenarioSpec& spec,
                          const ScenarioOutcome& outcome) {
    auto it = group_index_.find(spec.group);
    if (it == group_index_.end()) {
        it = group_index_.emplace(spec.group, groups_.size()).first;
        GroupAggregate g;
        g.group = spec.group;
        g.dims = spec.dims;
        groups_.push_back(std::move(g));
        accumulators_.emplace_back();
    }
    const std::size_t gi = it->second;
    groups_[gi].replicas += 1;
    for (const auto& [name, value] : outcome.metrics) {
        accumulators_[gi][name].add(value);
    }
}

std::vector<GroupAggregate> GroupAggregator::groups() const {
    std::vector<GroupAggregate> out = groups_;
    for (std::size_t gi = 0; gi < out.size(); ++gi) {
        out[gi].metrics.clear();
        for (const auto& [name, acc] : accumulators_[gi]) {
            MetricStats stats;
            stats.count = acc.count();
            stats.mean = acc.mean();
            stats.stddev = std::sqrt(acc.sample_variance());
            stats.ci95 =
                acc.count() > 1
                    ? 1.96 * stats.stddev /
                          std::sqrt(static_cast<double>(acc.count()))
                    : 0.0;
            stats.min = acc.min();
            stats.max = acc.max();
            out[gi].metrics.emplace(name, stats);
        }
    }
    return out;
}

AggregateSink::AggregateSink(const std::vector<ScenarioSpec>& specs)
    : specs_(specs) {}

void AggregateSink::on_outcome(std::size_t spec_index,
                               ScenarioOutcome outcome) {
    IMX_EXPECTS(spec_index < specs_.size());
    aggregator_.add(specs_[spec_index], outcome);
}

void AggregateSink::finish() {
    groups_ = aggregator_.groups();
    finished_ = true;
}

const std::vector<GroupAggregate>& AggregateSink::groups() const {
    IMX_EXPECTS(finished_);
    return groups_;
}

std::vector<GroupAggregate> aggregate(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<ScenarioOutcome>& outcomes) {
    IMX_EXPECTS(specs.size() == outcomes.size());
    // The batch fold IS the streaming fold, walked in spec index order —
    // one code path, so streaming sinks and collected vectors cannot drift.
    GroupAggregator aggregator;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        aggregator.add(specs[i], outcomes[i]);
    }
    return aggregator.groups();
}

util::Table aggregate_table(const std::vector<GroupAggregate>& groups,
                            const std::vector<std::string>& metric_names,
                            const std::string& title) {
    util::Table table(title);
    std::vector<std::string> header = {"scenario", "replicas"};
    header.insert(header.end(), metric_names.begin(), metric_names.end());
    table.header(std::move(header));

    for (const auto& group : groups) {
        std::vector<std::string> cells = {group.group,
                                          std::to_string(group.replicas)};
        for (const auto& name : metric_names) {
            const auto it = group.metrics.find(name);
            if (it == group.metrics.end()) {
                cells.emplace_back("-");
            } else {
                std::string cell = util::fixed(it->second.mean, 3);
                if (it->second.count > 1) {
                    cell += " ± " + util::fixed(it->second.ci95, 3);
                }
                // Conditionally-emitted metrics (e.g. feasibility-gated
                // search stats) can cover fewer runs than the group has
                // replicas; make the actual sample size visible.
                if (it->second.count != group.replicas) {
                    cell += " (n=" + std::to_string(it->second.count) + ")";
                }
                cells.push_back(std::move(cell));
            }
        }
        table.row(std::move(cells));
    }
    return table;
}

void write_aggregate_csv(const std::string& path,
                         const std::vector<GroupAggregate>& groups) {
    // Column union across groups, deterministic order.
    std::set<std::string> dim_names;
    std::set<std::string> metric_names;
    for (const auto& group : groups) {
        for (const auto& [k, v] : group.dims) {
            (void)v;
            dim_names.insert(k);
        }
        for (const auto& [k, v] : group.metrics) {
            (void)v;
            metric_names.insert(k);
        }
    }

    util::CsvWriter writer(path);
    std::vector<std::string> header = {"group", "replicas"};
    for (const auto& d : dim_names) header.push_back("dim_" + d);
    for (const auto& m : metric_names) {
        header.push_back(m + "_mean");
        header.push_back(m + "_stddev");
        header.push_back(m + "_ci95");
        header.push_back(m + "_min");
        header.push_back(m + "_max");
    }
    writer.write_header(header);

    for (const auto& group : groups) {
        std::vector<std::string> row = {group.group,
                                        std::to_string(group.replicas)};
        for (const auto& d : dim_names) {
            const auto it = group.dims.find(d);
            row.push_back(it == group.dims.end() ? "" : it->second);
        }
        for (const auto& m : metric_names) {
            const auto it = group.metrics.find(m);
            if (it == group.metrics.end()) {
                row.insert(row.end(), 5, "");
                continue;
            }
            const auto& s = it->second;
            row.push_back(util::fixed(s.mean, 9));
            row.push_back(util::fixed(s.stddev, 9));
            row.push_back(util::fixed(s.ci95, 9));
            row.push_back(util::fixed(s.min, 9));
            row.push_back(util::fixed(s.max, 9));
        }
        writer.write_row(row);
    }
}

}  // namespace imx::exp
