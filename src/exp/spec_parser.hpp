/// \file
/// \brief Spec-file front end for the declarative experiment API: load an
/// ExperimentSpec from an INI-style file, so arbitrary new sweep grids run
/// through `imx_sweep --spec FILE` with zero recompilation.
///
/// Schema (sample specs under examples/experiments/, full reference in
/// docs/experiments.md):
///
///     [sweep]                  # exactly once
///     name = my-sweep          # required
///     description = ...        # optional one-liner
///     title = ...              # optional report table title
///     replicas = 2             # optional, default 1 (CLI --replicas wins)
///     base_seed = 0xD5EED      # optional (CLI --base-seed wins)
///     metrics = iepmj, ...     # optional generic-report columns
///
///     [trace]                  # optional, repeatable; default paper-solar
///     label = paper-solar
///     duration_s = 13000       # any subset of the canonical SetupConfig
///     event_count = 500        # fields may be overridden
///     total_harvest_mj = 281.5
///     trace_seed = 7
///     event_seed = 99
///     arrivals = uniform       # any registered arrival source name
///                              # (uniform | poisson | bursty | mmpp |
///                              # diurnal | csv); parameterised workloads
///                              # use [arrivals.<label>] sections instead
///
///     [trace.rf-lab]           # label from the header; same keys as
///     source = rf-bursty       # [trace] plus a harvesting source from the
///     burst_power_mw = 0.6     # energy trace registry (solar | rf-bursty |
///     mean_off_s = 18          # ou-wind | duty-cycle | constant | csv) and
///                              # that source's parameters
///                              # (docs/energy-sources.md). A brand-new
///                              # harvesting environment is spec authoring,
///                              # not C++ work.
///
///     [system]                 # at least once
///     label = ours
///     kind = ours-policy       # ours-qlearning | ours-static | ours-policy
///                              # | sonic | sparse | lenet
///     policy = greedy          # sim::policies name (ours-* only)
///     train_episodes = 12
///     quick_train_episodes = 4
///
///     [arrivals.flash-crowd]   # optional, repeatable: request-workload
///     source = bursty          # axis. `source` names a registered arrival
///     burst_min = 6            # source (docs/workloads.md); every other
///     burst_max = 12           # key must be a parameter that source
///     jitter_s = 2             # declares. Cells regenerate the event
///                              # schedule per scenario.
///
///     [patch.storage]          # each patch.* section at most once; the
///     capacity_mj = 3, 6, 12   # present axes cross into a full factorial
///     [patch.deadline]         # grid (arrivals x storage x deadline x
///     deadline_s = 60, inf     # queue x policy x recovery order)
///     [patch.queue]            # bounded request queue; 0 = the historical
///     capacity = 0, 4, 16      # unbuffered model (drop-on-full otherwise)
///     [patch.policy]
///     policies = greedy, slack-greedy
///
/// Unknown sections and unknown keys are hard errors with "file:line"
/// diagnostics — a typo must never silently change what a sweep computes.
/// Semantic validation (unknown kinds/policies, empty system list) happens
/// in make_sweep() when the spec expands.
#ifndef IMX_EXP_SPEC_PARSER_HPP
#define IMX_EXP_SPEC_PARSER_HPP

#include <string>

#include "exp/experiment.hpp"

namespace imx::exp {

/// \brief Parse a declarative spec from INI-style text.
/// \param text the spec contents.
/// \param origin label used in diagnostics (file path or "<string>").
/// \throws util::KvParseError on syntax errors, std::runtime_error on
///   schema violations (unknown key/section, bad number, duplicates).
ExperimentSpec parse_experiment_spec(const std::string& text,
                                     const std::string& origin = "<string>");

/// \brief Read and parse a spec file.
ExperimentSpec load_experiment_spec(const std::string& path);

}  // namespace imx::exp

#endif  // IMX_EXP_SPEC_PARSER_HPP
