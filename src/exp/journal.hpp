/// \file
/// \brief Per-shard JSONL outcome journals, resume, and exact merge.
///
/// A journal is one line of JSON per record, machine-written and
/// append-only, so a crashed shard loses at most its final (possibly
/// truncated) line:
///
///   {"imx_journal": 1, "experiment": "fig5-iepmj", "total_specs": 48,
///    "shard": "0/3", "base_seed": "0xd5eed", "quick": true, "replicas": 2}
///   {"spec_index": 0, "id": "paper-solar/Ours#0", "replica": 0,
///    "metrics": {"acc_all_pct": 43.4, ...}}
///   ...
///
/// The versioned header line pins everything that determines the grid a
/// journal belongs to; readers reject mismatches instead of merging apples
/// into oranges. Entries carry the *global* spec index plus the scenario id
/// as a cross-check against the re-expanded grid. Metric doubles are
/// printed with enough digits (%.17g) to round-trip bit-exactly, which is
/// what makes a merged table/CSV byte-identical to a single-process run.
///
/// The JournalWriter is a ResultSink: because the runner delivers outcomes
/// in spec-index order, a journal is always an in-order prefix of its
/// shard's work — which is exactly what makes --resume a "skip the prefix,
/// run the rest" operation.
#ifndef IMX_EXP_JOURNAL_HPP
#define IMX_EXP_JOURNAL_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exp/cli.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"

namespace imx::exp {

/// The journal format version this build reads and writes.
inline constexpr int kJournalVersion = 1;

/// Everything that identifies the sweep a journal belongs to. Readers
/// refuse to resume or merge when any field disagrees with the grid in
/// hand — a journal from a different experiment, seed, mode, or replica
/// count cannot silently contaminate a merge.
struct JournalHeader {
    std::string experiment;      ///< ExperimentSpec::name
    std::size_t total_specs = 0; ///< size of the full (unsharded) grid
    ShardSpec shard;             ///< which slice this journal covers
    std::uint64_t base_seed = kDefaultBaseSeed;
    bool quick = false;
    int replicas = 1;
};

/// One journaled scenario outcome (scalar metrics only — per-event
/// SimResults and payloads are not journaled, so merged runs report
/// through the generic aggregate path).
struct JournalEntry {
    std::size_t spec_index = 0;  ///< index into the full grid
    std::string id;              ///< ScenarioSpec::id, cross-checked on read
    int replica = 0;
    MetricMap metrics;
};

/// A parsed journal file.
struct JournalFile {
    JournalHeader header;
    std::vector<JournalEntry> entries;
    /// True when the file ended in an unparseable final line (a write cut
    /// short by a crash). The valid prefix is still returned; --resume
    /// rewrites the file without the torn tail.
    bool truncated = false;
};

/// \brief Serialize one header / entry as its JSONL line (no newline).
std::string journal_header_line(const JournalHeader& header);
std::string journal_entry_line(const JournalEntry& entry);

/// \brief Parse a journal file.
/// \throws std::runtime_error with a path:line diagnostic on a missing
///   file, a bad or unsupported header, or a malformed non-final line
///   (a torn *final* line sets JournalFile::truncated instead).
JournalFile read_journal(const std::string& path);

/// \brief A ResultSink that streams outcomes into a JSONL journal, one
/// flushed line per scenario. Opens `path` truncating and writes the
/// header immediately; replay() re-writes entries recovered from a prior
/// journal (resume) before the live stream starts.
class JournalWriter final : public ResultSink {
public:
    /// \param specs the scenarios the runner will deliver (local order);
    ///   copied metadata only, the vector need not outlive the writer.
    /// \param global_indices specs-parallel absolute grid indices.
    /// \throws std::runtime_error when the path is not writable.
    JournalWriter(const std::string& path, const JournalHeader& header,
                  const std::vector<ScenarioSpec>& specs,
                  std::vector<std::size_t> global_indices);
    ~JournalWriter() override;
    JournalWriter(const JournalWriter&) = delete;
    JournalWriter& operator=(const JournalWriter&) = delete;

    /// Re-write an entry recovered from a previous run of this shard.
    void replay(const JournalEntry& entry);
    void on_outcome(std::size_t spec_index, ScenarioOutcome outcome) override;
    void finish() override;

private:
    struct Impl;
    Impl* impl_;  // pimpl keeps <fstream> out of the header
};

/// \brief The sharded sweep driver: select `header.shard`'s slice of
/// `all_specs`, optionally resume from / stream to a journal, and run the
/// remainder on the parallel runner.
///
/// When `resume` is set and `journal_path` names an existing journal, its
/// entries (validated against the header and the grid) are reused instead
/// of re-run and the journal is rewritten without any torn tail; outcomes
/// reconstructed this way carry metrics only. An empty `journal_path`
/// journals nothing; a missing journal with `resume` simply runs
/// everything (first launch and relaunch share one command line).
struct ShardRunResult {
    std::vector<std::size_t> indices;       ///< global indices of the shard
    std::vector<ScenarioSpec> specs;        ///< the shard's specs
    std::vector<ScenarioOutcome> outcomes;  ///< parallel to specs
    std::size_t reused = 0;  ///< outcomes replayed from the journal
};
ShardRunResult run_shard(const std::vector<ScenarioSpec>& all_specs,
                         const JournalHeader& header,
                         const RunnerConfig& runner,
                         const std::string& journal_path, bool resume);

/// \brief Fold shard journals into the outcomes of the full grid.
/// \param expected the run identity the journals must match (shard field
///   ignored — each journal declares its own slice).
/// \param specs the re-expanded full grid the entries are checked against.
/// \param paths one or more journal files, in any order.
/// \return specs-parallel outcomes (metrics only). Aggregating them yields
///   byte-identical tables/CSV to a single-process run of the same grid.
/// \throws std::runtime_error when a journal mismatches the grid, is
///   truncated, covers an index twice, or the union leaves gaps.
std::vector<ScenarioOutcome> merge_journal_outcomes(
    const JournalHeader& expected, const std::vector<ScenarioSpec>& specs,
    const std::vector<std::string>& paths);

}  // namespace imx::exp

#endif  // IMX_EXP_JOURNAL_HPP
