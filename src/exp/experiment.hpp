/// \file
/// \brief Declarative experiment API: a value type that fully describes a
/// sweep, a string -> factory experiment registry, and the shared driver
/// the bench shims and the universal `imx_sweep` binary run through.
///
/// An ExperimentSpec names everything a factorial paper sweep needs —
/// traces, systems (label + kind + exit policy + train episodes), the
/// storage / deadline / policy patch axes, replicas, and the metrics the
/// generic report prints. expand_experiment() turns one into ScenarioSpecs
/// via the existing PaperSweep machinery, so a spec-file grid and a
/// hand-written PaperSweep expand through identical code paths.
///
/// The registry mirrors sim/policies/registry.hpp: mutex-guarded
/// string -> factory, built-ins seeded on first use. Every fig*/ablation_*
/// bench grid is registered as a named built-in; grids the declarative
/// spec cannot express (custom traces, search scenarios, learning curves)
/// register a custom `build` function instead, and benches with bespoke
/// tables register a custom `report` — the bench binaries themselves are
/// one-line shims over experiment_main().
#ifndef IMX_EXP_EXPERIMENT_HPP
#define IMX_EXP_EXPERIMENT_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment_setup.hpp"
#include "exp/cli.hpp"
#include "exp/paper_scenarios.hpp"

namespace imx::exp {

/// One entry on the trace axis: a label plus the SetupConfig it is built
/// from (the spec parser applies per-key overrides to the canonical
/// defaults). Quick mode shrinks the config at expansion time.
struct TraceEntry {
    std::string label = "paper-solar";
    core::SetupConfig config = {};
};

/// One entry on the system axis. `kind` is a string so spec files and
/// registry descriptions stay self-describing; parse_system_kind() maps it
/// onto exp::SystemKind.
struct SystemEntry {
    std::string label;
    /// "ours-qlearning" | "ours-static" | "ours-policy" | "sonic" |
    /// "sparse" | "lenet".
    std::string kind = "ours-qlearning";
    /// sim::policies registry name; required for "ours-policy" (unless a
    /// policy patch axis supplies one), must be empty for the baselines.
    std::string policy;
    int train_episodes = 16;       ///< learning policies, full runs
    int quick_train_episodes = 4;  ///< learning policies under --quick
};

/// A fully declarative sweep description: everything `imx_sweep` needs to
/// expand and run a trace x system x storage x deadline x policy x replica
/// grid, whether it came from a spec file or a registered built-in.
struct ExperimentSpec {
    std::string name;
    std::string description;  ///< one-line "when to use", shown by --list
    std::string title;        ///< generic report table title; default: name
    std::vector<TraceEntry> traces = {TraceEntry{}};
    std::vector<SystemEntry> systems;
    /// Patch axes (empty = axis absent). Non-empty axes cross into a full
    /// factorial grid in arrivals -> storage -> deadline -> queue -> policy
    /// -> recovery order via cross_patches(), exactly like the hand-written
    /// ablation benches.
    /// Request-workload axis ([arrivals.<label>] spec sections or
    /// arrival_patch() cells): each cell regenerates the event schedule
    /// through a named arrival source.
    std::vector<ArrivalCell> arrivals;
    std::vector<double> storage_mj;
    std::vector<double> deadline_s;  ///< infinity = explicit ddl-none cell
    /// Bounded-request-queue axis: sim::SimConfig::queue_capacity values
    /// (0 = the historical no-queue cell).
    std::vector<int> queue_capacity;
    std::vector<std::string> policies;
    /// Power-failure/recovery axis ([recovery.<label>] spec sections or
    /// recovery_patch() cells); multi-exit systems only.
    std::vector<RecoveryCell> recoveries;
    int replicas = 1;  ///< default; `--replicas` on the CLI overrides
    /// Metric columns of the generic aggregate-table report.
    std::vector<std::string> metrics = {"iepmj", "acc_all_pct", "processed"};
    std::uint64_t base_seed = kDefaultBaseSeed;
};

/// \brief Map a spec kind string onto the scenario-layer enum.
/// \throws std::invalid_argument for unknown kinds (message lists them all).
SystemKind parse_system_kind(const std::string& kind);

/// \brief Quick-mode shrink: compress the trace to at most 4000 s at the
/// same harvest-per-second density and cap the schedule at 150 events —
/// the benches' historical `--quick` behaviour. Configs already below the
/// smoke scale are left alone (shrink only, never inflate).
core::SetupConfig quick_setup_config(core::SetupConfig config);

/// The canonical bench setup config (shrunk when options.quick).
core::SetupConfig sweep_setup_config(const SweepCli& options);

/// Q-learning training episodes for a bench run (4 under --quick).
int sweep_episodes(const SweepCli& options, int full_default);

/// \brief Resolve CLI options against a spec's defaults: flags that were
/// given on the command line win, otherwise the spec's replicas/base_seed
/// apply. Bench shims (spec defaults == CLI defaults) are unaffected.
SweepCli resolve_options(const ExperimentSpec& spec, const SweepCli& options);

/// \brief Expand a declarative spec into the PaperSweep it denotes.
/// \throws std::invalid_argument on contract violations the spec text can
///   express (unknown kind, unknown policy, non-positive axis value,
///   duplicate system label, policy on a baseline system).
PaperSweep make_sweep(const ExperimentSpec& spec, const SweepCli& options);

/// expand_experiment(spec, options) == build_paper_scenarios(make_sweep()).
std::vector<ScenarioSpec> expand_experiment(const ExperimentSpec& spec,
                                            const SweepCli& options);

/// Everything a custom report may read: the resolved options, the expanded
/// grid, and the (specs-parallel) outcomes. Custom reports only ever see a
/// full, freshly-run grid — sharded, resumed, and merged runs report
/// through the generic aggregate path because journaled outcomes carry
/// scalar metrics only.
struct ExperimentRunContext {
    const ExperimentSpec& spec;
    const SweepCli& options;
    const std::vector<ScenarioSpec>& specs;
    const std::vector<ScenarioOutcome>& outcomes;
};

/// A runnable experiment: the declarative spec plus optional custom hooks.
struct Experiment {
    ExperimentSpec spec;
    /// Accept positional CLI arguments (e.g. an episode count)? When false
    /// the driver rejects strays exactly like require_no_positional().
    bool allow_positional = false;
    /// Custom grid builder; empty = expand_experiment(spec, options).
    std::function<std::vector<ScenarioSpec>(const ExperimentSpec&,
                                            const SweepCli&)>
        build;
    /// Custom report over the outcomes, returning the process exit code;
    /// empty = the generic aggregate table over spec.metrics.
    std::function<int(const ExperimentRunContext&)> report;
};

/// \brief Factory signature: build a fresh Experiment (cheap — no setups
/// are constructed until the experiment is built/run).
using ExperimentFactory = std::function<Experiment()>;

/// \brief Construct a registered experiment by name.
/// \throws std::invalid_argument for unknown names (the message lists every
///   registered name, so CLI typos are self-explaining).
Experiment make_experiment(const std::string& name);

/// \brief Register (or replace) a named experiment factory.
/// \param name the registry key; must be non-empty.
/// \param factory invoked by make_experiment(); its spec.name should match.
void register_experiment(const std::string& name, ExperimentFactory factory);

/// \brief Whether `name` is currently registered.
[[nodiscard]] bool has_experiment(const std::string& name);

/// \brief Every registered name, sorted (built-ins plus custom ones).
[[nodiscard]] std::vector<std::string> experiment_names();

/// \brief One-line description of a registered experiment (for --list).
[[nodiscard]] std::string experiment_description(const std::string& name);

/// \brief Expand an experiment's grid without running it (used by the
/// driver's --dry-run and by run_experiment). Resolves options first.
std::vector<ScenarioSpec> build_experiment_scenarios(
    const Experiment& experiment, const SweepCli& options);

/// \brief The shared driver: resolve options, build the grid, then either
/// fold shard journals (--merge) or run the selected shard of the parallel
/// sweep (optionally journaling / resuming), write the optional aggregate
/// CSV, and report. The default unsharded run uses the experiment's custom
/// report hook when it has one; sharded slices, resumed runs, and merges
/// report through the generic aggregate table (see ExperimentRunContext).
/// \return the process exit code.
int run_experiment(const Experiment& experiment, const SweepCli& options);

/// \brief Entry point for the bench shims: parse argv, fetch the named
/// experiment, run it. Never throws — registry/spec errors print to stderr
/// and return a nonzero code.
int experiment_main(const std::string& name, int argc, char** argv);

}  // namespace imx::exp

#endif  // IMX_EXP_EXPERIMENT_HPP
