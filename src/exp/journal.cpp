#include "exp/journal.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/contracts.hpp"

namespace imx::exp {

namespace {

std::string seed_hex(std::uint64_t seed) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

std::string shard_text(const ShardSpec& shard) {
    return std::to_string(shard.index) + "/" + std::to_string(shard.count);
}

void append_escaped(std::string& out, const std::string& text) {
    for (const char c : text) {
        const auto byte = static_cast<unsigned char>(c);
        if (c == '"') {
            out += "\\\"";
        } else if (c == '\\') {
            out += "\\\\";
        } else if (byte < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", byte);
            out += buf;
        } else {
            out += c;
        }
    }
}

/// The JSON subset journals are written in: one flat object per line whose
/// values are strings, numbers, booleans, or (for "metrics") one nested
/// object of string -> number. Anything else is a parse error — the reader
/// only has to understand what journal_*_line() emits.
struct JsonValue {
    enum class Kind { String, Number, Bool, Object };
    Kind kind = Kind::Number;
    std::string str;
    double num = 0.0;
    bool boolean = false;
    MetricMap object;
};
using JsonObject = std::map<std::string, JsonValue>;

class LineParser {
public:
    explicit LineParser(const std::string& line) : s_(line) {}

    JsonObject parse_object_line() {
        JsonObject object = parse_object();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters after the object");
        return object;
    }

private:
    [[noreturn]] void fail(const std::string& why) const {
        throw std::runtime_error(why);
    }

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) {
            ++pos_;
        }
    }

    bool consume(char c) {
        skip_ws();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void expect(char c) {
        if (!consume(c)) fail(std::string("expected '") + c + "'");
    }

    JsonObject parse_object() {
        JsonObject object;
        expect('{');
        if (consume('}')) return object;
        while (true) {
            std::string key = parse_string();
            expect(':');
            object.emplace(std::move(key), parse_value());
            if (consume(',')) continue;
            expect('}');
            return object;
        }
    }

    JsonValue parse_value() {
        skip_ws();
        if (pos_ >= s_.size()) fail("unexpected end of line");
        JsonValue value;
        const char c = s_[pos_];
        if (c == '"') {
            value.kind = JsonValue::Kind::String;
            value.str = parse_string();
        } else if (c == '{') {
            value.kind = JsonValue::Kind::Object;
            value.object = parse_metrics();
        } else if (c == 't' || c == 'f') {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = (c == 't');
            const char* literal = value.boolean ? "true" : "false";
            const std::size_t len = value.boolean ? 4 : 5;
            if (s_.compare(pos_, len, literal) != 0) fail("bad literal");
            pos_ += len;
        } else {
            value.kind = JsonValue::Kind::Number;
            value.num = parse_number();
        }
        return value;
    }

    MetricMap parse_metrics() {
        MetricMap metrics;
        expect('{');
        if (consume('}')) return metrics;
        while (true) {
            std::string key = parse_string();
            expect(':');
            metrics.emplace(std::move(key), parse_number());
            if (consume(',')) continue;
            expect('}');
            return metrics;
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = s_[pos_++];
                    code *= 16;
                    if (h >= '0' && h <= '9') {
                        code += static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code += static_cast<unsigned>(h - 'a') + 10;
                    } else if (h >= 'A' && h <= 'F') {
                        code += static_cast<unsigned>(h - 'A') + 10;
                    } else {
                        fail("bad \\u escape digit");
                    }
                }
                // The writer only escapes single bytes; reject anything a
                // round-trip could not have produced.
                if (code > 0xFF) fail("\\u escape above \\u00ff");
                out += static_cast<char>(code);
                break;
            }
            default: fail("unsupported escape");
            }
        }
    }

    double parse_number() {
        skip_ws();
        const std::size_t start = pos_;
        while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '}' &&
               s_[pos_] != ' ' && s_[pos_] != '\t') {
            ++pos_;
        }
        const std::string token = s_.substr(start, pos_ - start);
        if (token.empty()) fail("expected a number");
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            fail("'" + token + "' is not a number");
        }
        return value;
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

const JsonValue& require_field(const JsonObject& object, const char* key,
                               JsonValue::Kind kind, const char* kind_name) {
    const auto it = object.find(key);
    if (it == object.end() || it->second.kind != kind) {
        throw std::runtime_error(std::string("missing or mistyped field '") +
                                 key + "' (expected a " + kind_name + ")");
    }
    return it->second;
}

std::size_t require_count(double num, const char* what) {
    if (!(num >= 0.0) || num != std::floor(num) || num > 9.0e15) {
        throw std::runtime_error(std::string(what) +
                                 " is not a non-negative integer");
    }
    return static_cast<std::size_t>(num);
}

JournalHeader header_from_object(const JsonObject& object) {
    const double version =
        require_field(object, "imx_journal", JsonValue::Kind::Number, "number")
            .num;
    if (version != static_cast<double>(kJournalVersion)) {
        throw std::runtime_error(
            "unsupported journal version " + std::to_string(version) +
            " (this build reads version " + std::to_string(kJournalVersion) +
            ")");
    }
    JournalHeader header;
    header.experiment =
        require_field(object, "experiment", JsonValue::Kind::String, "string")
            .str;
    header.total_specs = require_count(
        require_field(object, "total_specs", JsonValue::Kind::Number, "number")
            .num,
        "total_specs");
    try {
        header.shard = parse_shard_spec(
            require_field(object, "shard", JsonValue::Kind::String, "string")
                .str);
    } catch (const std::invalid_argument& e) {
        throw std::runtime_error(e.what());
    }
    const std::string seed_text =
        require_field(object, "base_seed", JsonValue::Kind::String, "string")
            .str;
    char* end = nullptr;
    errno = 0;
    const unsigned long long seed = std::strtoull(seed_text.c_str(), &end, 0);
    if (end == seed_text.c_str() || *end != '\0' || errno == ERANGE) {
        throw std::runtime_error("bad base_seed '" + seed_text + "'");
    }
    header.base_seed = static_cast<std::uint64_t>(seed);
    header.quick =
        require_field(object, "quick", JsonValue::Kind::Bool, "boolean")
            .boolean;
    header.replicas = static_cast<int>(require_count(
        require_field(object, "replicas", JsonValue::Kind::Number, "number")
            .num,
        "replicas"));
    return header;
}

JournalEntry entry_from_object(JsonObject object) {
    JournalEntry entry;
    entry.spec_index = require_count(
        require_field(object, "spec_index", JsonValue::Kind::Number, "number")
            .num,
        "spec_index");
    entry.id =
        require_field(object, "id", JsonValue::Kind::String, "string").str;
    entry.replica = static_cast<int>(require_count(
        require_field(object, "replica", JsonValue::Kind::Number, "number")
            .num,
        "replica"));
    require_field(object, "metrics", JsonValue::Kind::Object, "object");
    entry.metrics = std::move(object.find("metrics")->second.object);
    return entry;
}

/// Reject a journal whose identity fields disagree with the run in hand.
void check_header(const JournalHeader& got, const JournalHeader& expected,
                  const std::string& path, bool check_shard) {
    const auto mismatch = [&path](const char* what, const std::string& got_text,
                                  const std::string& want_text) {
        throw std::runtime_error("journal '" + path +
                                 "' does not match this run: " + what +
                                 " is " + got_text + ", expected " +
                                 want_text);
    };
    if (got.experiment != expected.experiment) {
        mismatch("experiment", "'" + got.experiment + "'",
                 "'" + expected.experiment + "'");
    }
    if (got.total_specs != expected.total_specs) {
        mismatch("total_specs", std::to_string(got.total_specs),
                 std::to_string(expected.total_specs));
    }
    if (got.base_seed != expected.base_seed) {
        mismatch("base_seed", seed_hex(got.base_seed),
                 seed_hex(expected.base_seed));
    }
    if (got.quick != expected.quick) {
        mismatch("quick", got.quick ? "true" : "false",
                 expected.quick ? "true" : "false");
    }
    if (got.replicas != expected.replicas) {
        mismatch("replicas", std::to_string(got.replicas),
                 std::to_string(expected.replicas));
    }
    if (check_shard && (got.shard.index != expected.shard.index ||
                        got.shard.count != expected.shard.count)) {
        mismatch("shard", shard_text(got.shard), shard_text(expected.shard));
    }
}

/// Reject an entry that cannot belong to `shard` of the grid in hand.
void check_entry(const JournalEntry& entry,
                 const std::vector<ScenarioSpec>& specs,
                 const ShardSpec& shard, const std::string& path) {
    if (entry.spec_index >= specs.size() ||
        entry.spec_index % static_cast<std::size_t>(shard.count) !=
            static_cast<std::size_t>(shard.index)) {
        throw std::runtime_error(
            "journal '" + path + "': entry for spec index " +
            std::to_string(entry.spec_index) + " does not belong to shard " +
            shard_text(shard) + " of " + std::to_string(specs.size()) +
            " scenario(s)");
    }
    const ScenarioSpec& spec = specs[entry.spec_index];
    if (entry.id != spec.id || entry.replica != spec.replica) {
        throw std::runtime_error(
            "journal '" + path + "': spec index " +
            std::to_string(entry.spec_index) + " is '" + entry.id +
            "' (replica " + std::to_string(entry.replica) +
            ") but the grid expands to '" + spec.id + "' (replica " +
            std::to_string(spec.replica) +
            ") — was the journal written against a different grid?");
    }
}

}  // namespace

std::string journal_header_line(const JournalHeader& header) {
    std::string line = "{\"imx_journal\": ";
    line += std::to_string(kJournalVersion);
    line += ", \"experiment\": \"";
    append_escaped(line, header.experiment);
    line += "\", \"total_specs\": ";
    line += std::to_string(header.total_specs);
    line += ", \"shard\": \"";
    line += shard_text(header.shard);
    line += "\", \"base_seed\": \"";
    line += seed_hex(header.base_seed);
    line += "\", \"quick\": ";
    line += header.quick ? "true" : "false";
    line += ", \"replicas\": ";
    line += std::to_string(header.replicas);
    line += "}";
    return line;
}

std::string journal_entry_line(const JournalEntry& entry) {
    std::string line = "{\"spec_index\": ";
    line += std::to_string(entry.spec_index);
    line += ", \"id\": \"";
    append_escaped(line, entry.id);
    line += "\", \"replica\": ";
    line += std::to_string(entry.replica);
    line += ", \"metrics\": {";
    bool first = true;
    for (const auto& [name, value] : entry.metrics) {
        if (!first) line += ", ";
        first = false;
        line += "\"";
        append_escaped(line, name);
        line += "\": ";
        // 17 significant digits round-trip any IEEE double bit-exactly —
        // the property the byte-identical merge guarantee rests on.
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", value);
        line += buf;
    }
    line += "}}";
    return line;
}

JournalFile read_journal(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
        throw std::runtime_error("cannot open journal '" + path + "'");
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    if (lines.empty()) {
        throw std::runtime_error("journal '" + path +
                                 "' is empty (no header line)");
    }
    JournalFile file;
    try {
        file.header = header_from_object(LineParser(lines[0]).parse_object_line());
    } catch (const std::exception& e) {
        throw std::runtime_error(path + ":1: bad journal header: " + e.what());
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
        try {
            file.entries.push_back(
                entry_from_object(LineParser(lines[i]).parse_object_line()));
        } catch (const std::exception& e) {
            if (i + 1 == lines.size()) {
                // A torn final line is what a crash mid-write leaves behind;
                // the valid prefix is still usable (--resume rewrites it).
                file.truncated = true;
                break;
            }
            throw std::runtime_error(path + ":" + std::to_string(i + 1) +
                                     ": " + e.what());
        }
    }
    return file;
}

struct JournalWriter::Impl {
    std::string path;
    std::ofstream out;
    std::vector<std::size_t> global_indices;
    std::vector<std::string> ids;
    std::vector<int> replicas;

    void write_line(const std::string& line) {
        out << line << '\n' << std::flush;
        if (!out) {
            throw std::runtime_error("failed to append to journal '" + path +
                                     "'");
        }
    }
};

JournalWriter::JournalWriter(const std::string& path,
                             const JournalHeader& header,
                             const std::vector<ScenarioSpec>& specs,
                             std::vector<std::size_t> global_indices)
    : impl_(nullptr) {
    IMX_EXPECTS(specs.size() == global_indices.size());
    auto impl = std::make_unique<Impl>();
    impl->path = path;
    impl->global_indices = std::move(global_indices);
    impl->ids.reserve(specs.size());
    impl->replicas.reserve(specs.size());
    for (const auto& spec : specs) {
        impl->ids.push_back(spec.id);
        impl->replicas.push_back(spec.replica);
    }
    impl->out.open(path, std::ios::trunc);
    if (!impl->out) {
        throw std::runtime_error("cannot open journal '" + path +
                                 "' for writing");
    }
    impl->write_line(journal_header_line(header));
    impl_ = impl.release();
}

JournalWriter::~JournalWriter() { delete impl_; }

void JournalWriter::replay(const JournalEntry& entry) {
    impl_->write_line(journal_entry_line(entry));
}

void JournalWriter::on_outcome(std::size_t spec_index,
                               ScenarioOutcome outcome) {
    IMX_EXPECTS(spec_index < impl_->global_indices.size());
    JournalEntry entry;
    entry.spec_index = impl_->global_indices[spec_index];
    entry.id = impl_->ids[spec_index];
    entry.replica = impl_->replicas[spec_index];
    entry.metrics = std::move(outcome.metrics);
    impl_->write_line(journal_entry_line(entry));
}

void JournalWriter::finish() {
    impl_->out.flush();
    if (!impl_->out) {
        throw std::runtime_error("journal '" + impl_->path +
                                 "' failed to flush");
    }
}

ShardRunResult run_shard(const std::vector<ScenarioSpec>& all_specs,
                         const JournalHeader& header,
                         const RunnerConfig& runner,
                         const std::string& journal_path, bool resume) {
    IMX_EXPECTS(header.total_specs == all_specs.size());
    ShardRunResult result;
    result.indices = shard_indices(all_specs.size(), header.shard);
    result.specs.reserve(result.indices.size());
    for (const std::size_t g : result.indices) {
        result.specs.push_back(all_specs[g]);
    }
    result.outcomes.resize(result.specs.size());

    // Recover completed scenarios from a prior journal of this same shard.
    // A missing file is not an error: first launch and relaunch share one
    // command line.
    std::map<std::size_t, JournalEntry> reusable;  // global index -> entry
    if (resume && static_cast<bool>(std::ifstream(journal_path))) {
        JournalFile prior = read_journal(journal_path);
        check_header(prior.header, header, journal_path, /*check_shard=*/true);
        for (auto& entry : prior.entries) {
            check_entry(entry, all_specs, header.shard, journal_path);
            const std::size_t g = entry.spec_index;
            if (!reusable.emplace(g, std::move(entry)).second) {
                throw std::runtime_error(
                    "journal '" + journal_path + "': spec index " +
                    std::to_string(g) + " appears more than once");
            }
        }
    }

    std::vector<ScenarioSpec> to_run;
    std::vector<std::size_t> to_run_global;
    std::vector<std::size_t> to_run_local;
    for (std::size_t l = 0; l < result.indices.size(); ++l) {
        const auto it = reusable.find(result.indices[l]);
        if (it != reusable.end()) {
            result.outcomes[l].metrics = it->second.metrics;
            ++result.reused;
        } else {
            to_run.push_back(result.specs[l]);
            to_run_global.push_back(result.indices[l]);
            to_run_local.push_back(l);
        }
    }

    std::optional<JournalWriter> writer;
    if (!journal_path.empty()) {
        writer.emplace(journal_path, header, to_run, to_run_global);
        // Rewrite the recovered prefix (dropping any torn tail) so the file
        // is a valid journal again before the live stream appends to it.
        for (const std::size_t g : result.indices) {
            const auto it = reusable.find(g);
            if (it != reusable.end()) writer->replay(it->second);
        }
    }

    CollectSink collect(to_run.size());
    if (writer) {
        TeeSink tee({&*writer, &collect});
        run_sweep(to_run, tee, runner);
    } else {
        run_sweep(to_run, collect, runner);
    }
    std::vector<ScenarioOutcome> ran = collect.take();
    for (std::size_t k = 0; k < ran.size(); ++k) {
        result.outcomes[to_run_local[k]] = std::move(ran[k]);
    }
    return result;
}

std::vector<ScenarioOutcome> merge_journal_outcomes(
    const JournalHeader& expected, const std::vector<ScenarioSpec>& specs,
    const std::vector<std::string>& paths) {
    IMX_EXPECTS(expected.total_specs == specs.size());
    IMX_EXPECTS(!paths.empty());
    std::vector<ScenarioOutcome> outcomes(specs.size());
    std::vector<bool> covered(specs.size(), false);
    for (const auto& path : paths) {
        JournalFile file = read_journal(path);
        if (file.truncated) {
            throw std::runtime_error(
                "journal '" + path +
                "' ends in a torn line — re-run that shard with --resume "
                "before merging");
        }
        check_header(file.header, expected, path, /*check_shard=*/false);
        for (auto& entry : file.entries) {
            check_entry(entry, specs, file.header.shard, path);
            if (covered[entry.spec_index]) {
                throw std::runtime_error(
                    "spec index " + std::to_string(entry.spec_index) + " ('" +
                    entry.id +
                    "') is covered by more than one journal entry "
                    "(duplicate or overlapping shards?)");
            }
            covered[entry.spec_index] = true;
            outcomes[entry.spec_index].metrics = std::move(entry.metrics);
        }
        // A clean journal missing part of its own slice means the run was
        // interrupted between lines — resumable, but not mergeable yet.
        const std::size_t slice =
            shard_indices(specs.size(), file.header.shard).size();
        if (file.entries.size() != slice) {
            throw std::runtime_error(
                "journal '" + path + "' covers " +
                std::to_string(file.entries.size()) + " of " +
                std::to_string(slice) + " scenario(s) of shard " +
                shard_text(file.header.shard) +
                " — re-run that shard with --resume before merging");
        }
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (!covered[i]) {
            throw std::runtime_error("merge leaves spec index " +
                                     std::to_string(i) + " ('" + specs[i].id +
                                     "') uncovered — a shard journal is "
                                     "missing");
        }
    }
    return outcomes;
}

}  // namespace imx::exp
