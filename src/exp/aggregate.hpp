/// \file
/// \brief Aggregation and reporting over sweep outcomes.
///
/// Folds seed replicas of each scenario group into mean / stddev / 95% CI
/// per metric, then emits the result as an aligned table or CSV. The fold
/// is incremental: GroupAggregator accumulates streaming count/mean/M2
/// (Welford) moments one outcome at a time, so it works as a ResultSink
/// over a live sweep (AggregateSink) as well as over a materialized vector
/// (aggregate(), which is a loop over the same accumulator — streaming and
/// batch results are therefore bitwise identical, not merely close).
/// Outcomes must be fed in spec-index order; the runner's ordered sink
/// stream guarantees that, so aggregates inherit its thread-count
/// invariance.
#ifndef IMX_EXP_AGGREGATE_HPP
#define IMX_EXP_AGGREGATE_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace imx::exp {

/// Replica statistics of one metric within a group.
struct MetricStats {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample stddev (n-1); 0 for n < 2
    double ci95 = 0.0;    ///< 1.96 * stddev / sqrt(n), normal approximation
    double min = 0.0;
    double max = 0.0;
};

struct GroupAggregate {
    std::string group;
    std::map<std::string, std::string> dims;  ///< from the first member spec
    std::size_t replicas = 0;
    std::map<std::string, MetricStats> metrics;
};

/// \brief Incremental group/metric accumulator: add() one (spec, outcome)
/// at a time — in spec-index order — then groups() finalizes the streaming
/// moments into GroupAggregates. Groups appear in first-add order.
class GroupAggregator {
public:
    void add(const ScenarioSpec& spec, const ScenarioOutcome& outcome);
    /// Finalize mean/stddev/ci95/min/max from the accumulated moments. May
    /// be called repeatedly (e.g. for progress snapshots); add() remains
    /// valid afterwards.
    [[nodiscard]] std::vector<GroupAggregate> groups() const;

private:
    std::vector<GroupAggregate> groups_;  ///< metrics filled by groups()
    std::map<std::string, std::size_t> group_index_;
    std::vector<std::map<std::string, util::RunningStats>> accumulators_;
};

/// \brief A ResultSink that aggregates the stream as it arrives, holding
/// O(groups x metrics) accumulator state instead of every outcome. After
/// finish(), groups() returns exactly what aggregate() would have returned
/// over the collected vectors.
class AggregateSink final : public ResultSink {
public:
    /// \param specs the sweep grid the delivered indices refer to; must
    ///   outlive the sink.
    explicit AggregateSink(const std::vector<ScenarioSpec>& specs);
    void on_outcome(std::size_t spec_index, ScenarioOutcome outcome) override;
    void finish() override;

    [[nodiscard]] bool finished() const { return finished_; }
    /// \pre finish() has been called.
    [[nodiscard]] const std::vector<GroupAggregate>& groups() const;

private:
    const std::vector<ScenarioSpec>& specs_;
    GroupAggregator aggregator_;
    std::vector<GroupAggregate> groups_;
    bool finished_ = false;
};

/// \brief Group outcomes by spec.group (first-appearance order) and reduce
/// every metric over the group's replicas.
/// \param specs,outcomes parallel vectors as returned by run_sweep().
/// \return one GroupAggregate per distinct group.
std::vector<GroupAggregate> aggregate(const std::vector<ScenarioSpec>& specs,
                                      const std::vector<ScenarioOutcome>& outcomes);

/// \brief Render groups x selected metrics as "mean ± ci95" cells (plain
/// mean when there is a single replica).
/// \param metric_names column selection; missing metrics render as "-".
util::Table aggregate_table(const std::vector<GroupAggregate>& groups,
                            const std::vector<std::string>& metric_names,
                            const std::string& title);

/// \brief Write one row per group with mean/stddev/ci95/min/max columns for
/// every metric present in any group, plus dim_* columns for every axis
/// label (trace, system, patch, storage_mj, deadline_s, ...).
/// \throws std::runtime_error when the path is not writable.
void write_aggregate_csv(const std::string& path,
                         const std::vector<GroupAggregate>& groups);

}  // namespace imx::exp

#endif  // IMX_EXP_AGGREGATE_HPP
