// Aggregation and reporting over sweep outcomes: fold seed replicas of each
// scenario group into mean / stddev / 95% CI per metric, then emit the
// result as an aligned table or CSV. Accumulation walks specs in index
// order, so aggregates inherit the runner's thread-count invariance.
#ifndef IMX_EXP_AGGREGATE_HPP
#define IMX_EXP_AGGREGATE_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/table.hpp"

namespace imx::exp {

/// Replica statistics of one metric within a group.
struct MetricStats {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample stddev (n-1); 0 for n < 2
    double ci95 = 0.0;    ///< 1.96 * stddev / sqrt(n), normal approximation
    double min = 0.0;
    double max = 0.0;
};

struct GroupAggregate {
    std::string group;
    std::map<std::string, std::string> dims;  ///< from the first member spec
    std::size_t replicas = 0;
    std::map<std::string, MetricStats> metrics;
};

/// Group outcomes by spec.group (first-appearance order) and reduce every
/// metric over the group's replicas. specs and outcomes must be parallel
/// vectors as returned by run_sweep().
std::vector<GroupAggregate> aggregate(const std::vector<ScenarioSpec>& specs,
                                      const std::vector<ScenarioOutcome>& outcomes);

/// Render groups x selected metrics as "mean ± ci95" cells (plain mean when
/// there is a single replica).
util::Table aggregate_table(const std::vector<GroupAggregate>& groups,
                            const std::vector<std::string>& metric_names,
                            const std::string& title);

/// Write one row per group with mean/stddev/ci95/min/max columns for every
/// metric present in any group.
void write_aggregate_csv(const std::string& path,
                         const std::vector<GroupAggregate>& groups);

}  // namespace imx::exp

#endif  // IMX_EXP_AGGREGATE_HPP
