/// \file
/// \brief Aggregation and reporting over sweep outcomes.
///
/// Folds seed replicas of each scenario group into mean / stddev / 95% CI
/// per metric, then emits the result as an aligned table or CSV.
/// Accumulation walks specs in index order, so aggregates inherit the
/// runner's thread-count invariance.
#ifndef IMX_EXP_AGGREGATE_HPP
#define IMX_EXP_AGGREGATE_HPP

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "util/table.hpp"

namespace imx::exp {

/// Replica statistics of one metric within a group.
struct MetricStats {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;  ///< sample stddev (n-1); 0 for n < 2
    double ci95 = 0.0;    ///< 1.96 * stddev / sqrt(n), normal approximation
    double min = 0.0;
    double max = 0.0;
};

struct GroupAggregate {
    std::string group;
    std::map<std::string, std::string> dims;  ///< from the first member spec
    std::size_t replicas = 0;
    std::map<std::string, MetricStats> metrics;
};

/// \brief Group outcomes by spec.group (first-appearance order) and reduce
/// every metric over the group's replicas.
/// \param specs,outcomes parallel vectors as returned by run_sweep().
/// \return one GroupAggregate per distinct group.
std::vector<GroupAggregate> aggregate(const std::vector<ScenarioSpec>& specs,
                                      const std::vector<ScenarioOutcome>& outcomes);

/// \brief Render groups x selected metrics as "mean ± ci95" cells (plain
/// mean when there is a single replica).
/// \param metric_names column selection; missing metrics render as "-".
util::Table aggregate_table(const std::vector<GroupAggregate>& groups,
                            const std::vector<std::string>& metric_names,
                            const std::string& title);

/// \brief Write one row per group with mean/stddev/ci95/min/max columns for
/// every metric present in any group, plus dim_* columns for every axis
/// label (trace, system, patch, storage_mj, deadline_s, ...).
/// \throws std::runtime_error when the path is not writable.
void write_aggregate_csv(const std::string& path,
                         const std::vector<GroupAggregate>& groups);

}  // namespace imx::exp

#endif  // IMX_EXP_AGGREGATE_HPP
