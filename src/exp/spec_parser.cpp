#include "exp/spec_parser.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/kvfile.hpp"

namespace imx::exp {

namespace {

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& message) {
    throw std::runtime_error(origin + ":" + std::to_string(line) + ": " +
                             message);
}

double parse_double(const std::string& origin, const util::KvEntry& entry,
                    const std::string& text) {
    if (text == "inf" || text == "infinity") {
        return std::numeric_limits<double>::infinity();
    }
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        fail(origin, entry.line,
             "key '" + entry.key + "' expects a number, got '" + text + "'");
    }
    return value;
}

int parse_int(const std::string& origin, const util::KvEntry& entry) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(entry.value.c_str(), &end, 10);
    if (end == entry.value.c_str() || *end != '\0' || errno == ERANGE ||
        value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max()) {
        fail(origin, entry.line,
             "key '" + entry.key + "' expects an integer, got '" +
                 entry.value + "'");
    }
    return static_cast<int>(value);
}

std::uint64_t parse_uint64(const std::string& origin,
                           const util::KvEntry& entry) {
    char* end = nullptr;
    errno = 0;
    // Base 0 so seeds read naturally in decimal or hex (0xD5EED).
    const unsigned long long value =
        std::strtoull(entry.value.c_str(), &end, 0);
    if (end == entry.value.c_str() || *end != '\0' || errno == ERANGE ||
        entry.value[0] == '-') {
        fail(origin, entry.line,
             "key '" + entry.key + "' expects a non-negative integer, got '" +
                 entry.value + "'");
    }
    return static_cast<std::uint64_t>(value);
}

/// Split a comma-separated value, trimming each element; empty elements
/// (",," or a trailing comma) are schema errors.
std::vector<std::string> parse_list(const std::string& origin,
                                    const util::KvEntry& entry) {
    std::vector<std::string> items;
    std::size_t start = 0;
    const std::string& text = entry.value;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        std::string item = text.substr(start, end - start);
        const auto first = item.find_first_not_of(" \t");
        const auto last = item.find_last_not_of(" \t");
        item = first == std::string::npos
                   ? ""
                   : item.substr(first, last - first + 1);
        if (item.empty()) {
            fail(origin, entry.line,
                 "key '" + entry.key + "' has an empty list element");
        }
        items.push_back(std::move(item));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return items;
}

std::vector<double> parse_double_list(const std::string& origin,
                                      const util::KvEntry& entry) {
    std::vector<double> values;
    for (const auto& item : parse_list(origin, entry)) {
        values.push_back(parse_double(origin, entry, item));
    }
    return values;
}

sim::ArrivalKind parse_arrivals(const std::string& origin,
                                const util::KvEntry& entry) {
    if (entry.value == "uniform") return sim::ArrivalKind::kUniform;
    if (entry.value == "poisson") return sim::ArrivalKind::kPoisson;
    if (entry.value == "bursty") return sim::ArrivalKind::kBursty;
    fail(origin, entry.line,
         "key 'arrivals' expects uniform, poisson, or bursty, got '" +
             entry.value + "'");
}

[[noreturn]] void unknown_key(const std::string& origin,
                              const std::string& section,
                              const util::KvEntry& entry) {
    fail(origin, entry.line,
         "unknown key '" + entry.key + "' in [" + section + "]");
}

void apply_sweep(const std::string& origin, const util::KvSection& section,
                 ExperimentSpec& spec) {
    for (const auto& entry : section.entries) {
        if (entry.key == "name") {
            spec.name = entry.value;
        } else if (entry.key == "description") {
            spec.description = entry.value;
        } else if (entry.key == "title") {
            spec.title = entry.value;
        } else if (entry.key == "replicas") {
            spec.replicas = parse_int(origin, entry);
            if (spec.replicas < 1) {
                fail(origin, entry.line, "replicas must be >= 1");
            }
        } else if (entry.key == "base_seed") {
            spec.base_seed = parse_uint64(origin, entry);
        } else if (entry.key == "metrics") {
            spec.metrics = parse_list(origin, entry);
        } else {
            unknown_key(origin, "sweep", entry);
        }
    }
    if (spec.name.empty()) {
        fail(origin, section.line, "[sweep] requires a non-empty 'name'");
    }
}

TraceEntry parse_trace(const std::string& origin,
                       const util::KvSection& section) {
    TraceEntry trace;
    for (const auto& entry : section.entries) {
        if (entry.key == "label") {
            trace.label = entry.value;
        } else if (entry.key == "duration_s") {
            trace.config.duration_s = parse_double(origin, entry, entry.value);
            if (!(trace.config.duration_s > 0.0)) {
                fail(origin, entry.line, "duration_s must be positive");
            }
        } else if (entry.key == "event_count") {
            trace.config.event_count = parse_int(origin, entry);
            if (trace.config.event_count < 1) {
                fail(origin, entry.line, "event_count must be >= 1");
            }
        } else if (entry.key == "total_harvest_mj") {
            trace.config.total_harvest_mj =
                parse_double(origin, entry, entry.value);
            if (!(trace.config.total_harvest_mj > 0.0)) {
                fail(origin, entry.line, "total_harvest_mj must be positive");
            }
        } else if (entry.key == "trace_seed") {
            trace.config.trace_seed = parse_uint64(origin, entry);
        } else if (entry.key == "event_seed") {
            trace.config.event_seed = parse_uint64(origin, entry);
        } else if (entry.key == "arrivals") {
            trace.config.arrivals = parse_arrivals(origin, entry);
        } else {
            unknown_key(origin, "trace", entry);
        }
    }
    if (trace.label.empty()) {
        fail(origin, section.line, "[trace] requires a non-empty 'label'");
    }
    return trace;
}

SystemEntry parse_system(const std::string& origin,
                         const util::KvSection& section) {
    SystemEntry system;
    for (const auto& entry : section.entries) {
        if (entry.key == "label") {
            system.label = entry.value;
        } else if (entry.key == "kind") {
            system.kind = entry.value;
        } else if (entry.key == "policy") {
            system.policy = entry.value;
        } else if (entry.key == "train_episodes") {
            system.train_episodes = parse_int(origin, entry);
            if (system.train_episodes < 0) {
                fail(origin, entry.line, "train_episodes must be >= 0");
            }
        } else if (entry.key == "quick_train_episodes") {
            system.quick_train_episodes = parse_int(origin, entry);
            if (system.quick_train_episodes < 0) {
                fail(origin, entry.line, "quick_train_episodes must be >= 0");
            }
        } else {
            unknown_key(origin, "system", entry);
        }
    }
    if (system.label.empty()) {
        fail(origin, section.line, "[system] requires a non-empty 'label'");
    }
    return system;
}

/// A single-key patch section: rejects anything but `key`, requires it.
std::vector<double> patch_values(const std::string& origin,
                                 const util::KvSection& section,
                                 const std::string& key) {
    std::vector<double> values;
    for (const auto& entry : section.entries) {
        if (entry.key != key) unknown_key(origin, section.name, entry);
        values = parse_double_list(origin, entry);
    }
    if (values.empty()) {
        fail(origin, section.line,
             "[" + section.name + "] requires '" + key + " = v1, v2, ...'");
    }
    return values;
}

}  // namespace

ExperimentSpec parse_experiment_spec(const std::string& text,
                                     const std::string& origin) {
    const auto sections = util::parse_kv_text(text, origin);

    // Every schema key is single-valued; a repeated key would silently
    // last-win (e.g. a split patch axis running half its grid), so it is a
    // hard error like every other spec mistake.
    for (const auto& section : sections) {
        for (std::size_t i = 0; i < section.entries.size(); ++i) {
            for (std::size_t j = 0; j < i; ++j) {
                if (section.entries[i].key == section.entries[j].key) {
                    fail(origin, section.entries[i].line,
                         "duplicate key '" + section.entries[i].key +
                             "' in [" + section.name + "]");
                }
            }
        }
    }

    ExperimentSpec spec;
    spec.traces.clear();  // [trace] sections replace the default
    bool saw_sweep = false;
    bool saw_storage = false, saw_deadline = false, saw_policy = false;
    for (const auto& section : sections) {
        if (section.name == "sweep") {
            if (saw_sweep) {
                fail(origin, section.line, "duplicate [sweep] section");
            }
            saw_sweep = true;
            apply_sweep(origin, section, spec);
        } else if (section.name == "trace") {
            spec.traces.push_back(parse_trace(origin, section));
        } else if (section.name == "system") {
            const SystemEntry system = parse_system(origin, section);
            for (const auto& existing : spec.systems) {
                if (existing.label == system.label) {
                    fail(origin, section.line,
                         "duplicate system label '" + system.label + "'");
                }
            }
            spec.systems.push_back(system);
        } else if (section.name == "patch.storage") {
            if (saw_storage) {
                fail(origin, section.line, "duplicate [patch.storage]");
            }
            saw_storage = true;
            spec.storage_mj = patch_values(origin, section, "capacity_mj");
        } else if (section.name == "patch.deadline") {
            if (saw_deadline) {
                fail(origin, section.line, "duplicate [patch.deadline]");
            }
            saw_deadline = true;
            spec.deadline_s = patch_values(origin, section, "deadline_s");
        } else if (section.name == "patch.policy") {
            if (saw_policy) {
                fail(origin, section.line, "duplicate [patch.policy]");
            }
            saw_policy = true;
            for (const auto& entry : section.entries) {
                if (entry.key != "policies") {
                    unknown_key(origin, "patch.policy", entry);
                }
                spec.policies = parse_list(origin, entry);
            }
            if (spec.policies.empty()) {
                fail(origin, section.line,
                     "[patch.policy] requires 'policies = name1, name2, ...'");
            }
        } else {
            fail(origin, section.line,
                 "unknown section [" + section.name +
                     "] (expected sweep, trace, system, patch.storage, "
                     "patch.deadline, patch.policy)");
        }
    }
    if (!saw_sweep) {
        fail(origin, 1, "missing required [sweep] section");
    }
    if (spec.systems.empty()) {
        fail(origin, 1, "spec declares no [system] section");
    }
    if (spec.traces.empty()) spec.traces = {TraceEntry{}};
    return spec;
}

ExperimentSpec load_experiment_spec(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
        throw std::runtime_error(path + ": cannot open spec file");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    return parse_experiment_spec(contents.str(), path);
}

}  // namespace imx::exp
