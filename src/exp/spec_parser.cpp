#include "exp/spec_parser.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "energy/trace_registry.hpp"
#include "sim/arrivals/registry.hpp"
#include "sim/recovery/registry.hpp"
#include "util/kvfile.hpp"

namespace imx::exp {

namespace {

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& message) {
    throw std::runtime_error(origin + ":" + std::to_string(line) + ": " +
                             message);
}

double parse_double(const std::string& origin, const util::KvEntry& entry,
                    const std::string& text) {
    if (text == "inf" || text == "infinity") {
        return std::numeric_limits<double>::infinity();
    }
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
        fail(origin, entry.line,
             "key '" + entry.key + "' expects a number, got '" + text + "'");
    }
    return value;
}

int parse_int(const std::string& origin, const util::KvEntry& entry) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(entry.value.c_str(), &end, 10);
    if (end == entry.value.c_str() || *end != '\0' || errno == ERANGE ||
        value < std::numeric_limits<int>::min() ||
        value > std::numeric_limits<int>::max()) {
        fail(origin, entry.line,
             "key '" + entry.key + "' expects an integer, got '" +
                 entry.value + "'");
    }
    return static_cast<int>(value);
}

std::uint64_t parse_uint64(const std::string& origin,
                           const util::KvEntry& entry) {
    char* end = nullptr;
    errno = 0;
    // Base 0 so seeds read naturally in decimal or hex (0xD5EED).
    const unsigned long long value =
        std::strtoull(entry.value.c_str(), &end, 0);
    if (end == entry.value.c_str() || *end != '\0' || errno == ERANGE ||
        entry.value[0] == '-') {
        fail(origin, entry.line,
             "key '" + entry.key + "' expects a non-negative integer, got '" +
                 entry.value + "'");
    }
    return static_cast<std::uint64_t>(value);
}

/// Split a comma-separated value, trimming each element; empty elements
/// (",," or a trailing comma) are schema errors.
std::vector<std::string> parse_list(const std::string& origin,
                                    const util::KvEntry& entry) {
    std::vector<std::string> items;
    std::size_t start = 0;
    const std::string& text = entry.value;
    while (start <= text.size()) {
        const std::size_t comma = text.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        std::string item = text.substr(start, end - start);
        const auto first = item.find_first_not_of(" \t");
        const auto last = item.find_last_not_of(" \t");
        item = first == std::string::npos
                   ? ""
                   : item.substr(first, last - first + 1);
        if (item.empty()) {
            fail(origin, entry.line,
                 "key '" + entry.key + "' has an empty list element");
        }
        items.push_back(std::move(item));
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return items;
}

std::vector<double> parse_double_list(const std::string& origin,
                                      const util::KvEntry& entry) {
    std::vector<double> values;
    for (const auto& item : parse_list(origin, entry)) {
        values.push_back(parse_double(origin, entry, item));
    }
    return values;
}

std::string parse_arrivals(const std::string& origin,
                           const util::KvEntry& entry) {
    if (!sim::has_arrival_source(entry.value)) {
        std::string names;
        for (const auto& name : sim::arrival_source_names()) {
            if (!names.empty()) names += ", ";
            names += name;
        }
        fail(origin, entry.line,
             "key '" + entry.key + "' expects a registered arrival source (" +
                 names + "), got '" + entry.value + "'");
    }
    return entry.value;
}

[[noreturn]] void unknown_key(const std::string& origin,
                              const std::string& section,
                              const util::KvEntry& entry) {
    fail(origin, entry.line,
         "unknown key '" + entry.key + "' in [" + section + "]");
}

void apply_sweep(const std::string& origin, const util::KvSection& section,
                 ExperimentSpec& spec) {
    for (const auto& entry : section.entries) {
        if (entry.key == "name") {
            spec.name = entry.value;
        } else if (entry.key == "description") {
            spec.description = entry.value;
        } else if (entry.key == "title") {
            spec.title = entry.value;
        } else if (entry.key == "replicas") {
            spec.replicas = parse_int(origin, entry);
            if (spec.replicas < 1) {
                fail(origin, entry.line, "replicas must be >= 1");
            }
        } else if (entry.key == "base_seed") {
            spec.base_seed = parse_uint64(origin, entry);
        } else if (entry.key == "metrics") {
            spec.metrics = parse_list(origin, entry);
        } else {
            unknown_key(origin, "sweep", entry);
        }
    }
    if (spec.name.empty()) {
        fail(origin, section.line, "[sweep] requires a non-empty 'name'");
    }
}

std::string join_names(const std::vector<std::string>& names) {
    std::string joined;
    for (const auto& name : names) {
        if (!joined.empty()) joined += ", ";
        joined += name;
    }
    return joined;
}

/// Parse a `[trace]` or `[trace.<label>]` section. The labeled form takes
/// its label from the header and additionally accepts `source = <name>`
/// (an energy trace-registry source) plus that source's own parameters;
/// both forms share the SetupConfig keys. `spec_dir` (empty = unknown)
/// anchors a relative file `path` parameter to the spec file's directory.
TraceEntry parse_trace(const std::string& origin,
                       const util::KvSection& section,
                       const std::string& spec_dir) {
    TraceEntry trace;
    const bool labeled_header = section.name != "trace";
    if (labeled_header) {
        trace.label = section.name.substr(std::string("trace.").size());
        if (trace.label.empty()) {
            fail(origin, section.line,
                 "[trace.] requires a label after the dot");
        }
    } else {
        trace.label.clear();
    }
    std::vector<const util::KvEntry*> param_entries;
    for (const auto& entry : section.entries) {
        if (entry.key == "label") {
            if (labeled_header) {
                fail(origin, entry.line,
                     "[" + section.name +
                         "] takes its label from the section header");
            }
            trace.label = entry.value;
        } else if (entry.key == "source") {
            if (!energy::has_trace_source(entry.value)) {
                // Reuse the registry's own diagnostic (it lists every
                // registered source) instead of duplicating the format.
                try {
                    (void)energy::trace_source_description(entry.value);
                } catch (const std::invalid_argument& e) {
                    fail(origin, entry.line, e.what());
                }
            }
            trace.config.trace_source = entry.value;
        } else if (entry.key == "duration_s") {
            trace.config.duration_s = parse_double(origin, entry, entry.value);
            if (!(trace.config.duration_s > 0.0)) {
                fail(origin, entry.line, "duration_s must be positive");
            }
        } else if (entry.key == "event_count") {
            trace.config.event_count = parse_int(origin, entry);
            if (trace.config.event_count < 1) {
                fail(origin, entry.line, "event_count must be >= 1");
            }
        } else if (entry.key == "total_harvest_mj") {
            trace.config.total_harvest_mj =
                parse_double(origin, entry, entry.value);
            if (!(trace.config.total_harvest_mj > 0.0)) {
                fail(origin, entry.line, "total_harvest_mj must be positive");
            }
        } else if (entry.key == "trace_seed") {
            trace.config.trace_seed = parse_uint64(origin, entry);
        } else if (entry.key == "event_seed") {
            trace.config.event_seed = parse_uint64(origin, entry);
        } else if (entry.key == "arrivals") {
            trace.config.arrival_source = parse_arrivals(origin, entry);
        } else {
            // Candidate source parameter; validated against the source's
            // declared key list (and by a trial build) below, once the
            // whole section — including a later `source =` line — is read.
            param_entries.push_back(&entry);
            trace.config.trace_params[entry.key] = entry.value;
        }
    }
    if (trace.label.empty()) {
        fail(origin, section.line, "[trace] requires a non-empty 'label'");
    }

    // Unknown keys are hard errors at their own line: a key must be either
    // a trace key or a declared parameter of the section's source.
    const auto known_params =
        energy::trace_source_param_names(trace.config.trace_source);
    if (!known_params.empty()) {
        for (const auto* entry : param_entries) {
            if (std::find(known_params.begin(), known_params.end(),
                          entry->key) != known_params.end()) {
                continue;
            }
            fail(origin, entry->line,
                 "unknown key '" + entry->key + "' in [" + section.name +
                     "] (neither a trace key nor a parameter of source '" +
                     trace.config.trace_source +
                     "', which accepts: " + join_names(known_params) + ")");
        }
    }

    // A relative file `path` resolves against the spec file's directory,
    // so `imx_sweep --spec` works from any CWD (CI runs from build/).
    const auto path_param = trace.config.trace_params.find("path");
    if (path_param != trace.config.trace_params.end() && !spec_dir.empty() &&
        !path_param->second.empty() && path_param->second.front() != '/') {
        path_param->second = spec_dir + "/" + path_param->second;
    }

    // Trial-build the trace with the section's real context so parameter
    // values (and, for file sources, the file itself) fail here with a
    // file:line diagnostic instead of deep inside the sweep expansion.
    double trial_energy_mj = 0.0;
    double trial_duration_s = 0.0;
    try {
        const auto trial = energy::make_trace(
            trace.config.trace_source,
            energy::TraceSourceContext{trace.config.duration_s, 1.0,
                                       trace.config.trace_seed},
            trace.config.trace_params);
        trial_energy_mj = trial.total_energy();
        trial_duration_s = trial.duration();
    } catch (const std::exception& e) {
        fail(origin, section.line, e.what());
    }
    // make_paper_setup rescales every trace to the harvest budget; an
    // all-zero trace (e.g. an rf gap longer than the duration, or a
    // zero-power csv) cannot be rescaled and would otherwise abort
    // mid-sweep with a contextless contract violation.
    if (!(trial_energy_mj > 0.0)) {
        fail(origin, section.line,
             "trace source '" + trace.config.trace_source +
                 "' harvests no energy over " +
                 std::to_string(trial_duration_s) +
                 " s — it cannot be rescaled to the sweep's harvest budget");
    }
    return trace;
}

SystemEntry parse_system(const std::string& origin,
                         const util::KvSection& section) {
    SystemEntry system;
    for (const auto& entry : section.entries) {
        if (entry.key == "label") {
            system.label = entry.value;
        } else if (entry.key == "kind") {
            system.kind = entry.value;
        } else if (entry.key == "policy") {
            system.policy = entry.value;
        } else if (entry.key == "train_episodes") {
            system.train_episodes = parse_int(origin, entry);
            if (system.train_episodes < 0) {
                fail(origin, entry.line, "train_episodes must be >= 0");
            }
        } else if (entry.key == "quick_train_episodes") {
            system.quick_train_episodes = parse_int(origin, entry);
            if (system.quick_train_episodes < 0) {
                fail(origin, entry.line, "quick_train_episodes must be >= 0");
            }
        } else {
            unknown_key(origin, "system", entry);
        }
    }
    if (system.label.empty()) {
        fail(origin, section.line, "[system] requires a non-empty 'label'");
    }
    return system;
}

/// Parse a `[recovery.<label>]` section into one cell of the
/// power-failure/recovery axis. `strategy = none` declares the explicit
/// failure-free baseline cell; any other value must be a registered
/// recovery-strategy name.
RecoveryCell parse_recovery(const std::string& origin,
                            const util::KvSection& section) {
    RecoveryCell cell;
    cell.label = section.name.substr(std::string("recovery.").size());
    if (cell.label.empty()) {
        fail(origin, section.line,
             "[recovery.] requires a label after the dot");
    }
    bool saw_strategy = false;
    for (const auto& entry : section.entries) {
        if (entry.key == "strategy") {
            saw_strategy = true;
            if (entry.value == "none") {
                cell.config.enabled = false;
            } else {
                cell.config.enabled = true;
                cell.config.strategy = entry.value;
                if (!sim::has_recovery_strategy(entry.value)) {
                    // Reuse the registry's own diagnostic (it lists every
                    // registered strategy).
                    try {
                        (void)sim::recovery_strategy_description(entry.value);
                    } catch (const std::invalid_argument& e) {
                        fail(origin, entry.line, e.what());
                    }
                }
            }
        } else if (entry.key == "granularity") {
            try {
                cell.config.granularity = sim::parse_granularity(entry.value);
            } catch (const std::invalid_argument& e) {
                fail(origin, entry.line, e.what());
            }
        } else if (entry.key == "checkpoint_mj") {
            cell.config.checkpoint_energy_mj =
                parse_double(origin, entry, entry.value);
        } else if (entry.key == "restore_mj") {
            cell.config.restore_energy_mj =
                parse_double(origin, entry, entry.value);
        } else if (entry.key == "restore_penalty_mj") {
            cell.config.restore_penalty_mj =
                parse_double(origin, entry, entry.value);
        } else if (entry.key == "active_power_mw") {
            cell.config.active_power_mw =
                parse_double(origin, entry, entry.value);
        } else if (entry.key == "death_threshold_mj") {
            cell.death_threshold_mj = parse_double(origin, entry, entry.value);
            if (cell.death_threshold_mj < 0.0) {
                fail(origin, entry.line,
                     "death_threshold_mj must be non-negative");
            }
        } else {
            unknown_key(origin, section.name, entry);
        }
    }
    if (!saw_strategy) {
        fail(origin, section.line,
             "[" + section.name +
                 "] requires 'strategy = <name>' (or 'strategy = none')");
    }
    if (!cell.config.enabled && cell.death_threshold_mj >= 0.0) {
        fail(origin, section.line,
             "death_threshold_mj has no effect with 'strategy = none'");
    }
    // Trial-build so negative cost parameters fail here with a file:line
    // diagnostic instead of at sweep expansion.
    if (cell.config.enabled) {
        try {
            (void)sim::make_recovery_strategy(cell.config.strategy,
                                              cell.config);
        } catch (const std::invalid_argument& e) {
            fail(origin, section.line, e.what());
        }
    }
    return cell;
}

/// Parse an `[arrivals.<label>]` section into one cell of the
/// request-workload axis. `source` must name a registered arrival source;
/// every other key must be a declared parameter of that source.
ArrivalCell parse_arrival_cell(const std::string& origin,
                               const util::KvSection& section,
                               const std::string& spec_dir) {
    ArrivalCell cell;
    cell.label = section.name.substr(std::string("arrivals.").size());
    if (cell.label.empty()) {
        fail(origin, section.line,
             "[arrivals.] requires a label after the dot");
    }
    bool saw_source = false;
    std::vector<const util::KvEntry*> param_entries;
    for (const auto& entry : section.entries) {
        if (entry.key == "source") {
            saw_source = true;
            if (!sim::has_arrival_source(entry.value)) {
                // Reuse the registry's own diagnostic (it lists every
                // registered source).
                try {
                    (void)sim::arrival_source_description(entry.value);
                } catch (const std::invalid_argument& e) {
                    fail(origin, entry.line, e.what());
                }
            }
            cell.source = entry.value;
        } else {
            // Candidate source parameter; validated against the source's
            // declared key list (and by a trial build) below, once the
            // whole section — including a later `source =` line — is read.
            param_entries.push_back(&entry);
            cell.params[entry.key] = entry.value;
        }
    }
    if (!saw_source) {
        fail(origin, section.line,
             "[" + section.name + "] requires 'source = <name>'");
    }
    const auto known_params = sim::arrival_source_param_names(cell.source);
    if (!known_params.empty()) {
        for (const auto* entry : param_entries) {
            if (std::find(known_params.begin(), known_params.end(),
                          entry->key) != known_params.end()) {
                continue;
            }
            fail(origin, entry->line,
                 "unknown key '" + entry->key + "' in [" + section.name +
                     "] (neither 'source' nor a parameter of source '" +
                     cell.source +
                     "', which accepts: " + join_names(known_params) + ")");
        }
    }

    // A relative file `path` resolves against the spec file's directory,
    // exactly like a csv trace's.
    const auto path_param = cell.params.find("path");
    if (path_param != cell.params.end() && !spec_dir.empty() &&
        !path_param->second.empty() && path_param->second.front() != '/') {
        path_param->second = spec_dir + "/" + path_param->second;
    }

    // Trial-build the source (file sources read their file here) and draw a
    // tiny schedule, so bad parameter values fail with a file:line
    // diagnostic instead of deep inside the sweep expansion.
    try {
        const auto trial = sim::make_arrival_source(cell.source, cell.params);
        (void)trial->generate({/*count=*/8, /*duration_s=*/100.0, /*seed=*/1});
    } catch (const std::exception& e) {
        fail(origin, section.line, e.what());
    }
    return cell;
}

/// A single-key patch section: rejects anything but `key`, requires it.
std::vector<double> patch_values(const std::string& origin,
                                 const util::KvSection& section,
                                 const std::string& key) {
    std::vector<double> values;
    for (const auto& entry : section.entries) {
        if (entry.key != key) unknown_key(origin, section.name, entry);
        values = parse_double_list(origin, entry);
    }
    if (values.empty()) {
        fail(origin, section.line,
             "[" + section.name + "] requires '" + key + " = v1, v2, ...'");
    }
    return values;
}

}  // namespace

ExperimentSpec parse_experiment_spec(const std::string& text,
                                     const std::string& origin) {
    const auto sections = util::parse_kv_text(text, origin);

    // Directory of the spec file, used to anchor relative file parameters
    // (e.g. a csv trace's `path`). A pathless origin ("<string>") leaves
    // them CWD-relative.
    const auto slash = origin.find_last_of('/');
    const std::string spec_dir =
        slash == std::string::npos ? "" : origin.substr(0, slash);

    // Every schema key is single-valued; a repeated key would silently
    // last-win (e.g. a split patch axis running half its grid), so it is a
    // hard error like every other spec mistake.
    for (const auto& section : sections) {
        for (std::size_t i = 0; i < section.entries.size(); ++i) {
            for (std::size_t j = 0; j < i; ++j) {
                if (section.entries[i].key == section.entries[j].key) {
                    fail(origin, section.entries[i].line,
                         "duplicate key '" + section.entries[i].key +
                             "' in [" + section.name + "]");
                }
            }
        }
    }

    ExperimentSpec spec;
    spec.traces.clear();  // [trace] sections replace the default
    bool saw_sweep = false;
    bool saw_storage = false, saw_deadline = false, saw_policy = false;
    bool saw_queue = false;
    for (const auto& section : sections) {
        if (section.name == "sweep") {
            if (saw_sweep) {
                fail(origin, section.line, "duplicate [sweep] section");
            }
            saw_sweep = true;
            apply_sweep(origin, section, spec);
        } else if (section.name == "trace" ||
                   section.name.rfind("trace.", 0) == 0) {
            spec.traces.push_back(parse_trace(origin, section, spec_dir));
        } else if (section.name == "system") {
            const SystemEntry system = parse_system(origin, section);
            for (const auto& existing : spec.systems) {
                if (existing.label == system.label) {
                    fail(origin, section.line,
                         "duplicate system label '" + system.label + "'");
                }
            }
            spec.systems.push_back(system);
        } else if (section.name == "patch.storage") {
            if (saw_storage) {
                fail(origin, section.line, "duplicate [patch.storage]");
            }
            saw_storage = true;
            spec.storage_mj = patch_values(origin, section, "capacity_mj");
        } else if (section.name == "patch.deadline") {
            if (saw_deadline) {
                fail(origin, section.line, "duplicate [patch.deadline]");
            }
            saw_deadline = true;
            spec.deadline_s = patch_values(origin, section, "deadline_s");
        } else if (section.name == "patch.queue") {
            if (saw_queue) {
                fail(origin, section.line, "duplicate [patch.queue]");
            }
            saw_queue = true;
            for (const auto& entry : section.entries) {
                if (entry.key != "capacity") {
                    unknown_key(origin, "patch.queue", entry);
                }
                for (const auto& item : parse_list(origin, entry)) {
                    const double value = parse_double(origin, entry, item);
                    const int capacity = static_cast<int>(value);
                    if (value != static_cast<double>(capacity) ||
                        capacity < 0) {
                        fail(origin, entry.line,
                             "key 'capacity' in [patch.queue] expects "
                             "non-negative integers, got '" +
                                 item + "'");
                    }
                    spec.queue_capacity.push_back(capacity);
                }
            }
            if (spec.queue_capacity.empty()) {
                fail(origin, section.line,
                     "[patch.queue] requires 'capacity = c1, c2, ...'");
            }
        } else if (section.name.rfind("arrivals.", 0) == 0) {
            const ArrivalCell cell =
                parse_arrival_cell(origin, section, spec_dir);
            for (const auto& existing : spec.arrivals) {
                if (existing.label == cell.label) {
                    fail(origin, section.line,
                         "duplicate arrivals label '" + cell.label + "'");
                }
            }
            spec.arrivals.push_back(cell);
        } else if (section.name.rfind("recovery.", 0) == 0) {
            const RecoveryCell cell = parse_recovery(origin, section);
            for (const auto& existing : spec.recoveries) {
                if (existing.label == cell.label) {
                    fail(origin, section.line,
                         "duplicate recovery label '" + cell.label + "'");
                }
            }
            spec.recoveries.push_back(cell);
        } else if (section.name == "patch.policy") {
            if (saw_policy) {
                fail(origin, section.line, "duplicate [patch.policy]");
            }
            saw_policy = true;
            for (const auto& entry : section.entries) {
                if (entry.key != "policies") {
                    unknown_key(origin, "patch.policy", entry);
                }
                spec.policies = parse_list(origin, entry);
            }
            if (spec.policies.empty()) {
                fail(origin, section.line,
                     "[patch.policy] requires 'policies = name1, name2, ...'");
            }
        } else {
            fail(origin, section.line,
                 "unknown section [" + section.name +
                     "] (expected sweep, trace, trace.<label>, system, "
                     "arrivals.<label>, patch.storage, patch.deadline, "
                     "patch.queue, patch.policy, recovery.<label>)");
        }
    }
    if (!saw_sweep) {
        fail(origin, 1, "missing required [sweep] section");
    }
    if (spec.systems.empty()) {
        fail(origin, 1, "spec declares no [system] section");
    }
    if (spec.traces.empty()) spec.traces = {TraceEntry{}};
    return spec;
}

ExperimentSpec load_experiment_spec(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
        throw std::runtime_error(path + ": cannot open spec file");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    return parse_experiment_spec(contents.str(), path);
}

}  // namespace imx::exp
