#include "exp/scenario.hpp"

#include "util/rng.hpp"

namespace imx::exp {

std::uint64_t scenario_seed(std::uint64_t base_seed, const std::string& group,
                            int replica) {
    // FNV-1a over the group name, then splitmix64 mixing with the base seed
    // and replica. Position-independent by construction.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : group) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    std::uint64_t state = base_seed ^ h;
    (void)util::splitmix64(state);
    state ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(replica) + 1);
    return util::splitmix64(state);
}

MetricMap sim_metrics(const sim::SimResult& result) {
    MetricMap m;
    m["iepmj"] = result.iepmj();
    m["acc_all_pct"] = 100.0 * result.accuracy_all_events();
    m["acc_processed_pct"] = 100.0 * result.accuracy_processed();
    m["processed"] = static_cast<double>(result.processed_count());
    m["missed"] = static_cast<double>(result.missed_count());
    m["event_latency_s"] = result.mean_event_latency_s();
    m["p50_latency_s"] = result.latency_percentile_s(0.50);
    m["p95_latency_s"] = result.latency_percentile_s(0.95);
    m["p99_latency_s"] = result.latency_percentile_s(0.99);
    m["inference_latency_s"] = result.mean_inference_latency_s();
    m["inference_macs_m"] = result.mean_inference_macs() / 1e6;
    m["deadline_miss_pct"] = 100.0 * result.deadline_miss_rate();
    m["harvested_mj"] = result.total_harvested_mj;
    m["consumed_mj"] = result.total_consumed_mj();
    m["dropped"] = static_cast<double>(result.dropped);
    m["in_flight"] = static_cast<double>(result.in_flight);
    m["deaths"] = static_cast<double>(result.deaths);
    m["recovery_mj"] = result.recovery_energy_mj;
    m["wasted_macs_m"] = static_cast<double>(result.wasted_macs) / 1e6;
    return m;
}

}  // namespace imx::exp
