// Minimal CSV reading/writing for traces and experiment outputs.
// Handles plain numeric/str fields; no quoting/escaping (none of our data
// needs it, and the loader rejects embedded commas loudly rather than
// guessing).
#ifndef IMX_UTIL_CSV_HPP
#define IMX_UTIL_CSV_HPP

#include <string>
#include <vector>

namespace imx::util {

/// A parsed CSV file: optional header plus rows of string cells.
struct CsvTable {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    [[nodiscard]] std::size_t column_index(const std::string& name) const;
    [[nodiscard]] std::vector<double> numeric_column(std::size_t index) const;
    [[nodiscard]] std::vector<double> numeric_column(const std::string& name) const;
};

/// Read a CSV file. If has_header, the first non-empty line becomes header.
CsvTable read_csv(const std::string& path, bool has_header = true);

/// Parse CSV from an in-memory string (used by tests).
CsvTable parse_csv(const std::string& text, bool has_header = true);

/// Incremental CSV writer.
class CsvWriter {
public:
    explicit CsvWriter(std::string path);
    ~CsvWriter();
    CsvWriter(const CsvWriter&) = delete;
    CsvWriter& operator=(const CsvWriter&) = delete;

    void write_header(const std::vector<std::string>& names);
    void write_row(const std::vector<double>& values);
    void write_row(const std::vector<std::string>& cells);

private:
    struct Impl;
    Impl* impl_;  // pimpl keeps <fstream> out of the header
};

}  // namespace imx::util

#endif  // IMX_UTIL_CSV_HPP
