#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "util/contracts.hpp"

namespace imx::util {

Table& Table::header(std::vector<std::string> names) {
    header_ = std::move(names);
    return *this;
}

Table& Table::row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
}

Table& Table::row_numeric(const std::string& label,
                          const std::vector<double>& values, int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (const double v : values) cells.push_back(fixed(v, precision));
    return row(std::move(cells));
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_string() const {
    std::size_t columns = header_.size();
    for (const auto& r : rows_) columns = std::max(columns, r.size());
    std::vector<std::size_t> widths(columns, 0);
    auto grow = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty()) grow(header_);
    for (const auto& r : rows_) grow(r);

    std::ostringstream oss;
    oss << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < columns; ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : std::string{};
            oss << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
        }
        oss << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (const auto w : widths) total += w + 2;
        oss << std::string(total, '-') << '\n';
    }
    for (const auto& r : rows_) emit(r);
    return oss.str();
}

std::string bar(double value, double max_value, int width) {
    IMX_EXPECTS(width > 0);
    if (max_value <= 0.0) return {};
    const double frac = std::clamp(value / max_value, 0.0, 1.0);
    const int filled = static_cast<int>(frac * width + 0.5);
    std::string out(static_cast<std::size_t>(filled), '#');
    out.resize(static_cast<std::size_t>(width), ' ');
    return out;
}

std::string fixed(double value, int precision) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

}  // namespace imx::util
