#include "util/math.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace imx::util {

double softmax_inplace(std::vector<double>& logits) {
    IMX_EXPECTS(!logits.empty());
    const double max_logit = *std::max_element(logits.begin(), logits.end());
    double sum = 0.0;
    for (double& v : logits) {
        v = std::exp(v - max_logit);
        sum += v;
    }
    IMX_ASSERT(sum > 0.0);
    for (double& v : logits) v /= sum;
    return std::log(sum) + max_logit;
}

std::vector<double> softmax(const std::vector<double>& logits) {
    std::vector<double> out = logits;
    softmax_inplace(out);
    return out;
}

double entropy(const std::vector<double>& probabilities) {
    IMX_EXPECTS(!probabilities.empty());
    double h = 0.0;
    for (const double p : probabilities) {
        IMX_EXPECTS(p >= -1e-12 && p <= 1.0 + 1e-12);
        if (p > 0.0) h -= p * std::log(p);
    }
    return h;
}

double normalized_entropy(const std::vector<double>& probabilities) {
    if (probabilities.size() <= 1) return 0.0;
    const double h = entropy(probabilities);
    return h / std::log(static_cast<double>(probabilities.size()));
}

std::size_t argmax(const std::vector<double>& values) {
    IMX_EXPECTS(!values.empty());
    return static_cast<std::size_t>(
        std::distance(values.begin(),
                      std::max_element(values.begin(), values.end())));
}

double kahan_sum(const std::vector<double>& values) {
    double sum = 0.0;
    double carry = 0.0;
    for (const double v : values) {
        const double y = v - carry;
        const double t = sum + y;
        carry = (t - sum) - y;
        sum = t;
    }
    return sum;
}

}  // namespace imx::util
