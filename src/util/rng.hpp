// Deterministic, seedable random number generation.
//
// Everything stochastic in this repository (solar traces, event arrivals,
// synthetic datasets, RL exploration) draws from imx::util::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded via splitmix64, which is both faster
// and statistically stronger than std::mt19937 while keeping the object
// trivially copyable (cheap to fork per-subsystem).
#ifndef IMX_UTIL_RNG_HPP
#define IMX_UTIL_RNG_HPP

#include <array>
#include <cmath>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace imx::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x1a2b3c4d5e6f7788ULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    /// Derive an independent stream; forked streams do not share state.
    [[nodiscard]] Rng fork() { return Rng(next()); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next(); }

    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        IMX_EXPECTS(lo <= hi);
        return lo + (hi - lo) * uniform();
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
        IMX_EXPECTS(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        // Rejection-free Lemire reduction is overkill here; modulo bias is
        // < 2^-40 for all spans used in this project.
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /// Standard normal via Marsaglia polar method.
    double normal() {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u = 0.0;
        double v = 0.0;
        double s = 0.0;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double scale = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * scale;
        has_spare_ = true;
        return u * scale;
    }

    double normal(double mean, double stddev) {
        IMX_EXPECTS(stddev >= 0.0);
        return mean + stddev * normal();
    }

    /// Bernoulli trial.
    bool bernoulli(double p) {
        IMX_EXPECTS(p >= 0.0 && p <= 1.0);
        return uniform() < p;
    }

    /// Exponential inter-arrival sample with the given rate (events/unit).
    double exponential(double rate) {
        IMX_EXPECTS(rate > 0.0);
        double u = uniform();
        while (u <= 0.0) u = uniform();  // guard log(0)
        return -std::log(u) / rate;
    }

    /// Sample an index from an unnormalized non-negative weight vector.
    std::size_t categorical(const std::vector<double>& weights);

    /// In-place Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& values) {
        if (values.empty()) return;
        for (std::size_t i = values.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
            std::swap(values[i], values[j]);
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
    double spare_ = 0.0;
    bool has_spare_ = false;
};

}  // namespace imx::util

#endif  // IMX_UTIL_RNG_HPP
