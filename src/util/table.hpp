// ASCII table rendering for the figure-reproduction benches: every bench
// prints the same rows/series the paper reports, via this printer.
#ifndef IMX_UTIL_TABLE_HPP
#define IMX_UTIL_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace imx::util {

/// Column-aligned text table with a title, built row by row.
class Table {
public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    Table& header(std::vector<std::string> names);
    Table& row(std::vector<std::string> cells);

    /// Convenience: format doubles with fixed precision.
    Table& row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

    void print(std::ostream& os) const;
    [[nodiscard]] std::string to_string() const;

private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal ASCII bar chart line (for figure-shaped output).
std::string bar(double value, double max_value, int width = 40);

/// Format a double with fixed precision into a string.
std::string fixed(double value, int precision = 3);

}  // namespace imx::util

#endif  // IMX_UTIL_TABLE_HPP
