#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace imx::util {

void RunningStats::add(double x) {
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n_a = static_cast<double>(count_);
    const double n_b = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n_a + n_b;
    mean_ += delta * n_b / n;
    m2_ += other.m2_ + delta * delta * n_a * n_b / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const { return count_ == 0 ? 0.0 : max_; }

double quantile(std::vector<double> sample, double q) {
    IMX_EXPECTS(!sample.empty());
    IMX_EXPECTS(q >= 0.0 && q <= 1.0);
    std::sort(sample.begin(), sample.end());
    const double pos = q * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, sample.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double percentile(const std::vector<double>& sorted, double q) {
    IMX_EXPECTS(q >= 0.0 && q <= 1.0);
    IMX_ASSERT(std::is_sorted(sorted.begin(), sorted.end(),
                              [](double a, double b) { return a < b; }));
    if (sorted.empty()) return std::nan("");
    const auto n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * n)));
    return sorted[rank - 1];
}

void PercentileCollector::add(double x) { samples_.push_back(x); }

void PercentileCollector::merge(const PercentileCollector& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
}

double PercentileCollector::percentile(double q) const {
    std::vector<double> sorted = samples_;
    // NaNs break std::sort's strict weak ordering; partition them to the
    // tail first so they land in (and propagate through) high percentiles.
    const auto finite_end = std::partition(
        sorted.begin(), sorted.end(), [](double x) { return !std::isnan(x); });
    std::sort(sorted.begin(), finite_end);
    return util::percentile(sorted, q);
}

double mean(const std::vector<double>& sample) {
    if (sample.empty()) return 0.0;
    RunningStats rs;
    for (const double x : sample) rs.add(x);
    return rs.mean();
}

double stddev(const std::vector<double>& sample) {
    if (sample.size() < 2) return 0.0;
    RunningStats rs;
    for (const double x : sample) rs.add(x);
    return rs.stddev();
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
    IMX_EXPECTS(xs.size() == ys.size());
    IMX_EXPECTS(xs.size() >= 2);
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

Ema::Ema(double alpha) : alpha_(alpha) {
    IMX_EXPECTS(alpha > 0.0 && alpha <= 1.0);
}

}  // namespace imx::util
