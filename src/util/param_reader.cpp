#include "util/param_reader.hpp"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace imx::util {

ParamReader::ParamReader(std::string kind, std::string source,
                         const Params& params)
    : kind_(std::move(kind)), source_(std::move(source)), params_(params) {}

void ParamReader::fail(const std::string& message) const {
    throw std::invalid_argument(kind_ + " '" + source_ + "': " + message);
}

double ParamReader::parsed_number(const std::string& key, double fallback) {
    accepted_.insert(key);
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
        fail("parameter '" + key + "' expects a number, got '" + it->second +
             "'");
    }
    return value;
}

double ParamReader::number(const std::string& key, double fallback) {
    return parsed_number(key, fallback);
}

double ParamReader::positive(const std::string& key, double fallback) {
    const double value = parsed_number(key, fallback);
    if (!(value > 0.0)) {
        fail("parameter '" + key + "' must be > 0");
    }
    return value;
}

double ParamReader::non_negative(const std::string& key, double fallback) {
    const double value = parsed_number(key, fallback);
    if (!(value >= 0.0)) {
        fail("parameter '" + key + "' must be >= 0");
    }
    return value;
}

double ParamReader::fraction(const std::string& key, double fallback) {
    const double value = parsed_number(key, fallback);
    if (!(value >= 0.0 && value <= 1.0)) {
        fail("parameter '" + key + "' must be in [0, 1]");
    }
    return value;
}

std::string ParamReader::text(const std::string& key,
                              const std::string& fallback) {
    accepted_.insert(key);
    const auto it = params_.find(key);
    return it == params_.end() ? fallback : it->second;
}

std::string ParamReader::required_text(const std::string& key) {
    accepted_.insert(key);
    const auto it = params_.find(key);
    if (it == params_.end() || it->second.empty()) {
        fail("requires parameter '" + key + "'");
    }
    return it->second;
}

void ParamReader::done() const {
    for (const auto& [key, value] : params_) {
        (void)value;
        if (accepted_.count(key)) continue;
        std::string known;
        for (const auto& accepted : accepted_) {
            if (!known.empty()) known += ", ";
            known += accepted;
        }
        fail("unknown parameter '" + key + "' (accepts: " + known + ")");
    }
}

}  // namespace imx::util
