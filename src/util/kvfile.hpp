/// \file
/// \brief Minimal dependency-free INI-style key/value file parser.
///
/// Grammar (one construct per line):
///   [section]        — opens a section; the same name may repeat
///   key = value      — an entry in the current section
///   # ... or ; ...   — full-line comment
///   (blank)          — ignored
///
/// Whitespace around section names, keys, and values is trimmed; everything
/// else (including '#' inside a value) is preserved verbatim. Sections and
/// entries keep file order, and every node carries its 1-based line number
/// so consumers can report "file:line" diagnostics. Malformed lines (an
/// entry before any section, a '[' without ']', a line with no '=') throw
/// KvParseError — this layer has no "ignore and continue" mode, because the
/// spec-file contract upstream is hard errors on anything unrecognised.
#ifndef IMX_UTIL_KVFILE_HPP
#define IMX_UTIL_KVFILE_HPP

#include <stdexcept>
#include <string>
#include <vector>

namespace imx::util {

struct KvEntry {
    std::string key;
    std::string value;
    int line = 0;  ///< 1-based line number in the source text
};

struct KvSection {
    std::string name;
    int line = 0;  ///< line of the [section] header
    std::vector<KvEntry> entries;
};

/// Parse failure; what() is "origin:line: message".
class KvParseError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

/// \brief Parse INI-style text into ordered sections.
/// \param text the full file contents.
/// \param origin a label for diagnostics (file path or "<string>").
/// \return sections in file order, entries in section order.
/// \throws KvParseError on any malformed line.
std::vector<KvSection> parse_kv_text(const std::string& text,
                                     const std::string& origin = "<string>");

/// \brief Read and parse a file.
/// \throws KvParseError when the file cannot be read or fails to parse.
std::vector<KvSection> parse_kv_file(const std::string& path);

}  // namespace imx::util

#endif  // IMX_UTIL_KVFILE_HPP
