#include "util/csv.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/contracts.hpp"

namespace imx::util {

namespace {

std::vector<std::string> split_line(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream ss(line);
    while (std::getline(ss, cell, ',')) {
        // trim surrounding whitespace
        const auto first = cell.find_first_not_of(" \t\r");
        const auto last = cell.find_last_not_of(" \t\r");
        cells.push_back(first == std::string::npos
                            ? std::string{}
                            : cell.substr(first, last - first + 1));
    }
    if (!line.empty() && line.back() == ',') cells.emplace_back();
    return cells;
}

CsvTable parse_stream(std::istream& in, bool has_header) {
    CsvTable table;
    std::string line;
    bool header_done = !has_header;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty() || line[0] == '#') continue;
        auto cells = split_line(line);
        if (!header_done) {
            table.header = std::move(cells);
            header_done = true;
        } else {
            table.rows.push_back(std::move(cells));
        }
    }
    return table;
}

}  // namespace

std::size_t CsvTable::column_index(const std::string& name) const {
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name) return i;
    }
    throw std::out_of_range("CSV column not found: " + name);
}

std::vector<double> CsvTable::numeric_column(std::size_t index) const {
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto& row : rows) {
        IMX_EXPECTS(index < row.size());
        out.push_back(std::stod(row[index]));
    }
    return out;
}

std::vector<double> CsvTable::numeric_column(const std::string& name) const {
    return numeric_column(column_index(name));
}

CsvTable read_csv(const std::string& path, bool has_header) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open CSV file: " + path);
    return parse_stream(in, has_header);
}

CsvTable parse_csv(const std::string& text, bool has_header) {
    std::istringstream in(text);
    return parse_stream(in, has_header);
}

struct CsvWriter::Impl {
    std::ofstream out;
};

CsvWriter::CsvWriter(std::string path) : impl_(new Impl{std::ofstream(path)}) {
    if (!impl_->out) {
        delete impl_;
        throw std::runtime_error("cannot open CSV file for writing: " + path);
    }
    // Doubles must round-trip exactly (traces, Q-tables).
    impl_->out << std::setprecision(17);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::write_header(const std::vector<std::string>& names) {
    write_row(names);
}

void CsvWriter::write_row(const std::vector<double>& values) {
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (i) impl_->out << ',';
        impl_->out << values[i];
    }
    impl_->out << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
        IMX_EXPECTS(cells[i].find(',') == std::string::npos);
        if (i) impl_->out << ',';
        impl_->out << cells[i];
    }
    impl_->out << '\n';
}

}  // namespace imx::util
