/// \file
/// \brief Minimal non-owning view over a contiguous sequence — the C++17
/// stand-in for std::span (the repo pins CMAKE_CXX_STANDARD 17).
///
/// `Simulator::run` and the exp hot path take `Span<const Event>` instead
/// of `const std::vector<Event>&` so arena-backed buffers, sub-ranges, and
/// plain arrays flow through without copies. Implicit construction from
/// std::vector keeps every historical call site compiling unchanged.
#ifndef IMX_UTIL_SPAN_HPP
#define IMX_UTIL_SPAN_HPP

#include <cstddef>
#include <type_traits>
#include <vector>

#include "util/contracts.hpp"

namespace imx::util {

template <typename T>
class Span {
public:
    constexpr Span() noexcept = default;
    constexpr Span(T* data, std::size_t size) noexcept
        : data_(data), size_(size) {}

    /// Implicit view over a vector (the dominant call-site shape).
    // NOLINTNEXTLINE(google-explicit-constructor)
    Span(std::vector<std::remove_const_t<T>>& v) noexcept
        : data_(v.data()), size_(v.size()) {}

    /// Implicit view over a const vector — enabled only for Span<const T>.
    template <typename U = T,
              typename = std::enable_if_t<std::is_const_v<U>>>
    // NOLINTNEXTLINE(google-explicit-constructor)
    Span(const std::vector<std::remove_const_t<T>>& v) noexcept
        : data_(v.data()), size_(v.size()) {}

    [[nodiscard]] constexpr T* data() const noexcept { return data_; }
    [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
    [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

    [[nodiscard]] T& operator[](std::size_t i) const {
        IMX_ASSERT(i < size_);
        return data_[i];
    }

    [[nodiscard]] constexpr T* begin() const noexcept { return data_; }
    [[nodiscard]] constexpr T* end() const noexcept { return data_ + size_; }

    [[nodiscard]] T& front() const {
        IMX_ASSERT(size_ > 0);
        return data_[0];
    }
    [[nodiscard]] T& back() const {
        IMX_ASSERT(size_ > 0);
        return data_[size_ - 1];
    }

    [[nodiscard]] Span subspan(std::size_t offset) const {
        IMX_ASSERT(offset <= size_);
        return Span(data_ + offset, size_ - offset);
    }
    [[nodiscard]] Span subspan(std::size_t offset, std::size_t count) const {
        IMX_ASSERT(offset <= size_ && count <= size_ - offset);
        return Span(data_ + offset, count);
    }

private:
    T* data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace imx::util

#endif  // IMX_UTIL_SPAN_HPP
