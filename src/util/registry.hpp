/// \file
/// \brief The one string -> factory registry template behind every named
/// axis in the repository (exit policies, trace sources, arrival sources,
/// recovery strategies).
///
/// Each of those modules historically carried its own copy of the same
/// mutex-guarded `std::map<std::string, Entry>` plus the same
/// "unknown <kind> '<name>' (registered: ...)" diagnostic; this template is
/// that code written once. The public free functions of each module
/// (`make_policy`, `make_trace`, `register_arrival_source`, ...) are now
/// thin wrappers over one `Registry<Entry>` instance, so their signatures,
/// error messages, and `--list` output are byte-identical to the historical
/// hand-rolled registries (pinned by the registry error-message tests and
/// the spec-fuzz corpus).
///
/// Contract, shared by every instance:
///  * `add()` registers or replaces; names must be non-empty.
///  * `get()`/`read()` throw std::invalid_argument for unknown names, with
///    a message listing every registered name so CLI typos self-explain.
///  * Entries iterate in lexicographic name order (ordered map), so
///    `names()` is sorted without a separate pass.
///  * All operations are mutex-guarded; lookups copy the entry out of the
///    lock, so factories can themselves call back into the registry.
///  * Instances are function-local statics seeded with built-ins on first
///    use — no static-init-order or dead-translation-unit hazards.
#ifndef IMX_UTIL_REGISTRY_HPP
#define IMX_UTIL_REGISTRY_HPP

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/contracts.hpp"

namespace imx::util {

/// \brief One section of a registry listing (`imx_sweep --list`): a heading
/// plus (name, description) rows. Produced by each registry module's
/// `*_registry_section()` helper and rendered by exp::describe_all().
struct RegistrySection {
    std::string heading;
    std::vector<std::pair<std::string, std::string>> rows;
};

/// \brief Mutex-guarded name -> Entry map with the shared diagnostic
/// contract above. `Entry` is whatever one registration carries: a bare
/// factory (exit policies) or a factory plus metadata (trace sources).
template <typename Entry>
class Registry {
public:
    /// \param kind the human-readable noun used in diagnostics, e.g.
    ///   "exit policy" -> "unknown exit policy 'x' (registered: ...)".
    explicit Registry(std::string kind) : kind_(std::move(kind)) {}

    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// \brief Register (or replace) `name`.
    /// \param name the registry key; must be non-empty.
    void add(const std::string& name, Entry entry) {
        IMX_EXPECTS(!name.empty());
        std::lock_guard<std::mutex> lock(mutex_);
        entries_[name] = std::move(entry);
    }

    /// \brief Copy the entry for `name` out of the lock.
    /// \throws std::invalid_argument for unknown names (message lists every
    ///   registered name).
    [[nodiscard]] Entry get(const std::string& name) const {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(name);
        if (it == entries_.end()) throw_unknown(name);
        return it->second;
    }

    /// \brief Project one field out of the entry for `name` under the lock
    /// (e.g. its description), without copying the whole entry.
    /// \throws std::invalid_argument for unknown names.
    template <typename Fn>
    [[nodiscard]] auto read(const std::string& name, Fn&& fn) const {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(name);
        if (it == entries_.end()) throw_unknown(name);
        return fn(it->second);
    }

    /// \brief Whether `name` is currently registered.
    [[nodiscard]] bool contains(const std::string& name) const {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.count(name) > 0;
    }

    /// \brief Every registered name, sorted.
    [[nodiscard]] std::vector<std::string> names() const {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::string> result;
        result.reserve(entries_.size());
        for (const auto& [key, unused] : entries_) {
            (void)unused;
            result.push_back(key);
        }
        return result;
    }

    /// \brief Listing rows (name, description(entry)) for `--list` output.
    template <typename Fn>
    [[nodiscard]] std::vector<std::pair<std::string, std::string>> rows(
        Fn&& describe) const {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::pair<std::string, std::string>> result;
        result.reserve(entries_.size());
        for (const auto& [key, entry] : entries_) {
            result.emplace_back(key, describe(entry));
        }
        return result;
    }

private:
    [[noreturn]] void throw_unknown(const std::string& name) const {
        // Identical, byte for byte, to the message every hand-rolled
        // registry used to build (the mutex is held — entries_ is stable).
        std::string known;
        for (const auto& [key, unused] : entries_) {
            (void)unused;
            if (!known.empty()) known += ", ";
            known += key;
        }
        throw std::invalid_argument("unknown " + kind_ + " '" + name +
                                    "' (registered: " + known + ")");
    }

    std::string kind_;
    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_;
};

}  // namespace imx::util

#endif  // IMX_UTIL_REGISTRY_HPP
