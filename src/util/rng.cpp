#include "util/rng.hpp"

#include <cmath>

namespace imx::util {

std::size_t Rng::categorical(const std::vector<double>& weights) {
    IMX_EXPECTS(!weights.empty());
    double total = 0.0;
    for (const double w : weights) {
        IMX_EXPECTS(w >= 0.0);
        total += w;
    }
    IMX_EXPECTS(total > 0.0);
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0) return i;
    }
    return weights.size() - 1;  // floating-point slack lands on the last bin
}

}  // namespace imx::util
