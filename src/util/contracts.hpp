// Lightweight contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects() for expressing preconditions", I.8 Ensures()).
//
// Violations throw imx::util::ContractViolation so tests can assert on them;
// production builds keep the checks on because every simulation in this
// repository is cheap relative to the cost of silently corrupt physics.
#ifndef IMX_UTIL_CONTRACTS_HPP
#define IMX_UTIL_CONTRACTS_HPP

#include <stdexcept>
#include <string>

namespace imx::util {

/// Thrown when a precondition, postcondition, or invariant fails.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line);
}  // namespace detail

}  // namespace imx::util

/// Precondition check. Throws imx::util::ContractViolation on failure.
#define IMX_EXPECTS(cond)                                                     \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::imx::util::detail::contract_fail("Precondition", #cond,         \
                                               __FILE__, __LINE__);           \
        }                                                                     \
    } while (false)

/// Postcondition check. Throws imx::util::ContractViolation on failure.
#define IMX_ENSURES(cond)                                                     \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::imx::util::detail::contract_fail("Postcondition", #cond,        \
                                               __FILE__, __LINE__);           \
        }                                                                     \
    } while (false)

/// Invariant / internal consistency check.
#define IMX_ASSERT(cond)                                                      \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::imx::util::detail::contract_fail("Assertion", #cond,            \
                                               __FILE__, __LINE__);           \
        }                                                                     \
    } while (false)

#endif  // IMX_UTIL_CONTRACTS_HPP
