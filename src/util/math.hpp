// Small numeric helpers shared across the library: softmax, entropy,
// clamping, interpolation, and safe comparisons.
#ifndef IMX_UTIL_MATH_HPP
#define IMX_UTIL_MATH_HPP

#include <cmath>
#include <cstddef>
#include <vector>

namespace imx::util {

/// Clamp x into [lo, hi].
template <typename T>
constexpr T clamp(T x, T lo, T hi) {
    return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear interpolation between a and b at parameter t in [0, 1].
constexpr double lerp(double a, double b, double t) {
    return a + (b - a) * t;
}

/// Numerically stable logistic sigmoid.
inline double sigmoid(double x) {
    if (x >= 0.0) {
        const double z = std::exp(-x);
        return 1.0 / (1.0 + z);
    }
    const double z = std::exp(x);
    return z / (1.0 + z);
}

/// Approximate float equality with absolute + relative tolerance.
inline bool almost_equal(double a, double b, double abs_tol = 1e-9,
                         double rel_tol = 1e-9) {
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol) return true;
    const double largest = std::fmax(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * largest;
}

/// Numerically stable in-place softmax; returns the normalizing constant's log
/// (log-sum-exp) which callers can reuse for log-likelihoods.
double softmax_inplace(std::vector<double>& logits);

/// Softmax that leaves the input untouched.
std::vector<double> softmax(const std::vector<double>& logits);

/// Shannon entropy (nats) of a probability vector. Zero entries contribute 0.
double entropy(const std::vector<double>& probabilities);

/// Entropy normalized to [0, 1] by log(n); a confidence proxy per
/// BranchyNet-style early exit (paper Sec. IV uses entropy as confidence).
double normalized_entropy(const std::vector<double>& probabilities);

/// Index of the maximum element. Ties resolve to the lowest index.
std::size_t argmax(const std::vector<double>& values);

/// Sum of a vector (Kahan-compensated; traces can be millions of samples).
double kahan_sum(const std::vector<double>& values);

}  // namespace imx::util

#endif  // IMX_UTIL_MATH_HPP
