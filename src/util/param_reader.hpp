/// \file
/// \brief The one typed, validating key=value parameter reader behind every
/// registry that takes a parameter map (trace sources, arrival sources).
///
/// energy::TraceParamReader and sim::ArrivalParamReader were line-for-line
/// copies differing only in the error prefix ("trace source '<name>': " vs
/// "arrival source '<name>': "); this class is that code written once, with
/// the prefix noun (`kind`) injected. The two public readers are now thin
/// subclasses, so factory code, diagnostics, and the fuzz corpus see
/// byte-identical behaviour.
///
/// Usage (inside a source factory):
///
///     util::ParamReader reader("trace source", "rf-bursty", params);
///     cfg.burst_power_mw = reader.positive("burst_power_mw", 0.5);
///     reader.done();   // rejects any key no getter consumed
///
/// Each getter consumes one key (returning the fallback when absent) and
/// records it as accepted; done() then rejects any key the factory never
/// asked for, listing everything the source accepts. All errors are
/// std::invalid_argument prefixed "<kind> '<name>': ".
#ifndef IMX_UTIL_PARAM_READER_HPP
#define IMX_UTIL_PARAM_READER_HPP

#include <map>
#include <set>
#include <string>

namespace imx::util {

class ParamReader {
public:
    using Params = std::map<std::string, std::string>;

    /// \param kind the prefix noun for diagnostics ("trace source", ...).
    /// \param source the concrete source name being configured.
    /// \param params the key=value map; must outlive the reader.
    ParamReader(std::string kind, std::string source, const Params& params);

    /// Any finite number.
    double number(const std::string& key, double fallback);
    /// A number > 0.
    double positive(const std::string& key, double fallback);
    /// A number >= 0.
    double non_negative(const std::string& key, double fallback);
    /// A number in [0, 1].
    double fraction(const std::string& key, double fallback);
    /// Free text (returned verbatim).
    std::string text(const std::string& key, const std::string& fallback);
    /// Free text that must be present and non-empty.
    std::string required_text(const std::string& key);

    /// Reject every key no getter consumed. Call after the last getter.
    void done() const;

    /// Throw a source-prefixed std::invalid_argument (for cross-parameter
    /// checks like sunrise_hour < sunset_hour).
    [[noreturn]] void fail(const std::string& message) const;

private:
    double parsed_number(const std::string& key, double fallback);

    std::string kind_;
    std::string source_;
    const Params& params_;
    std::set<std::string> accepted_;
};

}  // namespace imx::util

#endif  // IMX_UTIL_PARAM_READER_HPP
