/// \file
/// \brief Bump allocator with scoped reset — the allocation backbone of the
/// per-worker sim::ScenarioWorkspace.
///
/// A sweep worker executes thousands of scenarios; each one historically
/// re-heap-allocated the same short-lived buffers (event schedules, queue
/// rings, recovery unit plans). An Arena turns that churn into pointer
/// bumps: allocate() carves from chunked blocks, reset() recycles every
/// block at once (no per-object frees, no destructor calls — callers only
/// place trivially-destructible data here), and capacity reached in early
/// scenarios is retained for later ones, so a worker's steady state does no
/// heap allocation at all.
///
/// Not thread-safe by design: each worker owns one arena (the runner's
/// workspace pool hands a whole workspace to exactly one scenario at a
/// time).
#ifndef IMX_UTIL_ARENA_HPP
#define IMX_UTIL_ARENA_HPP

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/contracts.hpp"

namespace imx::util {

class Arena {
public:
    /// \param chunk_bytes granularity of the backing blocks; requests larger
    ///   than this get a dedicated block of their exact size.
    explicit Arena(std::size_t chunk_bytes = 64 * 1024);

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// \brief Carve `bytes` with alignment `align` from the current block
    /// (O(1) pointer bump; grabs a new block when the current one is full).
    /// The returned memory is uninitialised and valid until the next
    /// reset(). `bytes == 0` returns a non-null, aligned pointer.
    [[nodiscard]] void* allocate(std::size_t bytes,
                                 std::size_t align = alignof(std::max_align_t));

    /// \brief Typed allocate: `count` default-uninitialised Ts. T must be
    /// trivially destructible — the arena never runs destructors.
    template <typename T>
    [[nodiscard]] T* allocate_array(std::size_t count) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena memory is reclaimed without destructor calls");
        return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    }

    /// \brief Recycle every block: all outstanding pointers are invalidated,
    /// all capacity is kept for reuse. O(#blocks), no frees.
    void reset();

    /// \brief Total bytes handed out since the last reset().
    [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }

    /// \brief Total backing capacity currently held (survives reset()).
    [[nodiscard]] std::size_t bytes_reserved() const;

    /// \brief RAII reset: restores the arena to empty on scope exit, so a
    /// scenario can scratch freely without leaking capacity bookkeeping into
    /// the next one.
    class Scope {
    public:
        explicit Scope(Arena& arena) : arena_(arena) {}
        ~Scope() { arena_.reset(); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Arena& arena_;
    };

private:
    struct Block {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
    };

    /// Make `blocks_[next_block_]` a block of at least `bytes`.
    void ensure_block(std::size_t bytes);

    std::size_t chunk_bytes_;
    std::vector<Block> blocks_;
    std::size_t next_block_ = 0;  ///< first block not yet opened
    std::byte* cursor_ = nullptr;
    std::byte* block_end_ = nullptr;
    std::size_t bytes_used_ = 0;
};

}  // namespace imx::util

#endif  // IMX_UTIL_ARENA_HPP
