#include "util/contracts.hpp"

#include <sstream>

namespace imx::util::detail {

[[noreturn]] void contract_fail(const char* kind, const char* expr,
                                const char* file, int line) {
    std::ostringstream oss;
    oss << kind << " failed: (" << expr << ") at " << file << ":" << line;
    throw ContractViolation(oss.str());
}

}  // namespace imx::util::detail
