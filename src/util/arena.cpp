#include "util/arena.hpp"

#include <cstdint>
#include <type_traits>

namespace imx::util {

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
    IMX_EXPECTS(chunk_bytes > 0);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
    IMX_EXPECTS(align > 0 && (align & (align - 1)) == 0);
    // Bump the cursor to the next `align` boundary.
    auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
    std::uintptr_t aligned = (addr + (align - 1)) & ~(align - 1);
    if (cursor_ == nullptr ||
        aligned + bytes > reinterpret_cast<std::uintptr_t>(block_end_)) {
        // Oversized requests get their own exact-size block so a single
        // large buffer doesn't force the chunk size up for everyone.
        ensure_block(bytes + align);
        addr = reinterpret_cast<std::uintptr_t>(cursor_);
        aligned = (addr + (align - 1)) & ~(align - 1);
    }
    cursor_ = reinterpret_cast<std::byte*>(aligned + bytes);
    bytes_used_ += bytes;
    IMX_ENSURES(cursor_ <= block_end_);
    return reinterpret_cast<void*>(aligned);
}

void Arena::ensure_block(std::size_t bytes) {
    const std::size_t want = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    // Reuse a retained block if the next one is big enough; otherwise
    // insert a fresh block at the open position.
    if (next_block_ >= blocks_.size() || blocks_[next_block_].size < want) {
        Block block;
        block.data = std::make_unique<std::byte[]>(want);
        block.size = want;
        blocks_.insert(blocks_.begin() +
                           static_cast<std::ptrdiff_t>(next_block_),
                       std::move(block));
    }
    Block& open = blocks_[next_block_];
    cursor_ = open.data.get();
    block_end_ = cursor_ + open.size;
    ++next_block_;
}

void Arena::reset() {
    next_block_ = 0;
    cursor_ = nullptr;
    block_end_ = nullptr;
    bytes_used_ = 0;
}

std::size_t Arena::bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
}

}  // namespace imx::util
