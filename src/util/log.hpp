// Leveled logging to stderr. Deliberately tiny: the simulators are the
// product here, not the logger.
#ifndef IMX_UTIL_LOG_HPP
#define IMX_UTIL_LOG_HPP

#include <sstream>
#include <string>

namespace imx::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log record (no formatting; callers build the string).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
    if (log_level() <= LogLevel::kDebug)
        log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
    if (log_level() <= LogLevel::kInfo)
        log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
    if (log_level() <= LogLevel::kWarn)
        log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
    if (log_level() <= LogLevel::kError)
        log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace imx::util

#endif  // IMX_UTIL_LOG_HPP
