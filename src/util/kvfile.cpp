#include "util/kvfile.hpp"

#include <fstream>
#include <sstream>

namespace imx::util {

namespace {

std::string trim(const std::string& text) {
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos) return "";
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

[[noreturn]] void fail(const std::string& origin, int line,
                       const std::string& message) {
    throw KvParseError(origin + ":" + std::to_string(line) + ": " + message);
}

}  // namespace

std::vector<KvSection> parse_kv_text(const std::string& text,
                                     const std::string& origin) {
    std::vector<KvSection> sections;
    std::istringstream stream(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(stream, raw)) {
        ++line_no;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#' || line[0] == ';') continue;
        if (line[0] == '[') {
            if (line.back() != ']') {
                fail(origin, line_no, "section header missing closing ']'");
            }
            const std::string name = trim(line.substr(1, line.size() - 2));
            if (name.empty()) fail(origin, line_no, "empty section name");
            sections.push_back({name, line_no, {}});
            continue;
        }
        const auto eq = line.find('=');
        if (eq == std::string::npos) {
            fail(origin, line_no,
                 "expected '[section]' or 'key = value', got '" + line + "'");
        }
        const std::string key = trim(line.substr(0, eq));
        if (key.empty()) fail(origin, line_no, "empty key");
        if (sections.empty()) {
            fail(origin, line_no,
                 "entry '" + key + "' appears before any [section]");
        }
        sections.back().entries.push_back(
            {key, trim(line.substr(eq + 1)), line_no});
    }
    return sections;
}

std::vector<KvSection> parse_kv_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) {
        throw KvParseError(path + ": cannot open file");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    return parse_kv_text(contents.str(), path);
}

}  // namespace imx::util
