// Streaming and batch statistics used by the metrics and benchmark layers.
#ifndef IMX_UTIL_STATS_HPP
#define IMX_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace imx::util {

/// Welford one-pass mean/variance accumulator; O(1) memory.
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);
    void reset();

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;  ///< population variance
    [[nodiscard]] double sample_variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Linear-interpolation quantile of an unsorted sample (copies + sorts).
double quantile(std::vector<double> sample, double q);

/// Arithmetic mean of a sample. Empty sample yields 0.
double mean(const std::vector<double>& sample);

/// Population standard deviation of a sample. Fewer than 2 points yields 0.
double stddev(const std::vector<double>& sample);

/// Pearson correlation of two equal-length samples.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Exponential moving average helper.
class Ema {
public:
    explicit Ema(double alpha);
    double update(double x);
    [[nodiscard]] double value() const { return value_; }
    [[nodiscard]] bool initialized() const { return initialized_; }

private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

}  // namespace imx::util

#endif  // IMX_UTIL_STATS_HPP
