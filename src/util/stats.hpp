// Streaming and batch statistics used by the metrics and benchmark layers.
#ifndef IMX_UTIL_STATS_HPP
#define IMX_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace imx::util {

/// Welford one-pass mean/variance accumulator; O(1) memory.
class RunningStats {
public:
    void add(double x);
    void merge(const RunningStats& other);
    void reset();

    [[nodiscard]] std::size_t count() const { return count_; }
    [[nodiscard]] double mean() const;
    [[nodiscard]] double variance() const;  ///< population variance
    [[nodiscard]] double sample_variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Linear-interpolation quantile of an unsorted sample (copies + sorts).
double quantile(std::vector<double> sample, double q);

/// Exact nearest-rank percentile of an already-sorted sample: the smallest
/// element with at least ceil(q * n) elements at or below it (q = 0 yields
/// the minimum, q = 1 the maximum). Unlike quantile() this never
/// interpolates — the result is always an actual sample value — which is
/// what the latency columns report. An empty sample yields quiet NaN; NaN
/// samples placed at the tail (PercentileCollector does this) propagate
/// into high percentiles rather than silently vanishing.
/// \pre `sorted` is ascending (NaNs, if any, at the tail); \pre 0 <= q <= 1.
double percentile(const std::vector<double>& sorted, double q);

/// Streaming-safe collector for exact percentiles: add() samples in any
/// order (O(1) amortized), merge() shard-parallel collectors, then read
/// nearest-rank percentiles at the end. Exact — keeps every sample — so the
/// merge of per-shard collectors equals the single-process collector
/// element-for-element, which is what the sweep journal invariance tests
/// pin.
class PercentileCollector {
public:
    void add(double x);
    void merge(const PercentileCollector& other);

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    /// Nearest-rank percentile of everything collected so far (sorts a
    /// copy); NaN when nothing was collected.
    [[nodiscard]] double percentile(double q) const;

private:
    std::vector<double> samples_;
};

/// Arithmetic mean of a sample. Empty sample yields 0.
double mean(const std::vector<double>& sample);

/// Population standard deviation of a sample. Fewer than 2 points yields 0.
double stddev(const std::vector<double>& sample);

/// Pearson correlation of two equal-length samples.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Exponential moving average helper. update() is inline: the simulator
/// calls it once per step and the cross-TU call dominated the two flops.
class Ema {
public:
    explicit Ema(double alpha);
    double update(double x) {
        if (!initialized_) {
            value_ = x;
            initialized_ = true;
        } else {
            value_ = alpha_ * x + (1.0 - alpha_) * value_;
        }
        return value_;
    }
    [[nodiscard]] double value() const { return value_; }
    [[nodiscard]] bool initialized() const { return initialized_; }

private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

}  // namespace imx::util

#endif  // IMX_UTIL_STATS_HPP
