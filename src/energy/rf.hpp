// RF / base-station harvesting profile: Markov-modulated on/off bursts.
//
// Ambient-RF and wireless-power-transfer harvesters see nothing most of the
// time and short high-power dwells when a beacon, downlink burst, or beam
// sweep passes over them (Gobieski et al., "Intelligence Beyond the Edge",
// evaluate intermittent inference on exactly this kind of source). The
// two-state Markov chain below reproduces that texture: exponentially
// distributed dwell times in an "on" state (burst_power_mw, jittered per
// burst) and an "off" state (idle_power_mw, typically 0), sampled every
// dt_s seconds. Mean income is burst * on/(on+off) + idle * off/(on+off),
// so the default ~10 % duty cycle is a weak, unpredictable trickle — the
// paper's Sec. I premise under a non-solar harvester.
#ifndef IMX_ENERGY_RF_HPP
#define IMX_ENERGY_RF_HPP

#include <cstdint>

#include "energy/power_trace.hpp"

namespace imx::energy {

struct RfBurstyConfig {
    double duration_s = 13000.0;
    double dt_s = 1.0;
    double burst_power_mw = 0.5;  ///< harvest power while a burst dwells
    double idle_power_mw = 0.0;   ///< background income between bursts
    double mean_on_s = 3.0;       ///< mean burst dwell (exponential)
    double mean_off_s = 27.0;     ///< mean gap between bursts (exponential)
    /// Per-burst amplitude jitter: each burst's power is
    /// burst_power_mw * max(0, 1 + jitter * N(0,1)), modelling fading and
    /// distance variation between beam passes. 0 = every burst identical.
    double power_jitter = 0.25;
    std::uint64_t seed = 7;
};

/// Generate a Markov-modulated on/off RF harvesting trace.
PowerTrace make_rf_bursty_trace(const RfBurstyConfig& config);

}  // namespace imx::energy

#endif  // IMX_ENERGY_RF_HPP
