// Wind / thermal-gradient harvesting profile: Ornstein-Uhlenbeck drift
// around a mean income.
//
// Small wind turbines and thermoelectric generators deliver a continuously
// varying power that wanders around a climatological mean on minute
// timescales — unlike solar there is no day/night envelope, and unlike RF
// there are no hard on/off edges. The mean-reverting OU process
//   dP = theta * (mean - P) dt + sigma dW
// (clamped at floor_mw) captures that: `reversion_rate` sets how quickly
// gusts and lulls decay, `sigma` how violent they are. This is the
// "energy-aware dynamic inference" operating regime of Bullo et al., and a
// useful stress test for exit policies tuned on the solar envelope.
#ifndef IMX_ENERGY_OU_HPP
#define IMX_ENERGY_OU_HPP

#include <cstdint>

#include "energy/power_trace.hpp"

namespace imx::energy {

struct OuDriftConfig {
    double duration_s = 13000.0;
    double dt_s = 1.0;
    double mean_power_mw = 0.03;   ///< long-run mean income
    double reversion_rate = 0.005; ///< theta: gust/lull decay rate (1/s)
    double sigma = 0.004;          ///< diffusion (mW per sqrt(s))
    double floor_mw = 0.0;         ///< hard floor (a stalled turbine gives 0)
    std::uint64_t seed = 7;
};

/// Generate a mean-reverting (OU) drift harvesting trace.
PowerTrace make_ou_drift_trace(const OuDriftConfig& config);

}  // namespace imx::energy

#endif  // IMX_ENERGY_OU_HPP
