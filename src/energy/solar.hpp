// Synthetic solar harvesting profile.
//
// Substitution for the ORNL Rotating Shadowband Radiometer trace the paper
// powers its MSP432 from (ref [17]): a clear-sky diurnal envelope
// sin^1.5(pi * t / daylight) between sunrise and sunset, modulated by an
// Ornstein-Uhlenbeck cloud-attenuation process, zero at night. The OU
// process gives the short-term variability that makes energy arrival
// "weak and unpredictable" (paper Sec. I), which is exactly the property
// the runtime exit-selection learning needs to cope with.
#ifndef IMX_ENERGY_SOLAR_HPP
#define IMX_ENERGY_SOLAR_HPP

#include <cstdint>

#include "energy/power_trace.hpp"

namespace imx::energy {

struct SolarConfig {
    double days = 1.0;
    double dt_s = 1.0;             ///< sample period (paper time unit: 1 s)
    double peak_power_mw = 2.0;    ///< clear-sky noon harvesting power
    double sunrise_hour = 6.0;
    double sunset_hour = 18.0;
    double envelope_exponent = 1.5;
    /// Wall-clock window the trace covers (hours of day). The default spans
    /// whole days; evaluation setups that schedule all events in daylight
    /// (paper Sec. V) generate just the sunrise..sunset window.
    double window_start_hour = 0.0;
    double window_end_hour = 24.0;
    // OU cloud process on attenuation in [cloud_floor, 1].
    double cloud_theta = 0.02;     ///< mean reversion rate (1/s)
    double cloud_sigma = 0.06;     ///< diffusion
    double cloud_floor = 0.05;     ///< heaviest overcast keeps 5 % of power
    /// Scale so that a full-day trace compresses into a shorter experiment:
    /// the paper's 500-event runs complete in minutes of simulated time per
    /// episode; time_compression c > 1 maps c trace-seconds to one sim-second.
    double time_compression = 1.0;
    std::uint64_t seed = 7;
};

/// Generate a solar power trace from the config.
PowerTrace make_solar_trace(const SolarConfig& config);

}  // namespace imx::energy

#endif  // IMX_ENERGY_SOLAR_HPP
