#include "energy/ou.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace imx::energy {

PowerTrace make_ou_drift_trace(const OuDriftConfig& config) {
    IMX_EXPECTS(config.duration_s > 0.0);
    IMX_EXPECTS(config.dt_s > 0.0);
    IMX_EXPECTS(config.mean_power_mw > 0.0);
    IMX_EXPECTS(config.reversion_rate > 0.0);
    IMX_EXPECTS(config.sigma >= 0.0);
    IMX_EXPECTS(config.floor_mw >= 0.0);
    IMX_EXPECTS(config.floor_mw <= config.mean_power_mw);

    const auto n =
        static_cast<std::size_t>(std::ceil(config.duration_s / config.dt_s));
    IMX_EXPECTS(n > 0);

    util::Rng rng(config.seed);
    std::vector<double> samples(n, 0.0);

    // Euler-Maruyama, started at the mean so short traces are not biased by
    // a burn-in transient.
    double power = config.mean_power_mw;
    const double sqrt_dt = std::sqrt(config.dt_s);
    for (std::size_t i = 0; i < n; ++i) {
        power += config.reversion_rate * (config.mean_power_mw - power) *
                     config.dt_s +
                 config.sigma * sqrt_dt * rng.normal();
        power = std::max(power, config.floor_mw);
        samples[i] = power;
    }
    return PowerTrace(config.dt_s, std::move(samples));
}

}  // namespace imx::energy
