/// \file
/// \brief Capacitor-style energy buffer of an intermittently powered device.
///
/// Models the essentials the paper's runtime depends on: finite capacity,
/// charge inefficiency that worsens at low input power (the "charging
/// efficiency" component of the Q-learning state, Sec. IV), leakage, and
/// the turn-on/turn-off thresholds that define a power cycle. The capacity
/// is also a sweep axis: exp::storage_patch() varies capacity_mj across a
/// scenario grid.
#ifndef IMX_ENERGY_STORAGE_HPP
#define IMX_ENERGY_STORAGE_HPP

#include "util/contracts.hpp"

namespace imx::energy {

/// \brief Tunable parameters of the energy buffer.
struct StorageConfig {
    double capacity_mj = 10.0;      ///< usable energy at full charge
    double initial_mj = 0.0;
    double leakage_mw = 0.001;      ///< constant self-discharge
    /// Charging efficiency rises with input power and saturates:
    /// eff(p) = eff_max * p / (p + half_power). Boost converters on real
    /// harvesters behave this way (poor efficiency in dim light).
    double efficiency_max = 0.85;
    double efficiency_half_power_mw = 0.15;
    /// Intermittent-computing thresholds: execution may start only above
    /// on_threshold and dies below off_threshold.
    double on_threshold_mj = 0.5;
    double off_threshold_mj = 0.05;
    /// Brown-out death threshold of the failure model (sim/recovery/): a
    /// recovery-enabled run that sags strictly below this level mid-inference
    /// dies and must restart under its recovery strategy. 0 disables death
    /// (the level never goes negative). Only the recovery-enabled simulator
    /// path reads it — the default runtime is unaffected.
    double death_threshold_mj = 0.05;
};

/// \brief Stateful energy buffer: harvest in, inference energy out.
class EnergyStorage {
public:
    /// \pre config.capacity_mj > 0, thresholds within capacity.
    explicit EnergyStorage(const StorageConfig& config);

    /// \brief Integrate harvesting at constant input power for dt seconds.
    /// \param power_mw harvested input power over the step.
    /// \param dt_s step length in seconds.
    /// \return the energy actually stored (after efficiency and capping).
    double harvest(double power_mw, double dt_s);

    /// \return charging efficiency in [0, efficiency_max] at the given
    ///   input power.
    [[nodiscard]] double efficiency_at(double power_mw) const;

    /// \brief Attempt to withdraw amount_mj.
    /// \return false (withdrawing nothing) if the level is insufficient.
    [[nodiscard]] bool try_consume(double amount_mj);

    /// \brief Withdraw unconditionally (level clamps at 0); models a
    /// brown-out where in-progress computation is lost.
    void drain(double amount_mj);

    [[nodiscard]] double level() const { return level_mj_; }
    [[nodiscard]] double capacity() const { return config_.capacity_mj; }
    [[nodiscard]] double headroom() const { return config_.capacity_mj - level_mj_; }
    [[nodiscard]] bool can_turn_on() const {
        return level_mj_ >= config_.on_threshold_mj;
    }
    [[nodiscard]] bool must_turn_off() const {
        return level_mj_ <= config_.off_threshold_mj;
    }
    /// \brief Below the failure model's brown-out threshold (strict, so a
    /// zero threshold never fires)?
    [[nodiscard]] bool below_death_threshold() const {
        return level_mj_ < config_.death_threshold_mj;
    }
    [[nodiscard]] const StorageConfig& config() const { return config_; }

    void reset(double level_mj);

private:
    StorageConfig config_;
    double level_mj_;
};

}  // namespace imx::energy

#endif  // IMX_ENERGY_STORAGE_HPP
