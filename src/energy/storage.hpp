/// \file
/// \brief Capacitor-style energy buffer of an intermittently powered device.
///
/// Models the essentials the paper's runtime depends on: finite capacity,
/// charge inefficiency that worsens at low input power (the "charging
/// efficiency" component of the Q-learning state, Sec. IV), leakage, and
/// the turn-on/turn-off thresholds that define a power cycle. The capacity
/// is also a sweep axis: exp::storage_patch() varies capacity_mj across a
/// scenario grid.
#ifndef IMX_ENERGY_STORAGE_HPP
#define IMX_ENERGY_STORAGE_HPP

#include <algorithm>

#include "util/contracts.hpp"

namespace imx::energy {

/// \brief Tunable parameters of the energy buffer.
struct StorageConfig {
    double capacity_mj = 10.0;      ///< usable energy at full charge
    double initial_mj = 0.0;
    double leakage_mw = 0.001;      ///< constant self-discharge
    /// Charging efficiency rises with input power and saturates:
    /// eff(p) = eff_max * p / (p + half_power). Boost converters on real
    /// harvesters behave this way (poor efficiency in dim light).
    double efficiency_max = 0.85;
    double efficiency_half_power_mw = 0.15;
    /// Intermittent-computing thresholds: execution may start only above
    /// on_threshold and dies below off_threshold.
    double on_threshold_mj = 0.5;
    double off_threshold_mj = 0.05;
    /// Brown-out death threshold of the failure model (sim/recovery/): a
    /// recovery-enabled run that sags strictly below this level mid-inference
    /// dies and must restart under its recovery strategy. 0 disables death
    /// (the level never goes negative). Only the recovery-enabled simulator
    /// path reads it — the default runtime is unaffected.
    double death_threshold_mj = 0.05;
};

/// \brief Stateful energy buffer: harvest in, inference energy out.
class EnergyStorage {
public:
    /// \pre config.capacity_mj > 0, thresholds within capacity.
    explicit EnergyStorage(const StorageConfig& config);

    // harvest/try_consume/drain are defined inline: the simulator calls
    // them once per step, and the cross-TU call was measurable against the
    // few float ops they perform. The operations (and their exact float
    // evaluation order) are unchanged — the --quick goldens pin that.

    /// \brief Integrate harvesting at constant input power for dt seconds.
    /// \param power_mw harvested input power over the step.
    /// \param dt_s step length in seconds.
    /// \return the energy actually stored (after efficiency and capping).
    double harvest(double power_mw, double dt_s) {
        IMX_EXPECTS(power_mw >= 0.0 && dt_s >= 0.0);
        const double gross = power_mw * dt_s;               // mJ harvested
        const double net = gross * efficiency_at(power_mw); // after converter
        const double leak = config_.leakage_mw * dt_s;
        const double before = level_mj_;
        level_mj_ =
            std::clamp(level_mj_ + net - leak, 0.0, config_.capacity_mj);
        return level_mj_ - before;
    }

    /// \return charging efficiency in [0, efficiency_max] at the given
    ///   input power.
    [[nodiscard]] double efficiency_at(double power_mw) const {
        IMX_EXPECTS(power_mw >= 0.0);
        if (power_mw == 0.0) return 0.0;
        return config_.efficiency_max * power_mw /
               (power_mw + config_.efficiency_half_power_mw);
    }

    /// \brief Attempt to withdraw amount_mj.
    /// \return false (withdrawing nothing) if the level is insufficient.
    [[nodiscard]] bool try_consume(double amount_mj) {
        IMX_EXPECTS(amount_mj >= 0.0);
        if (amount_mj > level_mj_) return false;
        level_mj_ -= amount_mj;
        return true;
    }

    /// \brief Withdraw unconditionally (level clamps at 0); models a
    /// brown-out where in-progress computation is lost.
    void drain(double amount_mj) {
        IMX_EXPECTS(amount_mj >= 0.0);
        level_mj_ = std::max(0.0, level_mj_ - amount_mj);
    }

    [[nodiscard]] double level() const { return level_mj_; }
    [[nodiscard]] double capacity() const { return config_.capacity_mj; }
    [[nodiscard]] double headroom() const { return config_.capacity_mj - level_mj_; }
    [[nodiscard]] bool can_turn_on() const {
        return level_mj_ >= config_.on_threshold_mj;
    }
    [[nodiscard]] bool must_turn_off() const {
        return level_mj_ <= config_.off_threshold_mj;
    }
    /// \brief Below the failure model's brown-out threshold (strict, so a
    /// zero threshold never fires)?
    [[nodiscard]] bool below_death_threshold() const {
        return level_mj_ < config_.death_threshold_mj;
    }
    [[nodiscard]] const StorageConfig& config() const { return config_; }

    void reset(double level_mj);

private:
    StorageConfig config_;
    double level_mj_;
};

}  // namespace imx::energy

#endif  // IMX_ENERGY_STORAGE_HPP
