#include "energy/storage.hpp"

#include <algorithm>

namespace imx::energy {

EnergyStorage::EnergyStorage(const StorageConfig& config)
    : config_(config), level_mj_(config.initial_mj) {
    IMX_EXPECTS(config.capacity_mj > 0.0);
    IMX_EXPECTS(config.initial_mj >= 0.0 &&
                config.initial_mj <= config.capacity_mj);
    IMX_EXPECTS(config.leakage_mw >= 0.0);
    IMX_EXPECTS(config.efficiency_max > 0.0 && config.efficiency_max <= 1.0);
    IMX_EXPECTS(config.efficiency_half_power_mw >= 0.0);
    IMX_EXPECTS(config.off_threshold_mj >= 0.0);
    IMX_EXPECTS(config.on_threshold_mj >= config.off_threshold_mj);
    IMX_EXPECTS(config.on_threshold_mj <= config.capacity_mj);
    IMX_EXPECTS(config.death_threshold_mj >= 0.0 &&
                config.death_threshold_mj <= config.capacity_mj);
}

void EnergyStorage::reset(double level_mj) {
    IMX_EXPECTS(level_mj >= 0.0 && level_mj <= config_.capacity_mj);
    level_mj_ = level_mj;
}

}  // namespace imx::energy
