#include "energy/storage.hpp"

#include <algorithm>

namespace imx::energy {

EnergyStorage::EnergyStorage(const StorageConfig& config)
    : config_(config), level_mj_(config.initial_mj) {
    IMX_EXPECTS(config.capacity_mj > 0.0);
    IMX_EXPECTS(config.initial_mj >= 0.0 &&
                config.initial_mj <= config.capacity_mj);
    IMX_EXPECTS(config.leakage_mw >= 0.0);
    IMX_EXPECTS(config.efficiency_max > 0.0 && config.efficiency_max <= 1.0);
    IMX_EXPECTS(config.efficiency_half_power_mw >= 0.0);
    IMX_EXPECTS(config.off_threshold_mj >= 0.0);
    IMX_EXPECTS(config.on_threshold_mj >= config.off_threshold_mj);
    IMX_EXPECTS(config.on_threshold_mj <= config.capacity_mj);
    IMX_EXPECTS(config.death_threshold_mj >= 0.0 &&
                config.death_threshold_mj <= config.capacity_mj);
}

double EnergyStorage::efficiency_at(double power_mw) const {
    IMX_EXPECTS(power_mw >= 0.0);
    if (power_mw == 0.0) return 0.0;
    return config_.efficiency_max * power_mw /
           (power_mw + config_.efficiency_half_power_mw);
}

double EnergyStorage::harvest(double power_mw, double dt_s) {
    IMX_EXPECTS(power_mw >= 0.0 && dt_s >= 0.0);
    const double gross = power_mw * dt_s;               // mJ at the harvester
    const double net = gross * efficiency_at(power_mw); // after converter
    const double leak = config_.leakage_mw * dt_s;
    const double before = level_mj_;
    level_mj_ = std::clamp(level_mj_ + net - leak, 0.0, config_.capacity_mj);
    return level_mj_ - before;
}

bool EnergyStorage::try_consume(double amount_mj) {
    IMX_EXPECTS(amount_mj >= 0.0);
    if (amount_mj > level_mj_) return false;
    level_mj_ -= amount_mj;
    return true;
}

void EnergyStorage::drain(double amount_mj) {
    IMX_EXPECTS(amount_mj >= 0.0);
    level_mj_ = std::max(0.0, level_mj_ - amount_mj);
}

void EnergyStorage::reset(double level_mj) {
    IMX_EXPECTS(level_mj >= 0.0 && level_mj <= config_.capacity_mj);
    level_mj_ = level_mj;
}

}  // namespace imx::energy
