#include "energy/power_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace imx::energy {

PowerTrace::PowerTrace(double dt_s, std::vector<double> power_mw)
    : dt_s_(dt_s), power_mw_(std::move(power_mw)) {
    IMX_EXPECTS(dt_s > 0.0);
    IMX_EXPECTS(!power_mw_.empty());
    for (const double p : power_mw_) IMX_EXPECTS(p >= 0.0);
}

double PowerTrace::energy_between(double t0, double t1) const {
    IMX_EXPECTS(t0 <= t1);
    t0 = std::max(t0, 0.0);
    t1 = std::min(t1, duration());
    if (t0 >= t1) return 0.0;

    const auto first = static_cast<std::size_t>(t0 / dt_s_);
    const auto last = static_cast<std::size_t>(t1 / dt_s_);
    // mW * s = mJ directly.
    if (first == last) return power_mw_[first] * (t1 - t0);

    double energy = power_mw_[first] * (static_cast<double>(first + 1) * dt_s_ - t0);
    for (std::size_t i = first + 1; i < last; ++i) {
        energy += power_mw_[i] * dt_s_;
    }
    if (last < power_mw_.size()) {
        energy += power_mw_[last] * (t1 - static_cast<double>(last) * dt_s_);
    }
    return energy;
}

double PowerTrace::total_energy() const {
    double sum = 0.0;
    for (const double p : power_mw_) sum += p;
    return sum * dt_s_;
}

double PowerTrace::mean_power() const {
    return total_energy() / duration();
}

void PowerTrace::rescale_total_energy(double target_mj) {
    IMX_EXPECTS(target_mj > 0.0);
    const double current = total_energy();
    IMX_EXPECTS(current > 0.0);
    const double factor = target_mj / current;
    for (double& p : power_mw_) p *= factor;
}

PowerTrace PowerTrace::constant(double power_mw, double duration_s,
                                double dt_s) {
    IMX_EXPECTS(duration_s > 0.0 && dt_s > 0.0);
    const auto n = static_cast<std::size_t>(std::ceil(duration_s / dt_s));
    return PowerTrace(dt_s, std::vector<double>(n, power_mw));
}

PowerTrace PowerTrace::square_wave(double power_mw, double period_s,
                                   double duty_cycle, double duration_s,
                                   double dt_s) {
    IMX_EXPECTS(period_s > 0.0 && duty_cycle >= 0.0 && duty_cycle <= 1.0);
    const auto n = static_cast<std::size_t>(std::ceil(duration_s / dt_s));
    std::vector<double> samples(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const double phase = std::fmod(static_cast<double>(i) * dt_s, period_s);
        samples[i] = phase < duty_cycle * period_s ? power_mw : 0.0;
    }
    return PowerTrace(dt_s, std::move(samples));
}

void PowerTrace::to_csv(const std::string& path) const {
    util::CsvWriter writer(path);
    writer.write_header({"time_s", "power_mw"});
    for (std::size_t i = 0; i < power_mw_.size(); ++i) {
        writer.write_row(std::vector<double>{static_cast<double>(i) * dt_s_,
                                             power_mw_[i]});
    }
}

PowerTrace PowerTrace::from_csv(const std::string& path) {
    const util::CsvTable table = util::read_csv(path, true);
    IMX_EXPECTS(table.rows.size() >= 2);
    const std::vector<double> times = table.numeric_column("time_s");
    const std::vector<double> power = table.numeric_column("power_mw");
    const double dt = times[1] - times[0];
    if (!(dt > 0.0)) {
        throw std::invalid_argument(path +
                                    ": time_s must be strictly increasing");
    }
    // The representation is a uniform grid: a logger export with dropped or
    // irregular samples would otherwise replay on the wrong time base and
    // silently skew every downstream metric.
    const double tolerance = 1e-6 * dt;
    for (std::size_t i = 2; i < times.size(); ++i) {
        const double step = times[i] - times[i - 1];
        if (std::abs(step - dt) > tolerance) {
            throw std::invalid_argument(
                path + ": non-uniform time_s spacing at row " +
                std::to_string(i + 2) + " (step " + std::to_string(step) +
                " s vs dt " + std::to_string(dt) + " s)");
        }
    }
    return PowerTrace(dt, power);
}

}  // namespace imx::energy
