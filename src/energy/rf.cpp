#include "energy/rf.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace imx::energy {

PowerTrace make_rf_bursty_trace(const RfBurstyConfig& config) {
    IMX_EXPECTS(config.duration_s > 0.0);
    IMX_EXPECTS(config.dt_s > 0.0);
    IMX_EXPECTS(config.burst_power_mw > 0.0);
    IMX_EXPECTS(config.idle_power_mw >= 0.0);
    IMX_EXPECTS(config.mean_on_s > 0.0);
    IMX_EXPECTS(config.mean_off_s > 0.0);
    IMX_EXPECTS(config.power_jitter >= 0.0);

    const auto n =
        static_cast<std::size_t>(std::ceil(config.duration_s / config.dt_s));
    IMX_EXPECTS(n > 0);

    util::Rng rng(config.seed);
    std::vector<double> samples(n, 0.0);

    // Continuous-time two-state chain sampled on the dt grid: dwell times
    // are exponential, drawn once per state visit, so the trace texture is
    // independent of dt (no geometric-per-step approximation error).
    bool on = false;
    double dwell_left_s = rng.exponential(1.0 / config.mean_off_s);
    double burst_power = config.burst_power_mw;
    for (std::size_t i = 0; i < n; ++i) {
        while (dwell_left_s <= 0.0) {
            on = !on;
            if (on) {
                dwell_left_s += rng.exponential(1.0 / config.mean_on_s);
                burst_power =
                    config.burst_power_mw *
                    std::max(0.0, 1.0 + config.power_jitter * rng.normal());
            } else {
                dwell_left_s += rng.exponential(1.0 / config.mean_off_s);
            }
        }
        samples[i] = on ? burst_power : config.idle_power_mw;
        dwell_left_s -= config.dt_s;
    }
    return PowerTrace(config.dt_s, std::move(samples));
}

}  // namespace imx::energy
