// Harvested-power time series. Units: milliwatts over seconds, so integrals
// are millijoules — the paper's IEpmJ denominator unit.
#ifndef IMX_ENERGY_POWER_TRACE_HPP
#define IMX_ENERGY_POWER_TRACE_HPP

#include <string>
#include <vector>

namespace imx::energy {

/// Piecewise-constant power trace sampled every dt_s seconds.
class PowerTrace {
public:
    PowerTrace(double dt_s, std::vector<double> power_mw);

    [[nodiscard]] double dt() const { return dt_s_; }
    [[nodiscard]] std::size_t size() const { return power_mw_.size(); }
    [[nodiscard]] double duration() const {
        return dt_s_ * static_cast<double>(power_mw_.size());
    }

    /// Power at absolute time t (seconds); 0 beyond the end. Inline: the
    /// simulator reads one sample per step, and the cross-TU call cost more
    /// than the lookup.
    [[nodiscard]] double power_at(double t) const {
        if (t < 0.0) return 0.0;
        const auto idx = static_cast<std::size_t>(t / dt_s_);
        if (idx >= power_mw_.size()) return 0.0;
        return power_mw_[idx];
    }

    /// Energy harvested in [t0, t1] in millijoules (piecewise-constant
    /// integral, exact for this representation).
    [[nodiscard]] double energy_between(double t0, double t1) const;

    /// Total energy over the whole trace (mJ).
    [[nodiscard]] double total_energy() const;

    /// Mean power (mW).
    [[nodiscard]] double mean_power() const;

    [[nodiscard]] const std::vector<double>& samples() const { return power_mw_; }

    /// Scale all samples so total_energy() becomes the requested value.
    void rescale_total_energy(double target_mj);

    // Factories -------------------------------------------------------------
    static PowerTrace constant(double power_mw, double duration_s, double dt_s);
    /// Alternating on/off square wave starting "on".
    static PowerTrace square_wave(double power_mw, double period_s,
                                  double duty_cycle, double duration_s,
                                  double dt_s);
    /// Load from CSV with columns time_s,power_mw. dt comes from the first
    /// two rows; a non-monotonic or non-uniform time column throws
    /// std::invalid_argument (the representation is a uniform grid — an
    /// irregular logger export would replay on the wrong time base).
    static PowerTrace from_csv(const std::string& path);

    /// Write the trace as CSV (columns time_s,power_mw), the same format
    /// from_csv reads — round-trips exactly.
    void to_csv(const std::string& path) const;

private:
    double dt_s_;
    std::vector<double> power_mw_;
};

}  // namespace imx::energy

#endif  // IMX_ENERGY_POWER_TRACE_HPP
