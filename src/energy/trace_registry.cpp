// Thin wrapper over util::Registry<TraceSource>: the public free functions,
// their error messages, and the registered-name listing are byte-identical
// to the historical hand-rolled registry. The built-in source factories
// themselves live here.
#include "energy/trace_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "energy/ou.hpp"
#include "energy/rf.hpp"
#include "energy/solar.hpp"
#include "util/contracts.hpp"
#include "util/registry.hpp"

namespace imx::energy {

namespace {

struct TraceSource {
    TraceSourceFactory factory;
    std::string description;
    std::vector<std::string> param_names;
    bool uses_context_duration = true;
};

/// The paper's canonical daylight-windowed solar profile. The default
/// parameter values below MUST stay in lockstep with what
/// core::make_paper_setup() historically hard-coded: the "solar" source
/// with an empty parameter map is the canonical trace, bitwise
/// (tests/test_energy_sources.cpp pins this).
PowerTrace solar_source(const TraceSourceContext& ctx,
                        const TraceParams& params) {
    TraceParamReader reader("solar", params);
    SolarConfig solar;
    solar.days = 1.0;
    solar.dt_s = ctx.dt_s;
    solar.peak_power_mw = reader.positive("peak_power_mw", 0.08);
    solar.sunrise_hour = reader.number("sunrise_hour", 6.0);
    solar.sunset_hour = reader.number("sunset_hour", 18.0);
    solar.envelope_exponent = reader.positive("envelope_exponent", 2.0);
    solar.cloud_theta = reader.non_negative("cloud_theta", 0.02);
    solar.cloud_sigma = reader.non_negative("cloud_sigma", 0.06);
    solar.cloud_floor = reader.fraction("cloud_floor", 0.05);
    const std::string window = reader.text("window", "daylight");
    reader.done();

    if (solar.sunrise_hour < 0.0 || solar.sunset_hour > 24.0 ||
        solar.sunrise_hour >= solar.sunset_hour) {
        reader.fail("needs 0 <= sunrise_hour < sunset_hour <= 24");
    }
    if (window == "daylight") {
        // The paper evaluation schedules every event inside the harvesting
        // day, so the trace covers sunrise..sunset compressed into the
        // experiment duration.
        solar.window_start_hour = solar.sunrise_hour;
        solar.window_end_hour = solar.sunset_hour;
    } else if (window == "full-day") {
        solar.window_start_hour = 0.0;
        solar.window_end_hour = 24.0;
    } else {
        reader.fail("parameter 'window' expects daylight or full-day, got '" +
                    window + "'");
    }
    const double window_s =
        (solar.window_end_hour - solar.window_start_hour) * 3600.0;
    if (ctx.duration_s > window_s) {
        reader.fail("duration " + std::to_string(ctx.duration_s) +
                    " s exceeds the " + std::to_string(window_s) +
                    " s harvesting window (the profile compresses wall-clock "
                    "time, it never stretches it)");
    }
    solar.time_compression = window_s / ctx.duration_s;
    solar.seed = ctx.seed;
    return make_solar_trace(solar);
}

PowerTrace rf_bursty_source(const TraceSourceContext& ctx,
                            const TraceParams& params) {
    TraceParamReader reader("rf-bursty", params);
    RfBurstyConfig rf;
    rf.duration_s = ctx.duration_s;
    rf.dt_s = ctx.dt_s;
    rf.seed = ctx.seed;
    rf.burst_power_mw = reader.positive("burst_power_mw", 0.5);
    rf.idle_power_mw = reader.non_negative("idle_power_mw", 0.0);
    rf.mean_on_s = reader.positive("mean_on_s", 3.0);
    rf.mean_off_s = reader.positive("mean_off_s", 27.0);
    rf.power_jitter = reader.non_negative("power_jitter", 0.25);
    reader.done();
    return make_rf_bursty_trace(rf);
}

PowerTrace ou_wind_source(const TraceSourceContext& ctx,
                          const TraceParams& params) {
    TraceParamReader reader("ou-wind", params);
    OuDriftConfig ou;
    ou.duration_s = ctx.duration_s;
    ou.dt_s = ctx.dt_s;
    ou.seed = ctx.seed;
    ou.mean_power_mw = reader.positive("mean_power_mw", 0.03);
    ou.reversion_rate = reader.positive("reversion_rate", 0.005);
    ou.sigma = reader.non_negative("sigma", 0.004);
    ou.floor_mw = reader.non_negative("floor_mw", 0.0);
    reader.done();
    if (ou.floor_mw > ou.mean_power_mw) {
        reader.fail("floor_mw must not exceed mean_power_mw");
    }
    return make_ou_drift_trace(ou);
}

PowerTrace duty_cycle_source(const TraceSourceContext& ctx,
                             const TraceParams& params) {
    TraceParamReader reader("duty-cycle", params);
    const double power_mw = reader.positive("power_mw", 0.1);
    const double period_s = reader.positive("period_s", 60.0);
    const double duty = reader.fraction("duty", 0.5);
    reader.done();
    if (duty <= 0.0) {
        // duty = 0 would be an all-zero trace, which cannot be rescaled to
        // any harvest budget.
        reader.fail("duty must be > 0 (an all-off trace harvests nothing)");
    }
    return PowerTrace::square_wave(power_mw, period_s, duty, ctx.duration_s,
                                   ctx.dt_s);
}

PowerTrace constant_source(const TraceSourceContext& ctx,
                           const TraceParams& params) {
    TraceParamReader reader("constant", params);
    const double power_mw = reader.positive("power_mw", 0.02);
    reader.done();
    return PowerTrace::constant(power_mw, ctx.duration_s, ctx.dt_s);
}

PowerTrace csv_source(const TraceSourceContext& ctx,
                      const TraceParams& params) {
    (void)ctx;  // duration/dt/seed come from the file
    TraceParamReader reader("csv", params);
    const std::string path = reader.required_text("path");
    reader.done();
    try {
        return PowerTrace::from_csv(path);
    } catch (const std::invalid_argument&) {
        throw;
    } catch (const std::exception& e) {
        reader.fail("cannot load '" + path + "': " + e.what());
    }
}

/// The registry instance, seeded with built-ins on first use — no
/// static-init-order or dead-translation-unit hazards.
util::Registry<TraceSource>& registry() {
    static util::Registry<TraceSource> instance("trace source");
    static const bool seeded = [] {
        instance.add(
            "solar",
            {solar_source,
             "diurnal solar profile with OU cloud attenuation (paper setup)",
             {"peak_power_mw", "sunrise_hour", "sunset_hour",
              "envelope_exponent", "cloud_theta", "cloud_sigma",
              "cloud_floor", "window"}});
        instance.add(
            "rf-bursty",
            {rf_bursty_source,
             "Markov-modulated on/off RF / base-station bursts",
             {"burst_power_mw", "idle_power_mw", "mean_on_s", "mean_off_s",
              "power_jitter"}});
        instance.add(
            "ou-wind",
            {ou_wind_source,
             "wind/thermal-style mean-reverting (OU) drift around a mean",
             {"mean_power_mw", "reversion_rate", "sigma", "floor_mw"}});
        instance.add("duty-cycle",
                     {duty_cycle_source,
                      "deterministic square wave (duty-cycled charger)",
                      {"power_mw", "period_s", "duty"}});
        instance.add("constant", {constant_source,
                                  "flat income (no-variability control)",
                                  {"power_mw"}});
        instance.add("csv",
                     {csv_source,
                      "measured trace from a time_s,power_mw CSV file",
                      {"path"},
                      /*uses_context_duration=*/false});
        return true;
    }();
    (void)seeded;
    return instance;
}

}  // namespace

PowerTrace make_trace(const std::string& source,
                      const TraceSourceContext& context,
                      const TraceParams& params) {
    IMX_EXPECTS(context.duration_s > 0.0);
    IMX_EXPECTS(context.dt_s > 0.0);
    const TraceSourceFactory factory =
        registry().read(source, [](const TraceSource& entry) {
            return entry.factory;
        });
    return factory(context, params);
}

void register_trace_source(const std::string& name,
                           TraceSourceFactory factory,
                           std::string description,
                           std::vector<std::string> param_names,
                           bool uses_context_duration) {
    IMX_EXPECTS(factory != nullptr);
    registry().add(name, {std::move(factory), std::move(description),
                          std::move(param_names), uses_context_duration});
}

bool has_trace_source(const std::string& name) {
    return registry().contains(name);
}

std::vector<std::string> trace_source_names() { return registry().names(); }

std::string trace_source_description(const std::string& name) {
    return registry().read(
        name, [](const TraceSource& entry) { return entry.description; });
}

std::vector<std::string> trace_source_param_names(const std::string& name) {
    auto names = registry().read(
        name, [](const TraceSource& entry) { return entry.param_names; });
    std::sort(names.begin(), names.end());
    return names;
}

bool trace_source_uses_context_duration(const std::string& name) {
    return registry().read(name, [](const TraceSource& entry) {
        return entry.uses_context_duration;
    });
}

}  // namespace imx::energy
