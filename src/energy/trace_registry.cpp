#include "energy/trace_registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "energy/ou.hpp"
#include "energy/rf.hpp"
#include "energy/solar.hpp"
#include "util/contracts.hpp"

namespace imx::energy {

namespace {

struct TraceSource {
    TraceSourceFactory factory;
    std::string description;
    std::vector<std::string> param_names;
    bool uses_context_duration = true;
};

std::mutex& registry_mutex() {
    static std::mutex mutex;
    return mutex;
}

/// The paper's canonical daylight-windowed solar profile. The default
/// parameter values below MUST stay in lockstep with what
/// core::make_paper_setup() historically hard-coded: the "solar" source
/// with an empty parameter map is the canonical trace, bitwise
/// (tests/test_energy_sources.cpp pins this).
PowerTrace solar_source(const TraceSourceContext& ctx,
                        const TraceParams& params) {
    TraceParamReader reader("solar", params);
    SolarConfig solar;
    solar.days = 1.0;
    solar.dt_s = ctx.dt_s;
    solar.peak_power_mw = reader.positive("peak_power_mw", 0.08);
    solar.sunrise_hour = reader.number("sunrise_hour", 6.0);
    solar.sunset_hour = reader.number("sunset_hour", 18.0);
    solar.envelope_exponent = reader.positive("envelope_exponent", 2.0);
    solar.cloud_theta = reader.non_negative("cloud_theta", 0.02);
    solar.cloud_sigma = reader.non_negative("cloud_sigma", 0.06);
    solar.cloud_floor = reader.fraction("cloud_floor", 0.05);
    const std::string window = reader.text("window", "daylight");
    reader.done();

    if (solar.sunrise_hour < 0.0 || solar.sunset_hour > 24.0 ||
        solar.sunrise_hour >= solar.sunset_hour) {
        reader.fail("needs 0 <= sunrise_hour < sunset_hour <= 24");
    }
    if (window == "daylight") {
        // The paper evaluation schedules every event inside the harvesting
        // day, so the trace covers sunrise..sunset compressed into the
        // experiment duration.
        solar.window_start_hour = solar.sunrise_hour;
        solar.window_end_hour = solar.sunset_hour;
    } else if (window == "full-day") {
        solar.window_start_hour = 0.0;
        solar.window_end_hour = 24.0;
    } else {
        reader.fail("parameter 'window' expects daylight or full-day, got '" +
                    window + "'");
    }
    const double window_s =
        (solar.window_end_hour - solar.window_start_hour) * 3600.0;
    if (ctx.duration_s > window_s) {
        reader.fail("duration " + std::to_string(ctx.duration_s) +
                    " s exceeds the " + std::to_string(window_s) +
                    " s harvesting window (the profile compresses wall-clock "
                    "time, it never stretches it)");
    }
    solar.time_compression = window_s / ctx.duration_s;
    solar.seed = ctx.seed;
    return make_solar_trace(solar);
}

PowerTrace rf_bursty_source(const TraceSourceContext& ctx,
                            const TraceParams& params) {
    TraceParamReader reader("rf-bursty", params);
    RfBurstyConfig rf;
    rf.duration_s = ctx.duration_s;
    rf.dt_s = ctx.dt_s;
    rf.seed = ctx.seed;
    rf.burst_power_mw = reader.positive("burst_power_mw", 0.5);
    rf.idle_power_mw = reader.non_negative("idle_power_mw", 0.0);
    rf.mean_on_s = reader.positive("mean_on_s", 3.0);
    rf.mean_off_s = reader.positive("mean_off_s", 27.0);
    rf.power_jitter = reader.non_negative("power_jitter", 0.25);
    reader.done();
    return make_rf_bursty_trace(rf);
}

PowerTrace ou_wind_source(const TraceSourceContext& ctx,
                          const TraceParams& params) {
    TraceParamReader reader("ou-wind", params);
    OuDriftConfig ou;
    ou.duration_s = ctx.duration_s;
    ou.dt_s = ctx.dt_s;
    ou.seed = ctx.seed;
    ou.mean_power_mw = reader.positive("mean_power_mw", 0.03);
    ou.reversion_rate = reader.positive("reversion_rate", 0.005);
    ou.sigma = reader.non_negative("sigma", 0.004);
    ou.floor_mw = reader.non_negative("floor_mw", 0.0);
    reader.done();
    if (ou.floor_mw > ou.mean_power_mw) {
        reader.fail("floor_mw must not exceed mean_power_mw");
    }
    return make_ou_drift_trace(ou);
}

PowerTrace duty_cycle_source(const TraceSourceContext& ctx,
                             const TraceParams& params) {
    TraceParamReader reader("duty-cycle", params);
    const double power_mw = reader.positive("power_mw", 0.1);
    const double period_s = reader.positive("period_s", 60.0);
    const double duty = reader.fraction("duty", 0.5);
    reader.done();
    if (duty <= 0.0) {
        // duty = 0 would be an all-zero trace, which cannot be rescaled to
        // any harvest budget.
        reader.fail("duty must be > 0 (an all-off trace harvests nothing)");
    }
    return PowerTrace::square_wave(power_mw, period_s, duty, ctx.duration_s,
                                   ctx.dt_s);
}

PowerTrace constant_source(const TraceSourceContext& ctx,
                           const TraceParams& params) {
    TraceParamReader reader("constant", params);
    const double power_mw = reader.positive("power_mw", 0.02);
    reader.done();
    return PowerTrace::constant(power_mw, ctx.duration_s, ctx.dt_s);
}

PowerTrace csv_source(const TraceSourceContext& ctx,
                      const TraceParams& params) {
    (void)ctx;  // duration/dt/seed come from the file
    TraceParamReader reader("csv", params);
    const std::string path = reader.required_text("path");
    reader.done();
    try {
        return PowerTrace::from_csv(path);
    } catch (const std::invalid_argument&) {
        throw;
    } catch (const std::exception& e) {
        reader.fail("cannot load '" + path + "': " + e.what());
    }
}

/// The registry map. An ordered map so trace_source_names() is sorted
/// without a separate pass. Built-ins are seeded on first use — no
/// static-init-order or dead-translation-unit hazards.
std::map<std::string, TraceSource>& registry_locked() {
    static std::map<std::string, TraceSource> sources = [] {
        std::map<std::string, TraceSource> builtins;
        builtins["solar"] = {
            solar_source,
            "diurnal solar profile with OU cloud attenuation (paper setup)",
            {"peak_power_mw", "sunrise_hour", "sunset_hour",
             "envelope_exponent", "cloud_theta", "cloud_sigma", "cloud_floor",
             "window"}};
        builtins["rf-bursty"] = {
            rf_bursty_source,
            "Markov-modulated on/off RF / base-station bursts",
            {"burst_power_mw", "idle_power_mw", "mean_on_s", "mean_off_s",
             "power_jitter"}};
        builtins["ou-wind"] = {
            ou_wind_source,
            "wind/thermal-style mean-reverting (OU) drift around a mean",
            {"mean_power_mw", "reversion_rate", "sigma", "floor_mw"}};
        builtins["duty-cycle"] = {
            duty_cycle_source,
            "deterministic square wave (duty-cycled charger)",
            {"power_mw", "period_s", "duty"}};
        builtins["constant"] = {constant_source,
                                "flat income (no-variability control)",
                                {"power_mw"}};
        builtins["csv"] = {csv_source,
                           "measured trace from a time_s,power_mw CSV file",
                           {"path"},
                           /*uses_context_duration=*/false};
        return builtins;
    }();
    return sources;
}

[[noreturn]] void unknown_source(
    const std::string& name,
    const std::map<std::string, TraceSource>& sources) {
    std::string known;
    for (const auto& [key, unused] : sources) {
        (void)unused;
        if (!known.empty()) known += ", ";
        known += key;
    }
    throw std::invalid_argument("unknown trace source '" + name +
                                "' (registered: " + known + ")");
}

}  // namespace

TraceParamReader::TraceParamReader(std::string source,
                                   const TraceParams& params)
    : source_(std::move(source)), params_(params) {}

void TraceParamReader::fail(const std::string& message) const {
    throw std::invalid_argument("trace source '" + source_ + "': " + message);
}

double TraceParamReader::parsed_number(const std::string& key,
                                       double fallback) {
    accepted_.insert(key);
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
        fail("parameter '" + key + "' expects a number, got '" + it->second +
             "'");
    }
    return value;
}

double TraceParamReader::number(const std::string& key, double fallback) {
    return parsed_number(key, fallback);
}

double TraceParamReader::positive(const std::string& key, double fallback) {
    const double value = parsed_number(key, fallback);
    if (!(value > 0.0)) {
        fail("parameter '" + key + "' must be > 0");
    }
    return value;
}

double TraceParamReader::non_negative(const std::string& key,
                                      double fallback) {
    const double value = parsed_number(key, fallback);
    if (!(value >= 0.0)) {
        fail("parameter '" + key + "' must be >= 0");
    }
    return value;
}

double TraceParamReader::fraction(const std::string& key, double fallback) {
    const double value = parsed_number(key, fallback);
    if (!(value >= 0.0 && value <= 1.0)) {
        fail("parameter '" + key + "' must be in [0, 1]");
    }
    return value;
}

std::string TraceParamReader::text(const std::string& key,
                                   const std::string& fallback) {
    accepted_.insert(key);
    const auto it = params_.find(key);
    return it == params_.end() ? fallback : it->second;
}

std::string TraceParamReader::required_text(const std::string& key) {
    accepted_.insert(key);
    const auto it = params_.find(key);
    if (it == params_.end() || it->second.empty()) {
        fail("requires parameter '" + key + "'");
    }
    return it->second;
}

void TraceParamReader::done() const {
    for (const auto& [key, value] : params_) {
        (void)value;
        if (accepted_.count(key)) continue;
        std::string known;
        for (const auto& accepted : accepted_) {
            if (!known.empty()) known += ", ";
            known += accepted;
        }
        fail("unknown parameter '" + key + "' (accepts: " + known + ")");
    }
}

PowerTrace make_trace(const std::string& source,
                      const TraceSourceContext& context,
                      const TraceParams& params) {
    IMX_EXPECTS(context.duration_s > 0.0);
    IMX_EXPECTS(context.dt_s > 0.0);
    TraceSourceFactory factory;
    {
        std::lock_guard<std::mutex> lock(registry_mutex());
        const auto& sources = registry_locked();
        const auto it = sources.find(source);
        if (it == sources.end()) unknown_source(source, sources);
        factory = it->second.factory;
    }
    return factory(context, params);
}

void register_trace_source(const std::string& name,
                           TraceSourceFactory factory,
                           std::string description,
                           std::vector<std::string> param_names,
                           bool uses_context_duration) {
    IMX_EXPECTS(!name.empty());
    IMX_EXPECTS(factory != nullptr);
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry_locked()[name] = {std::move(factory), std::move(description),
                               std::move(param_names),
                               uses_context_duration};
}

bool has_trace_source(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    return registry_locked().count(name) > 0;
}

std::vector<std::string> trace_source_names() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    std::vector<std::string> names;
    for (const auto& [key, unused] : registry_locked()) {
        (void)unused;
        names.push_back(key);
    }
    return names;
}

std::string trace_source_description(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto& sources = registry_locked();
    const auto it = sources.find(name);
    if (it == sources.end()) unknown_source(name, sources);
    return it->second.description;
}

std::vector<std::string> trace_source_param_names(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto& sources = registry_locked();
    const auto it = sources.find(name);
    if (it == sources.end()) unknown_source(name, sources);
    auto names = it->second.param_names;
    std::sort(names.begin(), names.end());
    return names;
}

bool trace_source_uses_context_duration(const std::string& name) {
    std::lock_guard<std::mutex> lock(registry_mutex());
    const auto& sources = registry_locked();
    const auto it = sources.find(name);
    if (it == sources.end()) unknown_source(name, sources);
    return it->second.uses_context_duration;
}

}  // namespace imx::energy
