// Name-based harvesting-source registry: string -> trace factory, so
// benches, spec files, and tests can select harvesting environments without
// compile-time wiring — the energy-side sibling of sim/policies/registry and
// the exp experiment registry.
//
// Built-in sources (always registered; docs/energy-sources.md documents
// every parameter with defaults):
//  * "solar"      — the paper's RSR-style diurnal profile (energy/solar),
//                   daylight-windowed and time-compressed exactly like the
//                   canonical core::make_paper_setup() trace, so the default
//                   parameter set is bitwise identical to it.
//  * "rf-bursty"  — Markov-modulated on/off RF / base-station harvesting
//                   (energy/rf): exponential burst and gap dwells, per-burst
//                   amplitude jitter.
//  * "ou-wind"    — wind/thermal-style mean-reverting drift (energy/ou):
//                   an Ornstein-Uhlenbeck process clamped at a floor.
//  * "duty-cycle" — deterministic piecewise square wave (period + duty),
//                   the classic wireless-power-transfer duty-cycled charger.
//  * "constant"   — flat income, the no-variability control.
//  * "csv"        — measured trace from a time_s,power_mw CSV file
//                   (PowerTrace::from_csv).
//
// Every source takes a validated key=value parameter map: unknown keys,
// malformed numbers, and out-of-range values throw std::invalid_argument
// naming the source, the parameter, and (for unknown keys) everything the
// source accepts. Custom sources register at runtime through
// register_trace_source(); see the worked example in docs/energy-sources.md.
// The registry is mutex-guarded, so make_trace() is safe from sweep worker
// threads.
#ifndef IMX_ENERGY_TRACE_REGISTRY_HPP
#define IMX_ENERGY_TRACE_REGISTRY_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "energy/power_trace.hpp"
#include "util/param_reader.hpp"

namespace imx::energy {

/// Source parameters as parsed text, e.g. {{"burst_power_mw", "0.6"}}.
/// Values are validated by the source factory via TraceParamReader.
using TraceParams = std::map<std::string, std::string>;

/// What every source receives besides its own parameters: the requested
/// trace length and grid, and the deterministic seed (stochastic sources
/// only). File-backed sources may return a different duration (the file's).
struct TraceSourceContext {
    double duration_s = 13000.0;
    double dt_s = 1.0;
    std::uint64_t seed = 7;
};

/// \brief Factory signature: build the trace for one context + parameter
/// map. Must validate `params` (reject unknown keys / bad values) with
/// std::invalid_argument — TraceParamReader does both bookkeeping parts.
using TraceSourceFactory =
    std::function<PowerTrace(const TraceSourceContext&, const TraceParams&)>;

/// \brief Typed, validating view over a TraceParams map.
///
/// A thin subclass of util::ParamReader fixing the diagnostic prefix to
/// "trace source '<name>': " — the getters (number/positive/non_negative/
/// fraction/text/required_text), done()'s unknown-key rejection, and fail()
/// are all inherited, byte-identical to the historical per-registry copy.
///
///     TraceParamReader reader("rf-bursty", params);
///     cfg.burst_power_mw = reader.positive("burst_power_mw", 0.5);
///     cfg.mean_on_s = reader.positive("mean_on_s", 3.0);
///     reader.done();
class TraceParamReader : public util::ParamReader {
public:
    TraceParamReader(std::string source, const TraceParams& params)
        : util::ParamReader("trace source", std::move(source), params) {}
};

/// \brief Build a harvesting trace from a registered source.
/// \param source a built-in or register_trace_source()'d name.
/// \param context trace length/grid/seed.
/// \param params source parameters; unknown keys or bad values throw.
/// \throws std::invalid_argument for unknown sources (the message lists
///   every registered name) and for parameter-map violations.
PowerTrace make_trace(const std::string& source,
                      const TraceSourceContext& context = {},
                      const TraceParams& params = {});

/// \brief Register (or replace) a named trace source.
/// \param name the registry key; must be non-empty.
/// \param factory invoked by make_trace().
/// \param description one-liner for listings (imx_sweep --list).
/// \param param_names the parameter keys the source accepts; consumers
///   (e.g. the spec parser) use it to reject unknown keys early with
///   file:line diagnostics. Empty = accept any key at name-check time and
///   rely on the factory's own validation.
/// \param uses_context_duration whether the source honours
///   TraceSourceContext::duration_s (every generator) or determines its own
///   length (file-backed sources like "csv"). Quick-mode shrinking only
///   rescales the harvest budget of sources that honour the context
///   duration — scaling a fixed-length replay would starve it instead of
///   shortening it.
void register_trace_source(const std::string& name,
                           TraceSourceFactory factory,
                           std::string description = "",
                           std::vector<std::string> param_names = {},
                           bool uses_context_duration = true);

/// \brief Whether `name` is currently registered.
[[nodiscard]] bool has_trace_source(const std::string& name);

/// \brief Every registered name, sorted (built-ins plus custom ones).
[[nodiscard]] std::vector<std::string> trace_source_names();

/// \brief One-line description of a registered source.
[[nodiscard]] std::string trace_source_description(const std::string& name);

/// \brief The parameter keys a source declared at registration (sorted);
/// empty for sources registered without a key list.
[[nodiscard]] std::vector<std::string> trace_source_param_names(
    const std::string& name);

/// \brief Whether the source honours TraceSourceContext::duration_s (see
/// register_trace_source); false for file-backed sources like "csv".
[[nodiscard]] bool trace_source_uses_context_duration(
    const std::string& name);

}  // namespace imx::energy

#endif  // IMX_ENERGY_TRACE_REGISTRY_HPP
