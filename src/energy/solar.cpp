#include "energy/solar.hpp"

#include <cmath>
#include <vector>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace imx::energy {

PowerTrace make_solar_trace(const SolarConfig& config) {
    IMX_EXPECTS(config.days > 0.0);
    IMX_EXPECTS(config.dt_s > 0.0);
    IMX_EXPECTS(config.peak_power_mw > 0.0);
    IMX_EXPECTS(config.sunrise_hour < config.sunset_hour);
    IMX_EXPECTS(config.time_compression >= 1.0);
    IMX_EXPECTS(config.cloud_floor >= 0.0 && config.cloud_floor <= 1.0);

    IMX_EXPECTS(config.window_start_hour >= 0.0 &&
                config.window_end_hour <= 24.0 &&
                config.window_start_hour < config.window_end_hour);
    const double window_s =
        (config.window_end_hour - config.window_start_hour) * 3600.0;
    const double duration_s = config.days * window_s / config.time_compression;
    const auto n = static_cast<std::size_t>(std::ceil(duration_s / config.dt_s));
    IMX_EXPECTS(n > 0);

    util::Rng rng(config.seed);
    std::vector<double> samples(n, 0.0);

    double cloud = 1.0;  // attenuation state, reverts toward 1 (clear)
    const double sunrise_s = config.sunrise_hour * 3600.0;
    const double sunset_s = config.sunset_hour * 3600.0;
    const double daylight_s = sunset_s - sunrise_s;

    for (std::size_t i = 0; i < n; ++i) {
        // Wall-clock position within the (possibly compressed) window.
        const double t_wall =
            config.window_start_hour * 3600.0 +
            std::fmod(static_cast<double>(i) * config.dt_s * config.time_compression,
                      window_s);

        // OU step (Euler-Maruyama) toward clear sky.
        const double dt_eff = config.dt_s * config.time_compression;
        cloud += config.cloud_theta * (1.0 - cloud) * dt_eff +
                 config.cloud_sigma * std::sqrt(dt_eff) * rng.normal();
        cloud = util::clamp(cloud, config.cloud_floor, 1.0);

        if (t_wall < sunrise_s || t_wall >= sunset_s) continue;  // night

        const double phase = (t_wall - sunrise_s) / daylight_s;  // 0..1
        const double envelope =
            std::pow(std::sin(phase * 3.14159265358979323846),
                     config.envelope_exponent);
        samples[i] = config.peak_power_mw * envelope * cloud;
    }
    return PowerTrace(config.dt_s, std::move(samples));
}

}  // namespace imx::energy
