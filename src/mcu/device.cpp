#include "mcu/device.hpp"

namespace imx::mcu {

McuModel::McuModel(const McuConfig& config) : config_(config) {
    IMX_EXPECTS(config.energy_per_mmac_mj > 0.0);
    IMX_EXPECTS(config.mmacs_per_second > 0.0);
    IMX_EXPECTS(config.flash_budget_bytes > 0.0);
    IMX_EXPECTS(config.checkpoint_energy_mj >= 0.0);
    IMX_EXPECTS(config.checkpoint_time_s >= 0.0);
    IMX_EXPECTS(config.macs_per_task > 0);
    IMX_EXPECTS(config.wakeup_energy_mj >= 0.0);
}

McuModel McuModel::msp432() { return McuModel(McuConfig{}); }

double McuModel::compute_energy(std::int64_t macs) const {
    IMX_EXPECTS(macs >= 0);
    return static_cast<double>(macs) / 1e6 * config_.energy_per_mmac_mj;
}

double McuModel::compute_time(std::int64_t macs) const {
    IMX_EXPECTS(macs >= 0);
    return static_cast<double>(macs) / 1e6 / config_.mmacs_per_second;
}

std::int64_t McuModel::checkpoint_count(std::int64_t macs) const {
    IMX_EXPECTS(macs >= 0);
    return (macs + config_.macs_per_task - 1) / config_.macs_per_task;
}

double McuModel::checkpointed_energy(std::int64_t macs) const {
    return compute_energy(macs) +
           static_cast<double>(checkpoint_count(macs)) * config_.checkpoint_energy_mj;
}

double McuModel::checkpointed_time(std::int64_t macs) const {
    return compute_time(macs) +
           static_cast<double>(checkpoint_count(macs)) * config_.checkpoint_time_s;
}

bool McuModel::fits_flash(double model_bytes) const {
    return model_bytes <= config_.flash_budget_bytes;
}

}  // namespace imx::mcu
