// Analytical MCU model (TI MSP432-class target of the paper).
//
// The paper reduces the device to two constants — 1.5 mJ per million FLOPs
// and a 1-second latency time unit with FLOPs as the latency proxy — plus a
// weight-storage budget (tens of KB). This model makes those knobs explicit
// and adds the checkpoint cost a SONIC-style intermittent runtime pays to
// preserve progress across power failures (nonvolatile FRAM writes).
#ifndef IMX_MCU_DEVICE_HPP
#define IMX_MCU_DEVICE_HPP

#include <cstdint>

#include "util/contracts.hpp"

namespace imx::mcu {

struct McuConfig {
    double energy_per_mmac_mj = 1.5;  ///< paper: 1.5 mJ per million FLOPs
    double mmacs_per_second = 0.1;    ///< active-compute throughput (MMAC/s)
    double flash_budget_bytes = 16.0 * 1024.0;  ///< weight storage target
    double sram_bytes = 64.0 * 1024.0;
    // SONIC-style checkpointing of loop indices + partial accumulators into
    // FRAM, paid once per committed task/tile.
    double checkpoint_energy_mj = 0.02;
    double checkpoint_time_s = 0.005;
    /// Task/tile granularity for intermittent execution: computation between
    /// two consecutive checkpoints (in MACs).
    std::int64_t macs_per_task = 50000;
    /// Fixed per-power-cycle boot/restore overhead.
    double wakeup_energy_mj = 0.01;
    double wakeup_time_s = 0.01;
};

class McuModel {
public:
    explicit McuModel(const McuConfig& config);

    /// Defaults tuned to the paper's constants (see DESIGN.md calibration).
    static McuModel msp432();

    [[nodiscard]] const McuConfig& config() const { return config_; }

    /// Pure compute energy for a MAC count (no checkpointing), mJ.
    [[nodiscard]] double compute_energy(std::int64_t macs) const;

    /// Pure compute time for a MAC count, seconds.
    [[nodiscard]] double compute_time(std::int64_t macs) const;

    /// Number of checkpoints a SONIC-style run of `macs` commits.
    [[nodiscard]] std::int64_t checkpoint_count(std::int64_t macs) const;

    /// Energy including per-task checkpoints (continuous-power case), mJ.
    [[nodiscard]] double checkpointed_energy(std::int64_t macs) const;

    /// Time including per-task checkpoints (continuous-power case), s.
    [[nodiscard]] double checkpointed_time(std::int64_t macs) const;

    /// Whether a model of the given byte size fits the flash budget.
    [[nodiscard]] bool fits_flash(double model_bytes) const;

private:
    McuConfig config_;
};

}  // namespace imx::mcu

#endif  // IMX_MCU_DEVICE_HPP
