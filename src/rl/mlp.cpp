#include "rl/mlp.hpp"

#include "util/contracts.hpp"

namespace imx::rl {

Mlp::Mlp(const std::vector<int>& dims, OutputActivation out_act,
         util::Rng& rng) {
    IMX_EXPECTS(dims.size() >= 2);
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
        layers_.push_back(std::make_unique<nn::Linear>(
            dims[i], dims[i + 1], "fc" + std::to_string(i), rng));
        if (i + 2 < dims.size()) {
            layers_.push_back(std::make_unique<nn::Relu>());
        }
    }
    switch (out_act) {
        case OutputActivation::kNone: break;
        case OutputActivation::kTanh:
            layers_.push_back(std::make_unique<nn::Tanh>());
            break;
        case OutputActivation::kSigmoid:
            layers_.push_back(std::make_unique<nn::Sigmoid>());
            break;
    }
}

nn::Tensor Mlp::forward(const nn::Tensor& input) {
    nn::Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x);
    return x;
}

nn::Tensor Mlp::backward(const nn::Tensor& grad_output) {
    nn::Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

std::vector<nn::Tensor*> Mlp::parameters() {
    std::vector<nn::Tensor*> out;
    for (auto& layer : layers_) {
        for (nn::Tensor* p : layer->parameters()) out.push_back(p);
    }
    return out;
}

std::vector<nn::Tensor*> Mlp::gradients() {
    std::vector<nn::Tensor*> out;
    for (auto& layer : layers_) {
        for (nn::Tensor* g : layer->gradients()) out.push_back(g);
    }
    return out;
}

void Mlp::zero_grad() {
    for (nn::Tensor* g : gradients()) g->fill(0.0F);
}

void Mlp::copy_weights_from(Mlp& source) {
    auto dst = parameters();
    auto src = source.parameters();
    IMX_EXPECTS(dst.size() == src.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
        IMX_EXPECTS(dst[i]->numel() == src[i]->numel());
        *dst[i] = *src[i];
    }
}

void Mlp::soft_update_from(Mlp& source, float tau) {
    IMX_EXPECTS(tau >= 0.0F && tau <= 1.0F);
    auto dst = parameters();
    auto src = source.parameters();
    IMX_EXPECTS(dst.size() == src.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
        nn::Tensor& d = *dst[i];
        const nn::Tensor& s = *src[i];
        for (std::int64_t j = 0; j < d.numel(); ++j) {
            d[j] = tau * s[j] + (1.0F - tau) * d[j];
        }
    }
}

}  // namespace imx::rl
