// Small fully-connected network used by the DDPG actor and critic.
#ifndef IMX_RL_MLP_HPP
#define IMX_RL_MLP_HPP

#include <vector>

#include "nn/basic_layers.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace imx::rl {

enum class OutputActivation { kNone, kTanh, kSigmoid };

class Mlp {
public:
    /// dims = {in, hidden..., out}; hidden layers use ReLU.
    Mlp(const std::vector<int>& dims, OutputActivation out_act, util::Rng& rng);

    nn::Tensor forward(const nn::Tensor& input);
    /// Returns gradient w.r.t. the input (the DDPG actor update needs
    /// dQ/daction from the critic).
    nn::Tensor backward(const nn::Tensor& grad_output);

    std::vector<nn::Tensor*> parameters();
    std::vector<nn::Tensor*> gradients();
    void zero_grad();

    /// Hard copy of another MLP's weights (target-network initialization).
    void copy_weights_from(Mlp& source);

    /// Polyak averaging: theta_target <- tau * theta + (1 - tau) * theta_target.
    void soft_update_from(Mlp& source, float tau);

private:
    std::vector<nn::LayerPtr> layers_;
};

}  // namespace imx::rl

#endif  // IMX_RL_MLP_HPP
