#include "rl/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace imx::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
    IMX_EXPECTS(capacity > 0);
    buffer_.reserve(capacity);
}

void ReplayBuffer::push(Transition t) {
    if (buffer_.size() < capacity_) {
        buffer_.push_back(std::move(t));
    } else {
        buffer_[next_] = std::move(t);
    }
    next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t count) {
    IMX_EXPECTS(!buffer_.empty());
    std::vector<const Transition*> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const auto idx = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(buffer_.size()) - 1));
        out.push_back(&buffer_[idx]);
    }
    return out;
}

OuNoise::OuNoise(std::size_t dims, double theta, double sigma,
                 std::uint64_t seed)
    : theta_(theta), sigma_(sigma), state_(dims, 0.0), rng_(seed) {
    IMX_EXPECTS(dims > 0);
    IMX_EXPECTS(theta >= 0.0 && sigma >= 0.0);
}

std::vector<double> OuNoise::sample() {
    for (double& x : state_) {
        x += theta_ * (0.0 - x) + sigma_ * rng_.normal();
    }
    return state_;
}

void OuNoise::reset() { std::fill(state_.begin(), state_.end(), 0.0); }

void OuNoise::scale_sigma(double factor) {
    IMX_EXPECTS(factor > 0.0);
    sigma_ *= factor;
}

namespace {

std::vector<int> mlp_dims(int in, const std::vector<int>& hidden, int out) {
    std::vector<int> dims;
    dims.push_back(in);
    for (const int h : hidden) dims.push_back(h);
    dims.push_back(out);
    return dims;
}

}  // namespace

DdpgAgent::DdpgAgent(const DdpgConfig& config)
    : config_(config),
      rng_(config.seed),
      actor_(mlp_dims(config.state_dim, config.actor_hidden, config.action_dim),
             OutputActivation::kSigmoid, rng_),
      actor_target_(
          mlp_dims(config.state_dim, config.actor_hidden, config.action_dim),
          OutputActivation::kSigmoid, rng_),
      critic_(mlp_dims(config.state_dim + config.action_dim,
                       config.critic_hidden, 1),
              OutputActivation::kNone, rng_),
      critic_target_(mlp_dims(config.state_dim + config.action_dim,
                              config.critic_hidden, 1),
                     OutputActivation::kNone, rng_),
      actor_opt_(config.actor_lr),
      critic_opt_(config.critic_lr),
      replay_(config.replay_capacity, config.seed ^ 0x5555),
      noise_(static_cast<std::size_t>(config.action_dim), config.ou_theta,
             config.ou_sigma, config.seed ^ 0xaaaa) {
    IMX_EXPECTS(config.state_dim > 0 && config.action_dim > 0);
    IMX_EXPECTS(config.batch_size > 0);
    IMX_EXPECTS(config.gamma >= 0.0F && config.gamma < 1.0F);
    actor_target_.copy_weights_from(actor_);
    critic_target_.copy_weights_from(critic_);
}

nn::Tensor DdpgAgent::to_tensor(const std::vector<float>& v) const {
    return nn::Tensor({static_cast<int>(v.size())}, v);
}

nn::Tensor DdpgAgent::critic_input(const std::vector<float>& state,
                                   const std::vector<float>& action) const {
    std::vector<float> joined;
    joined.reserve(state.size() + action.size());
    joined.insert(joined.end(), state.begin(), state.end());
    joined.insert(joined.end(), action.begin(), action.end());
    // Size must be read before the move: argument evaluation order is
    // unspecified, so passing joined.size() and std::move(joined) in one
    // call would be a use-after-move hazard.
    const int size = static_cast<int>(joined.size());
    return nn::Tensor({size}, std::move(joined));
}

std::vector<double> DdpgAgent::act(const std::vector<float>& state) {
    IMX_EXPECTS(static_cast<int>(state.size()) == config_.state_dim);
    const nn::Tensor out = actor_.forward(to_tensor(state));
    std::vector<double> action(static_cast<std::size_t>(out.numel()));
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        action[static_cast<std::size_t>(i)] = static_cast<double>(out[i]);
    }
    return action;
}

std::vector<double> DdpgAgent::act_noisy(const std::vector<float>& state) {
    std::vector<double> action = act(state);
    const std::vector<double> noise = noise_.sample();
    for (std::size_t i = 0; i < action.size(); ++i) {
        action[i] = util::clamp(action[i] + noise[i], 0.0, 1.0);
    }
    return action;
}

void DdpgAgent::remember(Transition t) { replay_.push(std::move(t)); }

void DdpgAgent::train_step() {
    if (replay_.size() < config_.batch_size) return;
    const auto batch = replay_.sample(config_.batch_size);
    const float inv_batch = 1.0F / static_cast<float>(batch.size());

    // Critic regression toward y = r (+ gamma * Q_target(s', mu_target(s'))).
    critic_.zero_grad();
    for (const Transition* t : batch) {
        float y = t->reward;
        if (config_.gamma > 0.0F && !t->terminal) {
            const nn::Tensor next_action =
                actor_target_.forward(to_tensor(t->next_state));
            std::vector<float> na(next_action.storage());
            const nn::Tensor q_next =
                critic_target_.forward(critic_input(t->next_state, na));
            y += config_.gamma * q_next[0];
        }
        const nn::Tensor q = critic_.forward(critic_input(t->state, t->action));
        nn::Tensor grad({1});
        grad[0] = 2.0F * (q[0] - y);  // d/dq of (q - y)^2
        critic_.backward(grad);
    }
    critic_opt_.step(critic_.parameters(), critic_.gradients(), inv_batch);

    // Actor ascent on Q(s, mu(s)) (Eq. 15 sampled policy gradient).
    actor_.zero_grad();
    for (const Transition* t : batch) {
        const nn::Tensor action = actor_.forward(to_tensor(t->state));
        std::vector<float> av(action.storage());
        critic_.zero_grad();  // scratch use of critic for dQ/da only
        critic_.forward(critic_input(t->state, av));
        nn::Tensor grad_q({1});
        grad_q[0] = -1.0F;  // maximize Q -> descend on -Q
        const nn::Tensor grad_input = critic_.backward(grad_q);
        nn::Tensor grad_action({config_.action_dim});
        for (int i = 0; i < config_.action_dim; ++i) {
            grad_action[i] = grad_input[config_.state_dim + i];
        }
        actor_.backward(grad_action);
    }
    critic_.zero_grad();  // discard the dQ/da scratch gradients
    actor_opt_.step(actor_.parameters(), actor_.gradients(), inv_batch);

    actor_target_.soft_update_from(actor_, config_.tau);
    critic_target_.soft_update_from(critic_, config_.tau);
}

void DdpgAgent::end_episode() {
    noise_.reset();
    noise_.scale_sigma(config_.ou_sigma_decay);
}

}  // namespace imx::rl
