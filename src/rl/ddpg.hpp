// Deep Deterministic Policy Gradient (Lillicrap et al.), the search engine of
// the paper's nonuniform compression phase (Sec. III-B, Eq. 13-15).
//
// The compression episodes are short (one step per network layer) and the
// reward arrives at episode end; like AMC/HAQ, transitions are stored with
// the episode's final reward so each (state, action) is judged by the
// quality of the full policy it contributed to.
#ifndef IMX_RL_DDPG_HPP
#define IMX_RL_DDPG_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/train.hpp"
#include "rl/mlp.hpp"
#include "util/rng.hpp"

namespace imx::rl {

/// One transition.
struct Transition {
    std::vector<float> state;
    std::vector<float> action;
    float reward = 0.0F;
    std::vector<float> next_state;
    bool terminal = false;
};

/// Fixed-capacity ring replay buffer with uniform sampling.
class ReplayBuffer {
public:
    explicit ReplayBuffer(std::size_t capacity, std::uint64_t seed = 23);
    void push(Transition t);
    [[nodiscard]] std::size_t size() const { return buffer_.size(); }
    [[nodiscard]] bool empty() const { return buffer_.empty(); }
    /// Sample with replacement.
    std::vector<const Transition*> sample(std::size_t count);

private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::vector<Transition> buffer_;
    util::Rng rng_;
};

/// Ornstein-Uhlenbeck exploration noise.
class OuNoise {
public:
    OuNoise(std::size_t dims, double theta, double sigma, std::uint64_t seed);
    std::vector<double> sample();
    void reset();
    void scale_sigma(double factor);
    [[nodiscard]] double sigma() const { return sigma_; }

private:
    double theta_;
    double sigma_;
    std::vector<double> state_;
    util::Rng rng_;
};

struct DdpgConfig {
    int state_dim = 0;
    int action_dim = 0;
    std::vector<int> actor_hidden = {64, 64};
    std::vector<int> critic_hidden = {64, 64};
    float actor_lr = 1e-3F;
    float critic_lr = 1e-3F;
    float tau = 0.01F;       ///< target soft-update rate
    float gamma = 0.0F;      ///< 0: episode-reward broadcast (AMC-style)
    std::size_t replay_capacity = 4096;
    std::size_t batch_size = 64;
    double ou_theta = 0.15;
    double ou_sigma = 0.35;
    double ou_sigma_decay = 0.995;  ///< applied once per episode
    std::uint64_t seed = 31;
};

/// DDPG agent with deterministic actor in [0,1]^action_dim.
class DdpgAgent {
public:
    explicit DdpgAgent(const DdpgConfig& config);

    /// Deterministic policy output for a state.
    std::vector<double> act(const std::vector<float>& state);

    /// Policy output plus OU exploration noise, clamped to [0,1].
    std::vector<double> act_noisy(const std::vector<float>& state);

    void remember(Transition t);

    /// One gradient step on critic (Eq. 14) and actor (Eq. 15) plus target
    /// soft updates. No-op until the buffer holds a full batch.
    void train_step();

    /// Episode boundary: reset and decay exploration noise.
    void end_episode();

    [[nodiscard]] const DdpgConfig& config() const { return config_; }

private:
    nn::Tensor to_tensor(const std::vector<float>& v) const;
    nn::Tensor critic_input(const std::vector<float>& state,
                            const std::vector<float>& action) const;

    DdpgConfig config_;
    util::Rng rng_;
    Mlp actor_;
    Mlp actor_target_;
    Mlp critic_;
    Mlp critic_target_;
    nn::Adam actor_opt_;
    nn::Adam critic_opt_;
    ReplayBuffer replay_;
    OuNoise noise_;
};

}  // namespace imx::rl

#endif  // IMX_RL_DDPG_HPP
