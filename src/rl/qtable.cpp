#include "rl/qtable.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/math.hpp"

namespace imx::rl {

QTable::QTable(std::size_t num_states, std::size_t num_actions,
               const QLearningConfig& config, std::uint64_t seed)
    : num_states_(num_states),
      num_actions_(num_actions),
      config_(config),
      epsilon_(config.epsilon),
      table_(num_states * num_actions, config.initial_q),
      rng_(seed) {
    IMX_EXPECTS(num_states > 0 && num_actions > 0);
    IMX_EXPECTS(config.alpha > 0.0 && config.alpha <= 1.0);
    IMX_EXPECTS(config.gamma >= 0.0 && config.gamma <= 1.0);
    IMX_EXPECTS(config.epsilon >= 0.0 && config.epsilon <= 1.0);
}

std::size_t QTable::select(std::size_t state) {
    std::size_t action = 0;
    if (rng_.bernoulli(epsilon_)) {
        action = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(num_actions_) - 1));
    } else {
        action = greedy(state);
    }
    epsilon_ = std::max(config_.epsilon_min, epsilon_ * config_.epsilon_decay);
    return action;
}

std::size_t QTable::greedy(std::size_t state) const {
    std::size_t best = 0;
    double best_q = q(state, 0);
    for (std::size_t a = 1; a < num_actions_; ++a) {
        const double value = q(state, a);
        if (value > best_q) {
            best_q = value;
            best = a;
        }
    }
    return best;
}

void QTable::update(std::size_t state, std::size_t action, double reward,
                    std::size_t next_state) {
    const double target = reward + config_.gamma * max_q(next_state);
    double& entry = table_[index(state, action)];
    entry += config_.alpha * (target - entry);
}

void QTable::update_terminal(std::size_t state, std::size_t action,
                             double reward) {
    double& entry = table_[index(state, action)];
    entry += config_.alpha * (reward - entry);
}

double QTable::q(std::size_t state, std::size_t action) const {
    return table_[index(state, action)];
}

double QTable::max_q(std::size_t state) const {
    double best = q(state, 0);
    for (std::size_t a = 1; a < num_actions_; ++a) {
        best = std::max(best, q(state, a));
    }
    return best;
}

void QTable::save(const std::string& path) const {
    util::CsvWriter writer(path);
    writer.write_header({"state", "action", "q"});
    for (std::size_t s = 0; s < num_states_; ++s) {
        for (std::size_t a = 0; a < num_actions_; ++a) {
            writer.write_row(std::vector<double>{
                static_cast<double>(s), static_cast<double>(a), q(s, a)});
        }
    }
}

void QTable::load(const std::string& path) {
    const util::CsvTable table = util::read_csv(path);
    IMX_EXPECTS(table.rows.size() == num_states_ * num_actions_);
    const auto states = table.numeric_column("state");
    const auto actions = table.numeric_column("action");
    const auto values = table.numeric_column("q");
    for (std::size_t i = 0; i < values.size(); ++i) {
        const auto s = static_cast<std::size_t>(states[i]);
        const auto a = static_cast<std::size_t>(actions[i]);
        table_[index(s, a)] = values[i];
    }
}

Discretizer::Discretizer(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins) {
    IMX_EXPECTS(lo < hi);
    IMX_EXPECTS(bins > 0);
}

std::size_t Discretizer::bin(double value) const {
    const double clamped = util::clamp(value, lo_, hi_);
    const double frac = (clamped - lo_) / (hi_ - lo_);
    const auto b = static_cast<std::size_t>(frac * static_cast<double>(bins_));
    return std::min(b, bins_ - 1);
}

StateGrid::StateGrid(std::vector<std::size_t> dims)
    : dims_(std::move(dims)), states_(1) {
    IMX_EXPECTS(!dims_.empty());
    for (const std::size_t d : dims_) {
        IMX_EXPECTS(d > 0);
        states_ *= d;
    }
}

std::size_t StateGrid::flatten(const std::vector<std::size_t>& bins) const {
    IMX_EXPECTS(bins.size() == dims_.size());
    std::size_t index = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        IMX_EXPECTS(bins[i] < dims_[i]);
        index = index * dims_[i] + bins[i];
    }
    return index;
}

std::vector<std::size_t> StateGrid::unflatten(std::size_t state) const {
    IMX_EXPECTS(state < states_);
    std::vector<std::size_t> bins(dims_.size(), 0);
    for (std::size_t i = dims_.size(); i-- > 0;) {
        bins[i] = state % dims_[i];
        state /= dims_[i];
    }
    return bins;
}

}  // namespace imx::rl
