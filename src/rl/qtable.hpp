// Tabular Q-learning (Watkins & Dayan), paper Eq. 16 — the lightweight
// runtime learner: "a lookup table with state-action pairs as the entries,
// and the learning process is updating the LUT".
#ifndef IMX_RL_QTABLE_HPP
#define IMX_RL_QTABLE_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace imx::rl {

struct QLearningConfig {
    double alpha = 0.2;     ///< learning rate
    double gamma = 0.7;     ///< discount
    double epsilon = 0.15;  ///< exploration probability
    double epsilon_decay = 0.999;
    double epsilon_min = 0.01;
    double initial_q = 0.0;
};

class QTable {
public:
    QTable(std::size_t num_states, std::size_t num_actions,
           const QLearningConfig& config, std::uint64_t seed = 17);

    /// Epsilon-greedy action; decays epsilon on every call.
    std::size_t select(std::size_t state);

    /// Pure greedy action (evaluation mode; ties resolve to lowest index).
    [[nodiscard]] std::size_t greedy(std::size_t state) const;

    /// Q(s,a) += alpha * (r + gamma * max_a' Q(s',a') - Q(s,a)).
    void update(std::size_t state, std::size_t action, double reward,
                std::size_t next_state);

    /// Terminal update (no bootstrap): Q += alpha * (r - Q).
    void update_terminal(std::size_t state, std::size_t action, double reward);

    [[nodiscard]] double q(std::size_t state, std::size_t action) const;
    [[nodiscard]] double max_q(std::size_t state) const;
    [[nodiscard]] std::size_t num_states() const { return num_states_; }
    [[nodiscard]] std::size_t num_actions() const { return num_actions_; }
    [[nodiscard]] double epsilon() const { return epsilon_; }
    void set_epsilon(double epsilon) { epsilon_ = epsilon; }

    /// Table memory footprint in bytes — the paper argues this overhead is
    /// negligible for an MCU; tests assert it stays KB-scale.
    [[nodiscard]] std::size_t footprint_bytes() const {
        return table_.size() * sizeof(double);
    }

    /// Persist/restore the learned LUT (deployment: train on-device or in
    /// simulation, flash the table). CSV format: state,action,q.
    void save(const std::string& path) const;
    void load(const std::string& path);

private:
    [[nodiscard]] std::size_t index(std::size_t state, std::size_t action) const {
        IMX_EXPECTS(state < num_states_ && action < num_actions_);
        return state * num_actions_ + action;
    }

    std::size_t num_states_;
    std::size_t num_actions_;
    QLearningConfig config_;
    double epsilon_;
    std::vector<double> table_;
    util::Rng rng_;
};

/// Uniform discretizer for a continuous signal in [lo, hi] into n bins.
/// Values clamp into the range first, so +infinity (e.g. the deadline slack
/// of a run with no deadline) always lands in the top bin.
class Discretizer {
public:
    Discretizer(double lo, double hi, std::size_t bins);
    [[nodiscard]] std::size_t bin(double value) const;
    [[nodiscard]] std::size_t bins() const { return bins_; }

private:
    double lo_;
    double hi_;
    std::size_t bins_;
};

/// Row-major flattening of a multi-dimensional discretized state onto the
/// flat state index a QTable expects — e.g. the exit runtime's
/// (energy bin, rate bin, slack bin) triple. Trailing dimensions of size 1
/// are free: they do not change the indices of the remaining dimensions, so
/// a state space can grow a new axis without perturbing existing layouts.
class StateGrid {
public:
    /// \param dims bins per dimension, outermost first; each must be > 0.
    explicit StateGrid(std::vector<std::size_t> dims);

    /// Total number of flat states (product of the dimensions).
    [[nodiscard]] std::size_t states() const { return states_; }
    [[nodiscard]] const std::vector<std::size_t>& dims() const { return dims_; }

    /// Flat index of a bin tuple (size must equal dims().size(); every bin
    /// must be inside its dimension).
    [[nodiscard]] std::size_t flatten(
        const std::vector<std::size_t>& bins) const;

    /// Inverse of flatten(): the bin tuple of a flat state index.
    [[nodiscard]] std::vector<std::size_t> unflatten(std::size_t state) const;

private:
    std::vector<std::size_t> dims_;
    std::size_t states_;
};

}  // namespace imx::rl

#endif  // IMX_RL_QTABLE_HPP
