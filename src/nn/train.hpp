// Loss functions, optimizers, and a joint multi-exit trainer.
#ifndef IMX_NN_TRAIN_HPP
#define IMX_NN_TRAIN_HPP

#include <cstdint>
#include <vector>

#include "nn/exit_graph.hpp"
#include "nn/tensor.hpp"

namespace imx::nn {

/// Softmax cross-entropy on raw logits for a single sample.
/// Returns the loss; writes d(loss)/d(logits) into grad (p - onehot).
double cross_entropy(const Tensor& logits, int label, Tensor& grad);

/// Softmax probabilities of a logits tensor (double precision).
std::vector<double> softmax_probs(const Tensor& logits);

/// Optimizer interface over flat parameter/gradient lists.
class Optimizer {
public:
    virtual ~Optimizer() = default;
    Optimizer() = default;
    Optimizer(const Optimizer&) = delete;
    Optimizer& operator=(const Optimizer&) = delete;

    /// Apply one update using the accumulated gradients (already averaged or
    /// summed by the caller; `scale` multiplies gradients, e.g. 1/batch).
    virtual void step(const std::vector<Tensor*>& params,
                      const std::vector<Tensor*>& grads, float scale) = 0;
};

/// SGD with momentum and decoupled weight decay.
class Sgd final : public Optimizer {
public:
    explicit Sgd(float lr, float momentum = 0.9F, float weight_decay = 0.0F);
    void step(const std::vector<Tensor*>& params,
              const std::vector<Tensor*>& grads, float scale) override;
    void set_lr(float lr) { lr_ = lr; }
    [[nodiscard]] float lr() const { return lr_; }

private:
    float lr_;
    float momentum_;
    float weight_decay_;
    std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) — used by the DDPG actor/critic updates.
class Adam final : public Optimizer {
public:
    explicit Adam(float lr, float beta1 = 0.9F, float beta2 = 0.999F,
                  float eps = 1e-8F);
    void step(const std::vector<Tensor*>& params,
              const std::vector<Tensor*>& grads, float scale) override;
    void set_lr(float lr) { lr_ = lr; }

private:
    float lr_;
    float beta1_;
    float beta2_;
    float eps_;
    std::int64_t t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

/// Configuration for joint multi-exit training (all exits trained together
/// with a weighted sum of cross-entropy losses, as in BranchyNet).
struct TrainConfig {
    int epochs = 2;
    int batch_size = 16;
    float lr = 0.05F;
    float momentum = 0.9F;
    float weight_decay = 1e-4F;
    std::vector<double> exit_loss_weights;  // defaults to all-ones
};

/// One epoch result.
struct EpochStats {
    double mean_loss = 0.0;
    std::vector<double> exit_accuracy;  // on the training batch stream
};

/// Train graph on (images, labels); returns per-epoch stats.
std::vector<EpochStats> train_multi_exit(ExitGraph& graph,
                                         const std::vector<Tensor>& images,
                                         const std::vector<int>& labels,
                                         const TrainConfig& config);

/// Per-exit top-1 accuracy on an evaluation set.
std::vector<double> evaluate_exits(ExitGraph& graph,
                                   const std::vector<Tensor>& images,
                                   const std::vector<int>& labels);

}  // namespace imx::nn

#endif  // IMX_NN_TRAIN_HPP
