// Layer interface: single-sample forward/backward with cached activations.
//
// Minibatch training accumulates gradients across per-sample backward calls;
// this matches the MCU deployment model (inference is always batch-1) and
// keeps every kernel readable.
#ifndef IMX_NN_LAYER_HPP
#define IMX_NN_LAYER_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace imx::nn {

/// Abstract differentiable layer.
class Layer {
public:
    virtual ~Layer() = default;
    Layer() = default;
    Layer(const Layer&) = delete;
    Layer& operator=(const Layer&) = delete;

    /// Compute the output for one sample; caches what backward() needs.
    virtual Tensor forward(const Tensor& input) = 0;

    /// Propagate the loss gradient; accumulates parameter gradients and
    /// returns the gradient w.r.t. the forward input. Must be called after
    /// forward() on the same sample.
    virtual Tensor backward(const Tensor& grad_output) = 0;

    /// Output shape for a given input shape (no computation).
    [[nodiscard]] virtual Shape output_shape(const Shape& input_shape) const = 0;

    /// Multiply-accumulate count for one sample of the given input shape.
    [[nodiscard]] virtual std::int64_t macs(const Shape& input_shape) const = 0;

    /// Trainable parameter count (weights + biases).
    [[nodiscard]] virtual std::int64_t param_count() const { return 0; }

    /// Trainable parameters / matching gradient buffers (empty by default).
    virtual std::vector<Tensor*> parameters() { return {}; }
    virtual std::vector<Tensor*> gradients() { return {}; }

    /// Reset accumulated gradients to zero.
    void zero_grad() {
        for (Tensor* g : gradients()) g->fill(0.0F);
    }

    [[nodiscard]] virtual std::string name() const = 0;

    /// Deep copy including weights (used to snapshot target networks and to
    /// fork compressed variants from a trained float model).
    [[nodiscard]] virtual std::unique_ptr<Layer> clone() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace imx::nn

#endif  // IMX_NN_LAYER_HPP
