// Scalar reference backend. These loops are transplanted verbatim from the
// pre-kernel Conv2d/Linear/Relu implementations — same iteration order,
// same accumulation order, same zero-skip short-circuits — so the scalar
// path is bitwise identical to the historical layers and every golden
// pinned against them stays valid under IMX_KERNEL=scalar.
#include "nn/kernels/kernels.hpp"

#include <cstddef>

namespace imx::nn::kernels::detail {

namespace {

inline std::size_t w4(const Conv2dGeom& g, int oc, int ic, int ky, int kx) {
    return ((static_cast<std::size_t>(oc) *
                 static_cast<std::size_t>(g.in_channels) +
             static_cast<std::size_t>(ic)) *
                static_cast<std::size_t>(g.kernel) +
            static_cast<std::size_t>(ky)) *
               static_cast<std::size_t>(g.kernel) +
           static_cast<std::size_t>(kx);
}

inline std::size_t chw(int h, int w, int c, int y, int x) {
    return (static_cast<std::size_t>(c) * static_cast<std::size_t>(h) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(w) +
           static_cast<std::size_t>(x);
}

}  // namespace

void scalar_conv2d_forward(const Conv2dGeom& g, const float* in,
                           const float* w, const float* b, float* out) {
    const int h = g.in_h;
    const int width = g.in_w;
    const int oh = g.out_h();
    const int ow = g.out_w();
    std::size_t out_idx = 0;
    for (int oc = 0; oc < g.out_channels; ++oc) {
        const float bias = b[oc];
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float acc = bias;
                for (int ic = 0; ic < g.in_channels; ++ic) {
                    for (int ky = 0; ky < g.kernel; ++ky) {
                        const int iy = oy + ky - g.padding;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < g.kernel; ++kx) {
                            const int ix = ox + kx - g.padding;
                            if (ix < 0 || ix >= width) continue;
                            acc += w[w4(g, oc, ic, ky, kx)] *
                                   in[chw(h, width, ic, iy, ix)];
                        }
                    }
                }
                out[out_idx++] = acc;
            }
        }
    }
}

void scalar_conv2d_backward(const Conv2dGeom& g, const float* in,
                            const float* w, const float* gout, float* gin,
                            float* gw, float* gb) {
    const int h = g.in_h;
    const int width = g.in_w;
    const int oh = g.out_h();
    const int ow = g.out_w();
    const std::size_t in_numel = static_cast<std::size_t>(g.in_channels) *
                                 static_cast<std::size_t>(h) *
                                 static_cast<std::size_t>(width);
    for (std::size_t i = 0; i < in_numel; ++i) gin[i] = 0.0F;
    for (int oc = 0; oc < g.out_channels; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const float go = gout[chw(oh, ow, oc, oy, ox)];
                if (go == 0.0F) continue;
                gb[oc] += go;
                for (int ic = 0; ic < g.in_channels; ++ic) {
                    for (int ky = 0; ky < g.kernel; ++ky) {
                        const int iy = oy + ky - g.padding;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < g.kernel; ++kx) {
                            const int ix = ox + kx - g.padding;
                            if (ix < 0 || ix >= width) continue;
                            gw[w4(g, oc, ic, ky, kx)] +=
                                go * in[chw(h, width, ic, iy, ix)];
                            gin[chw(h, width, ic, iy, ix)] +=
                                go * w[w4(g, oc, ic, ky, kx)];
                        }
                    }
                }
            }
        }
    }
}

void scalar_gemm(int out_f, int in_f, const float* w, const float* x,
                 const float* b, float* y) {
    for (int r = 0; r < out_f; ++r) {
        float acc = b[r];
        const float* wrow =
            w + static_cast<std::size_t>(r) * static_cast<std::size_t>(in_f);
        for (int c = 0; c < in_f; ++c) acc += wrow[c] * x[c];
        y[r] = acc;
    }
}

void scalar_gemm_backward(int out_f, int in_f, const float* w, const float* x,
                          const float* gy, float* gx, float* gw, float* gb) {
    for (int c = 0; c < in_f; ++c) gx[c] = 0.0F;
    for (int r = 0; r < out_f; ++r) {
        const float go = gy[r];
        gb[r] += go;
        if (go == 0.0F) continue;
        const std::size_t off =
            static_cast<std::size_t>(r) * static_cast<std::size_t>(in_f);
        const float* wrow = w + off;
        float* gwrow = gw + off;
        for (int c = 0; c < in_f; ++c) {
            gwrow[c] += go * x[c];
            gx[c] += go * wrow[c];
        }
    }
}

void scalar_bias_act(std::int64_t n, const float* x, float bias, Act act,
                     float* y) {
    if (act == Act::kRelu) {
        for (std::int64_t i = 0; i < n; ++i) {
            const float t = x[i] + bias;
            y[i] = t > 0.0F ? t : 0.0F;
        }
    } else {
        for (std::int64_t i = 0; i < n; ++i) y[i] = x[i] + bias;
    }
}

}  // namespace imx::nn::kernels::detail
