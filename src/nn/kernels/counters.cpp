#include "nn/kernels/counters.hpp"

#include <atomic>
#include <sstream>

namespace imx::nn::kernels {

namespace {

struct AtomicCounters {
    std::atomic<std::uint64_t> conv2d_forward_calls{0};
    std::atomic<std::uint64_t> conv2d_forward_macs{0};
    std::atomic<std::uint64_t> conv2d_backward_calls{0};
    std::atomic<std::uint64_t> conv2d_backward_macs{0};
    std::atomic<std::uint64_t> gemm_calls{0};
    std::atomic<std::uint64_t> gemm_macs{0};
    std::atomic<std::uint64_t> bias_act_calls{0};
    std::atomic<std::uint64_t> bias_act_elems{0};
};

AtomicCounters& counters() {
    static AtomicCounters instance;
    return instance;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

KernelCounters counters_snapshot() {
    AtomicCounters& c = counters();
    KernelCounters out;
    out.conv2d_forward_calls = c.conv2d_forward_calls.load(kRelaxed);
    out.conv2d_forward_macs = c.conv2d_forward_macs.load(kRelaxed);
    out.conv2d_backward_calls = c.conv2d_backward_calls.load(kRelaxed);
    out.conv2d_backward_macs = c.conv2d_backward_macs.load(kRelaxed);
    out.gemm_calls = c.gemm_calls.load(kRelaxed);
    out.gemm_macs = c.gemm_macs.load(kRelaxed);
    out.bias_act_calls = c.bias_act_calls.load(kRelaxed);
    out.bias_act_elems = c.bias_act_elems.load(kRelaxed);
    return out;
}

void counters_reset() {
    AtomicCounters& c = counters();
    c.conv2d_forward_calls.store(0, kRelaxed);
    c.conv2d_forward_macs.store(0, kRelaxed);
    c.conv2d_backward_calls.store(0, kRelaxed);
    c.conv2d_backward_macs.store(0, kRelaxed);
    c.gemm_calls.store(0, kRelaxed);
    c.gemm_macs.store(0, kRelaxed);
    c.bias_act_calls.store(0, kRelaxed);
    c.bias_act_elems.store(0, kRelaxed);
}

std::string counters_report(const KernelCounters& c) {
    std::ostringstream out;
    out << "kernel counters:\n"
        << "  conv2d_forward:  " << c.conv2d_forward_calls << " call(s), "
        << c.conv2d_forward_macs << " MACs\n"
        << "  conv2d_backward: " << c.conv2d_backward_calls << " call(s), "
        << c.conv2d_backward_macs << " MACs\n"
        << "  gemm:            " << c.gemm_calls << " call(s), " << c.gemm_macs
        << " MACs\n"
        << "  bias_act:        " << c.bias_act_calls << " call(s), "
        << c.bias_act_elems << " element(s)\n";
    return out.str();
}

namespace detail {

void count_conv2d_forward(std::uint64_t macs) {
    counters().conv2d_forward_calls.fetch_add(1, kRelaxed);
    counters().conv2d_forward_macs.fetch_add(macs, kRelaxed);
}

void count_conv2d_backward(std::uint64_t macs) {
    counters().conv2d_backward_calls.fetch_add(1, kRelaxed);
    counters().conv2d_backward_macs.fetch_add(macs, kRelaxed);
}

void count_gemm(std::uint64_t macs) {
    counters().gemm_calls.fetch_add(1, kRelaxed);
    counters().gemm_macs.fetch_add(macs, kRelaxed);
}

void count_bias_act(std::uint64_t elems) {
    counters().bias_act_calls.fetch_add(1, kRelaxed);
    counters().bias_act_elems.fetch_add(elems, kRelaxed);
}

}  // namespace detail

}  // namespace imx::nn::kernels
