// Runtime-dispatched NN kernels: conv2d forward/backward, GEMV-style GEMM
// (the single-sample matrix-vector product Linear executes), and a fused
// bias+activation map. Call sites (Conv2d, Linear, Relu, and through them
// the exit-graph evaluation path) go through these entry points; the
// backend — scalar reference or AVX2 — is chosen per dispatch.hpp and every
// call bumps the counters (counters.hpp).
//
// Numeric contract (docs/kernels.md):
//   * scalar is the reference: bitwise identical to the historical
//     per-layer loops in every case, which keeps all sweep goldens pinned
//     under IMX_KERNEL=scalar.
//   * conv2d_forward avx2 is bitwise identical to scalar too (lanes carry
//     independent outputs in the same per-element accumulation order, and
//     the TU is built without FMA contraction).
//   * gemm and the backward kernels re-associate reductions across 8
//     lanes; agreement with scalar is bounded in ULPs measured at the
//     magnitude of sum(|terms|) (kGemmUlpBound / kBackwardUlpBound),
//     enforced by tests/test_kernels_diff.cpp.
#ifndef IMX_NN_KERNELS_KERNELS_HPP
#define IMX_NN_KERNELS_KERNELS_HPP

#include <cstdint>

#include "nn/kernels/counters.hpp"
#include "nn/kernels/dispatch.hpp"

namespace imx::nn::kernels {

/// Documented scalar-vs-avx2 ULP tolerances (see docs/kernels.md for the
/// derivation). Re-associating a K-term reduction into 8 partial sums
/// perturbs the result by a small multiple of eps at the magnitude of
/// sum(|terms|) — NOT of the result, which cancellation can leave
/// arbitrarily small. The bounds below are therefore ULPs *at the
/// reduction magnitude*: |scalar - avx2| must not exceed
/// bound * 2^-23 * max(|scalar|, |avx2|, sum(|terms|)). They carry an
/// order of magnitude of headroom for the shapes this project runs
/// (K <= 16384).
inline constexpr int kGemmUlpBound = 64;
inline constexpr int kBackwardUlpBound = 256;

/// Geometry of a stride-1, square-kernel, zero-padded 2-D convolution
/// (the only convolution this project uses). Activations are CHW, weights
/// [out, in, k, k] — Tensor's layouts.
struct Conv2dGeom {
    int in_channels = 0;
    int out_channels = 0;
    int in_h = 0;
    int in_w = 0;
    int kernel = 0;
    int padding = 0;

    [[nodiscard]] int out_h() const { return in_h + 2 * padding - kernel + 1; }
    [[nodiscard]] int out_w() const { return in_w + 2 * padding - kernel + 1; }
    [[nodiscard]] std::int64_t macs() const {
        return static_cast<std::int64_t>(out_channels) * out_h() * out_w() *
               in_channels * kernel * kernel;
    }
};

/// Activation applied by bias_act.
enum class Act {
    kIdentity,
    kRelu,
};

/// output[oc,oy,ox] = bias[oc] + sum_{ic,ky,kx} weight[oc,ic,ky,kx] *
/// input[ic, oy+ky-p, ox+kx-p] (out-of-range taps read as zero).
/// `output` must hold out_channels*out_h*out_w floats; it is overwritten.
void conv2d_forward(const Conv2dGeom& geom, const float* input,
                    const float* weight, const float* bias, float* output);

/// Accumulates (+=) into grad_weight/grad_bias (the optimizer contract) and
/// overwrites grad_input. `input` is the forward activation.
void conv2d_backward(const Conv2dGeom& geom, const float* input,
                     const float* weight, const float* grad_output,
                     float* grad_input, float* grad_weight, float* grad_bias);

/// y[r] = bias[r] + sum_c weight[r*in+c] * x[c] — the single-sample GEMM
/// (M=out, K=in, N=1) Linear::forward executes. `y` is overwritten.
void gemm(int out_features, int in_features, const float* weight,
          const float* x, const float* bias, float* y);

/// Backward of gemm: grad_weight[r,c] += g[r]*x[c], grad_bias[r] += g[r],
/// grad_x[c] = sum_r g[r]*weight[r,c]. `grad_x` is overwritten.
void gemm_backward(int out_features, int in_features, const float* weight,
                   const float* x, const float* grad_y, float* grad_x,
                   float* grad_weight, float* grad_bias);

/// y[i] = act(x[i] + bias); pass bias = 0 for a plain activation map.
/// In-place (y == x) is allowed.
void bias_act(std::int64_t n, const float* x, float bias, Act act, float* y);

namespace detail {
// Backend implementations (kernels_scalar.cpp / kernels_avx2.cpp). The
// avx2_* symbols always link; when the TU is built without AVX2 codegen
// they hard-fail via contracts (dispatch never routes there — see
// avx2_kernels_compiled()).
void scalar_conv2d_forward(const Conv2dGeom& g, const float* in,
                           const float* w, const float* b, float* out);
void scalar_conv2d_backward(const Conv2dGeom& g, const float* in,
                            const float* w, const float* gout, float* gin,
                            float* gw, float* gb);
void scalar_gemm(int out_f, int in_f, const float* w, const float* x,
                 const float* b, float* y);
void scalar_gemm_backward(int out_f, int in_f, const float* w, const float* x,
                          const float* gy, float* gx, float* gw, float* gb);
void scalar_bias_act(std::int64_t n, const float* x, float bias, Act act,
                     float* y);

void avx2_conv2d_forward(const Conv2dGeom& g, const float* in, const float* w,
                         const float* b, float* out);
void avx2_conv2d_backward(const Conv2dGeom& g, const float* in, const float* w,
                          const float* gout, float* gin, float* gw, float* gb);
void avx2_gemm(int out_f, int in_f, const float* w, const float* x,
               const float* b, float* y);
void avx2_gemm_backward(int out_f, int in_f, const float* w, const float* x,
                        const float* gy, float* gx, float* gw, float* gb);
void avx2_bias_act(std::int64_t n, const float* x, float bias, Act act,
                   float* y);
}  // namespace detail

}  // namespace imx::nn::kernels

#endif  // IMX_NN_KERNELS_KERNELS_HPP
