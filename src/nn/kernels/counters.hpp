// Per-kernel invocation and MAC counters (Stateful-CNN `counters.*` style):
// every dispatched kernel call bumps an atomic tally, so benches and tests
// can prove which backend ran and how much arithmetic it performed without
// instrumenting call sites. Counters are process-global and thread-safe
// (relaxed atomics — totals are exact, ordering between kernels is not
// observable); the cost is one atomic add per kernel *call*, never per
// element, so the hot loops stay unaffected.
#ifndef IMX_NN_KERNELS_COUNTERS_HPP
#define IMX_NN_KERNELS_COUNTERS_HPP

#include <cstdint>
#include <string>

namespace imx::nn::kernels {

/// Snapshot of the per-kernel tallies since process start (or the last
/// counters_reset()). `*_calls` counts dispatched invocations, `*_macs`
/// the multiply-accumulates those calls performed (elements for bias_act,
/// which does no MACs).
struct KernelCounters {
    std::uint64_t conv2d_forward_calls = 0;
    std::uint64_t conv2d_forward_macs = 0;
    std::uint64_t conv2d_backward_calls = 0;
    std::uint64_t conv2d_backward_macs = 0;
    std::uint64_t gemm_calls = 0;
    std::uint64_t gemm_macs = 0;
    std::uint64_t bias_act_calls = 0;
    std::uint64_t bias_act_elems = 0;

    [[nodiscard]] std::uint64_t total_calls() const {
        return conv2d_forward_calls + conv2d_backward_calls + gemm_calls +
               bias_act_calls;
    }
};

/// Current totals.
[[nodiscard]] KernelCounters counters_snapshot();

/// Zero every tally (benches call this between variants).
void counters_reset();

/// Human-readable multi-line report of a snapshot, for bench output.
[[nodiscard]] std::string counters_report(const KernelCounters& c);

namespace detail {
/// Internal: bump one kernel's tallies (called by the dispatch layer).
void count_conv2d_forward(std::uint64_t macs);
void count_conv2d_backward(std::uint64_t macs);
void count_gemm(std::uint64_t macs);
void count_bias_act(std::uint64_t elems);
}  // namespace detail

}  // namespace imx::nn::kernels

#endif  // IMX_NN_KERNELS_COUNTERS_HPP
