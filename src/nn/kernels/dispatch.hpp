// Runtime kernel-backend selection.
//
// The dispatch contract (docs/kernels.md):
//   * Default: AVX2 when both the binary carries AVX2 code and the CPU
//     reports the feature, otherwise the scalar reference.
//   * `IMX_KERNEL=scalar` forces the reference path (bitwise identical to
//     the historical per-layer loops, so every golden stays pinned).
//   * `IMX_KERNEL=avx2` forces the vector path; a hard error if the binary
//     or the CPU cannot honor it — a silent fallback would let perf claims
//     lie about which kernels actually ran.
//   * Any other value of IMX_KERNEL is a hard error (std::runtime_error),
//     never a guess.
// The environment is read once, on first dispatch; force_backend() lets
// tests and benches flip paths in-process without re-execing.
#ifndef IMX_NN_KERNELS_DISPATCH_HPP
#define IMX_NN_KERNELS_DISPATCH_HPP

#include <optional>
#include <string>

namespace imx::nn::kernels {

enum class Backend {
    kScalar,  ///< portable reference; bitwise-pinned to the legacy loops
    kAvx2,    ///< 8-lane AVX2 (x86-64), selected by CPU detection
};

/// "scalar" / "avx2" — the same spellings IMX_KERNEL accepts.
[[nodiscard]] const char* to_string(Backend backend);

/// Does the running CPU report AVX2 support?
[[nodiscard]] bool cpu_supports_avx2();

/// Was the AVX2 translation unit built with AVX2 code generation? (False on
/// non-x86 targets or toolchains without -mavx2; dispatch then never
/// selects kAvx2 on its own and forcing it is a hard error.)
[[nodiscard]] bool avx2_kernels_compiled();

/// Parse a backend spelling ("scalar" | "avx2").
/// \throws std::runtime_error for anything else.
[[nodiscard]] Backend parse_backend(const std::string& name);

/// Resolve the backend the way first dispatch does: honor IMX_KERNEL when
/// set (hard error on unknown values or an unhonorable avx2), otherwise
/// auto-detect. Pure — does not touch the cached selection.
[[nodiscard]] Backend resolve_backend_from_env();

/// The IMX_KERNEL override, if one is set and parseable; nullopt when the
/// variable is absent. \throws std::runtime_error on unknown values.
[[nodiscard]] std::optional<Backend> env_forced_backend();

/// The backend every dispatched kernel call uses. Resolved from the
/// environment once, then cached; force_backend() overrides the cache.
[[nodiscard]] Backend active_backend();

/// Test/bench hook: pin the active backend in-process, bypassing the
/// environment. \throws std::runtime_error when avx2 cannot be honored.
void force_backend(Backend backend);

/// Drop any force_backend() pin and the cached env resolution; the next
/// active_backend() call re-reads IMX_KERNEL.
void clear_backend_override();

}  // namespace imx::nn::kernels

#endif  // IMX_NN_KERNELS_DISPATCH_HPP
