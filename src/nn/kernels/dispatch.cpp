#include "nn/kernels/dispatch.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace imx::nn::kernels {

namespace {

std::mutex g_mutex;
std::optional<Backend> g_cached;  // resolved env / forced selection

}  // namespace

const char* to_string(Backend backend) {
    return backend == Backend::kScalar ? "scalar" : "avx2";
}

bool cpu_supports_avx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

Backend parse_backend(const std::string& name) {
    if (name == "scalar") return Backend::kScalar;
    if (name == "avx2") return Backend::kAvx2;
    throw std::runtime_error(
        "IMX_KERNEL: unknown kernel backend \"" + name +
        "\" (valid: scalar, avx2)");
}

namespace {

/// Shared hard-error gate for every way of selecting avx2.
void require_avx2_honorable() {
    if (!avx2_kernels_compiled()) {
        throw std::runtime_error(
            "IMX_KERNEL=avx2: this binary was built without AVX2 kernels");
    }
    if (!cpu_supports_avx2()) {
        throw std::runtime_error(
            "IMX_KERNEL=avx2: this CPU does not support AVX2");
    }
}

}  // namespace

std::optional<Backend> env_forced_backend() {
    const char* env = std::getenv("IMX_KERNEL");
    if (env == nullptr || *env == '\0') return std::nullopt;
    return parse_backend(env);
}

Backend resolve_backend_from_env() {
    const std::optional<Backend> forced = env_forced_backend();
    if (forced.has_value()) {
        if (*forced == Backend::kAvx2) require_avx2_honorable();
        return *forced;
    }
    return avx2_kernels_compiled() && cpu_supports_avx2() ? Backend::kAvx2
                                                          : Backend::kScalar;
}

Backend active_backend() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    if (!g_cached.has_value()) g_cached = resolve_backend_from_env();
    return *g_cached;
}

void force_backend(Backend backend) {
    if (backend == Backend::kAvx2) require_avx2_honorable();
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_cached = backend;
}

void clear_backend_override() {
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_cached.reset();
}

}  // namespace imx::nn::kernels
