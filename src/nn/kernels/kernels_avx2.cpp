// AVX2 backend. This TU is the only one built with -mavx2 (and without
// FMA contraction — see CMakeLists.txt): everything else in the library
// stays baseline-x86-64 so the binary runs on any CPU, and dispatch only
// routes here after __builtin_cpu_supports("avx2") says it may.
//
// Vectorization strategy (docs/kernels.md):
//   * conv2d_forward: the input is copied once into an explicitly
//     zero-padded scratch, removing every bounds check; lanes then carry 8
//     consecutive output columns, each an independent accumulator in the
//     same per-element tap order as scalar — bitwise identical results.
//   * gemm: one 8-lane partial-sum accumulator per output row with a
//     horizontal reduction — re-associates the sum, agreement bounded by
//     kGemmUlpBound.
//   * backward kernels: grad_input/grad_weight updates are lane-
//     independent but the tap order differs from scalar, and grad_bias /
//     grad_weight reductions fold 8 lanes — bounded by kBackwardUlpBound.
#include "nn/kernels/kernels.hpp"

#include <vector>

#include "util/contracts.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace imx::nn::kernels {

bool avx2_kernels_compiled() {
#if defined(__AVX2__)
    return true;
#else
    return false;
#endif
}

}  // namespace imx::nn::kernels

namespace imx::nn::kernels::detail {

#if defined(__AVX2__)

namespace {

/// Per-thread scratch, reused across calls so the hot path never allocates
/// after warm-up. Distinct buffers: backward needs the padded input and the
/// padded grad-input alive at once.
std::vector<float>& scratch(int which) {
    thread_local std::vector<float> buffers[2];
    return buffers[which];
}

/// Copy a CHW tensor into a zero-padded [c, h+2p, w+2p] scratch layout.
void pad_input(const Conv2dGeom& g, const float* in, std::vector<float>& out) {
    const std::size_t ph = static_cast<std::size_t>(g.in_h + 2 * g.padding);
    const std::size_t pw = static_cast<std::size_t>(g.in_w + 2 * g.padding);
    out.assign(static_cast<std::size_t>(g.in_channels) * ph * pw, 0.0F);
    for (int c = 0; c < g.in_channels; ++c) {
        for (int y = 0; y < g.in_h; ++y) {
            const float* src =
                in + (static_cast<std::size_t>(c) * g.in_h + y) * g.in_w;
            float* dst = out.data() +
                         (static_cast<std::size_t>(c) * ph +
                          static_cast<std::size_t>(y + g.padding)) *
                             pw +
                         static_cast<std::size_t>(g.padding);
            for (int x = 0; x < g.in_w; ++x) dst[x] = src[x];
        }
    }
}

inline float hsum(__m256 v) {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
    return _mm_cvtss_f32(s);
}

}  // namespace

void avx2_conv2d_forward(const Conv2dGeom& g, const float* in, const float* w,
                         const float* b, float* out) {
    std::vector<float>& padded = scratch(0);
    pad_input(g, in, padded);
    const std::size_t ph = static_cast<std::size_t>(g.in_h + 2 * g.padding);
    const std::size_t pw = static_cast<std::size_t>(g.in_w + 2 * g.padding);
    const int oh = g.out_h();
    const int ow = g.out_w();
    const int taps = g.in_channels * g.kernel * g.kernel;

    for (int oc = 0; oc < g.out_channels; ++oc) {
        const float bias = b[oc];
        const float* wbase = w + static_cast<std::size_t>(oc) *
                                     static_cast<std::size_t>(taps);
        for (int oy = 0; oy < oh; ++oy) {
            float* out_row =
                out + (static_cast<std::size_t>(oc) * oh + oy) *
                          static_cast<std::size_t>(ow);
            int ox = 0;
            for (; ox + 8 <= ow; ox += 8) {
                __m256 acc = _mm256_set1_ps(bias);
                const float* wv = wbase;
                for (int ic = 0; ic < g.in_channels; ++ic) {
                    const float* chan = padded.data() +
                                        static_cast<std::size_t>(ic) * ph * pw;
                    for (int ky = 0; ky < g.kernel; ++ky) {
                        const float* src =
                            chan + static_cast<std::size_t>(oy + ky) * pw + ox;
                        for (int kx = 0; kx < g.kernel; ++kx) {
                            const __m256 wvec = _mm256_set1_ps(*wv++);
                            acc = _mm256_add_ps(
                                acc, _mm256_mul_ps(
                                         wvec, _mm256_loadu_ps(src + kx)));
                        }
                    }
                }
                _mm256_storeu_ps(out_row + ox, acc);
            }
            // Scalar tail over the padded scratch: same tap order as the
            // vector body (and as the scalar backend), so it stays bitwise.
            for (; ox < ow; ++ox) {
                float acc = bias;
                const float* wv = wbase;
                for (int ic = 0; ic < g.in_channels; ++ic) {
                    const float* chan = padded.data() +
                                        static_cast<std::size_t>(ic) * ph * pw;
                    for (int ky = 0; ky < g.kernel; ++ky) {
                        const float* src =
                            chan + static_cast<std::size_t>(oy + ky) * pw + ox;
                        for (int kx = 0; kx < g.kernel; ++kx) {
                            acc += *wv++ * src[kx];
                        }
                    }
                }
                out_row[ox] = acc;
            }
        }
    }
}

void avx2_conv2d_backward(const Conv2dGeom& g, const float* in, const float* w,
                          const float* gout, float* gin, float* gw,
                          float* gb) {
    std::vector<float>& padded_in = scratch(0);
    pad_input(g, in, padded_in);
    const std::size_t ph = static_cast<std::size_t>(g.in_h + 2 * g.padding);
    const std::size_t pw = static_cast<std::size_t>(g.in_w + 2 * g.padding);
    const int oh = g.out_h();
    const int ow = g.out_w();

    // Accumulate grad-input into a zero-padded scratch; border writes land
    // in the padding and are dropped by the copy-back, which is exactly the
    // out-of-range-tap rule of the scalar backend.
    std::vector<float>& padded_gin = scratch(1);
    padded_gin.assign(static_cast<std::size_t>(g.in_channels) * ph * pw, 0.0F);

    for (int oc = 0; oc < g.out_channels; ++oc) {
        const float* go_base = gout + static_cast<std::size_t>(oc) *
                                          static_cast<std::size_t>(oh) *
                                          static_cast<std::size_t>(ow);
        // grad_bias: 8-lane reduction over the full output map.
        {
            __m256 acc = _mm256_setzero_ps();
            const std::int64_t n =
                static_cast<std::int64_t>(oh) * static_cast<std::int64_t>(ow);
            std::int64_t i = 0;
            for (; i + 8 <= n; i += 8) {
                acc = _mm256_add_ps(acc, _mm256_loadu_ps(go_base + i));
            }
            float sum = hsum(acc);
            for (; i < n; ++i) sum += go_base[i];
            gb[oc] += sum;
        }
        for (int ic = 0; ic < g.in_channels; ++ic) {
            float* gin_chan =
                padded_gin.data() + static_cast<std::size_t>(ic) * ph * pw;
            const float* in_chan =
                padded_in.data() + static_cast<std::size_t>(ic) * ph * pw;
            for (int ky = 0; ky < g.kernel; ++ky) {
                for (int kx = 0; kx < g.kernel; ++kx) {
                    const std::size_t widx =
                        ((static_cast<std::size_t>(oc) * g.in_channels + ic) *
                             g.kernel +
                         static_cast<std::size_t>(ky)) *
                            g.kernel +
                        static_cast<std::size_t>(kx);
                    const __m256 wvec = _mm256_set1_ps(w[widx]);
                    __m256 gw_acc = _mm256_setzero_ps();
                    float gw_tail = 0.0F;
                    for (int oy = 0; oy < oh; ++oy) {
                        const float* go_row =
                            go_base + static_cast<std::size_t>(oy) * ow;
                        const std::size_t row_off =
                            static_cast<std::size_t>(oy + ky) * pw +
                            static_cast<std::size_t>(kx);
                        const float* in_row = in_chan + row_off;
                        float* gin_row = gin_chan + row_off;
                        int ox = 0;
                        for (; ox + 8 <= ow; ox += 8) {
                            const __m256 go_vec = _mm256_loadu_ps(go_row + ox);
                            gw_acc = _mm256_add_ps(
                                gw_acc,
                                _mm256_mul_ps(go_vec,
                                              _mm256_loadu_ps(in_row + ox)));
                            _mm256_storeu_ps(
                                gin_row + ox,
                                _mm256_add_ps(_mm256_loadu_ps(gin_row + ox),
                                              _mm256_mul_ps(go_vec, wvec)));
                        }
                        for (; ox < ow; ++ox) {
                            gw_tail += go_row[ox] * in_row[ox];
                            gin_row[ox] += go_row[ox] * w[widx];
                        }
                    }
                    gw[widx] += hsum(gw_acc) + gw_tail;
                }
            }
        }
    }

    // Copy the interior of the padded grad-input back to CHW.
    for (int c = 0; c < g.in_channels; ++c) {
        for (int y = 0; y < g.in_h; ++y) {
            const float* src = padded_gin.data() +
                               (static_cast<std::size_t>(c) * ph +
                                static_cast<std::size_t>(y + g.padding)) *
                                   pw +
                               static_cast<std::size_t>(g.padding);
            float* dst =
                gin + (static_cast<std::size_t>(c) * g.in_h + y) * g.in_w;
            for (int x = 0; x < g.in_w; ++x) dst[x] = src[x];
        }
    }
}

void avx2_gemm(int out_f, int in_f, const float* w, const float* x,
               const float* b, float* y) {
    for (int r = 0; r < out_f; ++r) {
        const float* wrow =
            w + static_cast<std::size_t>(r) * static_cast<std::size_t>(in_f);
        __m256 acc = _mm256_setzero_ps();
        int c = 0;
        for (; c + 8 <= in_f; c += 8) {
            acc = _mm256_add_ps(
                acc, _mm256_mul_ps(_mm256_loadu_ps(wrow + c),
                                   _mm256_loadu_ps(x + c)));
        }
        float sum = hsum(acc);
        for (; c < in_f; ++c) sum += wrow[c] * x[c];
        y[r] = b[r] + sum;
    }
}

void avx2_gemm_backward(int out_f, int in_f, const float* w, const float* x,
                        const float* gy, float* gx, float* gw, float* gb) {
    for (int c = 0; c < in_f; ++c) gx[c] = 0.0F;
    for (int r = 0; r < out_f; ++r) {
        const float go = gy[r];
        gb[r] += go;
        if (go == 0.0F) continue;
        const std::size_t off =
            static_cast<std::size_t>(r) * static_cast<std::size_t>(in_f);
        const float* wrow = w + off;
        float* gwrow = gw + off;
        const __m256 go_vec = _mm256_set1_ps(go);
        int c = 0;
        for (; c + 8 <= in_f; c += 8) {
            _mm256_storeu_ps(
                gwrow + c,
                _mm256_add_ps(_mm256_loadu_ps(gwrow + c),
                              _mm256_mul_ps(go_vec, _mm256_loadu_ps(x + c))));
            _mm256_storeu_ps(
                gx + c,
                _mm256_add_ps(_mm256_loadu_ps(gx + c),
                              _mm256_mul_ps(go_vec,
                                            _mm256_loadu_ps(wrow + c))));
        }
        for (; c < in_f; ++c) {
            gwrow[c] += go * x[c];
            gx[c] += go * wrow[c];
        }
    }
}

void avx2_bias_act(std::int64_t n, const float* x, float bias, Act act,
                   float* y) {
    const __m256 bvec = _mm256_set1_ps(bias);
    std::int64_t i = 0;
    if (act == Act::kRelu) {
        const __m256 zero = _mm256_setzero_ps();
        for (; i + 8 <= n; i += 8) {
            const __m256 t = _mm256_add_ps(_mm256_loadu_ps(x + i), bvec);
            // max_ps(t, 0) returns the second operand on equality or NaN,
            // matching the scalar `t > 0 ? t : 0` exactly.
            _mm256_storeu_ps(y + i, _mm256_max_ps(t, zero));
        }
        for (; i < n; ++i) {
            const float t = x[i] + bias;
            y[i] = t > 0.0F ? t : 0.0F;
        }
    } else {
        for (; i + 8 <= n; i += 8) {
            _mm256_storeu_ps(y + i,
                             _mm256_add_ps(_mm256_loadu_ps(x + i), bvec));
        }
        for (; i < n; ++i) y[i] = x[i] + bias;
    }
}

#else  // !defined(__AVX2__)

// Built without AVX2 codegen: dispatch can never route here (see
// avx2_kernels_compiled()), so these stubs only assert the invariant.

void avx2_conv2d_forward(const Conv2dGeom&, const float*, const float*,
                         const float*, float*) {
    IMX_ASSERT(!"avx2 kernels not compiled");
}

void avx2_conv2d_backward(const Conv2dGeom&, const float*, const float*,
                          const float*, float*, float*, float*) {
    IMX_ASSERT(!"avx2 kernels not compiled");
}

void avx2_gemm(int, int, const float*, const float*, const float*, float*) {
    IMX_ASSERT(!"avx2 kernels not compiled");
}

void avx2_gemm_backward(int, int, const float*, const float*, const float*,
                        float*, float*, float*) {
    IMX_ASSERT(!"avx2 kernels not compiled");
}

void avx2_bias_act(std::int64_t, const float*, float, Act, float*) {
    IMX_ASSERT(!"avx2 kernels not compiled");
}

#endif  // defined(__AVX2__)

}  // namespace imx::nn::kernels::detail
