// Dispatch layer: validate geometry, bump counters, route to the active
// backend. Kept separate from the backend TUs so the counter/contract cost
// is paid once per call regardless of backend.
#include "nn/kernels/kernels.hpp"

#include "util/contracts.hpp"

namespace imx::nn::kernels {

namespace {

void check_geom(const Conv2dGeom& g) {
    IMX_EXPECTS(g.in_channels > 0 && g.out_channels > 0);
    IMX_EXPECTS(g.in_h > 0 && g.in_w > 0);
    IMX_EXPECTS(g.kernel > 0 && g.padding >= 0);
    IMX_EXPECTS(g.out_h() > 0 && g.out_w() > 0);
}

}  // namespace

void conv2d_forward(const Conv2dGeom& geom, const float* input,
                    const float* weight, const float* bias, float* output) {
    check_geom(geom);
    detail::count_conv2d_forward(static_cast<std::uint64_t>(geom.macs()));
    if (active_backend() == Backend::kAvx2) {
        detail::avx2_conv2d_forward(geom, input, weight, bias, output);
    } else {
        detail::scalar_conv2d_forward(geom, input, weight, bias, output);
    }
}

void conv2d_backward(const Conv2dGeom& geom, const float* input,
                     const float* weight, const float* grad_output,
                     float* grad_input, float* grad_weight, float* grad_bias) {
    check_geom(geom);
    // Backward does ~2x the forward MACs (grad_input and grad_weight).
    detail::count_conv2d_backward(2 * static_cast<std::uint64_t>(geom.macs()));
    if (active_backend() == Backend::kAvx2) {
        detail::avx2_conv2d_backward(geom, input, weight, grad_output,
                                     grad_input, grad_weight, grad_bias);
    } else {
        detail::scalar_conv2d_backward(geom, input, weight, grad_output,
                                       grad_input, grad_weight, grad_bias);
    }
}

void gemm(int out_features, int in_features, const float* weight,
          const float* x, const float* bias, float* y) {
    IMX_EXPECTS(out_features > 0 && in_features > 0);
    detail::count_gemm(static_cast<std::uint64_t>(out_features) *
                       static_cast<std::uint64_t>(in_features));
    if (active_backend() == Backend::kAvx2) {
        detail::avx2_gemm(out_features, in_features, weight, x, bias, y);
    } else {
        detail::scalar_gemm(out_features, in_features, weight, x, bias, y);
    }
}

void gemm_backward(int out_features, int in_features, const float* weight,
                   const float* x, const float* grad_y, float* grad_x,
                   float* grad_weight, float* grad_bias) {
    IMX_EXPECTS(out_features > 0 && in_features > 0);
    detail::count_gemm(2 * static_cast<std::uint64_t>(out_features) *
                       static_cast<std::uint64_t>(in_features));
    if (active_backend() == Backend::kAvx2) {
        detail::avx2_gemm_backward(out_features, in_features, weight, x,
                                   grad_y, grad_x, grad_weight, grad_bias);
    } else {
        detail::scalar_gemm_backward(out_features, in_features, weight, x,
                                     grad_y, grad_x, grad_weight, grad_bias);
    }
}

void bias_act(std::int64_t n, const float* x, float bias, Act act, float* y) {
    IMX_EXPECTS(n >= 0);
    detail::count_bias_act(static_cast<std::uint64_t>(n));
    if (active_backend() == Backend::kAvx2) {
        detail::avx2_bias_act(n, x, bias, act, y);
    } else {
        detail::scalar_bias_act(n, x, bias, act, y);
    }
}

}  // namespace imx::nn::kernels
