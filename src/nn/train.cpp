#include "nn/train.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace imx::nn {

double cross_entropy(const Tensor& logits, int label, Tensor& grad) {
    IMX_EXPECTS(label >= 0 && label < logits.numel());
    std::vector<double> probs(static_cast<std::size_t>(logits.numel()));
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        probs[static_cast<std::size_t>(i)] = static_cast<double>(logits[i]);
    }
    util::softmax_inplace(probs);
    grad = Tensor(logits.shape());
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        grad[i] = static_cast<float>(probs[static_cast<std::size_t>(i)]);
    }
    grad[label] -= 1.0F;
    const double p = std::max(probs[static_cast<std::size_t>(label)], 1e-12);
    return -std::log(p);
}

std::vector<double> softmax_probs(const Tensor& logits) {
    std::vector<double> probs(static_cast<std::size_t>(logits.numel()));
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
        probs[static_cast<std::size_t>(i)] = static_cast<double>(logits[i]);
    }
    util::softmax_inplace(probs);
    return probs;
}

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
    IMX_EXPECTS(lr > 0.0F);
    IMX_EXPECTS(momentum >= 0.0F && momentum < 1.0F);
    IMX_EXPECTS(weight_decay >= 0.0F);
}

void Sgd::step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads, float scale) {
    IMX_EXPECTS(params.size() == grads.size());
    if (velocity_.size() != params.size()) {
        velocity_.clear();
        velocity_.reserve(params.size());
        for (const Tensor* p : params) velocity_.emplace_back(Tensor::zeros(p->shape()));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor& p = *params[i];
        const Tensor& g = *grads[i];
        Tensor& v = velocity_[i];
        IMX_EXPECTS(p.numel() == g.numel());
        for (std::int64_t j = 0; j < p.numel(); ++j) {
            const float grad_j = g[j] * scale + weight_decay_ * p[j];
            v[j] = momentum_ * v[j] + grad_j;
            p[j] -= lr_ * v[j];
        }
    }
}

Adam::Adam(float lr, float beta1, float beta2, float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
    IMX_EXPECTS(lr > 0.0F);
}

void Adam::step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads, float scale) {
    IMX_EXPECTS(params.size() == grads.size());
    if (m_.size() != params.size()) {
        m_.clear();
        v_.clear();
        for (const Tensor* p : params) {
            m_.emplace_back(Tensor::zeros(p->shape()));
            v_.emplace_back(Tensor::zeros(p->shape()));
        }
        t_ = 0;
    }
    ++t_;
    const float bc1 = 1.0F - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0F - std::pow(beta2_, static_cast<float>(t_));
    for (std::size_t i = 0; i < params.size(); ++i) {
        Tensor& p = *params[i];
        const Tensor& g = *grads[i];
        for (std::int64_t j = 0; j < p.numel(); ++j) {
            const float grad_j = g[j] * scale;
            m_[i][j] = beta1_ * m_[i][j] + (1.0F - beta1_) * grad_j;
            v_[i][j] = beta2_ * v_[i][j] + (1.0F - beta2_) * grad_j * grad_j;
            const float m_hat = m_[i][j] / bc1;
            const float v_hat = v_[i][j] / bc2;
            p[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
        }
    }
}

std::vector<EpochStats> train_multi_exit(ExitGraph& graph,
                                         const std::vector<Tensor>& images,
                                         const std::vector<int>& labels,
                                         const TrainConfig& config) {
    IMX_EXPECTS(images.size() == labels.size());
    IMX_EXPECTS(!images.empty());
    IMX_EXPECTS(config.epochs > 0 && config.batch_size > 0);

    const int m = graph.num_exits();
    std::vector<double> weights = config.exit_loss_weights;
    if (weights.empty()) weights.assign(static_cast<std::size_t>(m), 1.0);
    IMX_EXPECTS(static_cast<int>(weights.size()) == m);

    Sgd optimizer(config.lr, config.momentum, config.weight_decay);
    std::vector<EpochStats> history;
    util::Rng order_rng(0xdecaf);

    std::vector<std::size_t> order(images.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    for (int epoch = 0; epoch < config.epochs; ++epoch) {
        order_rng.shuffle(order);
        double loss_sum = 0.0;
        std::vector<std::int64_t> correct(static_cast<std::size_t>(m), 0);
        std::size_t seen = 0;

        std::size_t cursor = 0;
        while (cursor < order.size()) {
            const std::size_t batch_end =
                std::min(cursor + static_cast<std::size_t>(config.batch_size),
                         order.size());
            graph.zero_grad();
            int batch_count = 0;
            for (; cursor < batch_end; ++cursor) {
                const std::size_t idx = order[cursor];
                std::vector<Tensor> logits = graph.forward_all(images[idx]);
                std::vector<Tensor> grad_logits(logits.size());
                for (int e = 0; e < m; ++e) {
                    Tensor grad;
                    const double loss = cross_entropy(
                        logits[static_cast<std::size_t>(e)], labels[idx], grad);
                    loss_sum += weights[static_cast<std::size_t>(e)] * loss;
                    grad_logits[static_cast<std::size_t>(e)] = std::move(grad);
                    const auto& lv = logits[static_cast<std::size_t>(e)].storage();
                    const auto pred = static_cast<int>(std::distance(
                        lv.begin(), std::max_element(lv.begin(), lv.end())));
                    if (pred == labels[idx]) {
                        ++correct[static_cast<std::size_t>(e)];
                    }
                }
                graph.backward_all(grad_logits, weights);
                ++batch_count;
                ++seen;
            }
            optimizer.step(graph.parameters(), graph.gradients(),
                           1.0F / static_cast<float>(batch_count));
        }

        EpochStats stats;
        stats.mean_loss = loss_sum / (static_cast<double>(seen) * m);
        for (int e = 0; e < m; ++e) {
            stats.exit_accuracy.push_back(
                static_cast<double>(correct[static_cast<std::size_t>(e)]) /
                static_cast<double>(seen));
        }
        history.push_back(std::move(stats));
    }
    return history;
}

std::vector<double> evaluate_exits(ExitGraph& graph,
                                   const std::vector<Tensor>& images,
                                   const std::vector<int>& labels) {
    IMX_EXPECTS(images.size() == labels.size());
    IMX_EXPECTS(!images.empty());
    const int m = graph.num_exits();
    std::vector<std::int64_t> correct(static_cast<std::size_t>(m), 0);
    for (std::size_t i = 0; i < images.size(); ++i) {
        std::vector<Tensor> logits = graph.forward_all(images[i]);
        for (int e = 0; e < m; ++e) {
            const auto& lv = logits[static_cast<std::size_t>(e)].storage();
            const auto pred = static_cast<int>(
                std::distance(lv.begin(), std::max_element(lv.begin(), lv.end())));
            if (pred == labels[i]) ++correct[static_cast<std::size_t>(e)];
        }
    }
    std::vector<double> acc;
    acc.reserve(static_cast<std::size_t>(m));
    for (int e = 0; e < m; ++e) {
        acc.push_back(static_cast<double>(correct[static_cast<std::size_t>(e)]) /
                      static_cast<double>(images.size()));
    }
    return acc;
}

}  // namespace imx::nn
