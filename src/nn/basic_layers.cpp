#include "nn/basic_layers.hpp"

#include <cmath>
#include <limits>

#include "nn/kernels/kernels.hpp"

namespace imx::nn {

Tensor Relu::forward(const Tensor& input) {
    Tensor out = input;
    // The mask is exactly the pre-activation sign; computing it from the
    // input keeps backward independent of the kernel backend.
    mask_.assign(static_cast<std::size_t>(input.numel()), false);
    for (std::int64_t i = 0; i < input.numel(); ++i) {
        if (input[i] > 0.0F) mask_[static_cast<std::size_t>(i)] = true;
    }
    kernels::bias_act(out.numel(), out.data(), 0.0F, kernels::Act::kRelu,
                      out.data());
    return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
    IMX_EXPECTS(static_cast<std::size_t>(grad_output.numel()) == mask_.size());
    Tensor grad = grad_output;
    for (std::int64_t i = 0; i < grad.numel(); ++i) {
        if (!mask_[static_cast<std::size_t>(i)]) grad[i] = 0.0F;
    }
    return grad;
}

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
    IMX_EXPECTS(input_shape.size() == 3);
    const int oh = input_shape[1] / kernel_;
    const int ow = input_shape[2] / kernel_;
    IMX_EXPECTS(oh > 0 && ow > 0);
    return {input_shape[0], oh, ow};
}

Tensor MaxPool2d::forward(const Tensor& input) {
    cached_input_shape_ = input.shape();
    const Shape out_shape = output_shape(input.shape());
    Tensor out(out_shape);
    argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
    const int channels = out_shape[0];
    const int oh = out_shape[1];
    const int ow = out_shape[2];
    const int h = input.dim(1);
    const int w = input.dim(2);
    std::int64_t out_idx = 0;
    for (int c = 0; c < channels; ++c) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float best = -std::numeric_limits<float>::infinity();
                std::int64_t best_idx = 0;
                for (int ky = 0; ky < kernel_; ++ky) {
                    const int iy = oy * kernel_ + ky;
                    for (int kx = 0; kx < kernel_; ++kx) {
                        const int ix = ox * kernel_ + kx;
                        const std::int64_t flat =
                            (static_cast<std::int64_t>(c) * h + iy) * w + ix;
                        const float v = input[flat];
                        if (v > best) {
                            best = v;
                            best_idx = flat;
                        }
                    }
                }
                out[out_idx] = best;
                argmax_[static_cast<std::size_t>(out_idx)] = best_idx;
                ++out_idx;
            }
        }
    }
    return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
    IMX_EXPECTS(!cached_input_shape_.empty());
    IMX_EXPECTS(static_cast<std::size_t>(grad_output.numel()) == argmax_.size());
    Tensor grad_input(cached_input_shape_);
    for (std::int64_t i = 0; i < grad_output.numel(); ++i) {
        grad_input[argmax_[static_cast<std::size_t>(i)]] += grad_output[i];
    }
    return grad_input;
}

Tensor Tanh::forward(const Tensor& input) {
    Tensor out = input;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        out[i] = std::tanh(out[i]);
    }
    cached_output_ = out;
    return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
    IMX_EXPECTS(grad_output.numel() == cached_output_.numel());
    Tensor grad = grad_output;
    for (std::int64_t i = 0; i < grad.numel(); ++i) {
        const float y = cached_output_[i];
        grad[i] *= 1.0F - y * y;
    }
    return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
    Tensor out = input;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const float x = out[i];
        out[i] = x >= 0.0F ? 1.0F / (1.0F + std::exp(-x))
                           : std::exp(x) / (1.0F + std::exp(x));
    }
    cached_output_ = out;
    return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
    IMX_EXPECTS(grad_output.numel() == cached_output_.numel());
    Tensor grad = grad_output;
    for (std::int64_t i = 0; i < grad.numel(); ++i) {
        const float y = cached_output_[i];
        grad[i] *= y * (1.0F - y);
    }
    return grad;
}

Tensor Flatten::forward(const Tensor& input) {
    cached_input_shape_ = input.shape();
    return input.reshaped({static_cast<int>(input.numel())});
}

Tensor Flatten::backward(const Tensor& grad_output) {
    IMX_EXPECTS(!cached_input_shape_.empty());
    return grad_output.reshaped(cached_input_shape_);
}

}  // namespace imx::nn
