// Parameter-free layers: ReLU, MaxPool2d, Flatten.
#ifndef IMX_NN_BASIC_LAYERS_HPP
#define IMX_NN_BASIC_LAYERS_HPP

#include <vector>

#include "nn/layer.hpp"

namespace imx::nn {

class Relu final : public Layer {
public:
    explicit Relu(std::string name = "relu") : name_(std::move(name)) {}

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
        return input_shape;
    }
    [[nodiscard]] std::int64_t macs(const Shape&) const override { return 0; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override {
        return std::make_unique<Relu>(name_);
    }

private:
    std::string name_;
    std::vector<bool> mask_;
};

/// Max pooling with square kernel and equal stride; floor output size
/// (odd trailing rows/columns are dropped, matching common MCU kernels).
class MaxPool2d final : public Layer {
public:
    explicit MaxPool2d(int kernel = 2, std::string name = "pool")
        : kernel_(kernel), name_(std::move(name)) {
        IMX_EXPECTS(kernel >= 1);
    }

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
    [[nodiscard]] std::int64_t macs(const Shape&) const override { return 0; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override {
        return std::make_unique<MaxPool2d>(kernel_, name_);
    }
    [[nodiscard]] int kernel() const { return kernel_; }

private:
    int kernel_;
    std::string name_;
    Shape cached_input_shape_;
    std::vector<std::int64_t> argmax_;  // flat input index per output element
};

class Tanh final : public Layer {
public:
    explicit Tanh(std::string name = "tanh") : name_(std::move(name)) {}

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
        return input_shape;
    }
    [[nodiscard]] std::int64_t macs(const Shape&) const override { return 0; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override {
        return std::make_unique<Tanh>(name_);
    }

private:
    std::string name_;
    Tensor cached_output_;
};

class Sigmoid final : public Layer {
public:
    explicit Sigmoid(std::string name = "sigmoid") : name_(std::move(name)) {}

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
        return input_shape;
    }
    [[nodiscard]] std::int64_t macs(const Shape&) const override { return 0; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override {
        return std::make_unique<Sigmoid>(name_);
    }

private:
    std::string name_;
    Tensor cached_output_;
};

class Flatten final : public Layer {
public:
    explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override {
        return {static_cast<int>(shape_numel(input_shape))};
    }
    [[nodiscard]] std::int64_t macs(const Shape&) const override { return 0; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override {
        return std::make_unique<Flatten>(name_);
    }

private:
    std::string name_;
    Shape cached_input_shape_;
};

}  // namespace imx::nn

#endif  // IMX_NN_BASIC_LAYERS_HPP
