#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace imx::nn {

std::int64_t shape_numel(const Shape& shape) {
    std::int64_t n = 1;
    for (const int d : shape) {
        IMX_EXPECTS(d >= 0);
        n *= d;
    }
    return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i) oss << ", ";
        oss << shape[i];
    }
    oss << ']';
    return oss.str();
}

Tensor Tensor::full(Shape shape, float value) {
    Tensor t(std::move(shape));
    t.fill(value);
    return t;
}

Tensor Tensor::kaiming_uniform(Shape shape, int fan_in, util::Rng& rng) {
    IMX_EXPECTS(fan_in > 0);
    Tensor t(std::move(shape));
    const float bound =
        std::sqrt(6.0F / static_cast<float>(fan_in));  // gain sqrt(2), uniform
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        t[i] = static_cast<float>(rng.uniform(-bound, bound));
    }
    return t;
}

Tensor Tensor::reshaped(Shape new_shape) const {
    IMX_EXPECTS(shape_numel(new_shape) == numel());
    return Tensor(std::move(new_shape), data_);
}

void Tensor::add_scaled(const Tensor& other, float scale_factor) {
    IMX_EXPECTS(other.numel() == numel());
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += scale_factor * other.data_[i];
    }
}

void Tensor::scale(float factor) {
    for (float& v : data_) v *= factor;
}

float Tensor::l2_norm() const {
    double sum = 0.0;
    for (const float v : data_) sum += static_cast<double>(v) * v;
    return static_cast<float>(std::sqrt(sum));
}

float Tensor::abs_max() const {
    float m = 0.0F;
    for (const float v : data_) m = std::max(m, std::fabs(v));
    return m;
}

}  // namespace imx::nn
