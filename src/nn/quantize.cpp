#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace imx::nn {

namespace {

double quantization_mse(const std::vector<float>& values, double scale,
                        double qmin, double qmax) {
    if (scale <= 0.0) return std::numeric_limits<double>::infinity();
    double mse = 0.0;
    for (const float v : values) {
        const double q =
            std::clamp(std::nearbyint(static_cast<double>(v) / scale), qmin, qmax);
        const double err = static_cast<double>(v) - q * scale;
        mse += err * err;
    }
    return mse / static_cast<double>(values.size());
}

}  // namespace

double search_weight_scale(const std::vector<float>& values, int bits) {
    IMX_EXPECTS(bits >= 1 && bits <= 16);
    IMX_EXPECTS(!values.empty());
    const double qmax = static_cast<double>((1 << (bits - 1)) - 1);
    const double qmin = -static_cast<double>(1 << (bits - 1));
    double abs_max = 0.0;
    for (const float v : values) abs_max = std::max(abs_max, std::fabs(static_cast<double>(v)));
    if (abs_max == 0.0) return 1.0;

    // For k=1 the only negative code is -1 and the max positive code is 0, so
    // scale anchors on the mean magnitude instead (XNOR-style); the bracket
    // search below still refines it.
    const double effective_qmax = qmax > 0.0 ? qmax : 1.0;
    const double base = abs_max / effective_qmax;

    double best_scale = base;
    double best_mse = quantization_mse(values, base, qmin, qmax);
    // Geometric bracket around abs-max scaling; 0.3x..1.2x covers the optimum
    // for bell-shaped weight distributions.
    for (int i = 0; i <= 36; ++i) {
        const double s = base * (0.30 + 0.025 * i);
        const double mse = quantization_mse(values, s, qmin, qmax);
        if (mse < best_mse) {
            best_mse = mse;
            best_scale = s;
        }
    }
    return best_scale;
}

QuantResult quantize_weights(const Tensor& weights, int bits) {
    IMX_EXPECTS(bits >= 1 && bits <= 16);
    const double qmax = static_cast<double>((1 << (bits - 1)) - 1);
    const double qmin = -static_cast<double>(1 << (bits - 1));
    QuantResult result;
    result.scale = search_weight_scale(weights.storage(), bits);
    result.codes.reserve(static_cast<std::size_t>(weights.numel()));
    double mse = 0.0;
    for (std::int64_t i = 0; i < weights.numel(); ++i) {
        const double q = std::clamp(
            std::nearbyint(static_cast<double>(weights[i]) / result.scale), qmin,
            qmax);
        result.codes.push_back(static_cast<std::int32_t>(q));
        const double err = static_cast<double>(weights[i]) - q * result.scale;
        mse += err * err;
    }
    result.mse = weights.numel() > 0 ? mse / static_cast<double>(weights.numel()) : 0.0;
    return result;
}

void fake_quantize_weights(Tensor& weights, int bits) {
    const QuantResult q = quantize_weights(weights, bits);
    for (std::int64_t i = 0; i < weights.numel(); ++i) {
        weights[i] = static_cast<float>(
            static_cast<double>(q.codes[static_cast<std::size_t>(i)]) * q.scale);
    }
}

QuantResult quantize_activations(const Tensor& activations, int bits) {
    IMX_EXPECTS(bits >= 1 && bits <= 16);
    const double qmax = static_cast<double>((1LL << bits) - 1);
    QuantResult result;
    double max_val = 0.0;
    for (std::int64_t i = 0; i < activations.numel(); ++i) {
        IMX_EXPECTS(activations[i] >= -1e-6F);  // post-ReLU contract
        max_val = std::max(max_val, static_cast<double>(activations[i]));
    }
    result.scale = max_val > 0.0 ? max_val / qmax : 1.0;
    result.codes.reserve(static_cast<std::size_t>(activations.numel()));
    double mse = 0.0;
    for (std::int64_t i = 0; i < activations.numel(); ++i) {
        const double q = std::clamp(
            std::nearbyint(static_cast<double>(activations[i]) / result.scale),
            0.0, qmax);
        result.codes.push_back(static_cast<std::int32_t>(q));
        const double err = static_cast<double>(activations[i]) - q * result.scale;
        mse += err * err;
    }
    result.mse =
        activations.numel() > 0 ? mse / static_cast<double>(activations.numel()) : 0.0;
    return result;
}

void fake_quantize_activations(Tensor& activations, int bits) {
    const QuantResult q = quantize_activations(activations, bits);
    for (std::int64_t i = 0; i < activations.numel(); ++i) {
        activations[i] = static_cast<float>(
            static_cast<double>(q.codes[static_cast<std::size_t>(i)]) * q.scale);
    }
}

Tensor int_conv2d_reference(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, int padding, int weight_bits,
                            int activation_bits) {
    IMX_EXPECTS(input.rank() == 3 && weight.rank() == 4);
    const QuantResult qw = quantize_weights(weight, weight_bits);
    const QuantResult qa = quantize_activations(input, activation_bits);

    const int out_c = weight.dim(0);
    const int in_c = weight.dim(1);
    const int k = weight.dim(2);
    IMX_EXPECTS(input.dim(0) == in_c);
    const int h = input.dim(1);
    const int w = input.dim(2);
    const int oh = h + 2 * padding - k + 1;
    const int ow = w + 2 * padding - k + 1;
    IMX_EXPECTS(oh > 0 && ow > 0);

    Tensor out({out_c, oh, ow});
    const double requant = qw.scale * qa.scale;
    for (int oc = 0; oc < out_c; ++oc) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                std::int64_t acc = 0;  // int32 semantics; int64 guards UB in tests
                for (int ic = 0; ic < in_c; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy + ky - padding;
                        if (iy < 0 || iy >= h) continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix = ox + kx - padding;
                            if (ix < 0 || ix >= w) continue;
                            const std::size_t w_idx = static_cast<std::size_t>(
                                ((oc * in_c + ic) * k + ky) * k + kx);
                            const std::size_t a_idx = static_cast<std::size_t>(
                                (ic * h + iy) * w + ix);
                            acc += static_cast<std::int64_t>(qw.codes[w_idx]) *
                                   qa.codes[a_idx];
                        }
                    }
                }
                out.at(oc, oy, ox) = static_cast<float>(
                    static_cast<double>(acc) * requant + static_cast<double>(bias[oc]));
            }
        }
    }
    return out;
}

Tensor int_linear_reference(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, int weight_bits,
                            int activation_bits) {
    IMX_EXPECTS(weight.rank() == 2);
    const int out_f = weight.dim(0);
    const int in_f = weight.dim(1);
    IMX_EXPECTS(input.numel() == in_f);
    const QuantResult qw = quantize_weights(weight, weight_bits);
    const QuantResult qa = quantize_activations(input, activation_bits);

    Tensor out({out_f});
    const double requant = qw.scale * qa.scale;
    for (int r = 0; r < out_f; ++r) {
        std::int64_t acc = 0;
        const std::size_t off = static_cast<std::size_t>(r) * static_cast<std::size_t>(in_f);
        for (int c = 0; c < in_f; ++c) {
            acc += static_cast<std::int64_t>(qw.codes[off + static_cast<std::size_t>(c)]) *
                   qa.codes[static_cast<std::size_t>(c)];
        }
        out[r] = static_cast<float>(static_cast<double>(acc) * requant +
                                    static_cast<double>(bias[r]));
    }
    return out;
}

}  // namespace imx::nn
