// Direct 2-D convolution (stride 1, square kernel, zero padding) with full
// backward pass and channel-surgery hooks used by the pruning module.
#ifndef IMX_NN_CONV2D_HPP
#define IMX_NN_CONV2D_HPP

#include <vector>

#include "nn/kernels/kernels.hpp"
#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace imx::nn {

class Conv2d final : public Layer {
public:
    /// Weights are Kaiming-initialized from rng; bias starts at zero.
    Conv2d(int in_channels, int out_channels, int kernel, int padding,
           std::string name, util::Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
    [[nodiscard]] std::int64_t macs(const Shape& input_shape) const override;
    [[nodiscard]] std::int64_t param_count() const override;
    std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
    std::vector<Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override;

    [[nodiscard]] int in_channels() const { return in_channels_; }
    [[nodiscard]] int out_channels() const { return out_channels_; }
    [[nodiscard]] int kernel() const { return kernel_; }
    [[nodiscard]] int padding() const { return padding_; }

    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] Tensor& bias() { return bias_; }
    [[nodiscard]] const Tensor& bias() const { return bias_; }

    /// L1 importance of each input channel: s_j = sum_i |W_{i,j}| (paper Eq. 2).
    [[nodiscard]] std::vector<double> input_channel_importance() const;

    /// Keep only the listed input channels (sorted ascending, unique).
    void prune_input_channels(const std::vector<int>& keep);

    /// Keep only the listed output channels (sorted ascending, unique).
    void prune_output_channels(const std::vector<int>& keep);

private:
    /// Kernel-layer geometry for a CHW input of the given shape.
    [[nodiscard]] kernels::Conv2dGeom geometry(const Shape& input_shape) const;

    int in_channels_;
    int out_channels_;
    int kernel_;
    int padding_;
    std::string name_;
    Tensor weight_;       // [out, in, k, k]
    Tensor bias_;         // [out]
    Tensor grad_weight_;
    Tensor grad_bias_;
    Tensor cached_input_; // for backward
};

}  // namespace imx::nn

#endif  // IMX_NN_CONV2D_HPP
