// Dense row-major float tensor. CHW layout for activations (single sample),
// [out, in, k, k] for conv weights, [out, in] for linear weights.
//
// The inference targets in this project are KB-scale MCU networks, so the
// tensor type favours simplicity and debuggability over BLAS-grade speed:
// contiguous std::vector storage, explicit index helpers, contract-checked
// access in every build.
#ifndef IMX_NN_TENSOR_HPP
#define IMX_NN_TENSOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace imx::nn {

/// Shape of a tensor; up to 4 dimensions are used in this project.
using Shape = std::vector<int>;

/// Number of elements a shape describes.
std::int64_t shape_numel(const Shape& shape);

/// Human-readable shape, e.g. "[6, 28, 28]".
std::string shape_to_string(const Shape& shape);

class Tensor {
public:
    Tensor() = default;

    explicit Tensor(Shape shape) : shape_(std::move(shape)) {
        data_.assign(static_cast<std::size_t>(shape_numel(shape_)), 0.0F);
    }

    Tensor(Shape shape, std::vector<float> data)
        : shape_(std::move(shape)), data_(std::move(data)) {
        IMX_EXPECTS(static_cast<std::int64_t>(data_.size()) == shape_numel(shape_));
    }

    static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
    static Tensor full(Shape shape, float value);
    /// Kaiming-uniform init for weights feeding ReLU units.
    static Tensor kaiming_uniform(Shape shape, int fan_in, util::Rng& rng);

    [[nodiscard]] const Shape& shape() const { return shape_; }
    [[nodiscard]] int rank() const { return static_cast<int>(shape_.size()); }
    [[nodiscard]] int dim(int i) const {
        IMX_EXPECTS(i >= 0 && i < rank());
        return shape_[static_cast<std::size_t>(i)];
    }
    [[nodiscard]] std::int64_t numel() const {
        return static_cast<std::int64_t>(data_.size());
    }
    [[nodiscard]] bool empty() const { return data_.empty(); }

    [[nodiscard]] float* data() { return data_.data(); }
    [[nodiscard]] const float* data() const { return data_.data(); }
    [[nodiscard]] std::vector<float>& storage() { return data_; }
    [[nodiscard]] const std::vector<float>& storage() const { return data_; }

    float& operator[](std::int64_t i) {
        IMX_EXPECTS(i >= 0 && i < numel());
        return data_[static_cast<std::size_t>(i)];
    }
    float operator[](std::int64_t i) const {
        IMX_EXPECTS(i >= 0 && i < numel());
        return data_[static_cast<std::size_t>(i)];
    }

    /// 3-D (C,H,W) accessors.
    float& at(int c, int h, int w) { return data_[idx3(c, h, w)]; }
    [[nodiscard]] float at(int c, int h, int w) const { return data_[idx3(c, h, w)]; }

    /// 4-D (n,c,h,w) accessors (conv weights).
    float& at(int n, int c, int h, int w) { return data_[idx4(n, c, h, w)]; }
    [[nodiscard]] float at(int n, int c, int h, int w) const {
        return data_[idx4(n, c, h, w)];
    }

    /// 2-D (r,c) accessors (linear weights).
    float& at2(int r, int c) { return data_[idx2(r, c)]; }
    [[nodiscard]] float at2(int r, int c) const { return data_[idx2(r, c)]; }

    void fill(float value) { data_.assign(data_.size(), value); }

    /// Reinterpret with a new shape of equal element count.
    [[nodiscard]] Tensor reshaped(Shape new_shape) const;

    /// Elementwise in-place operations used by optimizers.
    void add_scaled(const Tensor& other, float scale);
    void scale(float factor);

    [[nodiscard]] float l2_norm() const;
    [[nodiscard]] float abs_max() const;

private:
    [[nodiscard]] std::size_t idx2(int r, int c) const {
        IMX_EXPECTS(rank() == 2);
        IMX_EXPECTS(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
        return static_cast<std::size_t>(r) * static_cast<std::size_t>(shape_[1]) +
               static_cast<std::size_t>(c);
    }
    [[nodiscard]] std::size_t idx3(int c, int h, int w) const {
        IMX_EXPECTS(rank() == 3);
        IMX_EXPECTS(c >= 0 && c < shape_[0] && h >= 0 && h < shape_[1] && w >= 0 &&
                    w < shape_[2]);
        return (static_cast<std::size_t>(c) * static_cast<std::size_t>(shape_[1]) +
                static_cast<std::size_t>(h)) *
                   static_cast<std::size_t>(shape_[2]) +
               static_cast<std::size_t>(w);
    }
    [[nodiscard]] std::size_t idx4(int n, int c, int h, int w) const {
        IMX_EXPECTS(rank() == 4);
        IMX_EXPECTS(n >= 0 && n < shape_[0] && c >= 0 && c < shape_[1] &&
                    h >= 0 && h < shape_[2] && w >= 0 && w < shape_[3]);
        return ((static_cast<std::size_t>(n) * static_cast<std::size_t>(shape_[1]) +
                 static_cast<std::size_t>(c)) *
                    static_cast<std::size_t>(shape_[2]) +
                static_cast<std::size_t>(h)) *
                   static_cast<std::size_t>(shape_[3]) +
               static_cast<std::size_t>(w);
    }

    Shape shape_;
    std::vector<float> data_;
};

}  // namespace imx::nn

#endif  // IMX_NN_TENSOR_HPP
