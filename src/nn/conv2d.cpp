#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.hpp"

namespace imx::nn {

namespace {

void check_keep_list(const std::vector<int>& keep, int limit) {
    IMX_EXPECTS(!keep.empty());
    IMX_EXPECTS(std::is_sorted(keep.begin(), keep.end()));
    IMX_EXPECTS(std::adjacent_find(keep.begin(), keep.end()) == keep.end());
    IMX_EXPECTS(keep.front() >= 0 && keep.back() < limit);
}

}  // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int padding,
               std::string name, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      name_(std::move(name)) {
    IMX_EXPECTS(in_channels > 0 && out_channels > 0);
    IMX_EXPECTS(kernel > 0 && padding >= 0);
    const int fan_in = in_channels * kernel * kernel;
    weight_ = Tensor::kaiming_uniform({out_channels, in_channels, kernel, kernel},
                                      fan_in, rng);
    bias_ = Tensor::zeros({out_channels});
    grad_weight_ = Tensor::zeros(weight_.shape());
    grad_bias_ = Tensor::zeros(bias_.shape());
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
    IMX_EXPECTS(input_shape.size() == 3);
    IMX_EXPECTS(input_shape[0] == in_channels_);
    const int oh = input_shape[1] + 2 * padding_ - kernel_ + 1;
    const int ow = input_shape[2] + 2 * padding_ - kernel_ + 1;
    IMX_EXPECTS(oh > 0 && ow > 0);
    return {out_channels_, oh, ow};
}

std::int64_t Conv2d::macs(const Shape& input_shape) const {
    const Shape out = output_shape(input_shape);
    return static_cast<std::int64_t>(out[0]) * out[1] * out[2] * in_channels_ *
           kernel_ * kernel_;
}

std::int64_t Conv2d::param_count() const {
    return weight_.numel() + bias_.numel();
}

kernels::Conv2dGeom Conv2d::geometry(const Shape& input_shape) const {
    IMX_EXPECTS(input_shape.size() == 3);
    IMX_EXPECTS(input_shape[0] == in_channels_);
    return kernels::Conv2dGeom{in_channels_, out_channels_, input_shape[1],
                               input_shape[2],  kernel_,     padding_};
}

Tensor Conv2d::forward(const Tensor& input) {
    cached_input_ = input;
    const Shape out_shape = output_shape(input.shape());
    Tensor out(out_shape);
    kernels::conv2d_forward(geometry(input.shape()), input.data(),
                            weight_.data(), bias_.data(), out.data());
    return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
    IMX_EXPECTS(!cached_input_.empty());
    const Tensor& input = cached_input_;
    const kernels::Conv2dGeom geom = geometry(input.shape());
    IMX_EXPECTS(grad_output.dim(0) == out_channels_);
    IMX_EXPECTS(grad_output.dim(1) == geom.out_h());
    IMX_EXPECTS(grad_output.dim(2) == geom.out_w());

    Tensor grad_input(input.shape());
    kernels::conv2d_backward(geom, input.data(), weight_.data(),
                             grad_output.data(), grad_input.data(),
                             grad_weight_.data(), grad_bias_.data());
    return grad_input;
}

LayerPtr Conv2d::clone() const {
    util::Rng dummy(0);
    auto copy = std::make_unique<Conv2d>(in_channels_, out_channels_, kernel_,
                                         padding_, name_, dummy);
    copy->weight_ = weight_;
    copy->bias_ = bias_;
    copy->grad_weight_ = grad_weight_;
    copy->grad_bias_ = grad_bias_;
    return copy;
}

std::vector<double> Conv2d::input_channel_importance() const {
    std::vector<double> importance(static_cast<std::size_t>(in_channels_), 0.0);
    for (int oc = 0; oc < out_channels_; ++oc) {
        for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
                for (int kx = 0; kx < kernel_; ++kx) {
                    importance[static_cast<std::size_t>(ic)] +=
                        std::fabs(static_cast<double>(weight_.at(oc, ic, ky, kx)));
                }
            }
        }
    }
    return importance;
}

void Conv2d::prune_input_channels(const std::vector<int>& keep) {
    check_keep_list(keep, in_channels_);
    const int new_in = static_cast<int>(keep.size());
    Tensor new_weight({out_channels_, new_in, kernel_, kernel_});
    for (int oc = 0; oc < out_channels_; ++oc) {
        for (int j = 0; j < new_in; ++j) {
            for (int ky = 0; ky < kernel_; ++ky) {
                for (int kx = 0; kx < kernel_; ++kx) {
                    new_weight.at(oc, j, ky, kx) = weight_.at(oc, keep[static_cast<std::size_t>(j)], ky, kx);
                }
            }
        }
    }
    weight_ = std::move(new_weight);
    grad_weight_ = Tensor::zeros(weight_.shape());
    in_channels_ = new_in;
}

void Conv2d::prune_output_channels(const std::vector<int>& keep) {
    check_keep_list(keep, out_channels_);
    const int new_out = static_cast<int>(keep.size());
    Tensor new_weight({new_out, in_channels_, kernel_, kernel_});
    Tensor new_bias({new_out});
    for (int i = 0; i < new_out; ++i) {
        const int src = keep[static_cast<std::size_t>(i)];
        new_bias[i] = bias_[src];
        for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
                for (int kx = 0; kx < kernel_; ++kx) {
                    new_weight.at(i, ic, ky, kx) = weight_.at(src, ic, ky, kx);
                }
            }
        }
    }
    weight_ = std::move(new_weight);
    bias_ = std::move(new_bias);
    grad_weight_ = Tensor::zeros(weight_.shape());
    grad_bias_ = Tensor::zeros(bias_.shape());
    out_channels_ = new_out;
}

}  // namespace imx::nn
