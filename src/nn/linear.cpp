#include "nn/linear.hpp"

#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.hpp"

namespace imx::nn {

Linear::Linear(int in_features, int out_features, std::string name,
               util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(name)) {
    IMX_EXPECTS(in_features > 0 && out_features > 0);
    weight_ = Tensor::kaiming_uniform({out_features, in_features}, in_features, rng);
    bias_ = Tensor::zeros({out_features});
    grad_weight_ = Tensor::zeros(weight_.shape());
    grad_bias_ = Tensor::zeros(bias_.shape());
}

Shape Linear::output_shape(const Shape& input_shape) const {
    IMX_EXPECTS(shape_numel(input_shape) == in_features_);
    return {out_features_};
}

std::int64_t Linear::macs(const Shape& input_shape) const {
    IMX_EXPECTS(shape_numel(input_shape) == in_features_);
    return static_cast<std::int64_t>(in_features_) * out_features_;
}

std::int64_t Linear::param_count() const {
    return weight_.numel() + bias_.numel();
}

Tensor Linear::forward(const Tensor& input) {
    IMX_EXPECTS(input.numel() == in_features_);
    cached_input_ = input;
    Tensor out({out_features_});
    kernels::gemm(out_features_, in_features_, weight_.data(), input.data(),
                  bias_.data(), out.data());
    return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
    IMX_EXPECTS(!cached_input_.empty());
    IMX_EXPECTS(grad_output.numel() == out_features_);
    Tensor grad_input(cached_input_.shape());
    kernels::gemm_backward(out_features_, in_features_, weight_.data(),
                           cached_input_.data(), grad_output.data(),
                           grad_input.data(), grad_weight_.data(),
                           grad_bias_.data());
    return grad_input;
}

LayerPtr Linear::clone() const {
    util::Rng dummy(0);
    auto copy = std::make_unique<Linear>(in_features_, out_features_, name_, dummy);
    copy->weight_ = weight_;
    copy->bias_ = bias_;
    copy->grad_weight_ = grad_weight_;
    copy->grad_bias_ = grad_bias_;
    return copy;
}

std::vector<double> Linear::input_importance() const {
    std::vector<double> importance(static_cast<std::size_t>(in_features_), 0.0);
    for (int r = 0; r < out_features_; ++r) {
        for (int c = 0; c < in_features_; ++c) {
            importance[static_cast<std::size_t>(c)] +=
                std::fabs(static_cast<double>(weight_.at2(r, c)));
        }
    }
    return importance;
}

void Linear::prune_inputs(const std::vector<int>& keep) {
    IMX_EXPECTS(!keep.empty());
    IMX_EXPECTS(std::is_sorted(keep.begin(), keep.end()));
    IMX_EXPECTS(keep.front() >= 0 && keep.back() < in_features_);
    const int new_in = static_cast<int>(keep.size());
    Tensor new_weight({out_features_, new_in});
    for (int r = 0; r < out_features_; ++r) {
        for (int j = 0; j < new_in; ++j) {
            new_weight.at2(r, j) = weight_.at2(r, keep[static_cast<std::size_t>(j)]);
        }
    }
    weight_ = std::move(new_weight);
    grad_weight_ = Tensor::zeros(weight_.shape());
    in_features_ = new_in;
}

void Linear::prune_outputs(const std::vector<int>& keep) {
    IMX_EXPECTS(!keep.empty());
    IMX_EXPECTS(std::is_sorted(keep.begin(), keep.end()));
    IMX_EXPECTS(keep.front() >= 0 && keep.back() < out_features_);
    const int new_out = static_cast<int>(keep.size());
    Tensor new_weight({new_out, in_features_});
    Tensor new_bias({new_out});
    for (int i = 0; i < new_out; ++i) {
        const int src = keep[static_cast<std::size_t>(i)];
        new_bias[i] = bias_[src];
        for (int c = 0; c < in_features_; ++c) {
            new_weight.at2(i, c) = weight_.at2(src, c);
        }
    }
    weight_ = std::move(new_weight);
    bias_ = std::move(new_bias);
    grad_weight_ = Tensor::zeros(weight_.shape());
    grad_bias_ = Tensor::zeros(bias_.shape());
    out_features_ = new_out;
}

}  // namespace imx::nn
