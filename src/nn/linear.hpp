// Fully-connected layer with backward pass and unit-surgery hooks for
// channel pruning of flattened feature vectors.
#ifndef IMX_NN_LINEAR_HPP
#define IMX_NN_LINEAR_HPP

#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace imx::nn {

class Linear final : public Layer {
public:
    Linear(int in_features, int out_features, std::string name, util::Rng& rng);

    Tensor forward(const Tensor& input) override;
    Tensor backward(const Tensor& grad_output) override;
    [[nodiscard]] Shape output_shape(const Shape& input_shape) const override;
    [[nodiscard]] std::int64_t macs(const Shape& input_shape) const override;
    [[nodiscard]] std::int64_t param_count() const override;
    std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
    std::vector<Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] LayerPtr clone() const override;

    [[nodiscard]] int in_features() const { return in_features_; }
    [[nodiscard]] int out_features() const { return out_features_; }
    [[nodiscard]] Tensor& weight() { return weight_; }
    [[nodiscard]] const Tensor& weight() const { return weight_; }
    [[nodiscard]] Tensor& bias() { return bias_; }
    [[nodiscard]] const Tensor& bias() const { return bias_; }

    /// L1 importance of each input feature (column sums, paper Eq. 2).
    [[nodiscard]] std::vector<double> input_importance() const;

    void prune_inputs(const std::vector<int>& keep);
    void prune_outputs(const std::vector<int>& keep);

private:
    int in_features_;
    int out_features_;
    std::string name_;
    Tensor weight_;  // [out, in]
    Tensor bias_;    // [out]
    Tensor grad_weight_;
    Tensor grad_bias_;
    Tensor cached_input_;
};

}  // namespace imx::nn

#endif  // IMX_NN_LINEAR_HPP
