// Linear quantization (paper Eq. 3) and integer reference kernels.
//
// Weights: symmetric signed quantization, w' = clamp(round(w/s), -2^{k-1},
// 2^{k-1}-1) * s, with the scale s chosen to minimize ||w' - w||_2 (searched
// over a bracket around abs-max scaling, as in HAQ-style linear quantizers).
// Activations: asymmetric non-negative (post-ReLU), range [0, 2^k - 1].
//
// The integer kernels mirror what an MCU fixed-point implementation executes
// (int8/int16 operands, int32 accumulators) and are tested against the float
// path to bound the simulation error of the fake-quant pipeline.
#ifndef IMX_NN_QUANTIZE_HPP
#define IMX_NN_QUANTIZE_HPP

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace imx::nn {

/// Result of quantizing a tensor: the dequantized ("fake-quant") values plus
/// the chosen scale and integer codes.
struct QuantResult {
    double scale = 1.0;
    std::vector<std::int32_t> codes;
    double mse = 0.0;  // mean squared quantization error
};

/// Quantize weights symmetrically to `bits` (1..16). bits == 1 degenerates to
/// binary {-s, 0(+s)} codes {-1, 0}; with the paper's clamp convention the
/// representable set for k=1 is {-1, 0} * s.
QuantResult quantize_weights(const Tensor& weights, int bits);

/// Apply fake quantization in place (weights become representable values).
void fake_quantize_weights(Tensor& weights, int bits);

/// Quantize non-negative activations to `bits` with range [0, 2^k - 1].
QuantResult quantize_activations(const Tensor& activations, int bits);

/// Apply fake quantization in place for activations.
void fake_quantize_activations(Tensor& activations, int bits);

/// Optimal-scale search: minimizes ||dequant(q(w,s)) - w||^2 over s in a
/// geometric bracket around abs_max / qmax. Exposed for testing.
double search_weight_scale(const std::vector<float>& values, int bits);

/// Integer convolution reference: int32 accumulation of quantized operands.
/// Shapes follow Conv2d ([out,in,k,k] weights, CHW activations). Returns the
/// float output reconstructed via (w_scale * a_scale).
Tensor int_conv2d_reference(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, int padding, int weight_bits,
                            int activation_bits);

/// Integer fully-connected reference, same contract as int_conv2d_reference.
Tensor int_linear_reference(const Tensor& input, const Tensor& weight,
                            const Tensor& bias, int weight_bits,
                            int activation_bits);

}  // namespace imx::nn

#endif  // IMX_NN_QUANTIZE_HPP
