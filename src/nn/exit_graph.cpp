#include "nn/exit_graph.hpp"

#include <algorithm>

namespace imx::nn {

Tensor Segment::forward(const Tensor& input) {
    Tensor x = input;
    for (auto& layer : layers_) x = layer->forward(x);
    return x;
}

Tensor Segment::backward(const Tensor& grad_output) {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
        g = (*it)->backward(g);
    }
    return g;
}

Shape Segment::output_shape(Shape input_shape) const {
    for (const auto& layer : layers_) input_shape = layer->output_shape(input_shape);
    return input_shape;
}

std::int64_t Segment::macs(Shape input_shape) const {
    std::int64_t total = 0;
    for (const auto& layer : layers_) {
        total += layer->macs(input_shape);
        input_shape = layer->output_shape(input_shape);
    }
    return total;
}

std::int64_t Segment::param_count() const {
    std::int64_t total = 0;
    for (const auto& layer : layers_) total += layer->param_count();
    return total;
}

std::vector<Tensor*> Segment::parameters() {
    std::vector<Tensor*> out;
    for (auto& layer : layers_) {
        for (Tensor* p : layer->parameters()) out.push_back(p);
    }
    return out;
}

std::vector<Tensor*> Segment::gradients() {
    std::vector<Tensor*> out;
    for (auto& layer : layers_) {
        for (Tensor* g : layer->gradients()) out.push_back(g);
    }
    return out;
}

Segment Segment::clone() const {
    Segment copy;
    for (const auto& layer : layers_) copy.push(layer->clone());
    return copy;
}

ExitRun::ExitRun(ExitGraph& graph, Tensor input)
    : graph_(&graph), trunk_activation_(std::move(input)) {
    IMX_EXPECTS(graph.num_exits() > 0);
}

Tensor ExitRun::advance_to(int exit_index) {
    IMX_EXPECTS(exit_index > last_exit_);
    IMX_EXPECTS(exit_index < graph_->num_exits());
    while (trunk_position_ <= exit_index) {
        trunk_activation_ =
            graph_->trunk_[static_cast<std::size_t>(trunk_position_)].forward(
                trunk_activation_);
        ++trunk_position_;
    }
    last_exit_ = exit_index;
    return graph_->branches_[static_cast<std::size_t>(exit_index)].forward(
        trunk_activation_);
}

std::int64_t ExitRun::incremental_macs(int exit_index) const {
    IMX_EXPECTS(exit_index > last_exit_ && exit_index < graph_->num_exits());
    Shape shape = trunk_position_ == 0
                      ? graph_->input_shape_
                      : graph_->trunk_input_shape(trunk_position_);
    std::int64_t total = 0;
    Shape cursor = shape;
    for (int s = trunk_position_; s <= exit_index; ++s) {
        total += graph_->trunk_[static_cast<std::size_t>(s)].macs(cursor);
        cursor = graph_->trunk_[static_cast<std::size_t>(s)].output_shape(cursor);
    }
    total += graph_->branches_[static_cast<std::size_t>(exit_index)].macs(cursor);
    return total;
}

void ExitGraph::add_exit(Segment trunk_segment, Segment branch) {
    trunk_.push_back(std::move(trunk_segment));
    branches_.push_back(std::move(branch));
}

Tensor ExitGraph::forward_to_exit(const Tensor& input, int exit_index) {
    ExitRun run = begin(input);
    return run.advance_to(exit_index);
}

std::vector<Tensor> ExitGraph::forward_all(const Tensor& input) {
    IMX_EXPECTS(num_exits() > 0);
    std::vector<Tensor> logits;
    logits.reserve(branches_.size());
    cached_segment_outputs_.clear();
    Tensor x = input;
    for (std::size_t i = 0; i < trunk_.size(); ++i) {
        x = trunk_[i].forward(x);
        cached_segment_outputs_.push_back(x);
        logits.push_back(branches_[i].forward(x));
    }
    return logits;
}

void ExitGraph::backward_all(const std::vector<Tensor>& grad_logits,
                             const std::vector<double>& exit_weights) {
    IMX_EXPECTS(grad_logits.size() == branches_.size());
    IMX_EXPECTS(exit_weights.size() == branches_.size());
    IMX_EXPECTS(cached_segment_outputs_.size() == trunk_.size());

    // Branch backwards first; collect gradient w.r.t. each segment output.
    std::vector<Tensor> seg_grads(trunk_.size());
    for (std::size_t i = 0; i < branches_.size(); ++i) {
        Tensor g = grad_logits[i];
        g.scale(static_cast<float>(exit_weights[i]));
        seg_grads[i] = branches_[i].backward(g);
    }
    // Trunk backward from the deepest segment, accumulating branch grads.
    Tensor downstream;  // grad flowing from segment i+1 into segment i output
    for (std::size_t i = trunk_.size(); i-- > 0;) {
        Tensor total = seg_grads[i];
        if (!downstream.empty()) total.add_scaled(downstream, 1.0F);
        downstream = trunk_[i].backward(total);
    }
}

std::int64_t ExitGraph::exit_macs(int exit_index) const {
    IMX_EXPECTS(exit_index >= 0 && exit_index < num_exits());
    Shape cursor = input_shape_;
    std::int64_t total = 0;
    for (int s = 0; s <= exit_index; ++s) {
        total += trunk_[static_cast<std::size_t>(s)].macs(cursor);
        cursor = trunk_[static_cast<std::size_t>(s)].output_shape(cursor);
    }
    total += branches_[static_cast<std::size_t>(exit_index)].macs(cursor);
    return total;
}

std::int64_t ExitGraph::total_macs() const {
    Shape cursor = input_shape_;
    std::int64_t total = 0;
    for (std::size_t s = 0; s < trunk_.size(); ++s) {
        total += trunk_[s].macs(cursor);
        cursor = trunk_[s].output_shape(cursor);
        total += branches_[s].macs(cursor);
    }
    return total;
}

std::int64_t ExitGraph::param_count() const {
    std::int64_t total = 0;
    for (const auto& s : trunk_) total += s.param_count();
    for (const auto& b : branches_) total += b.param_count();
    return total;
}

std::vector<Tensor*> ExitGraph::parameters() {
    std::vector<Tensor*> out;
    for (auto& s : trunk_) {
        for (Tensor* p : s.parameters()) out.push_back(p);
    }
    for (auto& b : branches_) {
        for (Tensor* p : b.parameters()) out.push_back(p);
    }
    return out;
}

std::vector<Tensor*> ExitGraph::gradients() {
    std::vector<Tensor*> out;
    for (auto& s : trunk_) {
        for (Tensor* g : s.gradients()) out.push_back(g);
    }
    for (auto& b : branches_) {
        for (Tensor* g : b.gradients()) out.push_back(g);
    }
    return out;
}

void ExitGraph::zero_grad() {
    for (Tensor* g : gradients()) g->fill(0.0F);
}

Shape ExitGraph::trunk_input_shape(int i) const {
    IMX_EXPECTS(i >= 0 && i <= num_exits());
    Shape cursor = input_shape_;
    for (int s = 0; s < i; ++s) {
        cursor = trunk_[static_cast<std::size_t>(s)].output_shape(cursor);
    }
    return cursor;
}

ExitGraph ExitGraph::clone() const {
    ExitGraph copy(input_shape_);
    for (std::size_t i = 0; i < trunk_.size(); ++i) {
        copy.add_exit(trunk_[i].clone(), branches_[i].clone());
    }
    return copy;
}

}  // namespace imx::nn
