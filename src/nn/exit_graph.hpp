// Multi-exit network graph (BranchyNet-style, paper Fig. 1c).
//
// Topology: a trunk split into m segments; exit i consumes trunk segments
// 0..i and then runs its own branch (classifier head). The last exit's branch
// is the final classifier. This representation makes the paper's
// *incremental inference* a first-class operation: ExitRun keeps the trunk
// activation alive so that, after emitting a result at exit i, the network
// can resume from segment i+1 without recomputing the shared prefix.
#ifndef IMX_NN_EXIT_GRAPH_HPP
#define IMX_NN_EXIT_GRAPH_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace imx::nn {

/// An ordered stack of layers executed sequentially.
class Segment {
public:
    Segment() = default;
    void push(LayerPtr layer) { layers_.push_back(std::move(layer)); }

    Tensor forward(const Tensor& input);
    Tensor backward(const Tensor& grad_output);

    [[nodiscard]] Shape output_shape(Shape input_shape) const;
    [[nodiscard]] std::int64_t macs(Shape input_shape) const;
    [[nodiscard]] std::int64_t param_count() const;

    [[nodiscard]] std::size_t size() const { return layers_.size(); }
    [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
    [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

    std::vector<Tensor*> parameters();
    std::vector<Tensor*> gradients();

    [[nodiscard]] Segment clone() const;

private:
    std::vector<LayerPtr> layers_;
};

class ExitGraph;

/// A resumable forward pass: advances exit by exit, caching trunk state.
/// This is the software analogue of the paper's incremental inference —
/// "proceed to the following exit" (Sec. II) costs only the *additional*
/// trunk segments plus the next branch.
class ExitRun {
public:
    ExitRun(ExitGraph& graph, Tensor input);

    /// Run up to and including exit `exit_index`; returns logits at that exit.
    /// Must be called with non-decreasing exit indices.
    Tensor advance_to(int exit_index);

    /// MACs that advance_to(exit_index) would execute from the current
    /// position (the incremental cost).
    [[nodiscard]] std::int64_t incremental_macs(int exit_index) const;

    [[nodiscard]] int last_exit() const { return last_exit_; }

private:
    ExitGraph* graph_;
    Tensor trunk_activation_;
    int trunk_position_ = 0;  // trunk segments already executed
    int last_exit_ = -1;
};

/// Multi-exit network: trunk segments + one branch per exit.
class ExitGraph {
public:
    /// input_shape is the (C,H,W) sample shape the network expects.
    explicit ExitGraph(Shape input_shape) : input_shape_(std::move(input_shape)) {}

    /// Append a trunk segment and its exit branch. Exit i's branch consumes
    /// the output of trunk segments 0..i.
    void add_exit(Segment trunk_segment, Segment branch);

    [[nodiscard]] int num_exits() const { return static_cast<int>(branches_.size()); }
    [[nodiscard]] const Shape& input_shape() const { return input_shape_; }

    /// One-shot forward to a specific exit.
    Tensor forward_to_exit(const Tensor& input, int exit_index);

    /// Begin a resumable (incremental) inference.
    [[nodiscard]] ExitRun begin(Tensor input) { return ExitRun(*this, std::move(input)); }

    /// Forward through all exits (training path); returns logits per exit.
    std::vector<Tensor> forward_all(const Tensor& input);

    /// Backward for forward_all: per-exit loss gradients, weighted; trunk
    /// gradients accumulate across branches (joint multi-exit training).
    void backward_all(const std::vector<Tensor>& grad_logits,
                      const std::vector<double>& exit_weights);

    /// MACs to reach exit `exit_index` from scratch.
    [[nodiscard]] std::int64_t exit_macs(int exit_index) const;

    /// MACs of every layer executed once (trunk + every branch): the
    /// "Fmodel" of paper Eq. 8.
    [[nodiscard]] std::int64_t total_macs() const;

    [[nodiscard]] std::int64_t param_count() const;

    std::vector<Tensor*> parameters();
    std::vector<Tensor*> gradients();
    void zero_grad();

    [[nodiscard]] Segment& trunk_segment(int i) { return trunk_.at(static_cast<std::size_t>(i)); }
    [[nodiscard]] Segment& branch(int i) { return branches_.at(static_cast<std::size_t>(i)); }
    [[nodiscard]] const Segment& trunk_segment(int i) const {
        return trunk_.at(static_cast<std::size_t>(i));
    }
    [[nodiscard]] const Segment& branch(int i) const {
        return branches_.at(static_cast<std::size_t>(i));
    }

    /// Shape entering trunk segment i (i == num_exits() means final output).
    [[nodiscard]] Shape trunk_input_shape(int i) const;

    [[nodiscard]] ExitGraph clone() const;

private:
    friend class ExitRun;

    Shape input_shape_;
    std::vector<Segment> trunk_;
    std::vector<Segment> branches_;
    // Cached per-segment outputs of the last forward_all (for backward_all).
    std::vector<Tensor> cached_segment_outputs_;
};

}  // namespace imx::nn

#endif  // IMX_NN_EXIT_GRAPH_HPP
