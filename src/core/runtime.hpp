/// \file
/// \brief Deprecated compatibility aliases for the Q-learning exit runtime,
/// which lives in the policy zoo (sim/policies/qlearning.hpp) so the
/// registry in sim/policies/registry.hpp can construct it by name.
///
/// Nothing in this repository includes this header anymore — every internal
/// call site names `sim::RuntimeConfig` / `sim::QLearningExitPolicy`
/// directly. The aliases are kept solely so out-of-tree code written
/// against the original `core::` spellings keeps compiling; they are thin
/// `using` declarations (same types, not copies), so the two spellings are
/// freely interchangeable during a gradual migration. New code should
/// include sim/policies/qlearning.hpp and use the `sim::` names.
#ifndef IMX_CORE_RUNTIME_HPP
#define IMX_CORE_RUNTIME_HPP

#include "sim/policies/qlearning.hpp"

namespace imx::core {

using RuntimeConfig = sim::RuntimeConfig;
using QLearningExitPolicy = sim::QLearningExitPolicy;

}  // namespace imx::core

#endif  // IMX_CORE_RUNTIME_HPP
