/// \file
/// \brief Compatibility aliases for the Q-learning exit runtime, which now
/// lives in the policy zoo (sim/policies/qlearning.hpp) so the registry in
/// sim/policies/registry.hpp can construct it by name. Existing call sites
/// keep using `core::RuntimeConfig` / `core::QLearningExitPolicy`; new code
/// should include sim/policies/qlearning.hpp directly.
#ifndef IMX_CORE_RUNTIME_HPP
#define IMX_CORE_RUNTIME_HPP

#include "sim/policies/qlearning.hpp"

namespace imx::core {

using RuntimeConfig = sim::RuntimeConfig;
using QLearningExitPolicy = sim::QLearningExitPolicy;

}  // namespace imx::core

#endif  // IMX_CORE_RUNTIME_HPP
