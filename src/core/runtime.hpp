// Runtime exit selection and incremental inference (paper Sec. IV).
//
// Two Q-tables:
//  * exit table — state = (stored-energy bin x charging-rate bin), actions =
//    the m exits. Rewards chain between consecutive events (Eq. 16) so the
//    policy learns energy *reservation*: a high-accuracy expensive exit now
//    is worth less if it starves the next events. Missed events feed a
//    penalty into the pending reward.
//  * incremental table — state = (confidence bin x energy bin), actions =
//    {emit, continue}; decides whether to propagate a low-confidence result
//    to the next exit (second decision of Sec. IV).
#ifndef IMX_CORE_RUNTIME_HPP
#define IMX_CORE_RUNTIME_HPP

#include <cstdint>
#include <optional>

#include "rl/qtable.hpp"
#include "sim/policy.hpp"

namespace imx::core {

struct RuntimeConfig {
    std::size_t energy_bins = 8;
    std::size_t rate_bins = 6;
    std::size_t confidence_bins = 5;
    std::size_t incremental_energy_bins = 6;
    rl::QLearningConfig exit_q{/*alpha=*/0.10, /*gamma=*/0.60,
                               /*epsilon=*/0.30, /*epsilon_decay=*/0.9997,
                               /*epsilon_min=*/0.02, /*initial_q=*/0.5};
    rl::QLearningConfig incremental_q{/*alpha=*/0.20, /*gamma=*/0.0,
                                      /*epsilon=*/0.15,
                                      /*epsilon_decay=*/0.999,
                                      /*epsilon_min=*/0.02, /*initial_q=*/0.4};
    double miss_penalty = 1.0;  ///< subtracted from the pending reward per miss
    bool enable_incremental = true;
    /// Energy headroom (fraction of capacity) required to consider continuing.
    double incremental_headroom = 0.05;
    /// Small cost term discouraging continuation that adds no correctness.
    double continue_cost_penalty = 0.10;
    /// Charging-rate discretizer range (mW); rates saturate at the top bin.
    double max_rate_mw = 0.05;
    std::uint64_t seed = 321;
};

class QLearningExitPolicy final : public sim::ExitPolicy {
public:
    QLearningExitPolicy(int num_exits, const RuntimeConfig& config);

    int select_exit(const sim::EnergyState& state,
                    const sim::InferenceModel& model) override;
    bool continue_inference(const sim::EnergyState& state,
                            const sim::InferenceModel& model, int current_exit,
                            double confidence) override;
    void observe(const sim::EnergyState& state_at_selection, int exit_taken,
                 bool correct) override;
    void observe_missed() override;

    /// Freeze both tables (greedy, no updates) for evaluation episodes.
    void set_eval_mode(bool eval);
    [[nodiscard]] bool eval_mode() const { return eval_mode_; }

    /// Combined LUT footprint (paper: "the overhead of Q-learning is
    /// negligible"); tests assert this stays in the KB range.
    [[nodiscard]] std::size_t footprint_bytes() const;

    [[nodiscard]] const rl::QTable& exit_table() const { return exit_q_; }
    [[nodiscard]] const rl::QTable& incremental_table() const {
        return incremental_q_;
    }

private:
    [[nodiscard]] std::size_t exit_state(const sim::EnergyState& s) const;
    [[nodiscard]] std::size_t incremental_state(const sim::EnergyState& s,
                                                double confidence) const;

    int num_exits_;
    RuntimeConfig config_;
    rl::QTable exit_q_;
    rl::QTable incremental_q_;
    rl::Discretizer level_bins_;
    rl::Discretizer rate_bins_;
    rl::Discretizer conf_bins_;
    rl::Discretizer inc_level_bins_;
    bool eval_mode_ = false;

    // Pending inter-event transition (Eq. 16 chaining).
    struct Pending {
        std::size_t state = 0;
        std::size_t action = 0;
        double reward = 0.0;
    };
    std::optional<Pending> pending_;

    // Pending incremental decisions for the in-flight event.
    struct PendingIncremental {
        std::size_t state = 0;
        std::size_t action = 0;
    };
    std::vector<PendingIncremental> pending_incremental_;
};

}  // namespace imx::core

#endif  // IMX_CORE_RUNTIME_HPP
