#include "core/oracle_model.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace imx::core {

namespace {

/// Stateless hash -> U(0,1); decorrelated streams via distinct salts.
double hash_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                      (b * 0xc2b2ae3d27d4eb4fULL);
    const std::uint64_t z = util::splitmix64(s);
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

OracleInferenceModel::OracleInferenceModel(
    const compress::NetworkDesc& desc, const compress::Policy& policy,
    std::vector<double> exit_accuracy_percent, const OracleModelConfig& config)
    : accuracy_(std::move(exit_accuracy_percent)), config_(config) {
    IMX_EXPECTS(static_cast<int>(accuracy_.size()) == desc.num_exits);
    // Note: exit accuracy need not be monotone (a searched policy can leave a
    // middle exit weak). The shared latent difficulty keeps outcomes
    // consistent: advancing to a weaker exit can genuinely flip a result.
    exit_macs_ = compress::per_exit_macs(desc, policy);
    model_bytes_ = compress::model_bytes(desc, policy);
    path_macs_.resize(accuracy_.size());
    for (int e = 0; e < desc.num_exits; ++e) {
        for (const int l : desc.exit_paths[static_cast<std::size_t>(e)]) {
            path_macs_[static_cast<std::size_t>(e)].emplace_back(
                l, compress::layer_macs(desc, policy, l));
        }
    }
}

int OracleInferenceModel::num_exits() const {
    return static_cast<int>(accuracy_.size());
}

std::int64_t OracleInferenceModel::exit_macs(int exit) const {
    IMX_EXPECTS(exit >= 0 && exit < num_exits());
    return exit_macs_[static_cast<std::size_t>(exit)];
}

std::int64_t OracleInferenceModel::incremental_macs(int from_exit,
                                                    int to_exit) const {
    IMX_EXPECTS(to_exit > from_exit && to_exit < num_exits());
    if (from_exit < 0) return exit_macs(to_exit);
    // Layers on to_exit's path that from_exit's path did not execute.
    const auto& from_path = path_macs_[static_cast<std::size_t>(from_exit)];
    std::int64_t total = 0;
    for (const auto& [layer, macs] : path_macs_[static_cast<std::size_t>(to_exit)]) {
        const bool already_run =
            std::any_of(from_path.begin(), from_path.end(),
                        [layer](const auto& p) { return p.first == layer; });
        if (!already_run) total += macs;
    }
    return total;
}

std::vector<std::int64_t> OracleInferenceModel::segment_macs(
    int from_exit, int to_exit) const {
    IMX_EXPECTS(to_exit > from_exit && to_exit < num_exits());
    // Same layer walk as incremental_macs, but each new layer is its own
    // segment (in path order) instead of being summed.
    std::vector<std::int64_t> segments;
    for (const auto& [layer, macs] :
         path_macs_[static_cast<std::size_t>(to_exit)]) {
        bool already_run = false;
        if (from_exit >= 0) {
            const auto& from_path =
                path_macs_[static_cast<std::size_t>(from_exit)];
            already_run =
                std::any_of(from_path.begin(), from_path.end(),
                            [layer = layer](const auto& p) {
                                return p.first == layer;
                            });
        }
        if (!already_run) segments.push_back(macs);
    }
    if (segments.empty()) segments.push_back(0);
    return segments;
}

double OracleInferenceModel::difficulty(int event_id) const {
    return hash_uniform(config_.seed, static_cast<std::uint64_t>(event_id), 0);
}

sim::ExitOutcome OracleInferenceModel::evaluate(int event_id, int exit) {
    IMX_EXPECTS(exit >= 0 && exit < num_exits());
    const double u = difficulty(event_id);
    const double acc = accuracy_[static_cast<std::size_t>(exit)] / 100.0;

    sim::ExitOutcome outcome;
    outcome.correct = u < acc;

    const double margin = acc - u;
    const double jitter =
        (hash_uniform(config_.seed, static_cast<std::uint64_t>(event_id),
                      static_cast<std::uint64_t>(exit) + 1) -
         0.5) *
        2.0 * config_.confidence_noise;
    outcome.confidence = util::clamp(
        util::sigmoid(config_.confidence_slope * margin + config_.confidence_bias +
                      jitter),
        0.0, 1.0);
    return outcome;
}

}  // namespace imx::core
