#include "core/oracle_model.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace imx::core {

namespace {

/// Stateless hash -> U(0,1); decorrelated streams via distinct salts.
double hash_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = seed ^ (a * 0x9e3779b97f4a7c15ULL) ^
                      (b * 0xc2b2ae3d27d4eb4fULL);
    const std::uint64_t z = util::splitmix64(s);
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

OracleInferenceModel::OracleInferenceModel(
    const compress::NetworkDesc& desc, const compress::Policy& policy,
    std::vector<double> exit_accuracy_percent, const OracleModelConfig& config)
    : accuracy_(std::move(exit_accuracy_percent)), config_(config) {
    IMX_EXPECTS(static_cast<int>(accuracy_.size()) == desc.num_exits);
    // Note: exit accuracy need not be monotone (a searched policy can leave a
    // middle exit weak). The shared latent difficulty keeps outcomes
    // consistent: advancing to a weaker exit can genuinely flip a result.
    exit_macs_ = compress::per_exit_macs(desc, policy);
    model_bytes_ = compress::model_bytes(desc, policy);
    path_macs_.resize(accuracy_.size());
    for (int e = 0; e < desc.num_exits; ++e) {
        for (const int l : desc.exit_paths[static_cast<std::size_t>(e)]) {
            path_macs_[static_cast<std::size_t>(e)].emplace_back(
                l, compress::layer_macs(desc, policy, l));
        }
    }

    // Precompute every (from, to) hop once; the simulator queries these on
    // each scheduling decision, and the set-difference walk is O(path^2).
    const int num_e = desc.num_exits;
    incremental_table_.assign(static_cast<std::size_t>(num_e) + 1,
                              std::vector<std::int64_t>(
                                  static_cast<std::size_t>(num_e), 0));
    segment_table_.assign(
        static_cast<std::size_t>(num_e) + 1,
        std::vector<std::vector<std::int64_t>>(
            static_cast<std::size_t>(num_e)));
    for (int from = -1; from < num_e; ++from) {
        for (int to = from + 1; to < num_e; ++to) {
            const auto row = static_cast<std::size_t>(from + 1);
            const auto col = static_cast<std::size_t>(to);
            std::int64_t total = 0;
            std::vector<std::int64_t> segments;
            for (const auto& [layer, macs] : path_macs_[col]) {
                bool already_run = false;
                if (from >= 0) {
                    const auto& from_path =
                        path_macs_[static_cast<std::size_t>(from)];
                    already_run = std::any_of(
                        from_path.begin(), from_path.end(),
                        [layer = layer](const auto& p) {
                            return p.first == layer;
                        });
                }
                if (!already_run) {
                    total += macs;
                    segments.push_back(macs);
                }
            }
            if (segments.empty()) segments.push_back(0);
            // Cold start reports the full per-exit cost (which includes
            // shared-layer accounting the path walk cannot see).
            incremental_table_[row][col] =
                from < 0 ? exit_macs_[col] : total;
            segment_table_[row][col] = std::move(segments);
        }
    }
}

int OracleInferenceModel::num_exits() const {
    return static_cast<int>(accuracy_.size());
}

std::int64_t OracleInferenceModel::exit_macs(int exit) const {
    IMX_EXPECTS(exit >= 0 && exit < num_exits());
    return exit_macs_[static_cast<std::size_t>(exit)];
}

std::int64_t OracleInferenceModel::incremental_macs(int from_exit,
                                                    int to_exit) const {
    IMX_EXPECTS(to_exit > from_exit && to_exit < num_exits());
    IMX_EXPECTS(from_exit >= -1);
    return incremental_table_[static_cast<std::size_t>(from_exit + 1)]
                             [static_cast<std::size_t>(to_exit)];
}

std::vector<std::int64_t> OracleInferenceModel::segment_macs(
    int from_exit, int to_exit) const {
    IMX_EXPECTS(to_exit > from_exit && to_exit < num_exits());
    IMX_EXPECTS(from_exit >= -1);
    return segment_table_[static_cast<std::size_t>(from_exit + 1)]
                         [static_cast<std::size_t>(to_exit)];
}

double OracleInferenceModel::difficulty(int event_id) const {
    if (!difficulty_valid_ || difficulty_event_ != event_id) {
        difficulty_event_ = event_id;
        difficulty_u_ = hash_uniform(config_.seed,
                                     static_cast<std::uint64_t>(event_id), 0);
        difficulty_valid_ = true;
    }
    return difficulty_u_;
}

sim::ExitOutcome OracleInferenceModel::evaluate(int event_id, int exit) {
    IMX_EXPECTS(exit >= 0 && exit < num_exits());
    const double u = difficulty(event_id);
    const double acc = accuracy_[static_cast<std::size_t>(exit)] / 100.0;

    sim::ExitOutcome outcome;
    outcome.correct = u < acc;

    const double margin = acc - u;
    const double jitter =
        (hash_uniform(config_.seed, static_cast<std::uint64_t>(event_id),
                      static_cast<std::uint64_t>(exit) + 1) -
         0.5) *
        2.0 * config_.confidence_noise;
    outcome.confidence = util::clamp(
        util::sigmoid(config_.confidence_slope * margin + config_.confidence_bias +
                      jitter),
        0.0, 1.0);
    return outcome;
}

}  // namespace imx::core
