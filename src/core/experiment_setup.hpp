// Canonical experiment configuration shared by every figure bench:
// the solar trace, the 500-event schedule, the storage/MCU models, and the
// deployed (compressed) network. Calibration notes in DESIGN.md:
// the paper's Fig. 5 numbers imply E_total ~= 281.5 mJ of harvested energy
// across the 500-event run (IEpmJ 0.89 at 50.1 % all-event accuracy), with
// SonicNet saturating at ~93 processed events of ~3 mJ each. We reproduce
// those operating conditions with a one-day solar profile compressed to
// ~13,000 s, rescaled to that energy total.
#ifndef IMX_CORE_EXPERIMENT_SETUP_HPP
#define IMX_CORE_EXPERIMENT_SETUP_HPP

#include <cstdint>
#include <vector>

#include "compress/network_desc.hpp"
#include "core/accuracy_model.hpp"
#include "energy/power_trace.hpp"
#include "energy/trace_registry.hpp"
#include "sim/arrivals/registry.hpp"
#include "sim/event_gen.hpp"
#include "sim/simulator.hpp"

namespace imx::core {

struct SetupConfig {
    int event_count = 500;
    double duration_s = 13000.0;
    double total_harvest_mj = 281.5;
    std::uint64_t trace_seed = 7;
    std::uint64_t event_seed = 99;
    /// Request workload, resolved through the arrival registry
    /// (sim/arrivals/registry.hpp). The default — "uniform" with an empty
    /// parameter map — is the paper's Sec. V-A stream, bitwise identical to
    /// the pre-registry ArrivalKind::kUniform schedule.
    std::string arrival_source = "uniform";
    sim::ArrivalParams arrival_params;
    /// Harvesting environment, resolved through the energy trace registry
    /// (energy/trace_registry.hpp). The default — "solar" with an empty
    /// parameter map — is the canonical paper trace, bitwise identical to
    /// the pre-registry hard-coded solar path. Every trace is rescaled to
    /// total_harvest_mj so environments compare at the same energy budget;
    /// file-backed sources ("csv") take their duration/grid from the file.
    std::string trace_source = "solar";
    energy::TraceParams trace_params;
};

/// Everything a bench needs to run the paper's evaluation.
struct ExperimentSetup {
    energy::PowerTrace trace;
    std::vector<sim::Event> events;
    sim::SimConfig multi_exit_sim;    ///< config for our runtime
    sim::SimConfig checkpointed_sim;  ///< config for the baseline runtime
    compress::NetworkDesc network;
    compress::Policy deployed_policy;       ///< reference nonuniform policy
    std::vector<double> exit_accuracy;      ///< oracle accuracy (%) per exit
    /// The config this setup was built from. Replica machinery and arrival
    /// patches regenerate event streams through config.arrival_source /
    /// config.arrival_params so non-canonical replicas stay on the same
    /// workload process as replica 0.
    SetupConfig config;

    [[nodiscard]] sim::Simulator make_multi_exit_simulator() const {
        return sim::Simulator(trace, multi_exit_sim);
    }
    [[nodiscard]] sim::Simulator make_checkpointed_simulator() const {
        return sim::Simulator(trace, checkpointed_sim);
    }
};

/// Build the canonical setup (deterministic for a given config).
ExperimentSetup make_paper_setup(const SetupConfig& config = {});

/// The shared storage model used by the paper setup.
energy::StorageConfig paper_storage_config();

/// The shared MCU model used by the paper setup.
mcu::McuConfig paper_mcu_config();

}  // namespace imx::core

#endif  // IMX_CORE_EXPERIMENT_SETUP_HPP
