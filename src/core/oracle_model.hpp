// sim::InferenceModel backed by the calibrated accuracy oracle.
//
// Each event carries a latent difficulty u ~ U(0,1) (hashed from its id, so
// outcomes are reproducible and consistent across exits): exit i classifies
// the event correctly iff u < Acc_i. When Acc_i increases with exit depth
// (the common case), an event solved by a shallow exit stays solved by
// deeper ones and hard events (large u) are exactly the ones incremental
// inference can rescue — the behaviour BranchyNet-style cascades show on
// real data.
//
// Confidence is modeled as 1 - normalized entropy via a logistic link on the
// margin (Acc_i - u): comfortably easy events produce confident, low-entropy
// softmax outputs, borderline ones sit near the threshold.
#ifndef IMX_CORE_ORACLE_MODEL_HPP
#define IMX_CORE_ORACLE_MODEL_HPP

#include <vector>

#include "compress/network_desc.hpp"
#include "sim/inference_model.hpp"

namespace imx::core {

struct OracleModelConfig {
    double confidence_slope = 7.0;   ///< logistic slope on the margin
    double confidence_bias = 0.8;    ///< shifts overall confidence upward
    double confidence_noise = 0.35;  ///< per-(event,exit) jitter
    std::uint64_t seed = 1234;
};

class OracleInferenceModel final : public sim::InferenceModel {
public:
    /// Costs come from the network + policy; accuracies (percent) from the
    /// accuracy oracle evaluated on that policy.
    OracleInferenceModel(const compress::NetworkDesc& desc,
                         const compress::Policy& policy,
                         std::vector<double> exit_accuracy_percent,
                         const OracleModelConfig& config = {});

    [[nodiscard]] int num_exits() const override;
    [[nodiscard]] std::int64_t exit_macs(int exit) const override;
    [[nodiscard]] std::int64_t incremental_macs(int from_exit,
                                                int to_exit) const override;
    [[nodiscard]] std::vector<std::int64_t> segment_macs(
        int from_exit, int to_exit) const override;
    [[nodiscard]] sim::ExitOutcome evaluate(int event_id, int exit) override;
    [[nodiscard]] double model_bytes() const override { return model_bytes_; }

    [[nodiscard]] const std::vector<double>& exit_accuracy() const {
        return accuracy_;
    }

    /// Latent difficulty of an event (exposed for tests).
    [[nodiscard]] double difficulty(int event_id) const;

private:
    std::vector<std::int64_t> exit_macs_;
    /// macs_of_layers_[e] = policy-compressed MACs of every layer on exit
    /// e's path, keyed by layer index (for incremental set differences).
    std::vector<std::vector<std::pair<int, std::int64_t>>> path_macs_;
    /// Full (from, to) tables, precomputed in the constructor so the
    /// simulator's per-step queries are O(1) lookups instead of O(path^2)
    /// set differences. Row index is from_exit + 1 (row 0 = cold start).
    std::vector<std::vector<std::int64_t>> incremental_table_;
    std::vector<std::vector<std::vector<std::int64_t>>> segment_table_;
    std::vector<double> accuracy_;
    double model_bytes_ = 0.0;
    OracleModelConfig config_;
    /// Last-event difficulty memo: the simulator evaluates the same event
    /// at several exits in a row, and the latent u depends only on the id.
    mutable int difficulty_event_ = -1;
    mutable bool difficulty_valid_ = false;
    mutable double difficulty_u_ = 0.0;
};

}  // namespace imx::core

#endif  // IMX_CORE_ORACLE_MODEL_HPP
