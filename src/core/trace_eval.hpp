// Fast trace-aware policy evaluator used inside the compression search
// reward (paper Eq. 4-8 and Eq. 10).
//
// Evaluates a candidate compression policy under the EH power trace and
// event distribution with the *static* exit-selection rule the paper uses
// during compression: pick the deepest exit whose energy cost fits the
// currently buffered energy. Purely energetic (no busy-time modeling): this
// mirrors the paper's Eq. 5 formulation and keeps one evaluation at a few
// microseconds so the DDPG search can afford thousands of episodes. The full
// discrete-event simulator (sim/) is used for the runtime-phase experiments.
#ifndef IMX_CORE_TRACE_EVAL_HPP
#define IMX_CORE_TRACE_EVAL_HPP

#include <cstdint>
#include <vector>

#include "energy/power_trace.hpp"
#include "energy/storage.hpp"
#include "sim/event_gen.hpp"

namespace imx::core {

struct TraceEvalResult {
    /// Expected accuracy over all events in [0,1]; missed events score 0.
    /// Equals Racc = sum_i p_i * Acc_i of paper Eq. 10 with p_i measured
    /// over all N events.
    double avg_accuracy_all = 0.0;
    /// p_i: fraction of all events that exited at exit i.
    std::vector<double> exit_probability;
    int processed = 0;
    int missed = 0;
};

class StaticTraceEvaluator {
public:
    StaticTraceEvaluator(const energy::PowerTrace& trace,
                         const std::vector<sim::Event>& events,
                         const energy::StorageConfig& storage,
                         double energy_per_mmac_mj,
                         double per_inference_overhead_mj = 0.0);

    /// Evaluate a deployed configuration given per-exit MACs and accuracies
    /// (accuracy in percent). Vectors must have equal length m >= 1.
    [[nodiscard]] TraceEvalResult evaluate(
        const std::vector<std::int64_t>& exit_macs,
        const std::vector<double>& exit_accuracy_percent) const;

    [[nodiscard]] double total_harvestable_mj() const;

private:
    // Net storable energy between consecutive events (after converter
    // efficiency and leakage), precomputed once.
    std::vector<double> inter_event_energy_mj_;
    energy::StorageConfig storage_;
    double energy_per_mmac_mj_;
    double overhead_mj_;
};

}  // namespace imx::core

#endif  // IMX_CORE_TRACE_EVAL_HPP
