#include "core/search.hpp"

#include <algorithm>
#include <cmath>

#include "compress/policy.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace imx::core {

PolicyEvaluator::PolicyEvaluator(const compress::NetworkDesc& desc,
                                 const AccuracyModel& accuracy,
                                 const StaticTraceEvaluator& trace_eval,
                                 const compress::Constraints& constraints,
                                 bool trace_aware)
    : desc_(&desc),
      accuracy_(&accuracy),
      trace_eval_(&trace_eval),
      constraints_(constraints),
      trace_aware_(trace_aware) {}

PolicyEvaluator::Score PolicyEvaluator::score(
    const compress::Policy& policy) const {
    Score s;
    s.total_macs = static_cast<double>(compress::total_macs(*desc_, policy));
    s.bytes = compress::model_bytes(*desc_, policy);
    s.flops_ok = s.total_macs <= constraints_.f_target_macs;
    s.size_ok = s.bytes <= constraints_.s_target_bytes;

    const std::vector<double> acc = accuracy_->exit_accuracy(policy);
    if (trace_aware_) {
        const TraceEvalResult r =
            trace_eval_->evaluate(compress::per_exit_macs(*desc_, policy), acc);
        s.racc = r.avg_accuracy_all;
    } else {
        double mean = 0.0;
        for (const double a : acc) mean += a / 100.0;
        s.racc = mean / static_cast<double>(acc.size());
    }
    return s;
}

CompressionSearch::CompressionSearch(const PolicyEvaluator& evaluator,
                                     SearchConfig config)
    : evaluator_(&evaluator), config_(config) {
    IMX_EXPECTS(config.episodes > 0);
    IMX_EXPECTS(config.warmup_episodes >= 0);
}

std::vector<float> CompressionSearch::observation(
    int layer, const compress::Policy& partial, double flop_reduced,
    double size_reduced) const {
    const compress::NetworkDesc& desc = evaluator_->network();
    const auto num_layers = static_cast<double>(desc.num_layers());
    const auto li = static_cast<std::size_t>(layer);

    const double total_macs =
        static_cast<double>(compress::total_macs(desc, compress::Policy::uniform(
                                                           desc.num_layers(), 1.0, 8, 8)));
    const double total_bytes = compress::model_bytes(
        desc, compress::Policy::uniform(desc.num_layers(), 1.0, 8, 8));

    double flop_remaining = 0.0;
    double size_remaining = 0.0;
    for (std::size_t l = li; l < desc.num_layers(); ++l) {
        flop_remaining += static_cast<double>(desc.layers[l].base_macs);
        size_remaining += static_cast<double>(desc.layers[l].weight_params);
    }

    double max_count = 1.0;
    double max_weight = 1.0;
    for (const auto& ld : desc.layers) {
        max_count = std::max(max_count, static_cast<double>(
                                            std::max(ld.in_count, ld.out_count)));
        max_weight = std::max(max_weight, static_cast<double>(ld.weight_params));
    }

    const compress::LayerPolicy prev =
        layer == 0 ? compress::LayerPolicy{1.0, 8, 8} : partial[li - 1];
    const compress::LayerDesc& ld = desc.layers[li];

    // Eq. 9: (l, a_{l-1}, bw_{l-1}, ba_{l-1}, flop_reduced, flop_remain,
    //         s_reduced, s_remain, iconv, cin, cout, sweight), all in [0,1].
    return {
        static_cast<float>(static_cast<double>(layer) / num_layers),
        static_cast<float>(prev.preserve_ratio),
        static_cast<float>(prev.weight_bits / 8.0),
        static_cast<float>(prev.activation_bits / 8.0),
        static_cast<float>(flop_reduced / total_macs),
        static_cast<float>(static_cast<double>(desc.layers[li].base_macs +
                                               flop_remaining) /
                           total_macs),
        static_cast<float>(size_reduced / std::max(total_bytes, 1.0)),
        static_cast<float>(size_remaining / max_weight /
                           static_cast<double>(desc.num_layers())),
        ld.kind == compress::LayerKind::kConv ? 1.0F : 0.0F,
        static_cast<float>(static_cast<double>(ld.in_count) / max_count),
        static_cast<float>(static_cast<double>(ld.out_count) / max_count),
        static_cast<float>(static_cast<double>(ld.weight_params) / max_weight),
    };
}

namespace {

double map_action_to_alpha(double action) {
    return compress::snap_preserve_ratio(compress::kMinPreserve +
                                         action * (compress::kMaxPreserve -
                                                   compress::kMinPreserve));
}

void track_best(const PolicyEvaluator::Score& s, const compress::Policy& policy,
                SearchResult& result) {
    if (s.feasible() && s.racc > result.best_reward) {
        result.best_reward = s.racc;
        result.best_policy = policy;
        result.found_feasible = true;
    }
}

}  // namespace

SearchResult CompressionSearch::run_ddpg() {
    const compress::NetworkDesc& desc = evaluator_->network();
    const int num_layers = static_cast<int>(desc.num_layers());
    constexpr int kStateDim = 12;

    rl::DdpgConfig prune_cfg;
    prune_cfg.state_dim = kStateDim;
    prune_cfg.action_dim = 1;
    prune_cfg.seed = config_.seed;
    rl::DdpgConfig quant_cfg;
    quant_cfg.state_dim = kStateDim;
    quant_cfg.action_dim = 2;  // weight bits, activation bits
    quant_cfg.seed = config_.seed ^ 0x7777;

    rl::DdpgAgent prune_agent(prune_cfg);
    rl::DdpgAgent quant_agent(quant_cfg);
    util::Rng warmup_rng(config_.seed ^ 0x1111);

    SearchResult result;
    result.best_policy = compress::Policy::uniform(desc.num_layers(), 1.0, 8, 8);

    // Moving-average reward baselines (AMC-style centering): with a single
    // episode-level reward broadcast to every layer transition, centering is
    // what gives the critic a usable action gradient.
    double prune_baseline = 0.0;
    double quant_baseline = 0.0;
    bool baseline_init = false;
    constexpr double kBaselineAlpha = 0.05;

    for (int episode = 0; episode < config_.episodes; ++episode) {
        compress::Policy policy =
            compress::Policy::uniform(desc.num_layers(), 1.0, 8, 8);
        std::vector<std::vector<float>> states;
        std::vector<std::vector<float>> prune_actions;
        std::vector<std::vector<float>> quant_actions;

        double flop_reduced = 0.0;
        double size_reduced = 0.0;
        const bool warmup = episode < config_.warmup_episodes;

        for (int l = 0; l < num_layers; ++l) {
            const std::vector<float> obs =
                observation(l, policy, flop_reduced, size_reduced);
            std::vector<double> ap;
            std::vector<double> aq;
            if (warmup) {
                // push_back instead of initializer-list assign: keeps the RNG
                // draw order identical and sidesteps a GCC 12 -Wnonnull false
                // positive on vector assignment at -O3.
                ap.push_back(warmup_rng.uniform());
                aq.push_back(warmup_rng.uniform());
                aq.push_back(warmup_rng.uniform());
            } else {
                ap = prune_agent.act_noisy(obs);
                aq = quant_agent.act_noisy(obs);
            }
            const auto li = static_cast<std::size_t>(l);
            policy[li].preserve_ratio = map_action_to_alpha(ap[0]);
            policy[li].weight_bits = compress::map_action_to_bits(
                aq[0], compress::kMinBits, compress::kMaxBits);
            policy[li].activation_bits = compress::map_action_to_bits(
                aq[1], compress::kMinBits, compress::kMaxBits);

            states.push_back(obs);
            prune_actions.push_back({static_cast<float>(ap[0])});
            quant_actions.push_back(
                {static_cast<float>(aq[0]), static_cast<float>(aq[1])});

            // Bookkeeping for the next observation.
            flop_reduced +=
                static_cast<double>(desc.layers[li].base_macs) -
                static_cast<double>(compress::layer_macs(desc, policy, l));
            size_reduced += static_cast<double>(desc.layers[li].weight_params) -
                            compress::layer_bytes(desc, policy, l);
        }

        const PolicyEvaluator::Score s = evaluator_->score(policy);
        ++result.evaluations;
        track_best(s, policy, result);

        // Eq. 11 / Eq. 12 rewards (shared-episode-reward DDPG, AMC-style).
        const double r_prune =
            s.flops_ok ? config_.lambda1 * s.racc : -config_.lambda1;
        const double r_quant =
            s.size_ok ? config_.lambda2 * s.racc : -config_.lambda2;
        result.episode_reward.push_back(s.feasible() ? s.racc : -1.0);

        if (!baseline_init) {
            prune_baseline = r_prune;
            quant_baseline = r_quant;
            baseline_init = true;
        } else {
            prune_baseline += kBaselineAlpha * (r_prune - prune_baseline);
            quant_baseline += kBaselineAlpha * (r_quant - quant_baseline);
        }

        for (int l = 0; l < num_layers; ++l) {
            const auto li = static_cast<std::size_t>(l);
            const bool terminal = l + 1 == num_layers;
            const std::vector<float>& next =
                terminal ? states[li] : states[li + 1];
            prune_agent.remember({states[li], prune_actions[li],
                                  static_cast<float>(r_prune - prune_baseline),
                                  next, terminal});
            quant_agent.remember({states[li], quant_actions[li],
                                  static_cast<float>(r_quant - quant_baseline),
                                  next, terminal});
        }
        if (!warmup) {
            for (int t = 0; t < config_.train_steps_per_episode; ++t) {
                prune_agent.train_step();
                quant_agent.train_step();
            }
        }
        prune_agent.end_episode();
        quant_agent.end_episode();
    }
    return result;
}

SearchResult CompressionSearch::run_random() {
    const compress::NetworkDesc& desc = evaluator_->network();
    util::Rng rng(config_.seed ^ 0xabcdef);
    SearchResult result;
    result.best_policy = compress::Policy::uniform(desc.num_layers(), 1.0, 8, 8);

    for (int episode = 0; episode < config_.episodes; ++episode) {
        compress::Policy policy =
            compress::Policy::uniform(desc.num_layers(), 1.0, 8, 8);
        for (auto& lp : policy.layers) {
            lp.preserve_ratio = map_action_to_alpha(rng.uniform());
            lp.weight_bits = static_cast<int>(
                rng.uniform_int(compress::kMinBits, compress::kMaxBits));
            lp.activation_bits = static_cast<int>(
                rng.uniform_int(compress::kMinBits, compress::kMaxBits));
        }
        const PolicyEvaluator::Score s = evaluator_->score(policy);
        ++result.evaluations;
        track_best(s, policy, result);
        result.episode_reward.push_back(s.feasible() ? s.racc : -1.0);
    }
    return result;
}

SearchResult CompressionSearch::run_annealing() {
    return anneal_from(compress::make_uniform_for_targets(
                           evaluator_->network(), evaluator_->constraints()),
                       config_.episodes, 0.05, config_.seed ^ 0xfedcba);
}

SearchResult CompressionSearch::run_ddpg_refined() {
    SearchResult ddpg = run_ddpg();
    const compress::Policy start =
        ddpg.found_feasible
            ? ddpg.best_policy
            : compress::make_uniform_for_targets(evaluator_->network(),
                                                 evaluator_->constraints());
    SearchResult refined = anneal_from(start, config_.episodes / 2, 0.01,
                                       config_.seed ^ 0x5ef1e);
    refined.evaluations += ddpg.evaluations;
    refined.episode_reward.insert(refined.episode_reward.begin(),
                                  ddpg.episode_reward.begin(),
                                  ddpg.episode_reward.end());
    if (ddpg.found_feasible && ddpg.best_reward > refined.best_reward) {
        refined.best_policy = ddpg.best_policy;
        refined.best_reward = ddpg.best_reward;
        refined.found_feasible = true;
    }
    return refined;
}

SearchResult CompressionSearch::anneal_from(const compress::Policy& start,
                                            int episodes,
                                            double initial_temperature,
                                            std::uint64_t seed) const {
    util::Rng rng(seed);

    // Penalized objective: infeasible candidates pay for their violation so
    // annealing can cross the boundary but settles inside it.
    auto objective = [this](const PolicyEvaluator::Score& s) {
        double obj = s.racc;
        if (!s.flops_ok) {
            obj -= 1.0 + s.total_macs / evaluator_->constraints().f_target_macs;
        }
        if (!s.size_ok) {
            obj -= 1.0 + s.bytes / evaluator_->constraints().s_target_bytes;
        }
        return obj;
    };

    compress::Policy current = start;
    PolicyEvaluator::Score current_score = evaluator_->score(current);

    SearchResult result;
    result.best_policy = current;
    result.evaluations = 1;
    track_best(current_score, current, result);

    double temperature = initial_temperature;
    const double cooling =
        std::pow(1e-3 / std::max(temperature, 1e-3),
                 1.0 / std::max(1, episodes - 1));

    for (int episode = 0; episode < episodes; ++episode) {
        compress::Policy candidate = current;
        // Mutate 1-3 random layers.
        const auto mutations = rng.uniform_int(1, 3);
        for (std::int64_t m = 0; m < mutations; ++m) {
            auto& lp = candidate.layers[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(candidate.size()) - 1))];
            switch (rng.uniform_int(0, 2)) {
                case 0:
                    lp.preserve_ratio = compress::snap_preserve_ratio(
                        lp.preserve_ratio +
                        (rng.bernoulli(0.5) ? 1 : -1) * compress::kPreserveStep *
                            static_cast<double>(rng.uniform_int(1, 3)));
                    break;
                case 1:
                    lp.weight_bits = util::clamp(
                        lp.weight_bits + static_cast<int>(rng.uniform_int(-2, 2)),
                        compress::kMinBits, compress::kMaxBits);
                    break;
                default:
                    lp.activation_bits = util::clamp(
                        lp.activation_bits + static_cast<int>(rng.uniform_int(-2, 2)),
                        compress::kMinBits, compress::kMaxBits);
            }
        }
        const PolicyEvaluator::Score s = evaluator_->score(candidate);
        ++result.evaluations;
        track_best(s, candidate, result);
        result.episode_reward.push_back(s.feasible() ? s.racc : -1.0);

        const double delta = objective(s) - objective(current_score);
        if (delta >= 0.0 || rng.uniform() < std::exp(delta / temperature)) {
            current = candidate;
            current_score = s;
        }
        temperature *= cooling;
    }
    return result;
}

}  // namespace imx::core
