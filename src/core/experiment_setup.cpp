#include "core/experiment_setup.hpp"

#include "core/multi_exit_spec.hpp"
#include "energy/trace_registry.hpp"

namespace imx::core {

energy::StorageConfig paper_storage_config() {
    energy::StorageConfig s;
    s.capacity_mj = 3.0;
    s.initial_mj = 0.5;
    s.leakage_mw = 0.0003;
    // The paper's energy model books harvested energy 1:1 (no converter
    // loss); keep the efficiency machinery but make it near-lossless here.
    s.efficiency_max = 0.99;
    s.efficiency_half_power_mw = 0.0005;
    s.on_threshold_mj = 0.30;
    s.off_threshold_mj = 0.02;
    return s;
}

mcu::McuConfig paper_mcu_config() {
    mcu::McuConfig m;
    m.energy_per_mmac_mj = kEnergyPerMMacMj;  // paper: 1.5 mJ / MFLOP
    m.mmacs_per_second = 0.2;                 // ~10 s for SonicNet's 2 MFLOPs
    m.flash_budget_bytes = kSizeTargetBytes;
    m.checkpoint_energy_mj = 0.008;
    m.checkpoint_time_s = 0.05;
    m.macs_per_task = 50000;
    m.wakeup_energy_mj = 0.005;
    m.wakeup_time_s = 0.01;
    return m;
}

ExperimentSetup make_paper_setup(const SetupConfig& config) {
    // The harvesting environment comes from the trace registry; the default
    // "solar" source reproduces the historical hard-coded daylight profile
    // (sunrise..sunset window compressed into the experiment duration)
    // bitwise. Every environment is rescaled to the Fig. 5-implied energy
    // budget so sources compare at the same income.
    energy::TraceSourceContext trace_ctx;
    trace_ctx.duration_s = config.duration_s;
    trace_ctx.dt_s = 1.0;
    trace_ctx.seed = config.trace_seed;
    energy::PowerTrace trace =
        energy::make_trace(config.trace_source, trace_ctx,
                           config.trace_params);
    trace.rescale_total_energy(config.total_harvest_mj);

    // The request workload comes from the arrival registry; the default
    // "uniform" source is the paper's Sec. V-A schedule, bitwise identical
    // to the pre-registry generator.
    sim::ArrivalContext events_ctx;
    events_ctx.count = config.event_count;
    events_ctx.duration_s = trace.duration();
    events_ctx.seed = config.event_seed;
    std::vector<sim::Event> events = sim::generate_arrivals(
        config.arrival_source, events_ctx, config.arrival_params);

    ExperimentSetup setup{
        std::move(trace),
        std::move(events),
        sim::SimConfig{},
        sim::SimConfig{},
        make_paper_network_desc(),
        reference_nonuniform_policy(),
        {},
        config,
    };

    setup.multi_exit_sim.mode = sim::ExecutionMode::kMultiExit;
    setup.multi_exit_sim.dt_s = 1.0;
    setup.multi_exit_sim.storage = paper_storage_config();
    setup.multi_exit_sim.mcu = paper_mcu_config();

    setup.checkpointed_sim = setup.multi_exit_sim;
    setup.checkpointed_sim.mode = sim::ExecutionMode::kCheckpointed;

    const AccuracyModel oracle(setup.network,
                               {kPaperFullPrecisionAcc.begin(),
                                kPaperFullPrecisionAcc.end()});
    setup.exit_accuracy = oracle.exit_accuracy(setup.deployed_policy);
    return setup;
}

}  // namespace imx::core
