#include "core/multi_exit_spec.hpp"

#include "compress/surgery.hpp"
#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace imx::core {

namespace {

using compress::Junction;
using compress::LayerDesc;
using compress::LayerKind;
using compress::NetworkDesc;

/// Shared 11-layer / 9-junction topology of the paper network family.
/// Layer order: Conv1, ConvB1, FC-B1, Conv2, ConvB2, FC-B21, FC-B22,
///              Conv3, Conv4, FC-B31, FC-B32.
NetworkDesc make_desc_from_costs(
    const std::array<std::int64_t, 11>& macs,
    const std::array<std::int64_t, 11>& weights,
    const std::array<std::int64_t, 11>& biases,
    const std::array<std::pair<int, int>, 11>& channels) {
    const std::array<const char*, 11> names = {
        "Conv1", "ConvB1", "FC-B1",  "Conv2",  "ConvB2", "FC-B21",
        "FC-B22", "Conv3", "Conv4",  "FC-B31", "FC-B32"};
    const std::array<LayerKind, 11> kinds = {
        LayerKind::kConv, LayerKind::kConv, LayerKind::kFc,
        LayerKind::kConv, LayerKind::kConv, LayerKind::kFc,
        LayerKind::kFc,   LayerKind::kConv, LayerKind::kConv,
        LayerKind::kFc,   LayerKind::kFc};
    // in/out junction ids per layer (see junction list below; -1 = logits).
    const std::array<int, 11> in_j = {0, 1, 2, 1, 3, 4, 5, 3, 6, 7, 8};
    const std::array<int, 11> out_j = {1, 2, -1, 3, 4, 5, -1, 6, 7, 8, -1};

    NetworkDesc desc;
    for (std::size_t i = 0; i < names.size(); ++i) {
        LayerDesc layer;
        layer.name = names[i];
        layer.kind = kinds[i];
        layer.base_macs = macs[i];
        layer.weight_params = weights[i];
        layer.bias_params = biases[i];
        layer.in_count = channels[i].first;
        layer.out_count = channels[i].second;
        layer.in_junction = in_j[i];
        layer.out_junction = out_j[i];
        desc.layers.push_back(std::move(layer));
    }
    desc.junctions = {
        Junction{-1, {0}},      // J0: image -> Conv1
        Junction{0, {1, 3}},    // J1: Conv1 -> ConvB1, Conv2 (branch point)
        Junction{1, {2}},       // J2: ConvB1 -> FC-B1
        Junction{3, {4, 7}},    // J3: Conv2 -> ConvB2, Conv3 (branch point)
        Junction{4, {5}},       // J4: ConvB2 -> FC-B21
        Junction{5, {6}},       // J5: FC-B21 -> FC-B22
        Junction{7, {8}},       // J6: Conv3 -> Conv4
        Junction{8, {9}},       // J7: Conv4 -> FC-B31
        Junction{9, {10}},      // J8: FC-B31 -> FC-B32
    };
    desc.num_exits = kNumExits;
    desc.exit_paths = {
        {0, 1, 2},           // exit 1: Conv1, ConvB1, FC-B1
        {0, 3, 4, 5, 6},     // exit 2: Conv1, Conv2, ConvB2, FC-B21, FC-B22
        {0, 3, 7, 8, 9, 10}  // exit 3: Conv1, Conv2, Conv3, Conv4, FC-B31/32
    };
    desc.validate();
    return desc;
}

}  // namespace

compress::NetworkDesc make_paper_network_desc() {
    // MAC/param table derived in DESIGN.md Sec. 3 (matches paper per-exit
    // FLOPs within ~1 %).
    return make_desc_from_costs(
        /*macs=*/{352800, 85536, 3960, 705600, 148176, 54180, 4300, 254016,
                  254016, 56160, 2600},
        /*weights=*/{450, 594, 3960, 3600, 3024, 54180, 4300, 5184, 5184,
                     56160, 2600},
        /*biases=*/{6, 11, 10, 24, 14, 430, 10, 24, 24, 260, 10},
        /*channels=*/{{{3, 6}, {6, 11}, {396, 10}, {6, 24}, {24, 14},
                       {126, 430}, {430, 10}, {24, 24}, {24, 24}, {216, 260},
                       {260, 10}}});
}

compress::Constraints paper_constraints() {
    compress::Constraints c;
    c.f_target_macs = kFlopsTargetMacs;
    c.s_target_bytes = kSizeTargetBytes;
    return c;
}

compress::Policy reference_nonuniform_policy() {
    const NetworkDesc desc = make_paper_network_desc();
    compress::Policy policy = compress::Policy::uniform(desc.num_layers(), 1.0, 8, 8);
    struct Entry {
        const char* name;
        double alpha;
        int w_bits;
        int a_bits;
    };
    // Fig. 4 shape: shallow layers preserved more, convs at 8-bit, the two
    // large FCs binarized, small FCs at mid bitwidth.
    const Entry entries[] = {
        {"Conv1", 0.85, 8, 8}, {"ConvB1", 0.60, 8, 8}, {"FC-B1", 0.70, 4, 6},
        {"Conv2", 0.70, 8, 8}, {"ConvB2", 0.60, 8, 8}, {"FC-B21", 0.45, 1, 6},
        {"FC-B22", 0.70, 4, 6}, {"Conv3", 0.50, 8, 8}, {"Conv4", 0.45, 8, 8},
        {"FC-B31", 0.40, 1, 6}, {"FC-B32", 0.75, 4, 6},
    };
    for (const Entry& e : entries) {
        const auto idx = static_cast<std::size_t>(desc.layer_index(e.name));
        policy[idx] = compress::LayerPolicy{e.alpha, e.w_bits, e.a_bits};
    }
    return policy;
}

compress::Policy uniform_baseline_policy() {
    const NetworkDesc desc = make_paper_network_desc();
    return compress::make_uniform_for_targets(desc, paper_constraints());
}

nn::ExitGraph build_paper_graph(util::Rng& rng) {
    using compress::ActQuant;
    using nn::Conv2d;
    using nn::Flatten;
    using nn::Linear;
    using nn::MaxPool2d;
    using nn::Relu;

    nn::ExitGraph graph({3, 32, 32});

    // Trunk segment 0 + branch 0 (exit 1).
    nn::Segment t0;
    t0.push(std::make_unique<Conv2d>(3, 6, 5, 0, "Conv1", rng));
    t0.push(std::make_unique<Relu>());
    t0.push(std::make_unique<ActQuant>("Conv1/aq"));
    t0.push(std::make_unique<MaxPool2d>(2));
    nn::Segment b0;
    b0.push(std::make_unique<Conv2d>(6, 11, 3, 0, "ConvB1", rng));
    b0.push(std::make_unique<Relu>());
    b0.push(std::make_unique<ActQuant>("ConvB1/aq"));
    b0.push(std::make_unique<MaxPool2d>(2));
    b0.push(std::make_unique<Flatten>());
    b0.push(std::make_unique<Linear>(396, 10, "FC-B1", rng));
    graph.add_exit(std::move(t0), std::move(b0));

    // Trunk segment 1 + branch 1 (exit 2).
    nn::Segment t1;
    t1.push(std::make_unique<Conv2d>(6, 24, 5, 2, "Conv2", rng));
    t1.push(std::make_unique<Relu>());
    t1.push(std::make_unique<ActQuant>("Conv2/aq"));
    t1.push(std::make_unique<MaxPool2d>(2));
    nn::Segment b1;
    b1.push(std::make_unique<Conv2d>(24, 14, 3, 1, "ConvB2", rng));
    b1.push(std::make_unique<Relu>());
    b1.push(std::make_unique<ActQuant>("ConvB2/aq"));
    b1.push(std::make_unique<MaxPool2d>(2));
    b1.push(std::make_unique<Flatten>());
    b1.push(std::make_unique<Linear>(126, 430, "FC-B21", rng));
    b1.push(std::make_unique<Relu>());
    b1.push(std::make_unique<ActQuant>("FC-B21/aq"));
    b1.push(std::make_unique<Linear>(430, 10, "FC-B22", rng));
    graph.add_exit(std::move(t1), std::move(b1));

    // Trunk segment 2 + branch 2 (exit 3, final).
    nn::Segment t2;
    t2.push(std::make_unique<Conv2d>(24, 24, 3, 1, "Conv3", rng));
    t2.push(std::make_unique<Relu>());
    t2.push(std::make_unique<ActQuant>("Conv3/aq"));
    t2.push(std::make_unique<Conv2d>(24, 24, 3, 1, "Conv4", rng));
    t2.push(std::make_unique<Relu>());
    t2.push(std::make_unique<ActQuant>("Conv4/aq"));
    t2.push(std::make_unique<MaxPool2d>(2));
    nn::Segment b2;
    b2.push(std::make_unique<Flatten>());
    b2.push(std::make_unique<Linear>(216, 260, "FC-B31", rng));
    b2.push(std::make_unique<Relu>());
    b2.push(std::make_unique<ActQuant>("FC-B31/aq"));
    b2.push(std::make_unique<Linear>(260, 10, "FC-B32", rng));
    graph.add_exit(std::move(t2), std::move(b2));

    return graph;
}

nn::ExitGraph build_tiny_graph(util::Rng& rng) {
    using compress::ActQuant;
    using nn::Conv2d;
    using nn::Flatten;
    using nn::Linear;
    using nn::MaxPool2d;
    using nn::Relu;

    nn::ExitGraph graph({3, 16, 16});

    nn::Segment t0;
    t0.push(std::make_unique<Conv2d>(3, 4, 3, 1, "Conv1", rng));
    t0.push(std::make_unique<Relu>());
    t0.push(std::make_unique<ActQuant>("Conv1/aq"));
    t0.push(std::make_unique<MaxPool2d>(2));
    nn::Segment b0;
    b0.push(std::make_unique<Conv2d>(4, 4, 3, 1, "ConvB1", rng));
    b0.push(std::make_unique<Relu>());
    b0.push(std::make_unique<ActQuant>("ConvB1/aq"));
    b0.push(std::make_unique<MaxPool2d>(2));
    b0.push(std::make_unique<Flatten>());
    b0.push(std::make_unique<Linear>(64, 10, "FC-B1", rng));
    graph.add_exit(std::move(t0), std::move(b0));

    nn::Segment t1;
    t1.push(std::make_unique<Conv2d>(4, 8, 3, 1, "Conv2", rng));
    t1.push(std::make_unique<Relu>());
    t1.push(std::make_unique<ActQuant>("Conv2/aq"));
    t1.push(std::make_unique<MaxPool2d>(2));
    nn::Segment b1;
    b1.push(std::make_unique<Conv2d>(8, 8, 3, 1, "ConvB2", rng));
    b1.push(std::make_unique<Relu>());
    b1.push(std::make_unique<ActQuant>("ConvB2/aq"));
    b1.push(std::make_unique<MaxPool2d>(2));
    b1.push(std::make_unique<Flatten>());
    b1.push(std::make_unique<Linear>(32, 32, "FC-B21", rng));
    b1.push(std::make_unique<Relu>());
    b1.push(std::make_unique<ActQuant>("FC-B21/aq"));
    b1.push(std::make_unique<Linear>(32, 10, "FC-B22", rng));
    graph.add_exit(std::move(t1), std::move(b1));

    nn::Segment t2;
    t2.push(std::make_unique<Conv2d>(8, 8, 3, 1, "Conv3", rng));
    t2.push(std::make_unique<Relu>());
    t2.push(std::make_unique<ActQuant>("Conv3/aq"));
    t2.push(std::make_unique<Conv2d>(8, 8, 3, 1, "Conv4", rng));
    t2.push(std::make_unique<Relu>());
    t2.push(std::make_unique<ActQuant>("Conv4/aq"));
    t2.push(std::make_unique<MaxPool2d>(2));
    nn::Segment b2;
    b2.push(std::make_unique<Flatten>());
    b2.push(std::make_unique<Linear>(32, 32, "FC-B31", rng));
    b2.push(std::make_unique<Relu>());
    b2.push(std::make_unique<ActQuant>("FC-B31/aq"));
    b2.push(std::make_unique<Linear>(32, 10, "FC-B32", rng));
    graph.add_exit(std::move(t2), std::move(b2));

    return graph;
}

compress::NetworkDesc make_tiny_network_desc() {
    return make_desc_from_costs(
        /*macs=*/{27648, 9216, 640, 18432, 9216, 1024, 320, 9216, 9216, 1024,
                  320},
        /*weights=*/{108, 144, 640, 288, 576, 1024, 320, 576, 576, 1024, 320},
        /*biases=*/{4, 4, 10, 8, 8, 32, 10, 8, 8, 32, 10},
        /*channels=*/{{{3, 4}, {4, 4}, {64, 10}, {4, 8}, {8, 8}, {32, 32},
                       {32, 10}, {8, 8}, {8, 8}, {32, 32}, {32, 10}}});
}

}  // namespace imx::core
