#include "core/runtime.hpp"

#include "util/contracts.hpp"

namespace imx::core {

QLearningExitPolicy::QLearningExitPolicy(int num_exits,
                                         const RuntimeConfig& config)
    : num_exits_(num_exits),
      config_(config),
      exit_q_(config.energy_bins * config.rate_bins,
              static_cast<std::size_t>(num_exits), config.exit_q, config.seed),
      incremental_q_(config.confidence_bins * config.incremental_energy_bins, 2,
                     config.incremental_q, config.seed ^ 0x99),
      level_bins_(0.0, 1.0, config.energy_bins),
      rate_bins_(0.0, config.max_rate_mw, config.rate_bins),
      conf_bins_(0.0, 1.0, config.confidence_bins),
      inc_level_bins_(0.0, 1.0, config.incremental_energy_bins) {
    IMX_EXPECTS(num_exits >= 1);
}

std::size_t QLearningExitPolicy::exit_state(const sim::EnergyState& s) const {
    const std::size_t level_bin =
        level_bins_.bin(s.level_mj / std::max(s.capacity_mj, 1e-9));
    const std::size_t rate_bin = rate_bins_.bin(s.charge_rate_mw);
    return level_bin * config_.rate_bins + rate_bin;
}

std::size_t QLearningExitPolicy::incremental_state(const sim::EnergyState& s,
                                                   double confidence) const {
    const std::size_t conf_bin = conf_bins_.bin(confidence);
    const std::size_t level_bin =
        inc_level_bins_.bin(s.level_mj / std::max(s.capacity_mj, 1e-9));
    return conf_bin * config_.incremental_energy_bins + level_bin;
}

int QLearningExitPolicy::select_exit(const sim::EnergyState& state,
                                     const sim::InferenceModel& model) {
    (void)model;
    const std::size_t s = exit_state(state);

    // Chain the previous event's transition now that s' is known (Eq. 16).
    if (pending_.has_value() && !eval_mode_) {
        exit_q_.update(pending_->state, pending_->action, pending_->reward, s);
    }

    const std::size_t action = eval_mode_ ? exit_q_.greedy(s) : exit_q_.select(s);
    pending_ = Pending{s, action, 0.0};
    pending_incremental_.clear();
    return static_cast<int>(action);
}

bool QLearningExitPolicy::continue_inference(const sim::EnergyState& state,
                                             const sim::InferenceModel& model,
                                             int current_exit,
                                             double confidence) {
    if (!config_.enable_incremental) return false;
    if (current_exit + 1 >= num_exits_) return false;
    const std::int64_t inc =
        model.incremental_macs(current_exit, current_exit + 1);
    const double cost = sim::macs_energy_mj(state, inc);
    if (cost + config_.incremental_headroom * state.capacity_mj >
        state.level_mj) {
        return false;  // not affordable with headroom; no learning signal
    }
    const std::size_t s = incremental_state(state, confidence);
    const std::size_t action =
        eval_mode_ ? incremental_q_.greedy(s) : incremental_q_.select(s);
    if (!eval_mode_) pending_incremental_.push_back({s, action});
    return action == 1;
}

void QLearningExitPolicy::observe(const sim::EnergyState& /*state*/,
                                  int /*exit_taken*/, bool correct) {
    const double r = correct ? 1.0 : 0.0;
    if (pending_.has_value()) {
        // Stash; the bootstrap happens at the next select_exit call when the
        // successor state is known.
        pending_->reward += r;
    }
    if (!eval_mode_) {
        for (const PendingIncremental& pi : pending_incremental_) {
            const double r2 =
                r - (pi.action == 1 ? config_.continue_cost_penalty : 0.0);
            incremental_q_.update_terminal(pi.state, pi.action, r2);
        }
    }
    pending_incremental_.clear();
}

void QLearningExitPolicy::observe_missed() {
    if (pending_.has_value() && !eval_mode_) {
        pending_->reward -= config_.miss_penalty;
    }
}

void QLearningExitPolicy::set_eval_mode(bool eval) { eval_mode_ = eval; }

std::size_t QLearningExitPolicy::footprint_bytes() const {
    return exit_q_.footprint_bytes() + incremental_q_.footprint_bytes();
}

}  // namespace imx::core
