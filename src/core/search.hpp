// Power-trace-aware, exit-guided nonuniform compression search
// (paper Sec. III-B): two cooperating DDPG agents emit per-layer pruning
// rates and weight/activation bitwidths; the reward is the event-weighted
// average accuracy under the EH trace (Eq. 10) with constraint penalties
// (Eq. 11-12). Random search and simulated annealing comparators share the
// same evaluation budget for the ablation bench.
#ifndef IMX_CORE_SEARCH_HPP
#define IMX_CORE_SEARCH_HPP

#include <cstdint>
#include <vector>

#include "compress/fit.hpp"
#include "compress/network_desc.hpp"
#include "core/accuracy_model.hpp"
#include "core/trace_eval.hpp"
#include "rl/ddpg.hpp"

namespace imx::core {

struct SearchConfig {
    int episodes = 300;
    int warmup_episodes = 32;     ///< random-action episodes to fill replay
    int train_steps_per_episode = 12;
    double lambda1 = 1.0;         ///< pruning-agent reward scale (Eq. 11)
    double lambda2 = 1.0;         ///< quantization-agent reward scale (Eq. 12)
    /// Power-trace-aware reward (Eq. 10). When false, the reward is the
    /// plain mean of exit accuracies (the ablation of Sec. III's premise).
    bool trace_aware = true;
    std::uint64_t seed = 2020;
};

struct SearchResult {
    compress::Policy best_policy;
    double best_reward = -1.0;            ///< Racc in [0,1] of best feasible
    bool found_feasible = false;
    std::vector<double> episode_reward;   ///< per-episode Racc (or penalty)
    int evaluations = 0;
};

/// Evaluation context shared by all search algorithms.
class PolicyEvaluator {
public:
    PolicyEvaluator(const compress::NetworkDesc& desc,
                    const AccuracyModel& accuracy,
                    const StaticTraceEvaluator& trace_eval,
                    const compress::Constraints& constraints, bool trace_aware);

    struct Score {
        double racc = 0.0;  ///< objective in [0,1]
        bool flops_ok = false;
        bool size_ok = false;
        double total_macs = 0.0;
        double bytes = 0.0;
        [[nodiscard]] bool feasible() const { return flops_ok && size_ok; }
    };

    [[nodiscard]] Score score(const compress::Policy& policy) const;
    [[nodiscard]] const compress::NetworkDesc& network() const { return *desc_; }
    [[nodiscard]] const compress::Constraints& constraints() const {
        return constraints_;
    }

private:
    const compress::NetworkDesc* desc_;
    const AccuracyModel* accuracy_;
    const StaticTraceEvaluator* trace_eval_;
    compress::Constraints constraints_;
    bool trace_aware_;
};

class CompressionSearch {
public:
    CompressionSearch(const PolicyEvaluator& evaluator, SearchConfig config);

    /// The paper's method: two DDPG agents, layer-by-layer episodes.
    SearchResult run_ddpg();

    /// DDPG exploration followed by local refinement of the best policy
    /// (the paper's "the compression policy needs further fine-tuning",
    /// Sec. III). Uses 1.5x the run_ddpg() evaluation budget.
    SearchResult run_ddpg_refined();

    /// Uniform-random policies, same evaluation budget.
    SearchResult run_random();

    /// Simulated annealing from the uniform-fit start, same budget.
    SearchResult run_annealing();

private:
    /// Eq. 9 observation for layer l given the previous layer's decisions.
    [[nodiscard]] std::vector<float> observation(
        int layer, const compress::Policy& partial,
        double flop_reduced, double size_reduced) const;

    /// Annealed local search from a starting policy.
    SearchResult anneal_from(const compress::Policy& start, int episodes,
                             double initial_temperature,
                             std::uint64_t seed) const;

    const PolicyEvaluator* evaluator_;
    SearchConfig config_;
};

}  // namespace imx::core

#endif  // IMX_CORE_SEARCH_HPP
