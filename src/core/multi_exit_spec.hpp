// The paper's network (Sec. V-A): LeNet extended to four convolutional
// layers with two early exits, for 3x32x32 inputs and 10 classes. Layer
// names match Fig. 4: Conv1, ConvB1, Conv2, ConvB2, Conv3, Conv4, FC-B1,
// FC-B21, FC-B22, FC-B31, FC-B32.
//
// This header provides both views of the network:
//  * an analytic compress::NetworkDesc whose per-exit MAC counts match the
//    paper's 0.4452M / 1.2602M / 1.6202M within ~1 % (see DESIGN.md), and
//  * a real, trainable nn::ExitGraph with the same topology (with ActQuant
//    slots for activation quantization).
#ifndef IMX_CORE_MULTI_EXIT_SPEC_HPP
#define IMX_CORE_MULTI_EXIT_SPEC_HPP

#include <array>
#include <cstdint>

#include "compress/fit.hpp"
#include "compress/network_desc.hpp"
#include "nn/exit_graph.hpp"
#include "util/rng.hpp"

namespace imx::core {

/// Paper constants.
constexpr double kEnergyPerMMacMj = 1.5;            ///< 1.5 mJ per MFLOP
constexpr double kFlopsTargetMacs = 1.15e6;         ///< Fig. 4 constraint
constexpr double kSizeTargetBytes = 16.0 * 1024.0;  ///< Fig. 4 constraint
constexpr int kNumExits = 3;

/// Paper-reported per-exit FLOPs of the uncompressed network.
constexpr std::array<double, 3> kPaperExitMacs = {0.4452e6, 1.2602e6, 1.6202e6};

/// Paper-reported full-precision per-exit accuracy (%).
constexpr std::array<double, 3> kPaperFullPrecisionAcc = {64.9, 72.0, 73.0};

/// Paper-reported per-exit accuracy after *uniform* compression (%), Fig. 1b.
constexpr std::array<double, 3> kPaperUniformAcc = {57.3, 65.2, 67.5};

/// Paper-reported per-exit accuracy after nonuniform compression (%), Fig. 1b.
constexpr std::array<double, 3> kPaperNonuniformAcc = {61.9, 68.5, 69.9};

/// Analytic layer/junction table of the paper network.
compress::NetworkDesc make_paper_network_desc();

/// Paper constraint set (Fmodel on total network MACs, Starget on weights).
compress::Constraints paper_constraints();

/// A Fig. 4-shaped reference nonuniform policy: convolutions kept at 8-bit
/// and pruned progressively harder with depth; the two large FC layers
/// (FC-B21, FC-B31) binarized. Satisfies paper_constraints(); used as the
/// calibration anchor for the accuracy oracle and as a deterministic
/// "deployed" policy for benches that do not re-run the search.
compress::Policy reference_nonuniform_policy();

/// The uniform baseline implied by the constraints (Fig. 1b "uniform").
compress::Policy uniform_baseline_policy();

/// Build the real trainable multi-exit network.
nn::ExitGraph build_paper_graph(util::Rng& rng);

/// A reduced copy (16x16 input, fewer channels, same 3-exit topology) for
/// fast unit/integration tests that actually train.
nn::ExitGraph build_tiny_graph(util::Rng& rng);

/// Analytic descriptor matching build_tiny_graph (for policy application).
compress::NetworkDesc make_tiny_network_desc();

}  // namespace imx::core

#endif  // IMX_CORE_MULTI_EXIT_SPEC_HPP
