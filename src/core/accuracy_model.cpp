#include "core/accuracy_model.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "core/multi_exit_spec.hpp"
#include "util/contracts.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace imx::core {

namespace {

/// Process-wide calibrate() cache. The pattern search is deterministic in
/// its inputs (24 restarts x 400 iterations, fixed seed), so two models
/// with the same calibration key always fit the same params; sweeps that
/// build one setup per scenario hit this cache after the first scenario.
struct CalibrationResult {
    SensitivityParams params;
    double residual = 0.0;
};

std::mutex& calibration_mutex() {
    static std::mutex m;
    return m;
}

std::unordered_map<std::string, CalibrationResult>& calibration_cache() {
    static std::unordered_map<std::string, CalibrationResult> cache;
    return cache;
}

void append_double_bits(std::string& out, double v) {
    char buf[sizeof(double)];
    std::memcpy(buf, &v, sizeof(double));
    out.append(buf, sizeof(double));
}

/// Normalized quantization harshness: q(8)=0, q(1)=1, convex in between.
double quant_harshness(int bits) {
    IMX_EXPECTS(bits >= 1);
    if (bits >= 8) return 0.0;
    constexpr double kFloor = 1.0 / 128.0;  // 2^-7
    return (std::pow(2.0, 1.0 - bits) - kFloor) / (1.0 - kFloor);
}

/// Built-in depth ranks for the 11-layer paper family (order: Conv1, ConvB1,
/// FC-B1, Conv2, ConvB2, FC-B21, FC-B22, Conv3, Conv4, FC-B31, FC-B32).
std::vector<double> default_depth_ranks() {
    return {0.00, 0.15, 0.30, 0.30, 0.45, 0.55, 0.65, 0.55, 0.70, 0.85, 0.95};
}

}  // namespace

AccuracyModel::AccuracyModel(const compress::NetworkDesc& desc,
                             std::vector<double> base_accuracy_percent,
                             std::vector<double> depth_rank)
    : desc_(&desc),
      base_(std::move(base_accuracy_percent)),
      depth_rank_(std::move(depth_rank)) {
    IMX_EXPECTS(static_cast<int>(base_.size()) == desc.num_exits);
    if (depth_rank_.empty()) depth_rank_ = default_depth_ranks();
    IMX_EXPECTS(depth_rank_.size() == desc.num_layers());
    calibrate();
}

AccuracyModel::AccuracyModel(const compress::NetworkDesc& desc,
                             std::vector<double> base_accuracy_percent,
                             std::vector<double> depth_rank,
                             const SensitivityParams& params)
    : desc_(&desc),
      base_(std::move(base_accuracy_percent)),
      depth_rank_(std::move(depth_rank)),
      params_(params) {
    IMX_EXPECTS(static_cast<int>(base_.size()) == desc.num_exits);
    if (depth_rank_.empty()) depth_rank_ = default_depth_ranks();
    IMX_EXPECTS(depth_rank_.size() == desc.num_layers());
}

double AccuracyModel::survival(const compress::Policy& policy, int exit,
                               const SensitivityParams& p) const {
    double s = 1.0;
    for (const int l : desc_->exit_paths[static_cast<std::size_t>(exit)]) {
        const auto li = static_cast<std::size_t>(l);
        const compress::LayerPolicy& lp = policy[li];
        const double d = depth_rank_[li];
        const bool is_fc = desc_->layers[li].kind == compress::LayerKind::kFc;

        const double sp = p.prune_base * std::exp(-p.prune_decay * d);
        const double sq = p.quant_base * std::exp(-p.quant_decay * d) *
                          (is_fc ? p.fc_quant_factor : 1.0);
        const double sa = p.act_factor * sq;

        const double knee_factor =
            lp.preserve_ratio >= 0.55
                ? 1.0
                : util::sigmoid((lp.preserve_ratio - p.prune_knee) /
                                p.prune_knee_width);
        const double prune_term =
            (1.0 - sp * std::pow(1.0 - lp.preserve_ratio, p.prune_exponent)) *
            knee_factor;
        const double wq_term =
            lp.weight_bits >= 32 ? 1.0 : 1.0 - sq * quant_harshness(lp.weight_bits);
        const double aq_term =
            lp.activation_bits >= 32
                ? 1.0
                : 1.0 - sa * quant_harshness(lp.activation_bits);
        s *= util::clamp(prune_term, 0.0, 1.0) * util::clamp(wq_term, 0.0, 1.0) *
             util::clamp(aq_term, 0.0, 1.0);
    }
    return s;
}

double AccuracyModel::accuracy(const compress::Policy& policy, int exit) const {
    IMX_EXPECTS(exit >= 0 && exit < desc_->num_exits);
    IMX_EXPECTS(policy.size() == desc_->num_layers());
    const double base = base_[static_cast<std::size_t>(exit)];
    return chance_ + (base - chance_) * survival(policy, exit, params_);
}

std::vector<double> AccuracyModel::exit_accuracy(
    const compress::Policy& policy) const {
    // Bit-exact key over every per-layer decision.
    std::string key;
    key.reserve(policy.size() * (sizeof(double) + 2 * sizeof(int)));
    for (std::size_t i = 0; i < policy.size(); ++i) {
        const compress::LayerPolicy& lp = policy[i];
        append_double_bits(key, lp.preserve_ratio);
        char buf[2 * sizeof(int)];
        std::memcpy(buf, &lp.weight_bits, sizeof(int));
        std::memcpy(buf + sizeof(int), &lp.activation_bits, sizeof(int));
        key.append(buf, sizeof(buf));
    }
    {
        const std::lock_guard<std::mutex> lock(memo_mutex_);
        const auto it = accuracy_memo_.find(key);
        if (it != accuracy_memo_.end()) return it->second;
    }
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(desc_->num_exits));
    for (int e = 0; e < desc_->num_exits; ++e) out.push_back(accuracy(policy, e));
    {
        // Bounded: searches stream thousands of distinct candidates; drop
        // the whole map rather than grow without limit.
        constexpr std::size_t kMemoCapacity = 1 << 14;
        const std::lock_guard<std::mutex> lock(memo_mutex_);
        if (accuracy_memo_.size() >= kMemoCapacity) accuracy_memo_.clear();
        accuracy_memo_.emplace(std::move(key), out);
    }
    return out;
}

std::string AccuracyModel::calibration_key() const {
    std::ostringstream os;
    os << desc_->num_exits << '|' << desc_->num_layers() << '|';
    for (const std::vector<int>& path : desc_->exit_paths) {
        for (const int l : path) os << l << ',';
        os << ';';
    }
    os << '|';
    for (const compress::LayerDesc& l : desc_->layers) {
        os << (l.kind == compress::LayerKind::kFc ? 'f' : 'c');
    }
    std::string key = os.str();
    append_double_bits(key, chance_);
    for (const double b : base_) append_double_bits(key, b);
    key.push_back('|');
    for (const double d : depth_rank_) append_double_bits(key, d);
    return key;
}

void AccuracyModel::calibrate() {
    const std::string cache_key = calibration_key();
    {
        const std::lock_guard<std::mutex> lock(calibration_mutex());
        const auto it = calibration_cache().find(cache_key);
        if (it != calibration_cache().end()) {
            params_ = it->second.params;
            residual_ = it->second.residual;
            return;
        }
    }

    // Anchors: the Fig. 1b uniform and nonuniform accuracies under the
    // corresponding deterministic policies for this network family.
    const compress::Policy uniform = uniform_baseline_policy();
    const compress::Policy nonuniform = reference_nonuniform_policy();
    // Only networks with the 11-layer topology can use the paper anchors;
    // callers with other topologies must pass params explicitly.
    IMX_EXPECTS(desc_->num_layers() == 11 && desc_->num_exits == 3);

    struct Anchor {
        const compress::Policy* policy;
        std::array<double, 3> target;
    };
    const Anchor anchors[] = {
        {&uniform, kPaperUniformAcc},
        {&nonuniform, kPaperNonuniformAcc},
    };

    // Specialized survival evaluation for the fit loop. loss_of runs ~10k
    // times (24 restarts x 400 iterations) and dominated sweep startup, yet
    // most of survival()'s work is invariant across candidates: the two
    // anchor *policies* never change, so each layer's quant_harshness() and
    // knee sigmoid are search constants, and exp(-decay * d) is independent
    // of the policy, so the two anchors can share one evaluation per layer
    // instead of recomputing it per path entry. Every retained expression
    // keeps survival()'s operand order, so the fitted params — and every
    // accuracy value downstream — are bitwise unchanged (pinned by the
    // --quick goldens).
    const std::size_t num_layers = desc_->num_layers();
    struct AnchorPre {
        std::vector<double> one_minus_preserve;
        std::vector<double> knee;    // 1.0 when inactive (alpha >= 0.55)
        std::vector<double> qh_w;    // 0.0 when weight_bits >= 32 or >= 8
        std::vector<double> qh_a;    // 0.0 when activation_bits >= 32 or >= 8
    };
    // The knee parameters are not fitted (see SensitivityParams): every
    // candidate carries the defaults, so the knee factors are precomputable.
    const SensitivityParams knee_ref;
    std::array<AnchorPre, 2> pre;
    for (std::size_t a = 0; a < 2; ++a) {
        const compress::Policy& policy = *anchors[a].policy;
        AnchorPre& ap = pre[a];
        ap.one_minus_preserve.resize(num_layers);
        ap.knee.resize(num_layers);
        ap.qh_w.resize(num_layers);
        ap.qh_a.resize(num_layers);
        for (std::size_t l = 0; l < num_layers; ++l) {
            const compress::LayerPolicy& lp = policy[l];
            ap.one_minus_preserve[l] = 1.0 - lp.preserve_ratio;
            ap.knee[l] = lp.preserve_ratio >= 0.55
                             ? 1.0
                             : util::sigmoid(
                                   (lp.preserve_ratio - knee_ref.prune_knee) /
                                   knee_ref.prune_knee_width);
            // bits >= 32 skipped the quant term entirely (term = 1.0);
            // harshness 0.0 reproduces that bitwise: 1.0 - sq * 0.0 == 1.0.
            ap.qh_w[l] =
                lp.weight_bits >= 32 ? 0.0 : quant_harshness(lp.weight_bits);
            ap.qh_a[l] = lp.activation_bits >= 32
                             ? 0.0
                             : quant_harshness(lp.activation_bits);
        }
    }
    std::vector<char> layer_is_fc(num_layers);
    for (std::size_t l = 0; l < num_layers; ++l) {
        layer_is_fc[l] =
            desc_->layers[l].kind == compress::LayerKind::kFc ? 1 : 0;
    }

    std::vector<double> exp_prune(num_layers);
    std::vector<double> exp_quant(num_layers);
    std::vector<double> factor(num_layers);
    auto loss_of = [&](const SensitivityParams& p) {
        for (std::size_t l = 0; l < num_layers; ++l) {
            const double d = depth_rank_[l];
            exp_prune[l] = std::exp(-p.prune_decay * d);
            exp_quant[l] = std::exp(-p.quant_decay * d);
        }
        double loss = 0.0;
        for (std::size_t a = 0; a < 2; ++a) {
            const AnchorPre& ap = pre[a];
            for (std::size_t l = 0; l < num_layers; ++l) {
                const double sp = p.prune_base * exp_prune[l];
                double sq = p.quant_base * exp_quant[l];
                if (layer_is_fc[l] != 0) sq *= p.fc_quant_factor;
                const double sa = p.act_factor * sq;
                const double prune_term =
                    (1.0 - sp * std::pow(ap.one_minus_preserve[l],
                                         p.prune_exponent)) *
                    ap.knee[l];
                const double wq_term = 1.0 - sq * ap.qh_w[l];
                const double aq_term = 1.0 - sa * ap.qh_a[l];
                factor[l] = util::clamp(prune_term, 0.0, 1.0) *
                            util::clamp(wq_term, 0.0, 1.0) *
                            util::clamp(aq_term, 0.0, 1.0);
            }
            for (int e = 0; e < 3; ++e) {
                double s = 1.0;
                for (const int l :
                     desc_->exit_paths[static_cast<std::size_t>(e)]) {
                    s *= factor[static_cast<std::size_t>(l)];
                }
                const double base = base_[static_cast<std::size_t>(e)];
                const double acc = chance_ + (base - chance_) * s;
                const double err =
                    acc - anchors[a].target[static_cast<std::size_t>(e)];
                loss += err * err;
            }
        }
        return loss;
    };

    // Deterministic random-restart pattern search over the 7 knobs.
    util::Rng rng(0xca11b8a7e);
    SensitivityParams best = params_;
    double best_loss = loss_of(best);
    for (int restart = 0; restart < 24; ++restart) {
        SensitivityParams p;
        p.prune_base = rng.uniform(0.05, 0.8);
        p.prune_decay = rng.uniform(0.0, 3.0);
        p.quant_base = rng.uniform(0.01, 0.25);
        p.quant_decay = rng.uniform(0.0, 3.0);
        p.fc_quant_factor = rng.uniform(0.02, 0.6);
        p.act_factor = rng.uniform(0.05, 0.6);
        p.prune_exponent = rng.uniform(1.0, 2.5);
        double step = 0.5;
        double loss = loss_of(p);
        for (int iter = 0; iter < 400; ++iter) {
            SensitivityParams q = p;
            switch (rng.uniform_int(0, 6)) {
                case 0: q.prune_base *= std::exp(step * rng.normal() * 0.3); break;
                case 1: q.prune_decay += step * rng.normal(); break;
                case 2: q.quant_base *= std::exp(step * rng.normal() * 0.3); break;
                case 3: q.quant_decay += step * rng.normal(); break;
                case 4: q.fc_quant_factor *= std::exp(step * rng.normal() * 0.3); break;
                case 5: q.act_factor *= std::exp(step * rng.normal() * 0.3); break;
                default: q.prune_exponent = util::clamp(
                             q.prune_exponent + step * rng.normal() * 0.5, 1.0, 3.0);
            }
            q.prune_base = util::clamp(q.prune_base, 0.01, 0.95);
            q.quant_base = util::clamp(q.quant_base, 0.005, 0.5);
            q.fc_quant_factor = util::clamp(q.fc_quant_factor, 0.01, 1.0);
            q.act_factor = util::clamp(q.act_factor, 0.01, 1.0);
            q.prune_decay = util::clamp(q.prune_decay, -1.0, 4.0);
            q.quant_decay = util::clamp(q.quant_decay, -1.0, 4.0);
            const double l = loss_of(q);
            if (l < loss) {
                loss = l;
                p = q;
            } else {
                step *= 0.995;
            }
        }
        if (loss < best_loss) {
            best_loss = loss;
            best = p;
        }
    }
    params_ = best;
    residual_ = std::sqrt(best_loss / 6.0);
    {
        const std::lock_guard<std::mutex> lock(calibration_mutex());
        calibration_cache().emplace(cache_key,
                                    CalibrationResult{params_, residual_});
    }
}

}  // namespace imx::core
