#include "core/trace_eval.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace imx::core {

StaticTraceEvaluator::StaticTraceEvaluator(
    const energy::PowerTrace& trace, const std::vector<sim::Event>& events,
    const energy::StorageConfig& storage, double energy_per_mmac_mj,
    double per_inference_overhead_mj)
    : storage_(storage),
      energy_per_mmac_mj_(energy_per_mmac_mj),
      overhead_mj_(per_inference_overhead_mj) {
    IMX_EXPECTS(energy_per_mmac_mj > 0.0);
    IMX_EXPECTS(std::is_sorted(events.begin(), events.end(),
                               [](const sim::Event& a, const sim::Event& b) {
                                   return a.time_s < b.time_s;
                               }));

    // Integrate net storable power over each inter-event window once; the
    // per-policy pass then only walks events.
    energy::EnergyStorage probe(storage);
    inter_event_energy_mj_.reserve(events.size());
    const double dt = trace.dt();
    double prev_t = 0.0;
    for (const sim::Event& ev : events) {
        double net = 0.0;
        for (double t = prev_t; t < ev.time_s; t += dt) {
            const double window = std::min(dt, ev.time_s - t);
            const double p = trace.power_at(t);
            net += p * window * probe.efficiency_at(p) -
                   storage.leakage_mw * window;
        }
        inter_event_energy_mj_.push_back(net);
        prev_t = ev.time_s;
    }
}

TraceEvalResult StaticTraceEvaluator::evaluate(
    const std::vector<std::int64_t>& exit_macs,
    const std::vector<double>& exit_accuracy_percent) const {
    IMX_EXPECTS(!exit_macs.empty());
    IMX_EXPECTS(exit_macs.size() == exit_accuracy_percent.size());
    const auto m = exit_macs.size();

    std::vector<double> cost_mj(m);
    for (std::size_t i = 0; i < m; ++i) {
        cost_mj[i] = static_cast<double>(exit_macs[i]) / 1e6 *
                         energy_per_mmac_mj_ +
                     overhead_mj_;
    }

    TraceEvalResult result;
    result.exit_probability.assign(m, 0.0);
    if (inter_event_energy_mj_.empty()) return result;

    double level = storage_.initial_mj;
    double acc_sum = 0.0;
    for (const double net : inter_event_energy_mj_) {
        level = std::clamp(level + net, 0.0, storage_.capacity_mj);
        // Static rule: deepest exit whose cost fits the buffered energy.
        int chosen = -1;
        for (std::size_t i = 0; i < m; ++i) {
            if (cost_mj[i] <= level) chosen = static_cast<int>(i);
        }
        if (chosen < 0) {
            ++result.missed;
            continue;
        }
        level -= cost_mj[static_cast<std::size_t>(chosen)];
        ++result.processed;
        result.exit_probability[static_cast<std::size_t>(chosen)] += 1.0;
        acc_sum += exit_accuracy_percent[static_cast<std::size_t>(chosen)] / 100.0;
    }

    const auto n = static_cast<double>(inter_event_energy_mj_.size());
    for (double& p : result.exit_probability) p /= n;
    result.avg_accuracy_all = acc_sum / n;
    return result;
}

double StaticTraceEvaluator::total_harvestable_mj() const {
    double sum = 0.0;
    for (const double e : inter_event_energy_mj_) sum += e;
    return sum;
}

}  // namespace imx::core
