// One-call facade over the paper's two-phase system: (optionally) search a
// nonuniform compression policy for the trace, deploy it, then run the
// intermittent runtime with both the static LUT and the learned Q-policy.
//
// Examples and downstream users that don't need the knobs can get from
// "paper setup" to "IEpmJ numbers" in three lines; everything it does is
// also available piecemeal through the underlying modules.
#ifndef IMX_CORE_PIPELINE_HPP
#define IMX_CORE_PIPELINE_HPP

#include "compress/policy.hpp"
#include "core/experiment_setup.hpp"
#include "core/search.hpp"
#include "sim/metrics.hpp"
#include "sim/policies/qlearning.hpp"

namespace imx::core {

struct PipelineConfig {
    SetupConfig setup{};
    /// When true, run the DDPG+refine search for the deployed policy;
    /// otherwise deploy the Fig. 4-shaped reference policy.
    bool run_search = false;
    SearchConfig search{};
    sim::RuntimeConfig runtime{};
    int learning_episodes = 16;
};

struct PipelineReport {
    compress::Policy deployed_policy;
    std::vector<double> exit_accuracy;       ///< oracle accuracy (%) per exit
    std::vector<std::int64_t> exit_macs;     ///< deployed per-exit cost
    double model_bytes = 0.0;
    bool fits_flash = false;
    sim::SimResult static_lut;               ///< runtime phase, static policy
    sim::SimResult learned;                  ///< runtime phase, Q-learning
    std::vector<double> learning_curve;      ///< per-episode all-event acc (%)

    /// Relative IEpmJ gain of the learned runtime over the static LUT.
    [[nodiscard]] double adaptation_gain() const {
        const double lut = static_lut.iepmj();
        return lut > 0.0 ? (learned.iepmj() - lut) / lut : 0.0;
    }
};

/// Execute the full pipeline. Deterministic for a given config.
PipelineReport run_pipeline(const PipelineConfig& config = {});

}  // namespace imx::core

#endif  // IMX_CORE_PIPELINE_HPP
