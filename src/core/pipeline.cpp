#include "core/pipeline.hpp"

#include "core/accuracy_model.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "core/trace_eval.hpp"
#include "mcu/device.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"

namespace imx::core {

PipelineReport run_pipeline(const PipelineConfig& config) {
    ExperimentSetup setup = make_paper_setup(config.setup);
    const AccuracyModel oracle(setup.network,
                               {kPaperFullPrecisionAcc.begin(),
                                kPaperFullPrecisionAcc.end()});

    PipelineReport report;
    report.deployed_policy = setup.deployed_policy;

    if (config.run_search) {
        const StaticTraceEvaluator trace_eval(setup.trace, setup.events,
                                              paper_storage_config(),
                                              kEnergyPerMMacMj);
        const PolicyEvaluator evaluator(setup.network, oracle, trace_eval,
                                        paper_constraints(),
                                        /*trace_aware=*/true);
        CompressionSearch search(evaluator, config.search);
        const SearchResult result = search.run_ddpg_refined();
        if (result.found_feasible) report.deployed_policy = result.best_policy;
    }

    report.exit_accuracy = oracle.exit_accuracy(report.deployed_policy);
    report.exit_macs =
        compress::per_exit_macs(setup.network, report.deployed_policy);
    report.model_bytes =
        compress::model_bytes(setup.network, report.deployed_policy);
    report.fits_flash =
        mcu::McuModel(setup.multi_exit_sim.mcu).fits_flash(report.model_bytes);

    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);

    // Static LUT baseline.
    {
        OracleInferenceModel model(setup.network, report.deployed_policy,
                                   report.exit_accuracy);
        sim::GreedyAffordablePolicy policy;
        report.static_lut = simulator.run(setup.events, model, policy);
    }

    // Learned runtime: episodes over fresh event schedules, then greedy eval
    // on the canonical schedule.
    {
        OracleInferenceModel model(setup.network, report.deployed_policy,
                                   report.exit_accuracy);
        sim::QLearningExitPolicy policy(setup.network.num_exits,
                                        config.runtime);
        for (int ep = 0; ep < config.learning_episodes; ++ep) {
            const auto events = sim::generate_events(
                {static_cast<int>(setup.events.size()), setup.trace.duration(),
                 sim::ArrivalKind::kUniform,
                 2000 + static_cast<std::uint64_t>(ep)});
            const auto r = simulator.run(events, model, policy);
            report.learning_curve.push_back(100.0 * r.accuracy_all_events());
        }
        policy.set_eval_mode(true);
        report.learned = simulator.run(setup.events, model, policy);
    }
    return report;
}

}  // namespace imx::core
