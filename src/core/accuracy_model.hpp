// Calibrated per-exit accuracy oracle: maps a compression policy to the
// accuracy of every exit (paper Eq. 6).
//
// Substitution rationale (DESIGN.md): the paper obtains Acc_i by fine-tuning
// the compressed network on CIFAR-10 (hours of GPU time per candidate would
// be needed to reproduce the raw number). The search and runtime algorithms
// only consume the *map* policy -> accuracy, so we model it analytically:
//
//   Acc_i = chance + (base_i - chance) * prod_{l in path(i)}
//             (1 - sp_l (1-alpha_l)^1.5) (1 - sq_l q(bw_l)) (1 - sa_l q(ba_l))
//
// with q(b) = (2^(1-b) - 2^-7) / (1 - 2^-7)  (q(8)=0, q(1)=1),
// layer sensitivities decaying with depth (early layers/exits are the most
// fragile, the paper's central observation in Fig. 1b), and FC layers far
// more quantization-tolerant than convolutions (why Fig. 4 binarizes
// FC-B21/FC-B31). The free parameters are fitted at construction against the
// paper's six Fig. 1b anchor accuracies (uniform + nonuniform x 3 exits)
// with base accuracies pinned to the full-precision anchors.
#ifndef IMX_CORE_ACCURACY_MODEL_HPP
#define IMX_CORE_ACCURACY_MODEL_HPP

#include <array>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/network_desc.hpp"

namespace imx::core {

/// Calibration knobs (fitted by AccuracyModel unless provided explicitly).
struct SensitivityParams {
    double prune_base = 0.30;     ///< sp of the shallowest layer
    double prune_decay = 1.2;     ///< exp decay of sp with depth rank
    double quant_base = 0.05;     ///< sq of the shallowest conv
    double quant_decay = 1.0;     ///< exp decay of sq with depth rank
    double fc_quant_factor = 0.15;  ///< sq multiplier for FC layers
    double act_factor = 0.25;     ///< sa = act_factor * sq
    double prune_exponent = 1.5;
    /// Capacity collapse: below this preserve ratio a layer stops carrying
    /// its features and accuracy falls toward chance regardless of the rest
    /// of the policy (sigmoid knee, inactive above alpha = 0.55; not fitted —
    /// it encodes the qualitative fact that alpha -> 0.05 destroys a layer,
    /// keeping the search honest).
    double prune_knee = 0.18;
    double prune_knee_width = 0.045;
};

class AccuracyModel {
public:
    /// Calibrates against the paper anchors for the given network.
    /// `depth_rank` gives each layer a position in [0,1] (0 = shallowest);
    /// pass empty to use the built-in ranks of the 11-layer paper family.
    AccuracyModel(const compress::NetworkDesc& desc,
                  std::vector<double> base_accuracy_percent,
                  std::vector<double> depth_rank = {});

    /// Bypass calibration (tests / what-if studies).
    AccuracyModel(const compress::NetworkDesc& desc,
                  std::vector<double> base_accuracy_percent,
                  std::vector<double> depth_rank,
                  const SensitivityParams& params);

    /// Accuracy (%) of each exit under the policy.
    [[nodiscard]] std::vector<double> exit_accuracy(
        const compress::Policy& policy) const;

    /// Accuracy (%) of a single exit.
    [[nodiscard]] double accuracy(const compress::Policy& policy,
                                  int exit) const;

    [[nodiscard]] const SensitivityParams& params() const { return params_; }
    [[nodiscard]] const compress::NetworkDesc& network() const { return *desc_; }
    [[nodiscard]] double chance_accuracy() const { return chance_; }

    /// Residual of the calibration fit (mean |error| in percentage points
    /// over the six anchors); exposed so tests can assert fit quality.
    [[nodiscard]] double calibration_residual() const { return residual_; }

private:
    void calibrate();
    [[nodiscard]] double survival(const compress::Policy& policy, int exit,
                                  const SensitivityParams& p) const;
    /// Exact (bit-level) encoding of every input calibrate() depends on;
    /// identical keys guarantee identical fitted params.
    [[nodiscard]] std::string calibration_key() const;

    const compress::NetworkDesc* desc_;
    std::vector<double> base_;
    std::vector<double> depth_rank_;
    double chance_ = 10.0;  // 10-class chance level, %
    SensitivityParams params_{};
    double residual_ = 0.0;

    // Bounded policy -> per-exit-accuracies memo. The pipeline and the
    // search evaluators repeatedly score the same policies; hits return the
    // exact vector the miss computed, so results are unchanged. Mutable +
    // mutex keeps the public const API thread-safe (setups are shared
    // across sweep workers). Note the mutex makes AccuracyModel
    // non-copyable; all users construct it in place.
    mutable std::mutex memo_mutex_;
    mutable std::unordered_map<std::string, std::vector<double>> accuracy_memo_;
};

}  // namespace imx::core

#endif  // IMX_CORE_ACCURACY_MODEL_HPP
