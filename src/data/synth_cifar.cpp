#include "data/synth_cifar.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/math.hpp"

namespace imx::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Class-dependent base color in RGB ([0,1] each); 10 well-separated hues.
void class_color(int label, double& r, double& g, double& b) {
    const double hue = static_cast<double>(label) / 10.0 * 2.0 * kPi;
    r = 0.5 + 0.35 * std::cos(hue);
    g = 0.5 + 0.35 * std::cos(hue - 2.0 * kPi / 3.0);
    b = 0.5 + 0.35 * std::cos(hue + 2.0 * kPi / 3.0);
}

/// Fine cue: oriented sinusoidal texture; frequency/orientation per class.
double class_texture(int label, int y, int x) {
    const double freq = 0.25 + 0.09 * static_cast<double>(label % 5);
    const double theta = kPi * static_cast<double>(label % 4) / 4.0;
    const double u = std::cos(theta) * y + std::sin(theta) * x;
    return std::sin(freq * u);
}

/// Shape cue: class-dependent mask (disk / ring / bar / checker rotation).
double class_shape(int label, int y, int x, int h, int w) {
    const double cy = (y - h / 2.0) / (h / 2.0);
    const double cx = (x - w / 2.0) / (w / 2.0);
    const double rad = std::sqrt(cy * cy + cx * cx);
    switch (label % 4) {
        case 0: return rad < 0.55 ? 1.0 : 0.0;                   // disk
        case 1: return (rad > 0.35 && rad < 0.7) ? 1.0 : 0.0;    // ring
        case 2: return std::fabs(cx) < 0.3 ? 1.0 : 0.0;          // bar
        default: return ((y / 8 + x / 8) % 2 == 0) ? 1.0 : 0.0;  // checker
    }
}

}  // namespace

Dataset make_synth_cifar(const SynthCifarConfig& config) {
    IMX_EXPECTS(config.num_samples >= 0);
    IMX_EXPECTS(config.num_classes >= 2 && config.num_classes <= 10);
    IMX_EXPECTS(config.height > 0 && config.width > 0);
    IMX_EXPECTS(config.noise_level >= 0.0);

    Dataset ds;
    ds.num_classes = config.num_classes;
    ds.images.reserve(static_cast<std::size_t>(config.num_samples));
    ds.labels.reserve(static_cast<std::size_t>(config.num_samples));

    util::Rng rng(config.seed);
    for (int i = 0; i < config.num_samples; ++i) {
        const int label = static_cast<int>(
            rng.uniform_int(0, config.num_classes - 1));
        double base_r = 0.0;
        double base_g = 0.0;
        double base_b = 0.0;
        class_color(label, base_r, base_g, base_b);

        // Per-sample nuisance variation: global brightness and phase jitter.
        const double brightness = rng.uniform(0.85, 1.15);
        const int shift_y = static_cast<int>(rng.uniform_int(-3, 3));
        const int shift_x = static_cast<int>(rng.uniform_int(-3, 3));

        nn::Tensor img({3, config.height, config.width});
        for (int y = 0; y < config.height; ++y) {
            for (int x = 0; x < config.width; ++x) {
                const int sy = y + shift_y;
                const int sx = x + shift_x;
                const double tex =
                    class_texture(label, sy, sx) * 0.22 * config.cue_strength;
                const double shp =
                    class_shape(label, sy, sx, config.height, config.width) *
                    0.28 * config.cue_strength;
                const double channel_base[3] = {base_r, base_g, base_b};
                for (int c = 0; c < 3; ++c) {
                    double v = channel_base[c] * brightness;
                    v += tex * (c == label % 3 ? 1.0 : 0.45);
                    v += shp * (c == (label + 1) % 3 ? 1.0 : 0.35);
                    v += rng.normal(0.0, config.noise_level);
                    img.at(c, y, x) =
                        static_cast<float>(util::clamp(v, 0.0, 1.0));
                }
            }
        }
        ds.images.push_back(std::move(img));
        ds.labels.push_back(label);
    }
    return ds;
}

std::pair<Dataset, Dataset> split(const Dataset& dataset, double test_fraction,
                                  std::uint64_t seed) {
    IMX_EXPECTS(test_fraction >= 0.0 && test_fraction <= 1.0);
    std::vector<std::size_t> order(dataset.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    util::Rng rng(seed);
    rng.shuffle(order);

    const auto test_count =
        static_cast<std::size_t>(test_fraction * static_cast<double>(dataset.size()));
    Dataset train;
    Dataset test;
    train.num_classes = dataset.num_classes;
    test.num_classes = dataset.num_classes;
    for (std::size_t i = 0; i < order.size(); ++i) {
        Dataset& target = i < test_count ? test : train;
        target.images.push_back(dataset.images[order[i]]);
        target.labels.push_back(dataset.labels[order[i]]);
    }
    return {std::move(train), std::move(test)};
}

void inject_label_noise(Dataset& dataset, double p, std::uint64_t seed) {
    IMX_EXPECTS(p >= 0.0 && p <= 1.0);
    util::Rng rng(seed);
    for (int& label : dataset.labels) {
        if (rng.bernoulli(p)) {
            int wrong = static_cast<int>(rng.uniform_int(0, dataset.num_classes - 2));
            if (wrong >= label) ++wrong;
            label = wrong;
        }
    }
}

}  // namespace imx::data
