// SynthCIFAR: a procedurally generated stand-in for CIFAR-10.
//
// The paper trains its multi-exit LeNet on CIFAR-10; shipping or training on
// the real dataset is out of scope for this offline reproduction (see
// DESIGN.md substitution table), so this module synthesizes a 10-class
// 3x32x32 image distribution with the properties the experiments need:
//   - classes are separable by a *hierarchy* of cues: coarse cues (dominant
//     color) that a shallow exit can learn, plus fine cues (texture
//     frequency/orientation, shape) that need deeper features — so early
//     exits plateau below deep exits, as on CIFAR-10;
//   - difficulty is controllable (noise_level, cue_strength), letting tests
//     reproduce the "hard inputs benefit from incremental inference" effect.
#ifndef IMX_DATA_SYNTH_CIFAR_HPP
#define IMX_DATA_SYNTH_CIFAR_HPP

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace imx::data {

/// A labeled image set.
struct Dataset {
    std::vector<nn::Tensor> images;  // each 3x32x32, values in [0, 1]
    std::vector<int> labels;         // in [0, num_classes)
    int num_classes = 10;

    [[nodiscard]] std::size_t size() const { return images.size(); }
};

/// Generation knobs.
struct SynthCifarConfig {
    int num_samples = 1000;
    int num_classes = 10;
    int height = 32;
    int width = 32;
    double noise_level = 0.18;   ///< additive Gaussian sigma
    double cue_strength = 1.0;   ///< scales class-discriminative signal
    std::uint64_t seed = 42;
};

/// Generate a deterministic dataset from the config seed.
Dataset make_synth_cifar(const SynthCifarConfig& config);

/// Split into train/test by deterministic shuffle (test_fraction of samples
/// go to the second dataset).
std::pair<Dataset, Dataset> split(const Dataset& dataset, double test_fraction,
                                  std::uint64_t seed);

/// Replace each label with a uniformly random wrong one with probability p
/// (used to test robustness of accuracy estimation).
void inject_label_noise(Dataset& dataset, double p, std::uint64_t seed);

}  // namespace imx::data

#endif  // IMX_DATA_SYNTH_CIFAR_HPP
