#include "baselines/baseline_models.hpp"

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace imx::baselines {

FixedBaselineModel::FixedBaselineModel(std::string name, double mflops,
                                       double accuracy_percent, double model_kb,
                                       std::uint64_t seed)
    : name_(std::move(name)),
      macs_(static_cast<std::int64_t>(mflops * 1e6)),
      accuracy_(accuracy_percent),
      bytes_(model_kb * 1024.0),
      seed_(seed) {
    IMX_EXPECTS(mflops > 0.0);
    IMX_EXPECTS(accuracy_percent > 0.0 && accuracy_percent <= 100.0);
}

std::int64_t FixedBaselineModel::exit_macs(int exit) const {
    IMX_EXPECTS(exit == 0);
    return macs_;
}

std::int64_t FixedBaselineModel::incremental_macs(int from_exit,
                                                  int to_exit) const {
    IMX_EXPECTS(from_exit == -1 && to_exit == 0);
    return macs_;
}

sim::ExitOutcome FixedBaselineModel::evaluate(int event_id, int exit) {
    IMX_EXPECTS(exit == 0);
    // Same latent-difficulty construction as core::OracleInferenceModel.
    std::uint64_t s = seed_ ^ (static_cast<std::uint64_t>(event_id) *
                               0x9e3779b97f4a7c15ULL);
    const double u = static_cast<double>(util::splitmix64(s) >> 11) * 0x1.0p-53;
    sim::ExitOutcome out;
    out.correct = u < accuracy_ / 100.0;
    out.confidence = 1.0;  // single exit: no early-exit decision to make
    return out;
}

FixedBaselineModel make_sonic_net(std::uint64_t seed) {
    // SONIC's CNN: 2.0 MFLOPs; 75.4 % processed-event accuracy (paper V-C).
    return FixedBaselineModel("SonicNet", 2.0, 75.4, 98.0, seed);
}

FixedBaselineModel make_sparse_net(std::uint64_t seed) {
    // SpArSe NAS output: 11.4 MFLOPs; 82.7 % (paper V-C).
    return FixedBaselineModel("SpArSeNet", 11.4, 82.7, 64.0, seed);
}

FixedBaselineModel make_lenet_cifar(std::uint64_t seed) {
    // LeNet adapted to CIFAR-10: 74.7 % (paper V-C); 0.72 MFLOPs inferred
    // from the paper's energy arithmetic (DESIGN.md calibration).
    return FixedBaselineModel("LeNet-Cifar", 0.72, 74.7, 240.0, seed);
}

}  // namespace imx::baselines
