// The paper's comparison systems (Sec. V-C):
//  * SonicNet — the network shipped with the SONIC intermittent-inference
//    runtime [Gobieski et al., ASPLOS'19]: single exit, 2.0 MFLOPs, 75.4 %
//    accuracy on processed events.
//  * SpArSeNet — output of the SpArSe NAS for MCUs [Fedorov et al.]:
//    single exit, 11.4 MFLOPs, 82.7 %.
//  * LeNet-Cifar — hand-adapted LeNet: single exit, 0.72 MFLOPs, 74.7 %
//    (FLOPs inferred from the paper's Fig. 5/latency arithmetic, DESIGN.md).
// All three run on the checkpointed (SONIC-style) execution model.
#ifndef IMX_BASELINES_BASELINE_MODELS_HPP
#define IMX_BASELINES_BASELINE_MODELS_HPP

#include <string>

#include "sim/inference_model.hpp"

namespace imx::baselines {

/// Single-exit model with fixed cost and accuracy; correctness is decided by
/// the same hashed-difficulty construction as the core oracle so baselines
/// and our network face the same event stream difficulty.
class FixedBaselineModel final : public sim::InferenceModel {
public:
    FixedBaselineModel(std::string name, double mflops, double accuracy_percent,
                       double model_kb, std::uint64_t seed = 1234);

    [[nodiscard]] int num_exits() const override { return 1; }
    [[nodiscard]] std::int64_t exit_macs(int exit) const override;
    [[nodiscard]] std::int64_t incremental_macs(int from_exit,
                                                int to_exit) const override;
    [[nodiscard]] sim::ExitOutcome evaluate(int event_id, int exit) override;
    [[nodiscard]] double model_bytes() const override { return bytes_; }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] double accuracy_percent() const { return accuracy_; }

private:
    std::string name_;
    std::int64_t macs_;
    double accuracy_;
    double bytes_;
    std::uint64_t seed_;
};

/// Factories with the paper's characterizations.
FixedBaselineModel make_sonic_net(std::uint64_t seed = 1234);
FixedBaselineModel make_sparse_net(std::uint64_t seed = 1234);
FixedBaselineModel make_lenet_cifar(std::uint64_t seed = 1234);

}  // namespace imx::baselines

#endif  // IMX_BASELINES_BASELINE_MODELS_HPP
