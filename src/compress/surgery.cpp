#include "compress/surgery.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/quantize.hpp"
#include "util/contracts.hpp"

namespace imx::compress {

nn::Tensor ActQuant::forward(const nn::Tensor& input) {
    if (bits_ >= 32) return input;
    nn::Tensor out = input;
    nn::fake_quantize_activations(out, bits_);
    return out;
}

nn::Tensor ActQuant::backward(const nn::Tensor& grad_output) {
    return grad_output;  // straight-through estimator
}

namespace {

/// A prunable layer (conv or fc) found while walking the graph.
struct PrunableRef {
    nn::Conv2d* conv = nullptr;
    nn::Linear* fc = nullptr;

    [[nodiscard]] std::string name() const {
        return conv != nullptr ? conv->name() : fc->name();
    }
    [[nodiscard]] int input_count() const {
        return conv != nullptr ? conv->in_channels() : fc->in_features();
    }
    [[nodiscard]] int output_count() const {
        return conv != nullptr ? conv->out_channels() : fc->out_features();
    }
};

PrunableRef as_prunable(nn::Layer& layer) {
    PrunableRef ref;
    ref.conv = dynamic_cast<nn::Conv2d*>(&layer);
    if (ref.conv == nullptr) ref.fc = dynamic_cast<nn::Linear*>(&layer);
    return ref;
}

bool is_prunable(const PrunableRef& ref) {
    return ref.conv != nullptr || ref.fc != nullptr;
}

std::vector<PrunableRef> prunables_of(nn::Segment& segment) {
    std::vector<PrunableRef> out;
    for (std::size_t i = 0; i < segment.size(); ++i) {
        PrunableRef ref = as_prunable(segment.layer(i));
        if (is_prunable(ref)) out.push_back(ref);
    }
    return out;
}

/// Producer/consumers of one junction in the live graph.
struct LiveJunction {
    PrunableRef producer;
    std::vector<PrunableRef> consumers;
};

/// Enumerate all junctions: within-chain adjacencies plus trunk branch points.
std::vector<LiveJunction> find_junctions(nn::ExitGraph& graph) {
    const int m = graph.num_exits();
    std::vector<std::vector<PrunableRef>> trunk_layers;
    std::vector<std::vector<PrunableRef>> branch_layers;
    for (int i = 0; i < m; ++i) {
        trunk_layers.push_back(prunables_of(graph.trunk_segment(i)));
        branch_layers.push_back(prunables_of(graph.branch(i)));
        IMX_EXPECTS(!trunk_layers.back().empty());
        IMX_EXPECTS(!branch_layers.back().empty());
    }

    std::vector<LiveJunction> junctions;
    auto chain_adjacencies = [&junctions](std::vector<PrunableRef>& chain) {
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            junctions.push_back({chain[i], {chain[i + 1]}});
        }
    };
    for (int i = 0; i < m; ++i) {
        chain_adjacencies(trunk_layers[static_cast<std::size_t>(i)]);
        chain_adjacencies(branch_layers[static_cast<std::size_t>(i)]);
        // Trunk segment i's last prunable feeds branch i (and trunk i+1).
        LiveJunction j;
        j.producer = trunk_layers[static_cast<std::size_t>(i)].back();
        j.consumers.push_back(branch_layers[static_cast<std::size_t>(i)].front());
        if (i + 1 < m) {
            j.consumers.push_back(trunk_layers[static_cast<std::size_t>(i + 1)].front());
        }
        junctions.push_back(std::move(j));
    }
    return junctions;
}

/// Importance of the producer's output channels as seen by one consumer,
/// normalized to sum 1. For Linear consumers, features are grouped into
/// per-channel blocks of size in_features / producer_outputs.
std::vector<double> consumer_channel_importance(const PrunableRef& consumer,
                                                int producer_outputs) {
    std::vector<double> raw;
    if (consumer.conv != nullptr) {
        IMX_EXPECTS(consumer.conv->in_channels() == producer_outputs);
        raw = consumer.conv->input_channel_importance();
    } else {
        const int in_features = consumer.fc->in_features();
        IMX_EXPECTS(in_features % producer_outputs == 0);
        const int block = in_features / producer_outputs;
        const std::vector<double> per_feature = consumer.fc->input_importance();
        raw.assign(static_cast<std::size_t>(producer_outputs), 0.0);
        for (int c = 0; c < producer_outputs; ++c) {
            for (int f = 0; f < block; ++f) {
                raw[static_cast<std::size_t>(c)] +=
                    per_feature[static_cast<std::size_t>(c * block + f)];
            }
        }
    }
    const double total = std::accumulate(raw.begin(), raw.end(), 0.0);
    if (total > 0.0) {
        for (double& v : raw) v /= total;
    }
    return raw;
}

std::vector<int> expand_channel_keep_to_features(const std::vector<int>& keep,
                                                 int block) {
    std::vector<int> features;
    features.reserve(keep.size() * static_cast<std::size_t>(block));
    for (const int c : keep) {
        for (int f = 0; f < block; ++f) features.push_back(c * block + f);
    }
    return features;
}

void prune_junction(const LiveJunction& junction,
                    const std::unordered_map<std::string, double>& preserve) {
    const int channels = junction.producer.output_count();

    // Keep count: the largest consumer request (union of ranked prefixes).
    int keep_count = 0;
    bool any_request = false;
    for (const PrunableRef& consumer : junction.consumers) {
        const auto it = preserve.find(consumer.name());
        const double alpha = it == preserve.end() ? 1.0 : it->second;
        IMX_EXPECTS(alpha > 0.0 && alpha <= 1.0);
        if (it != preserve.end()) any_request = true;
        const int want = std::max(
            1, static_cast<int>(std::nearbyint(alpha * channels)));
        keep_count = std::max(keep_count, want);
    }
    if (!any_request || keep_count >= channels) return;

    // Rank channels by summed normalized consumer importance.
    std::vector<double> combined(static_cast<std::size_t>(channels), 0.0);
    for (const PrunableRef& consumer : junction.consumers) {
        const std::vector<double> imp =
            consumer_channel_importance(consumer, channels);
        for (int c = 0; c < channels; ++c) {
            combined[static_cast<std::size_t>(c)] += imp[static_cast<std::size_t>(c)];
        }
    }
    std::vector<int> order(static_cast<std::size_t>(channels));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&combined](int a, int b) {
        return combined[static_cast<std::size_t>(a)] >
               combined[static_cast<std::size_t>(b)];
    });
    std::vector<int> keep(order.begin(), order.begin() + keep_count);
    std::sort(keep.begin(), keep.end());

    if (junction.producer.conv != nullptr) {
        junction.producer.conv->prune_output_channels(keep);
    } else {
        junction.producer.fc->prune_outputs(keep);
    }
    for (const PrunableRef& consumer : junction.consumers) {
        if (consumer.conv != nullptr) {
            consumer.conv->prune_input_channels(keep);
        } else {
            const int block = consumer.fc->in_features() / channels;
            consumer.fc->prune_inputs(expand_channel_keep_to_features(keep, block));
        }
    }
}

template <typename Fn>
void for_each_layer(nn::ExitGraph& graph, Fn&& fn) {
    for (int i = 0; i < graph.num_exits(); ++i) {
        nn::Segment& t = graph.trunk_segment(i);
        for (std::size_t l = 0; l < t.size(); ++l) fn(t.layer(l));
        nn::Segment& b = graph.branch(i);
        for (std::size_t l = 0; l < b.size(); ++l) fn(b.layer(l));
    }
}

}  // namespace

void apply_pruning(nn::ExitGraph& graph,
                   const std::unordered_map<std::string, double>& preserve) {
    // Junctions are pruned from the input side forward so that consumer
    // importance is always computed on already-consistent shapes.
    const std::vector<LiveJunction> junctions = find_junctions(graph);
    for (const LiveJunction& junction : junctions) {
        prune_junction(junction, preserve);
    }
}

void apply_weight_quantization(
    nn::ExitGraph& graph, const std::unordered_map<std::string, int>& bits) {
    for_each_layer(graph, [&bits](nn::Layer& layer) {
        const auto it = bits.find(layer.name());
        if (it == bits.end() || it->second >= 32) return;
        if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
            nn::fake_quantize_weights(conv->weight(), it->second);
        } else if (auto* fc = dynamic_cast<nn::Linear*>(&layer)) {
            nn::fake_quantize_weights(fc->weight(), it->second);
        }
    });
}

void apply_activation_quantization(
    nn::ExitGraph& graph, const std::unordered_map<std::string, int>& bits) {
    for_each_layer(graph, [&bits](nn::Layer& layer) {
        auto* aq = dynamic_cast<ActQuant*>(&layer);
        if (aq == nullptr) return;
        const auto it = bits.find(aq->name());
        if (it != bits.end()) aq->set_bits(it->second);
    });
}

void apply_policy(nn::ExitGraph& graph, const NetworkDesc& desc,
                  const Policy& policy) {
    IMX_EXPECTS(policy.size() == desc.num_layers());
    std::unordered_map<std::string, double> preserve;
    std::unordered_map<std::string, int> weight_bits;
    std::unordered_map<std::string, int> act_bits;
    for (std::size_t l = 0; l < desc.num_layers(); ++l) {
        const std::string& name = desc.layers[l].name;
        preserve[name] = policy[l].preserve_ratio;
        weight_bits[name] = policy[l].weight_bits;
        act_bits[name + "/aq"] = policy[l].activation_bits;
    }
    apply_pruning(graph, preserve);
    apply_weight_quantization(graph, weight_bits);
    apply_activation_quantization(graph, act_bits);
}

}  // namespace imx::compress
