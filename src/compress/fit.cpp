#include "compress/fit.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace imx::compress {

bool satisfies(const NetworkDesc& desc, const Policy& policy,
               const Constraints& constraints) {
    if (constraints.f_target_macs > 0.0 &&
        static_cast<double>(total_macs(desc, policy)) >
            constraints.f_target_macs) {
        return false;
    }
    if (constraints.s_target_bytes > 0.0 &&
        model_bytes(desc, policy) > constraints.s_target_bytes) {
        return false;
    }
    return true;
}

Policy make_uniform_for_targets(const NetworkDesc& desc,
                                const Constraints& constraints,
                                int activation_bits) {
    IMX_EXPECTS(constraints.f_target_macs > 0.0);
    IMX_EXPECTS(constraints.s_target_bytes > 0.0);

    // Walk the preserve grid from 1.0 downward; FLOPs are monotone in alpha.
    const int steps = static_cast<int>(
        (kMaxPreserve - kMinPreserve) / kPreserveStep + 0.5);
    for (int i = 0; i <= steps; ++i) {
        const double alpha = kMaxPreserve - i * kPreserveStep;
        Policy p = Policy::uniform(desc.num_layers(), alpha, kMaxBits,
                                   activation_bits);
        if (static_cast<double>(total_macs(desc, p)) >
            constraints.f_target_macs) {
            continue;
        }
        // FLOPs satisfied; now shrink bits until size fits.
        for (int bits = kMaxBits; bits >= kMinBits; --bits) {
            for (auto& lp : p.layers) lp.weight_bits = bits;
            if (model_bytes(desc, p) <= constraints.s_target_bytes) return p;
        }
    }
    throw std::runtime_error(
        "make_uniform_for_targets: constraints unsatisfiable even at "
        "alpha=0.05, 1-bit weights");
}

}  // namespace imx::compress
