#include "compress/policy.hpp"

#include <cmath>

#include "util/math.hpp"

namespace imx::compress {

double snap_preserve_ratio(double ratio) {
    const double snapped =
        std::nearbyint(ratio / kPreserveStep) * kPreserveStep;
    return util::clamp(snapped, kMinPreserve, kMaxPreserve);
}

int map_action_to_bits(double action, int lo, int hi) {
    IMX_EXPECTS(lo >= 1 && hi >= lo);
    const double a = util::clamp(action, 0.0, 1.0);
    const int bits = lo + static_cast<int>(std::nearbyint(a * (hi - lo)));
    return util::clamp(bits, lo, hi);
}

}  // namespace imx::compress
