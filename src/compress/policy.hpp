// Layer-wise compression policy: pruning rate + weight/activation bitwidths
// (the decision variables of paper Sec. III-A).
#ifndef IMX_COMPRESS_POLICY_HPP
#define IMX_COMPRESS_POLICY_HPP

#include <string>
#include <vector>

#include "util/contracts.hpp"

namespace imx::compress {

/// Paper search-space bounds: alpha in [0.05, 1.0] step 0.05, bits in [1, 8].
constexpr double kMinPreserve = 0.05;
constexpr double kMaxPreserve = 1.0;
constexpr double kPreserveStep = 0.05;
constexpr int kMinBits = 1;
constexpr int kMaxBits = 8;

/// Per-layer decisions. preserve_ratio is alpha_l = c'/c on the layer's
/// *input* channels (paper Sec. III-A "Pruning").
struct LayerPolicy {
    double preserve_ratio = 1.0;
    int weight_bits = 8;
    int activation_bits = 8;
};

/// Whole-network policy, indexed like the NetworkDesc layer table.
struct Policy {
    std::vector<LayerPolicy> layers;

    [[nodiscard]] std::size_t size() const { return layers.size(); }
    LayerPolicy& operator[](std::size_t i) { return layers.at(i); }
    const LayerPolicy& operator[](std::size_t i) const { return layers.at(i); }

    /// All layers at the given ratio/bitwidths (the "uniform compression"
    /// baseline of Fig. 1b).
    static Policy uniform(std::size_t num_layers, double preserve_ratio,
                          int weight_bits, int activation_bits) {
        IMX_EXPECTS(preserve_ratio > 0.0 && preserve_ratio <= 1.0);
        IMX_EXPECTS(weight_bits >= kMinBits && weight_bits <= 16);
        IMX_EXPECTS(activation_bits >= kMinBits && activation_bits <= 16);
        Policy p;
        p.layers.assign(num_layers,
                        LayerPolicy{preserve_ratio, weight_bits, activation_bits});
        return p;
    }

    /// Uncompressed network (alpha = 1, fp32 expressed as 32-bit "codes").
    static Policy full_precision(std::size_t num_layers) {
        Policy p;
        p.layers.assign(num_layers, LayerPolicy{1.0, 32, 32});
        return p;
    }
};

/// Snap a continuous ratio to the paper's 0.05 grid within [0.05, 1].
double snap_preserve_ratio(double ratio);

/// Map a continuous action in [0,1] to a bitwidth in [lo, hi] (paper
/// Sec. III-B "Action": linear mapping then rounding).
int map_action_to_bits(double action, int lo, int hi);

}  // namespace imx::compress

#endif  // IMX_COMPRESS_POLICY_HPP
