// Analytic description of a multi-exit network for FLOPs / model-size
// accounting under a compression policy (paper Eq. 6-8 cost side).
//
// Channel-pruning cost semantics:
//  * alpha_l (LayerPolicy::preserve_ratio) keeps a fraction of layer l's
//    *input* channels;
//  * the *output* channels of a producer layer are pruned to the union of
//    what its consumers keep. Keep-sets are importance-ranked prefixes, so
//    the union fraction equals max over consumers' alpha;
//  * the image input is never pruned (alpha of the first layers is treated
//    as 1.0 on the input side).
// MACs(l) = base_macs * alpha_in_eff(l) * alpha_out(l); weight bytes scale
// with the same channel fractions times bits/8 (biases stay fp32).
#ifndef IMX_COMPRESS_NETWORK_DESC_HPP
#define IMX_COMPRESS_NETWORK_DESC_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "compress/policy.hpp"

namespace imx::compress {

enum class LayerKind { kConv, kFc };

/// One prunable/quantizable layer (conv or fc); pass-through layers
/// (ReLU/pool/flatten) are folded into the descriptor geometry.
struct LayerDesc {
    std::string name;
    LayerKind kind = LayerKind::kConv;
    std::int64_t base_macs = 0;      ///< MACs at alpha = 1 everywhere
    std::int64_t weight_params = 0;  ///< weight element count at alpha = 1
    std::int64_t bias_params = 0;
    int in_count = 0;   ///< input channels (conv) / features (fc)
    int out_count = 0;  ///< output channels (conv) / features (fc)
    int in_junction = -1;   ///< junction feeding this layer (-1: image input)
    int out_junction = -1;  ///< junction this layer produces (-1: logits)
};

/// A junction is a tensor shared between one producer and >=1 consumers
/// (branch points have multiple consumers).
struct Junction {
    int producer = -1;  ///< layer index; -1 for the image input
    std::vector<int> consumers;
};

/// Whole-network table plus exit structure.
struct NetworkDesc {
    std::vector<LayerDesc> layers;
    std::vector<Junction> junctions;
    int num_exits = 0;
    /// exit_paths[i] = indices of layers executed to produce exit i's logits.
    std::vector<std::vector<int>> exit_paths;

    [[nodiscard]] std::size_t num_layers() const { return layers.size(); }
    [[nodiscard]] int layer_index(const std::string& name) const;
    void validate() const;  ///< checks structural invariants; throws on error
};

/// Effective preserve fraction of layer l's input: its own alpha, except 1.0
/// when fed by the raw image.
double effective_input_alpha(const NetworkDesc& desc, const Policy& policy,
                             int layer);

/// Preserve fraction of a junction's producer outputs: max over consumers.
double junction_alpha(const NetworkDesc& desc, const Policy& policy,
                      int junction);

/// MACs of one layer under the policy.
std::int64_t layer_macs(const NetworkDesc& desc, const Policy& policy, int layer);

/// Weight storage in bytes of one layer under the policy (weights at
/// weight_bits, biases at 32-bit).
double layer_bytes(const NetworkDesc& desc, const Policy& policy, int layer);

/// MACs to compute exit i from scratch.
std::int64_t exit_macs(const NetworkDesc& desc, const Policy& policy, int exit);

/// Sum of every layer's MACs (paper's Fmodel = sum over exits' FLOPs uses
/// exit sums; both are exposed — see exit_macs_total).
std::int64_t total_macs(const NetworkDesc& desc, const Policy& policy);

/// Paper Eq. 8 reading "Fmodel = sum_i flop_i": total over the m exits.
std::int64_t exit_macs_total(const NetworkDesc& desc, const Policy& policy);

/// Total model weight storage in bytes under the policy.
double model_bytes(const NetworkDesc& desc, const Policy& policy);

/// Per-exit MACs vector.
std::vector<std::int64_t> per_exit_macs(const NetworkDesc& desc,
                                        const Policy& policy);

}  // namespace imx::compress

#endif  // IMX_COMPRESS_NETWORK_DESC_HPP
