#include "compress/network_desc.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace imx::compress {

int NetworkDesc::layer_index(const std::string& name) const {
    for (std::size_t i = 0; i < layers.size(); ++i) {
        if (layers[i].name == name) return static_cast<int>(i);
    }
    throw std::out_of_range("NetworkDesc: unknown layer " + name);
}

void NetworkDesc::validate() const {
    IMX_EXPECTS(num_exits > 0);
    IMX_EXPECTS(static_cast<int>(exit_paths.size()) == num_exits);
    for (const auto& layer : layers) {
        IMX_EXPECTS(layer.base_macs > 0);
        IMX_EXPECTS(layer.weight_params > 0);
        IMX_EXPECTS(layer.in_junction >= -1 &&
                    layer.in_junction < static_cast<int>(junctions.size()));
        IMX_EXPECTS(layer.out_junction >= -1 &&
                    layer.out_junction < static_cast<int>(junctions.size()));
    }
    for (std::size_t j = 0; j < junctions.size(); ++j) {
        const auto& junction = junctions[j];
        IMX_EXPECTS(!junction.consumers.empty());
        IMX_EXPECTS(junction.producer >= -1 &&
                    junction.producer < static_cast<int>(layers.size()));
        if (junction.producer >= 0) {
            IMX_EXPECTS(layers[static_cast<std::size_t>(junction.producer)]
                            .out_junction == static_cast<int>(j));
        }
        for (const int c : junction.consumers) {
            IMX_EXPECTS(c >= 0 && c < static_cast<int>(layers.size()));
            IMX_EXPECTS(layers[static_cast<std::size_t>(c)].in_junction ==
                        static_cast<int>(j));
        }
    }
    for (const auto& path : exit_paths) {
        IMX_EXPECTS(!path.empty());
        for (const int l : path) {
            IMX_EXPECTS(l >= 0 && l < static_cast<int>(layers.size()));
        }
        // Final layer on each path must emit logits (no out junction).
        IMX_EXPECTS(layers[static_cast<std::size_t>(path.back())].out_junction == -1);
    }
}

double effective_input_alpha(const NetworkDesc& desc, const Policy& policy,
                             int layer) {
    IMX_EXPECTS(layer >= 0 && layer < static_cast<int>(desc.layers.size()));
    IMX_EXPECTS(policy.size() == desc.layers.size());
    const LayerDesc& ld = desc.layers[static_cast<std::size_t>(layer)];
    if (ld.in_junction < 0) return 1.0;  // raw image input is never pruned
    const Junction& junction =
        desc.junctions[static_cast<std::size_t>(ld.in_junction)];
    if (junction.producer < 0) return 1.0;
    return policy[static_cast<std::size_t>(layer)].preserve_ratio;
}

double junction_alpha(const NetworkDesc& desc, const Policy& policy,
                      int junction) {
    IMX_EXPECTS(junction >= 0 && junction < static_cast<int>(desc.junctions.size()));
    const Junction& j = desc.junctions[static_cast<std::size_t>(junction)];
    if (j.producer < 0) return 1.0;  // image input junction
    double alpha = 0.0;
    for (const int consumer : j.consumers) {
        alpha = std::max(alpha,
                         policy[static_cast<std::size_t>(consumer)].preserve_ratio);
    }
    return alpha;
}

std::int64_t layer_macs(const NetworkDesc& desc, const Policy& policy,
                        int layer) {
    const LayerDesc& ld = desc.layers[static_cast<std::size_t>(layer)];
    const double a_in = effective_input_alpha(desc, policy, layer);
    const double a_out =
        ld.out_junction < 0 ? 1.0 : junction_alpha(desc, policy, ld.out_junction);
    return static_cast<std::int64_t>(
        static_cast<double>(ld.base_macs) * a_in * a_out + 0.5);
}

double layer_bytes(const NetworkDesc& desc, const Policy& policy, int layer) {
    const LayerDesc& ld = desc.layers[static_cast<std::size_t>(layer)];
    const double a_in = effective_input_alpha(desc, policy, layer);
    const double a_out =
        ld.out_junction < 0 ? 1.0 : junction_alpha(desc, policy, ld.out_junction);
    const int bits = policy[static_cast<std::size_t>(layer)].weight_bits;
    const double weight_bytes = static_cast<double>(ld.weight_params) * a_in *
                                a_out * static_cast<double>(bits) / 8.0;
    const double bias_bytes = static_cast<double>(ld.bias_params) * a_out * 4.0;
    return weight_bytes + bias_bytes;
}

std::int64_t exit_macs(const NetworkDesc& desc, const Policy& policy, int exit) {
    IMX_EXPECTS(exit >= 0 && exit < desc.num_exits);
    std::int64_t total = 0;
    for (const int layer : desc.exit_paths[static_cast<std::size_t>(exit)]) {
        total += layer_macs(desc, policy, layer);
    }
    return total;
}

std::int64_t total_macs(const NetworkDesc& desc, const Policy& policy) {
    std::int64_t total = 0;
    for (std::size_t l = 0; l < desc.layers.size(); ++l) {
        total += layer_macs(desc, policy, static_cast<int>(l));
    }
    return total;
}

std::int64_t exit_macs_total(const NetworkDesc& desc, const Policy& policy) {
    std::int64_t total = 0;
    for (int e = 0; e < desc.num_exits; ++e) {
        total += exit_macs(desc, policy, e);
    }
    return total;
}

double model_bytes(const NetworkDesc& desc, const Policy& policy) {
    double total = 0.0;
    for (std::size_t l = 0; l < desc.layers.size(); ++l) {
        total += layer_bytes(desc, policy, static_cast<int>(l));
    }
    return total;
}

std::vector<std::int64_t> per_exit_macs(const NetworkDesc& desc,
                                        const Policy& policy) {
    std::vector<std::int64_t> out;
    out.reserve(static_cast<std::size_t>(desc.num_exits));
    for (int e = 0; e < desc.num_exits; ++e) {
        out.push_back(exit_macs(desc, policy, e));
    }
    return out;
}

}  // namespace imx::compress
