// Constraint-fitting helpers: produce uniform policies that just satisfy the
// FLOPs and model-size targets (the "uniform compression" baseline of
// Fig. 1b, against which the nonuniform search is compared).
#ifndef IMX_COMPRESS_FIT_HPP
#define IMX_COMPRESS_FIT_HPP

#include "compress/network_desc.hpp"
#include "compress/policy.hpp"

namespace imx::compress {

/// Constraint set of paper Eq. 8. The FLOPs bound applies to the network's
/// distinct-layer total (each layer counted once); the paper's own deployed
/// policy (Fig. 6) is infeasible under the sum-over-exits reading, so the
/// distinct-layer total is the consistent interpretation (see DESIGN.md).
struct Constraints {
    double f_target_macs = 0.0;   ///< bound on total_macs
    double s_target_bytes = 0.0;  ///< bound on model_bytes
};

/// Whether a policy satisfies the constraints on the given network.
bool satisfies(const NetworkDesc& desc, const Policy& policy,
               const Constraints& constraints);

/// Largest uniform preserve ratio (0.05 grid) whose total MACs meet
/// f_target, combined with the largest uniform bitwidth in [1, 8] whose model
/// size then meets s_target. Throws if even the most aggressive uniform
/// policy cannot satisfy the constraints.
Policy make_uniform_for_targets(const NetworkDesc& desc,
                                const Constraints& constraints,
                                int activation_bits = 8);

}  // namespace imx::compress

#endif  // IMX_COMPRESS_FIT_HPP
