// Physical compression of a live ExitGraph: channel pruning with correct
// producer/consumer bookkeeping across branch junctions, weight fake
// quantization, and activation quantization via ActQuant layers.
//
// Junction rule: at a branch point the kept channel set is shared by all
// consumers — the keep count is the largest consumer request and channels
// are ranked by the sum of the consumers' normalized L1 importances
// (paper Eq. 2 per consumer). This is the deployable interpretation of
// per-layer input pruning on a branching topology.
#ifndef IMX_COMPRESS_SURGERY_HPP
#define IMX_COMPRESS_SURGERY_HPP

#include <string>
#include <unordered_map>

#include "compress/network_desc.hpp"
#include "nn/exit_graph.hpp"
#include "nn/layer.hpp"

namespace imx::compress {

/// Fake-quantizes (non-negative, post-ReLU) activations during forward;
/// straight-through gradient in backward. bits >= 32 is a pass-through, so
/// builders can insert these unconditionally and surgery just sets bits.
class ActQuant final : public nn::Layer {
public:
    explicit ActQuant(std::string name, int bits = 32)
        : name_(std::move(name)), bits_(bits) {}

    nn::Tensor forward(const nn::Tensor& input) override;
    nn::Tensor backward(const nn::Tensor& grad_output) override;
    [[nodiscard]] nn::Shape output_shape(const nn::Shape& s) const override {
        return s;
    }
    [[nodiscard]] std::int64_t macs(const nn::Shape&) const override { return 0; }
    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] nn::LayerPtr clone() const override {
        return std::make_unique<ActQuant>(name_, bits_);
    }

    void set_bits(int bits) { bits_ = bits; }
    [[nodiscard]] int bits() const { return bits_; }

private:
    std::string name_;
    int bits_;
};

/// Prune the graph in place. `preserve` maps prunable layer names (Conv2d /
/// Linear) to the preserve ratio of that layer's *input* channels. Layers not
/// in the map keep ratio 1.0. The first layer's image input is never pruned.
void apply_pruning(nn::ExitGraph& graph,
                   const std::unordered_map<std::string, double>& preserve);

/// Fake-quantize the weights of named Conv2d/Linear layers (bits >= 32: no-op).
void apply_weight_quantization(nn::ExitGraph& graph,
                               const std::unordered_map<std::string, int>& bits);

/// Set bitwidths on named ActQuant layers (bits >= 32: pass-through).
void apply_activation_quantization(
    nn::ExitGraph& graph, const std::unordered_map<std::string, int>& bits);

/// Apply a full Policy to the graph by NetworkDesc layer names: pruning, then
/// weight quantization, then activation quantization (ActQuant layer names
/// are expected to be "<layer>/aq").
void apply_policy(nn::ExitGraph& graph, const NetworkDesc& desc,
                  const Policy& policy);

}  // namespace imx::compress

#endif  // IMX_COMPRESS_SURGERY_HPP
