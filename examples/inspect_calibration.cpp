// Developer utility: prints the calibrated oracle, the deployed policy's
// cost profile, and end-to-end simulation metrics for ours + all baselines.
// Useful for sanity-checking the experiment calibration against the paper.
#include <algorithm>
#include <cstdio>

#include "baselines/baseline_models.hpp"
#include "compress/fit.hpp"
#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"

using namespace imx;

int main() {
    const auto desc = core::make_paper_network_desc();
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    std::printf("calibration residual: %.3f pp\n", oracle.calibration_residual());

    const auto uniform = core::uniform_baseline_policy();
    std::printf("uniform baseline: alpha=%.2f bits=%d\n",
                uniform[0].preserve_ratio, uniform[0].weight_bits);
    const auto ref = core::reference_nonuniform_policy();

    auto print_acc = [&](const char* tag, const compress::Policy& p) {
        const auto acc = oracle.exit_accuracy(p);
        std::printf("%-12s acc: %.1f %.1f %.1f | macs total %.3fM bytes %.1fKB\n",
                    tag, acc[0], acc[1], acc[2],
                    static_cast<double>(compress::total_macs(desc, p)) / 1e6,
                    compress::model_bytes(desc, p) / 1024.0);
    };
    print_acc("full", compress::Policy::full_precision(desc.num_layers()));
    print_acc("uniform", uniform);
    print_acc("nonuniform", ref);

    const auto macs_full = compress::per_exit_macs(
        desc, compress::Policy::full_precision(desc.num_layers()));
    const auto macs_ref = compress::per_exit_macs(desc, ref);
    for (int e = 0; e < 3; ++e) {
        std::printf("exit%d macs: %.4fM -> %.4fM (x%.2f)\n", e + 1,
                    static_cast<double>(macs_full[(size_t)e]) / 1e6,
                    static_cast<double>(macs_ref[(size_t)e]) / 1e6,
                    static_cast<double>(macs_ref[(size_t)e]) /
                        static_cast<double>(macs_full[(size_t)e]));
    }

    // --- End-to-end simulation ---
    const auto setup = core::make_paper_setup();
    std::printf("\ntrace: duration %.0fs total %.1fmJ mean %.4fmW peak %.4fmW\n",
                setup.trace.duration(), setup.trace.total_energy(),
                setup.trace.mean_power(),
                *std::max_element(setup.trace.samples().begin(),
                                  setup.trace.samples().end()));
    std::printf("deployed exit acc: %.1f %.1f %.1f ; exit costs %.3f %.3f %.3f mJ\n",
                setup.exit_accuracy[0], setup.exit_accuracy[1],
                setup.exit_accuracy[2],
                static_cast<double>(macs_ref[0]) * 1.5e-6,
                static_cast<double>(macs_ref[1]) * 1.5e-6,
                static_cast<double>(macs_ref[2]) * 1.5e-6);

    auto report = [&](const char* tag, const sim::SimResult& r, int m) {
        const auto hist = r.exit_histogram(m);
        std::printf(
            "%-12s IEpmJ %.3f | acc_all %.1f%% acc_proc %.1f%% | proc %d/%d | "
            "lat %.1fs inf_lat %.1fs | macs/inf %.3fM | exits",
            tag, r.iepmj(), 100 * r.accuracy_all_events(),
            100 * r.accuracy_processed(), r.processed_count(), r.total_events(),
            r.mean_event_latency_s(), r.mean_inference_latency_s(),
            r.mean_inference_macs() / 1e6);
        for (int e = 0; e < m; ++e) std::printf(" %d", hist[(size_t)e]);
        std::printf("\n");
    };

    // Ours, static LUT policy.
    {
        core::OracleInferenceModel model(desc, ref, setup.exit_accuracy);
        sim::GreedyAffordablePolicy policy;
        auto s = setup.make_multi_exit_simulator();
        report("ours/LUT", s.run(setup.events, model, policy), 3);
    }
    // Ours, Q-learning (10 learning episodes, then eval).
    {
        core::OracleInferenceModel model(desc, ref, setup.exit_accuracy);
        sim::QLearningExitPolicy policy(3, sim::RuntimeConfig{});
        auto s = setup.make_multi_exit_simulator();
        for (int ep = 0; ep < 16; ++ep) {
            core::SetupConfig ec;
            ec.event_seed = 1000 + static_cast<std::uint64_t>(ep);
            auto events = sim::generate_events(
                {500, setup.trace.duration(), sim::ArrivalKind::kUniform,
                 ec.event_seed});
            auto r = s.run(events, model, policy);
            std::printf("  QL ep%02d acc_all %.1f%%\n", ep,
                        100 * r.accuracy_all_events());
        }
        policy.set_eval_mode(true);
        report("ours/QL", s.run(setup.events, model, policy), 3);
    }
    // Baselines (checkpointed runtime).
    {
        auto sonic = baselines::make_sonic_net();
        sim::GreedyAffordablePolicy policy;
        auto s = setup.make_checkpointed_simulator();
        report("SonicNet", s.run(setup.events, sonic, policy), 1);
        auto sparse = baselines::make_sparse_net();
        report("SpArSeNet", s.run(setup.events, sparse, policy), 1);
        auto lenet = baselines::make_lenet_cifar();
        report("LeNet-Cifar", s.run(setup.events, lenet, policy), 1);
    }
    return 0;
}
