// Example: a day in the life of a solar-powered sensor node.
//
// Simulates the event-driven intermittent runtime hour by hour and prints a
// timeline: harvested power, buffered energy, events seen/processed, and the
// exits taken — the operational view behind Fig. 1a of the paper.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

using namespace imx;

int main() {
    const auto setup = core::make_paper_setup();
    core::OracleInferenceModel model(setup.network, setup.deployed_policy,
                                     setup.exit_accuracy);
    sim::QLearningExitPolicy policy(3, sim::RuntimeConfig{});

    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);
    // Warm up the runtime policy on a few prior "days".
    for (int episode = 0; episode < 8; ++episode) {
        const auto events = sim::generate_events(
            {500, setup.trace.duration(), sim::ArrivalKind::kUniform,
             7000 + static_cast<std::uint64_t>(episode)});
        (void)simulator.run(events, model, policy);
    }
    policy.set_eval_mode(true);
    const auto result = simulator.run(setup.events, model, policy);

    // Hourly digest over the compressed daylight window.
    const int buckets = 12;
    const double bucket_s = setup.trace.duration() / buckets;
    std::vector<int> seen(buckets, 0);
    std::vector<int> processed(buckets, 0);
    std::vector<int> correct(buckets, 0);
    std::vector<double> latency(buckets, 0.0);
    for (const auto& rec : result.records) {
        const auto b = std::min(
            buckets - 1, static_cast<int>(rec.arrival_time_s / bucket_s));
        ++seen[static_cast<std::size_t>(b)];
        if (rec.processed) {
            ++processed[static_cast<std::size_t>(b)];
            correct[static_cast<std::size_t>(b)] += rec.correct ? 1 : 0;
            latency[static_cast<std::size_t>(b)] +=
                rec.completion_time_s - rec.arrival_time_s;
        }
    }

    util::Table table("solar sensor node — daylight timeline");
    table.header({"window", "mean power", "", "events", "processed", "correct",
                  "mean latency"});
    for (int b = 0; b < buckets; ++b) {
        const double t0 = b * bucket_s;
        const double p = setup.trace.energy_between(t0, t0 + bucket_s) / bucket_s;
        const auto i = static_cast<std::size_t>(b);
        const double lat =
            processed[i] > 0 ? latency[i] / processed[i] : 0.0;
        table.row({"h" + std::to_string(b + 1),
                   util::fixed(p * 1000.0, 1) + " uW",
                   util::bar(p, 0.06, 16), std::to_string(seen[i]),
                   std::to_string(processed[i]), std::to_string(correct[i]),
                   util::fixed(lat, 1) + " s"});
    }
    table.print(std::cout);

    const auto hist = result.exit_histogram(3);
    std::printf(
        "\nday total: %d/%d processed (%d correct), exits %d/%d/%d, "
        "IEpmJ %.3f\n",
        result.processed_count(), result.total_events(), result.correct_count(),
        hist[0], hist[1], hist[2], result.iepmj());
    std::printf(
        "runtime LUT footprint: %zu bytes (fits comfortably in MCU SRAM)\n",
        policy.footprint_bytes());
    return 0;
}
