// Quickstart: the full pipeline in ~60 lines.
//
//  1. Describe the multi-exit network (the paper's LeNet-4conv + 2 exits).
//  2. Compress it nonuniformly for the 1.15 MFLOP / 16 KB MCU budget.
//  3. Deploy it on a solar-harvesting sensor node and run 500 events
//     through the intermittent runtime with Q-learning exit selection.
//  4. Read out the paper's figure of merit: IEpmJ.
#include <cstdio>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "sim/simulator.hpp"

using namespace imx;

int main() {
    // 1. The network: per-exit cost table + calibrated accuracy oracle.
    const compress::NetworkDesc network = core::make_paper_network_desc();
    const core::AccuracyModel oracle(
        network, {core::kPaperFullPrecisionAcc.begin(),
                  core::kPaperFullPrecisionAcc.end()});

    // 2. A deployable nonuniform compression policy (Fig. 4 shape).
    const compress::Policy policy = core::reference_nonuniform_policy();
    std::printf("deployed model: %.3f MFLOPs total, %.1f KB weights\n",
                static_cast<double>(compress::total_macs(network, policy)) / 1e6,
                compress::model_bytes(network, policy) / 1024.0);

    // 3. The EH environment: solar trace + 500 events + MCU/storage models.
    const core::ExperimentSetup setup = core::make_paper_setup();
    core::OracleInferenceModel deployed(network, policy,
                                        oracle.exit_accuracy(policy));
    sim::QLearningExitPolicy runtime(network.num_exits, sim::RuntimeConfig{});
    sim::Simulator simulator(setup.trace, setup.multi_exit_sim);

    // Learn for a few episodes, then evaluate greedily.
    for (int episode = 0; episode < 8; ++episode) {
        const auto events = sim::generate_events(
            {500, setup.trace.duration(), sim::ArrivalKind::kUniform,
             100 + static_cast<std::uint64_t>(episode)});
        (void)simulator.run(events, deployed, runtime);
    }
    runtime.set_eval_mode(true);
    const sim::SimResult result = simulator.run(setup.events, deployed, runtime);

    // 4. Results.
    std::printf("events: %d processed, %d missed, %d correct\n",
                result.processed_count(), result.missed_count(),
                result.correct_count());
    std::printf("IEpmJ: %.3f interesting events per harvested mJ\n",
                result.iepmj());
    std::printf("average accuracy over all events: %.1f %%\n",
                100.0 * result.accuracy_all_events());
    std::printf("mean per-event latency: %.1f s\n",
                result.mean_event_latency_s());
    return 0;
}
