// Example: real multi-exit training and compression on SynthCIFAR.
//
// Trains the reduced multi-exit CNN from scratch (real conv/fc backprop, no
// oracle), then physically compresses two clones — uniformly vs nonuniformly
// — and evaluates every exit. This demonstrates the Fig. 1b effect on an
// actual network: uniform compression hurts the early exits most, the
// shallow-light/deep-heavy nonuniform policy preserves them.
//
// Usage: example_train_multi_exit [num_samples] [epochs]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "compress/surgery.hpp"
#include "core/multi_exit_spec.hpp"
#include "data/synth_cifar.hpp"
#include "nn/train.hpp"
#include "util/table.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const int samples = argc > 1 ? std::atoi(argv[1]) : 700;
    const int epochs = argc > 2 ? std::atoi(argv[2]) : 5;

    util::Rng rng(2020);
    nn::ExitGraph graph = core::build_tiny_graph(rng);
    std::printf("network: %lld params, exits at %lld / %lld / %lld MACs\n",
                static_cast<long long>(graph.param_count()),
                static_cast<long long>(graph.exit_macs(0)),
                static_cast<long long>(graph.exit_macs(1)),
                static_cast<long long>(graph.exit_macs(2)));

    data::SynthCifarConfig dcfg;
    dcfg.num_samples = samples;
    dcfg.height = 16;
    dcfg.width = 16;
    dcfg.noise_level = 0.08;
    dcfg.seed = 9;
    const auto ds = data::make_synth_cifar(dcfg);
    const auto [train, test] = data::split(ds, 0.3, 1);
    std::printf("SynthCIFAR: %zu train / %zu test samples, 10 classes\n",
                train.size(), test.size());

    nn::TrainConfig tcfg;
    tcfg.epochs = epochs;
    tcfg.batch_size = 16;
    tcfg.lr = 0.03F;
    const auto history =
        nn::train_multi_exit(graph, train.images, train.labels, tcfg);
    for (std::size_t ep = 0; ep < history.size(); ++ep) {
        std::printf("epoch %zu: loss %.3f, train acc %.2f / %.2f / %.2f\n",
                    ep + 1, history[ep].mean_loss,
                    history[ep].exit_accuracy[0], history[ep].exit_accuracy[1],
                    history[ep].exit_accuracy[2]);
    }

    const auto desc = core::make_tiny_network_desc();
    const auto base = nn::evaluate_exits(graph, test.images, test.labels);

    // Uniform: every layer to 50 % channels, 2-bit weights.
    nn::ExitGraph uniform_net = graph.clone();
    compress::apply_policy(uniform_net, desc,
                           compress::Policy::uniform(desc.num_layers(), 0.5, 2, 8));
    const auto uni = nn::evaluate_exits(uniform_net, test.images, test.labels);

    // Nonuniform: spare the shallow layers, squeeze the deep ones.
    nn::ExitGraph nonuniform_net = graph.clone();
    compress::Policy nonuniform =
        compress::Policy::uniform(desc.num_layers(), 0.5, 2, 8);
    for (const char* name : {"Conv1", "ConvB1", "FC-B1"}) {
        auto& lp = nonuniform[static_cast<std::size_t>(desc.layer_index(name))];
        lp.preserve_ratio = 0.95;
        lp.weight_bits = 8;
    }
    for (const char* name : {"Conv3", "Conv4"}) {
        nonuniform[static_cast<std::size_t>(desc.layer_index(name))]
            .preserve_ratio = 0.35;
    }
    compress::apply_policy(nonuniform_net, desc, nonuniform);
    const auto non = nn::evaluate_exits(nonuniform_net, test.images, test.labels);

    util::Table table("real-network Fig. 1b direction check (test accuracy)");
    table.header({"exit", "full precision", "uniform 0.5x/2b",
                  "nonuniform (shallow-light)"});
    for (int e = 0; e < 3; ++e) {
        const auto i = static_cast<std::size_t>(e);
        table.row({"exit " + std::to_string(e + 1), util::fixed(base[i], 3),
                   util::fixed(uni[i], 3), util::fixed(non[i], 3)});
    }
    table.print(std::cout);

    std::printf("\nexit-1 accuracy kept by nonuniform vs uniform: %+.3f\n",
                non[0] - uni[0]);
    std::printf("compressed MACs: uniform %lld, nonuniform %lld (full %lld)\n",
                static_cast<long long>(uniform_net.total_macs()),
                static_cast<long long>(nonuniform_net.total_macs()),
                static_cast<long long>(graph.total_macs()));
    return 0;
}
