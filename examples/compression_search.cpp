// Example: phase-1 of the paper — power-trace-aware, exit-guided nonuniform
// compression search with two DDPG agents, compared against random search
// and simulated annealing under the same evaluation budget.
//
// Usage: example_compression_search [episodes]
#include <cstdio>
#include <cstdlib>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"
#include "util/table.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const int episodes = argc > 1 ? std::atoi(argv[1]) : 300;

    const auto setup = core::make_paper_setup();
    const auto& desc = setup.network;
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});
    const core::StaticTraceEvaluator trace_eval(
        setup.trace, setup.events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                          core::paper_constraints(),
                                          /*trace_aware=*/true);

    core::SearchConfig cfg;
    cfg.episodes = episodes;
    core::CompressionSearch search(evaluator, cfg);

    auto report = [&](const char* tag, const core::SearchResult& r) {
        std::printf("%-10s evals %4d feasible %s best Racc %.4f\n", tag,
                    r.evaluations, r.found_feasible ? "yes" : "no ",
                    r.best_reward);
        if (!r.found_feasible) return;
        const auto acc = oracle.exit_accuracy(r.best_policy);
        std::printf("  exits acc: %.1f / %.1f / %.1f ; total %.3fM MACs, %.1f KB\n",
                    acc[0], acc[1], acc[2],
                    static_cast<double>(compress::total_macs(desc, r.best_policy)) / 1e6,
                    compress::model_bytes(desc, r.best_policy) / 1024.0);
        util::Table t("layer policy (" + std::string(tag) + ")");
        t.header({"layer", "preserve", "w bits", "a bits"});
        for (std::size_t l = 0; l < desc.num_layers(); ++l) {
            t.row({desc.layers[l].name,
                   util::fixed(r.best_policy[l].preserve_ratio, 2),
                   std::to_string(r.best_policy[l].weight_bits),
                   std::to_string(r.best_policy[l].activation_bits)});
        }
        std::printf("%s", t.to_string().c_str());
    };

    // Reference points.
    const auto uniform_score = evaluator.score(core::uniform_baseline_policy());
    const auto ref_score = evaluator.score(core::reference_nonuniform_policy());
    std::printf("uniform baseline Racc %.4f | reference nonuniform Racc %.4f\n",
                uniform_score.racc, ref_score.racc);

    report("DDPG", search.run_ddpg());
    report("DDPG+ref", search.run_ddpg_refined());
    report("random", search.run_random());
    report("annealing", search.run_annealing());
    return 0;
}
