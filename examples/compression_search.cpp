// Example: phase-1 of the paper — power-trace-aware, exit-guided nonuniform
// compression search with two DDPG agents, compared against random search
// and simulated annealing under the same evaluation budget. The four
// algorithms run concurrently as one sweep through the exp:: engine; each
// scenario rebuilds its own evaluator stack, so results are identical to
// the old serial runs regardless of thread count.
//
// Usage: example_compression_search [episodes] [--quick] [--threads N]
#include <any>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/search.hpp"
#include "core/trace_eval.hpp"
#include "exp/cli.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "util/table.hpp"

using namespace imx;

int main(int argc, char** argv) {
    const auto cli = exp::parse_sweep_cli(argc, argv);
    if (cli.replicas != 1 || !cli.csv.empty() || cli.base_seed_given) {
        // This example only runs the canonical replica-0 searches, whose
        // SearchConfig seed is fixed by design — a re-rolled base seed
        // would be silently ignored, so reject it like the other flags.
        std::fprintf(stderr,
                     "error: --replicas/--csv/--base-seed are not supported "
                     "by this example (see the bench_* binaries)\n");
        return 2;
    }
    const int episodes = exp::positional_int(cli, 0, cli.quick ? 60 : 300);

    const auto setup = std::make_shared<const core::ExperimentSetup>(
        core::make_paper_setup());
    const auto& desc = setup->network;
    const core::AccuracyModel oracle(
        desc, {core::kPaperFullPrecisionAcc.begin(),
               core::kPaperFullPrecisionAcc.end()});

    core::SearchConfig cfg;
    cfg.episodes = episodes;

    const std::vector<std::pair<const char*, exp::SearchAlgo>> algos = {
        {"DDPG", exp::SearchAlgo::kDdpg},
        {"DDPG+ref", exp::SearchAlgo::kDdpgRefined},
        {"random", exp::SearchAlgo::kRandom},
        {"annealing", exp::SearchAlgo::kAnnealing},
    };
    std::vector<exp::ScenarioSpec> specs;
    specs.reserve(algos.size());
    for (const auto& [label, algo] : algos) {
        specs.push_back(exp::make_search_scenario(setup, algo, label, cfg));
    }

    auto report = [&](const char* tag, const core::SearchResult& r) {
        std::printf("%-10s evals %4d feasible %s best Racc %.4f\n", tag,
                    r.evaluations, r.found_feasible ? "yes" : "no ",
                    r.best_reward);
        if (!r.found_feasible) return;
        const auto acc = oracle.exit_accuracy(r.best_policy);
        std::printf("  exits acc: %.1f / %.1f / %.1f ; total %.3fM MACs, %.1f KB\n",
                    acc[0], acc[1], acc[2],
                    static_cast<double>(compress::total_macs(desc, r.best_policy)) / 1e6,
                    compress::model_bytes(desc, r.best_policy) / 1024.0);
        util::Table t("layer policy (" + std::string(tag) + ")");
        t.header({"layer", "preserve", "w bits", "a bits"});
        for (std::size_t l = 0; l < desc.num_layers(); ++l) {
            t.row({desc.layers[l].name,
                   util::fixed(r.best_policy[l].preserve_ratio, 2),
                   std::to_string(r.best_policy[l].weight_bits),
                   std::to_string(r.best_policy[l].activation_bits)});
        }
        std::printf("%s", t.to_string().c_str());
    };

    // Reference points (evaluated inline; cheap relative to the searches).
    const core::StaticTraceEvaluator trace_eval(
        setup->trace, setup->events, core::paper_storage_config(),
        core::kEnergyPerMMacMj);
    const core::PolicyEvaluator evaluator(desc, oracle, trace_eval,
                                          core::paper_constraints(),
                                          /*trace_aware=*/true);
    const auto uniform_score = evaluator.score(core::uniform_baseline_policy());
    const auto ref_score = evaluator.score(core::reference_nonuniform_policy());
    std::printf("uniform baseline Racc %.4f | reference nonuniform Racc %.4f\n",
                uniform_score.racc, ref_score.racc);

    exp::RunnerConfig runner;
    runner.threads = cli.threads;
    const auto outcomes = exp::run_sweep(specs, runner);
    for (std::size_t i = 0; i < algos.size(); ++i) {
        report(algos[i].first,
               std::any_cast<const core::SearchResult&>(outcomes[i].payload));
    }
    return 0;
}
