// Compression accounting tests: policies, NetworkDesc cost model, and
// constraint fitting, with property sweeps over the pruning grid.
#include <gtest/gtest.h>

#include "compress/fit.hpp"
#include "compress/network_desc.hpp"
#include "compress/policy.hpp"
#include "core/multi_exit_spec.hpp"

namespace {

using namespace imx;
using compress::Policy;

TEST(PolicyTest, SnapRespectsGridAndBounds) {
    EXPECT_DOUBLE_EQ(compress::snap_preserve_ratio(0.5), 0.5);
    EXPECT_DOUBLE_EQ(compress::snap_preserve_ratio(0.52), 0.5);
    EXPECT_DOUBLE_EQ(compress::snap_preserve_ratio(0.53), 0.55);
    EXPECT_DOUBLE_EQ(compress::snap_preserve_ratio(0.0), 0.05);
    EXPECT_DOUBLE_EQ(compress::snap_preserve_ratio(2.0), 1.0);
}

TEST(PolicyTest, BitsMappingCoversRange) {
    EXPECT_EQ(compress::map_action_to_bits(0.0, 1, 8), 1);
    EXPECT_EQ(compress::map_action_to_bits(1.0, 1, 8), 8);
    EXPECT_EQ(compress::map_action_to_bits(0.5, 1, 8), 5);  // round(1+3.5)
    EXPECT_EQ(compress::map_action_to_bits(-3.0, 1, 8), 1);
    EXPECT_EQ(compress::map_action_to_bits(7.0, 1, 8), 8);
}

TEST(PolicyTest, FactoriesSetEveryLayer) {
    const Policy u = Policy::uniform(5, 0.6, 4, 6);
    ASSERT_EQ(u.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_DOUBLE_EQ(u[i].preserve_ratio, 0.6);
        EXPECT_EQ(u[i].weight_bits, 4);
        EXPECT_EQ(u[i].activation_bits, 6);
    }
    const Policy f = Policy::full_precision(3);
    EXPECT_EQ(f[2].weight_bits, 32);
}

TEST(NetworkDesc, PaperDescValidates) {
    const auto desc = core::make_paper_network_desc();
    EXPECT_NO_THROW(desc.validate());
    EXPECT_EQ(desc.num_layers(), 11u);
    EXPECT_EQ(desc.num_exits, 3);
    EXPECT_EQ(desc.layer_index("FC-B21"), 5);
    EXPECT_THROW((void)desc.layer_index("nope"), std::out_of_range);
}

TEST(NetworkDesc, FullPrecisionMatchesPaperExitMacs) {
    const auto desc = core::make_paper_network_desc();
    const auto policy = Policy::full_precision(desc.num_layers());
    const auto macs = compress::per_exit_macs(desc, policy);
    for (int e = 0; e < 3; ++e) {
        EXPECT_NEAR(static_cast<double>(macs[static_cast<std::size_t>(e)]) /
                        core::kPaperExitMacs[static_cast<std::size_t>(e)],
                    1.0, 0.012)
            << "exit " << e;
    }
}

TEST(NetworkDesc, FullPrecisionBytesAreFourPerParam) {
    const auto desc = core::make_paper_network_desc();
    const auto policy = Policy::full_precision(desc.num_layers());
    double params = 0.0;
    for (const auto& l : desc.layers) {
        params += static_cast<double>(l.weight_params + l.bias_params);
    }
    EXPECT_NEAR(compress::model_bytes(desc, policy), params * 4.0, 1.0);
}

TEST(NetworkDesc, JunctionAlphaIsMaxOverConsumers) {
    const auto desc = core::make_paper_network_desc();
    Policy policy = Policy::uniform(desc.num_layers(), 1.0, 8, 8);
    // Junction 1: Conv1 -> {ConvB1, Conv2}.
    policy[static_cast<std::size_t>(desc.layer_index("ConvB1"))].preserve_ratio = 0.3;
    policy[static_cast<std::size_t>(desc.layer_index("Conv2"))].preserve_ratio = 0.7;
    EXPECT_DOUBLE_EQ(compress::junction_alpha(desc, policy, 1), 0.7);
}

TEST(NetworkDesc, FirstLayerInputNeverPruned) {
    const auto desc = core::make_paper_network_desc();
    Policy policy = Policy::uniform(desc.num_layers(), 0.2, 8, 8);
    EXPECT_DOUBLE_EQ(compress::effective_input_alpha(desc, policy, 0), 1.0);
}

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, CostsMonotoneInPreserveRatio) {
    const double alpha = GetParam();
    const auto desc = core::make_paper_network_desc();
    const Policy tighter = Policy::uniform(desc.num_layers(), alpha, 8, 8);
    const Policy looser =
        Policy::uniform(desc.num_layers(), std::min(1.0, alpha + 0.1), 8, 8);
    EXPECT_LE(compress::total_macs(desc, tighter),
              compress::total_macs(desc, looser));
    EXPECT_LE(compress::model_bytes(desc, tighter),
              compress::model_bytes(desc, looser));
    EXPECT_LE(compress::exit_macs_total(desc, tighter),
              compress::exit_macs_total(desc, looser));
    for (int e = 0; e < desc.num_exits; ++e) {
        EXPECT_LE(compress::exit_macs(desc, tighter, e),
                  compress::exit_macs(desc, looser, e));
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, AlphaSweep,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                                           0.8, 0.9));

class BitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitsSweep, BytesMonotoneInWeightBits) {
    const int bits = GetParam();
    const auto desc = core::make_paper_network_desc();
    const Policy fewer = Policy::uniform(desc.num_layers(), 0.8, bits, 8);
    const Policy more = Policy::uniform(desc.num_layers(), 0.8, bits + 1, 8);
    EXPECT_LT(compress::model_bytes(desc, fewer),
              compress::model_bytes(desc, more));
    // FLOPs do not depend on bitwidth in this cost model.
    EXPECT_EQ(compress::total_macs(desc, fewer),
              compress::total_macs(desc, more));
}

INSTANTIATE_TEST_SUITE_P(Bits, BitsSweep, ::testing::Range(1, 8));

TEST(Fit, UniformFitSatisfiesPaperConstraints) {
    const auto desc = core::make_paper_network_desc();
    const auto constraints = core::paper_constraints();
    const Policy p = compress::make_uniform_for_targets(desc, constraints);
    EXPECT_TRUE(compress::satisfies(desc, p, constraints));
    EXPECT_LE(compress::total_macs(desc, p), constraints.f_target_macs);
    EXPECT_LE(compress::model_bytes(desc, p), constraints.s_target_bytes);
}

TEST(Fit, UniformFitIsMaximal) {
    // One grid step looser on alpha (same bits) must violate FLOPs, or the
    // alpha was not binding and one more bit must violate size.
    const auto desc = core::make_paper_network_desc();
    const auto constraints = core::paper_constraints();
    Policy p = compress::make_uniform_for_targets(desc, constraints);
    Policy looser = p;
    for (auto& lp : looser.layers) {
        lp.preserve_ratio =
            compress::snap_preserve_ratio(lp.preserve_ratio + 0.05);
    }
    Policy more_bits = p;
    for (auto& lp : more_bits.layers) lp.weight_bits += 1;
    EXPECT_TRUE(!compress::satisfies(desc, looser, constraints) ||
                !compress::satisfies(desc, more_bits, constraints));
}

TEST(Fit, ImpossibleConstraintsThrow) {
    const auto desc = core::make_paper_network_desc();
    compress::Constraints impossible;
    impossible.f_target_macs = 1000.0;  // 1 kMAC: unreachable
    impossible.s_target_bytes = 10.0;
    EXPECT_THROW(compress::make_uniform_for_targets(desc, impossible),
                 std::runtime_error);
}

TEST(Fit, ReferenceNonuniformPolicySatisfiesConstraints) {
    const auto desc = core::make_paper_network_desc();
    EXPECT_TRUE(compress::satisfies(desc, core::reference_nonuniform_policy(),
                                    core::paper_constraints()));
}

TEST(Fit, ReferencePolicyRetainsMoreInShallowExits) {
    // The Fig. 6 shape: compression ratio grows with exit depth.
    const auto desc = core::make_paper_network_desc();
    const auto full = Policy::full_precision(desc.num_layers());
    const auto ref = core::reference_nonuniform_policy();
    const auto before = compress::per_exit_macs(desc, full);
    const auto after = compress::per_exit_macs(desc, ref);
    std::vector<double> ratio(3);
    for (int e = 0; e < 3; ++e) {
        ratio[static_cast<std::size_t>(e)] =
            static_cast<double>(after[static_cast<std::size_t>(e)]) /
            static_cast<double>(before[static_cast<std::size_t>(e)]);
    }
    EXPECT_GT(ratio[0], ratio[1]);
    EXPECT_GT(ratio[1], ratio[2]);
}

}  // namespace
