// Physical network-surgery tests: channel pruning across junctions, weight
// fake-quantization, ActQuant behaviour, end-to-end policy application.
#include <gtest/gtest.h>

#include <set>

#include "compress/surgery.hpp"
#include "core/multi_exit_spec.hpp"
#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

TEST(ActQuant, PassThroughAt32Bits) {
    compress::ActQuant aq("aq", 32);
    nn::Tensor x({4}, {0.1F, 0.5F, 0.9F, 0.0F});
    const nn::Tensor y = aq.forward(x);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(ActQuant, QuantizesToGrid) {
    compress::ActQuant aq("aq", 2);  // levels {0, 1/3, 2/3, 1} * max
    nn::Tensor x({4}, {0.1F, 0.5F, 0.9F, 1.0F});
    const nn::Tensor y = aq.forward(x);
    std::set<float> levels(y.storage().begin(), y.storage().end());
    EXPECT_LE(levels.size(), 4u);
}

TEST(ActQuant, StraightThroughGradient) {
    compress::ActQuant aq("aq", 4);
    nn::Tensor x({3}, {0.2F, 0.4F, 0.6F});
    (void)aq.forward(x);
    nn::Tensor g({3}, {1.0F, 2.0F, 3.0F});
    const nn::Tensor gx = aq.backward(g);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(gx[i], g[i]);
}

TEST(Surgery, PruningShrinksMacsAndKeepsForwardWorking) {
    util::Rng rng(1);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    const std::int64_t before = g.total_macs();

    std::unordered_map<std::string, double> preserve = {
        {"Conv2", 0.5}, {"ConvB2", 0.5}, {"Conv3", 0.5},
        {"Conv4", 0.5}, {"FC-B21", 0.5}, {"FC-B31", 0.5},
    };
    compress::apply_pruning(g, preserve);
    EXPECT_LT(g.total_macs(), before);

    nn::Tensor x = nn::Tensor::full({3, 16, 16}, 0.5F);
    const auto logits = g.forward_all(x);
    ASSERT_EQ(logits.size(), 3u);
    for (const auto& l : logits) EXPECT_EQ(l.numel(), 10);
}

TEST(Surgery, NoRequestMeansNoChange) {
    util::Rng rng(2);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    const std::int64_t before = g.total_macs();
    const std::int64_t params_before = g.param_count();
    compress::apply_pruning(g, {});
    EXPECT_EQ(g.total_macs(), before);
    EXPECT_EQ(g.param_count(), params_before);
}

TEST(Surgery, JunctionConsumersStayShapeConsistent) {
    util::Rng rng(3);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    // Prune only one consumer at the Conv2 junction (ConvB2 wants 50 %,
    // Conv3 keeps 100 %): union rule keeps all channels for Conv3.
    compress::apply_pruning(g, {{"ConvB2", 0.5}});
    nn::Tensor x = nn::Tensor::full({3, 16, 16}, 0.25F);
    EXPECT_NO_THROW(g.forward_all(x));
}

TEST(Surgery, PrunedChannelsAreLeastImportant) {
    util::Rng rng(4);
    // Producer 1x1 conv with controlled weights, consumer demands 50 %.
    nn::ExitGraph g({2, 4, 4});
    auto conv_a = std::make_unique<nn::Conv2d>(2, 4, 1, 0, "A", rng);
    auto conv_b = std::make_unique<nn::Conv2d>(4, 2, 1, 0, "B", rng);
    // Make channels 1 and 3 of A's output clearly the most important for B.
    conv_b->weight().fill(0.01F);
    conv_b->weight().at(0, 1, 0, 0) = 5.0F;
    conv_b->weight().at(1, 3, 0, 0) = 4.0F;
    nn::Segment t0;
    t0.push(std::move(conv_a));
    nn::Segment b0;
    b0.push(std::move(conv_b));
    b0.push(std::make_unique<nn::Flatten>());
    b0.push(std::make_unique<nn::Linear>(32, 2, "out", rng));
    g.add_exit(std::move(t0), std::move(b0));

    compress::apply_pruning(g, {{"B", 0.5}});
    auto* pruned_a = dynamic_cast<nn::Conv2d*>(&g.trunk_segment(0).layer(0));
    ASSERT_NE(pruned_a, nullptr);
    EXPECT_EQ(pruned_a->out_channels(), 2);
    auto* pruned_b = dynamic_cast<nn::Conv2d*>(&g.branch(0).layer(0));
    ASSERT_NE(pruned_b, nullptr);
    ASSERT_EQ(pruned_b->in_channels(), 2);
    // The big weights (on original channels 1 and 3) must have survived.
    EXPECT_EQ(pruned_b->weight().at(0, 0, 0, 0), 5.0F);
    EXPECT_EQ(pruned_b->weight().at(1, 1, 0, 0), 4.0F);
}

TEST(Surgery, WeightQuantizationSnapsToGrid) {
    util::Rng rng(5);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    compress::apply_weight_quantization(g, {{"Conv1", 2}});
    auto* conv = dynamic_cast<nn::Conv2d*>(&g.trunk_segment(0).layer(0));
    ASSERT_NE(conv, nullptr);
    std::set<float> levels(conv->weight().storage().begin(),
                           conv->weight().storage().end());
    EXPECT_LE(levels.size(), 4u);  // 2 bits -> <= 4 levels
}

TEST(Surgery, QuantizationAt32BitsIsNoop) {
    util::Rng rng(6);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    auto* conv = dynamic_cast<nn::Conv2d*>(&g.trunk_segment(0).layer(0));
    const float before = conv->weight()[0];
    compress::apply_weight_quantization(g, {{"Conv1", 32}});
    EXPECT_EQ(conv->weight()[0], before);
}

TEST(Surgery, ActivationQuantizationTargetsNamedSlots) {
    util::Rng rng(7);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    compress::apply_activation_quantization(g, {{"Conv1/aq", 3}});
    auto* aq = dynamic_cast<compress::ActQuant*>(&g.trunk_segment(0).layer(2));
    ASSERT_NE(aq, nullptr);
    EXPECT_EQ(aq->bits(), 3);
}

TEST(Surgery, ApplyPolicyEndToEnd) {
    util::Rng rng(8);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    const auto desc = core::make_tiny_network_desc();
    compress::Policy policy =
        compress::Policy::uniform(desc.num_layers(), 0.5, 4, 6);
    const std::int64_t before = g.total_macs();
    compress::apply_policy(g, desc, policy);
    EXPECT_LT(g.total_macs(), before);
    nn::Tensor x = nn::Tensor::full({3, 16, 16}, 0.5F);
    EXPECT_NO_THROW(g.forward_all(x));
}

TEST(Surgery, PaperGraphSurvivesReferencePolicy) {
    util::Rng rng(9);
    nn::ExitGraph g = core::build_paper_graph(rng);
    const auto desc = core::make_paper_network_desc();
    compress::apply_policy(g, desc, core::reference_nonuniform_policy());
    nn::Tensor x = nn::Tensor::full({3, 32, 32}, 0.5F);
    const auto logits = g.forward_all(x);
    ASSERT_EQ(logits.size(), 3u);
    for (const auto& l : logits) EXPECT_EQ(l.numel(), 10);
    // Surgery reduces real MACs into the same ballpark as the analytic model
    // (shared-keep junctions round differently; allow 15 %).
    const double analytic = static_cast<double>(
        compress::total_macs(desc, core::reference_nonuniform_policy()));
    EXPECT_NEAR(static_cast<double>(g.total_macs()) / analytic, 1.0, 0.15);
}

}  // namespace
