// Training substrate tests: losses, optimizers, and joint multi-exit
// training convergence on small synthetic problems.
#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_exit_spec.hpp"
#include "data/synth_cifar.hpp"
#include "nn/train.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;
using nn::Tensor;

TEST(CrossEntropy, MatchesManualComputation) {
    Tensor logits({3}, {1.0F, 2.0F, 0.5F});
    Tensor grad;
    const double loss = nn::cross_entropy(logits, 1, grad);
    // softmax(1,2,0.5)
    const double z = std::exp(1.0) + std::exp(2.0) + std::exp(0.5);
    EXPECT_NEAR(loss, -std::log(std::exp(2.0) / z), 1e-6);
    EXPECT_NEAR(grad[0], std::exp(1.0) / z, 1e-6);
    EXPECT_NEAR(grad[1], std::exp(2.0) / z - 1.0, 1e-6);
    EXPECT_NEAR(grad[2], std::exp(0.5) / z, 1e-6);
}

TEST(CrossEntropy, GradientSumsToZero) {
    Tensor logits({5}, {0.3F, -1.0F, 2.0F, 0.0F, 1.1F});
    Tensor grad;
    (void)nn::cross_entropy(logits, 3, grad);
    double sum = 0.0;
    for (std::int64_t i = 0; i < grad.numel(); ++i) sum += grad[i];
    EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(SoftmaxProbs, NormalizedAndOrdered) {
    Tensor logits({3}, {0.0F, 1.0F, -1.0F});
    const auto p = nn::softmax_probs(logits);
    EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-9);
    EXPECT_GT(p[1], p[0]);
    EXPECT_GT(p[0], p[2]);
}

TEST(SgdOptimizer, DescendsQuadratic) {
    // minimize (w - 3)^2 via gradient 2(w - 3).
    Tensor w({1}, {0.0F});
    Tensor g({1});
    nn::Sgd opt(0.1F, 0.0F, 0.0F);
    for (int i = 0; i < 100; ++i) {
        g[0] = 2.0F * (w[0] - 3.0F);
        opt.step({&w}, {&g}, 1.0F);
    }
    EXPECT_NEAR(w[0], 3.0F, 1e-3F);
}

TEST(SgdOptimizer, MomentumAcceleratesConvergence) {
    auto run = [](float momentum) {
        Tensor w({1}, {0.0F});
        Tensor g({1});
        nn::Sgd opt(0.01F, momentum, 0.0F);
        for (int i = 0; i < 60; ++i) {
            g[0] = 2.0F * (w[0] - 3.0F);
            opt.step({&w}, {&g}, 1.0F);
        }
        return std::fabs(w[0] - 3.0F);
    };
    EXPECT_LT(run(0.9F), run(0.0F));
}

TEST(SgdOptimizer, WeightDecayShrinksWeights) {
    Tensor w({1}, {1.0F});
    Tensor g = Tensor::zeros({1});
    nn::Sgd opt(0.1F, 0.0F, 0.1F);
    for (int i = 0; i < 10; ++i) opt.step({&w}, {&g}, 1.0F);
    EXPECT_LT(w[0], 1.0F);
    EXPECT_GT(w[0], 0.0F);
}

TEST(AdamOptimizer, DescendsQuadratic) {
    Tensor w({2}, {5.0F, -4.0F});
    Tensor g({2});
    nn::Adam opt(0.05F);
    for (int i = 0; i < 400; ++i) {
        g[0] = 2.0F * (w[0] - 1.0F);
        g[1] = 2.0F * (w[1] + 2.0F);
        opt.step({&w}, {&g}, 1.0F);
    }
    EXPECT_NEAR(w[0], 1.0F, 0.02F);
    EXPECT_NEAR(w[1], -2.0F, 0.02F);
}

TEST(TrainMultiExit, LossDecreasesAndAccuracyBeatsChance) {
    util::Rng rng(42);
    nn::ExitGraph graph = core::build_tiny_graph(rng);

    data::SynthCifarConfig dcfg;
    dcfg.num_samples = 240;
    dcfg.height = 16;
    dcfg.width = 16;
    dcfg.noise_level = 0.10;
    dcfg.seed = 7;
    const data::Dataset ds = data::make_synth_cifar(dcfg);

    nn::TrainConfig tcfg;
    tcfg.epochs = 3;
    tcfg.batch_size = 16;
    tcfg.lr = 0.05F;
    const auto history =
        nn::train_multi_exit(graph, ds.images, ds.labels, tcfg);
    ASSERT_EQ(history.size(), 3u);
    EXPECT_LT(history.back().mean_loss, history.front().mean_loss);

    const auto acc = nn::evaluate_exits(graph, ds.images, ds.labels);
    ASSERT_EQ(acc.size(), 3u);
    for (const double a : acc) EXPECT_GT(a, 0.15);  // > 10-class chance
}

TEST(TrainMultiExit, ExitLossWeightsMustMatchExitCount) {
    util::Rng rng(1);
    nn::ExitGraph graph = core::build_tiny_graph(rng);
    data::SynthCifarConfig dcfg;
    dcfg.num_samples = 8;
    dcfg.height = 16;
    dcfg.width = 16;
    const data::Dataset ds = data::make_synth_cifar(dcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 1;
    tcfg.exit_loss_weights = {1.0, 1.0};  // wrong: graph has 3 exits
    EXPECT_THROW(nn::train_multi_exit(graph, ds.images, ds.labels, tcfg),
                 util::ContractViolation);
}

TEST(EvaluateExits, PerfectOnMemorizedSingleSample) {
    util::Rng rng(3);
    nn::ExitGraph graph = core::build_tiny_graph(rng);
    data::SynthCifarConfig dcfg;
    dcfg.num_samples = 4;
    dcfg.height = 16;
    dcfg.width = 16;
    dcfg.noise_level = 0.0;
    const data::Dataset ds = data::make_synth_cifar(dcfg);
    nn::TrainConfig tcfg;
    tcfg.epochs = 100;
    tcfg.batch_size = 2;
    tcfg.lr = 0.02F;  // higher rates kill ReLUs on a 4-sample problem
    tcfg.weight_decay = 0.0F;
    (void)nn::train_multi_exit(graph, ds.images, ds.labels, tcfg);
    const auto acc = nn::evaluate_exits(graph, ds.images, ds.labels);
    // Four noiseless samples should be memorized by the final exit.
    EXPECT_GE(acc[2], 0.75);
}

}  // namespace
