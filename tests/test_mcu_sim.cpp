// MCU model and intermittent simulator tests, including the Eq. 1 / Eq. 5
// invariants as property sweeps.
#include <gtest/gtest.h>

#include "baselines/baseline_models.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "mcu/device.hpp"
#include "sim/event_gen.hpp"
#include "sim/metrics.hpp"
#include "sim/policies/greedy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

TEST(McuModel, EnergyAndTimeLinearInMacs) {
    const mcu::McuModel dev = mcu::McuModel::msp432();
    EXPECT_NEAR(dev.compute_energy(1000000), 1.5, 1e-9);  // paper constant
    EXPECT_NEAR(dev.compute_energy(2000000), 3.0, 1e-9);
    EXPECT_NEAR(dev.compute_time(1000000),
                1.0 / dev.config().mmacs_per_second, 1e-9);
    EXPECT_EQ(dev.compute_energy(0), 0.0);
}

TEST(McuModel, CheckpointCountIsCeilDiv) {
    mcu::McuConfig cfg;
    cfg.macs_per_task = 1000;
    const mcu::McuModel dev(cfg);
    EXPECT_EQ(dev.checkpoint_count(1), 1);
    EXPECT_EQ(dev.checkpoint_count(1000), 1);
    EXPECT_EQ(dev.checkpoint_count(1001), 2);
    EXPECT_EQ(dev.checkpoint_count(0), 0);
}

TEST(McuModel, CheckpointedCostsExceedPlainCosts) {
    const mcu::McuModel dev = mcu::McuModel::msp432();
    EXPECT_GT(dev.checkpointed_energy(500000), dev.compute_energy(500000));
    EXPECT_GT(dev.checkpointed_time(500000), dev.compute_time(500000));
}

TEST(McuModel, FlashFit) {
    const mcu::McuModel dev = mcu::McuModel::msp432();
    EXPECT_TRUE(dev.fits_flash(10 * 1024.0));
    EXPECT_FALSE(dev.fits_flash(100 * 1024.0));
}

TEST(EventGen, CountSortedAndInRange) {
    for (const auto kind : {sim::ArrivalKind::kUniform, sim::ArrivalKind::kPoisson,
                            sim::ArrivalKind::kBursty}) {
        const auto events =
            sim::generate_events({100, 500.0, kind, 42});
        ASSERT_EQ(events.size(), 100u);
        for (std::size_t i = 0; i < events.size(); ++i) {
            EXPECT_GE(events[i].time_s, 0.0);
            EXPECT_LT(events[i].time_s, 500.0);
            EXPECT_EQ(events[i].id, static_cast<int>(i));
            if (i > 0) {
                EXPECT_GE(events[i].time_s, events[i - 1].time_s);
            }
        }
    }
}

TEST(EventGen, DeterministicBySeed) {
    const auto a = sim::generate_events({50, 100.0, sim::ArrivalKind::kUniform, 7});
    const auto b = sim::generate_events({50, 100.0, sim::ArrivalKind::kUniform, 7});
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].time_s, b[i].time_s);
    }
}

// --- Metrics ---------------------------------------------------------------

sim::SimResult make_result(int processed_correct, int processed_wrong,
                           int missed, double harvested) {
    sim::SimResult r;
    r.total_harvested_mj = harvested;
    int id = 0;
    for (int i = 0; i < processed_correct; ++i) {
        sim::EventRecord rec;
        rec.event_id = id++;
        rec.processed = true;
        rec.correct = true;
        rec.exit_taken = 0;
        rec.arrival_time_s = id;
        rec.completion_time_s = id + 2.0;
        rec.inference_start_s = id + 1.0;
        rec.energy_spent_mj = 0.5;
        rec.macs = 1000;
        r.records.push_back(rec);
    }
    for (int i = 0; i < processed_wrong; ++i) {
        sim::EventRecord rec;
        rec.event_id = id++;
        rec.processed = true;
        rec.correct = false;
        rec.exit_taken = 1;
        rec.arrival_time_s = id;
        rec.completion_time_s = id + 4.0;
        rec.inference_start_s = id + 1.0;
        rec.energy_spent_mj = 1.0;
        rec.macs = 2000;
        r.records.push_back(rec);
    }
    for (int i = 0; i < missed; ++i) {
        sim::EventRecord rec;
        rec.event_id = id++;
        rec.arrival_time_s = id;
        r.records.push_back(rec);
    }
    return r;
}

TEST(Metrics, CountsAndAccuracies) {
    const auto r = make_result(30, 10, 60, 100.0);
    EXPECT_EQ(r.total_events(), 100);
    EXPECT_EQ(r.processed_count(), 40);
    EXPECT_EQ(r.missed_count(), 60);
    EXPECT_EQ(r.correct_count(), 30);
    EXPECT_NEAR(r.accuracy_all_events(), 0.30, 1e-12);
    EXPECT_NEAR(r.accuracy_processed(), 0.75, 1e-12);
}

class IepmjIdentity : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IepmjIdentity, Eq1HoldsExactly) {
    // Paper Eq. 1: IEpmJ == N / E_total * avg-accuracy-over-all-events.
    const auto [good, bad, missed] = GetParam();
    const auto r = make_result(good, bad, missed, 57.5);
    const double lhs = r.iepmj();
    const double rhs = static_cast<double>(r.total_events()) /
                       r.total_harvested_mj * r.accuracy_all_events();
    EXPECT_NEAR(lhs, rhs, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, IepmjIdentity,
    ::testing::Values(std::make_tuple(10, 0, 0), std::make_tuple(0, 10, 5),
                      std::make_tuple(25, 25, 50), std::make_tuple(1, 99, 0),
                      std::make_tuple(200, 100, 200)));

TEST(Metrics, LatenciesAndHistogram) {
    const auto r = make_result(3, 2, 1, 10.0);
    EXPECT_NEAR(r.mean_event_latency_s(), (3 * 2.0 + 2 * 4.0) / 5.0, 1e-12);
    EXPECT_NEAR(r.mean_inference_latency_s(), (3 * 1.0 + 2 * 3.0) / 5.0, 1e-12);
    EXPECT_NEAR(r.mean_inference_macs(), (3 * 1000.0 + 2 * 2000.0) / 5.0, 1e-9);
    const auto hist = r.exit_histogram(2);
    EXPECT_EQ(hist[0], 3);
    EXPECT_EQ(hist[1], 2);
}

TEST(Metrics, EnergyFeasibilityCheck) {
    auto r = make_result(4, 0, 0, 1.0);  // spends 2.0 mJ, harvested 1.0
    EXPECT_FALSE(r.energy_feasible(0.0));
    EXPECT_TRUE(r.energy_feasible(1.5));
}

// --- Simulator ---------------------------------------------------------------

sim::SimConfig abundant_config() {
    sim::SimConfig cfg;
    cfg.mode = sim::ExecutionMode::kMultiExit;
    cfg.storage.capacity_mj = 100.0;
    cfg.storage.initial_mj = 100.0;
    cfg.storage.on_threshold_mj = 0.1;
    cfg.storage.off_threshold_mj = 0.01;
    cfg.storage.leakage_mw = 0.0;
    cfg.mcu.mmacs_per_second = 10.0;  // fast compute
    return cfg;
}

TEST(Simulator, AbundantEnergyProcessesEverySpacedEvent) {
    const auto trace = energy::PowerTrace::constant(1.0, 1000.0, 1.0);
    sim::Simulator simulator(trace, abundant_config());
    auto model = baselines::FixedBaselineModel("m", 0.1, 100.0, 1.0);
    // Events spaced far apart relative to busy time.
    std::vector<sim::Event> events;
    for (int i = 0; i < 20; ++i) events.push_back({i, 10.0 + i * 40.0});
    sim::GreedyAffordablePolicy policy;
    const auto r = simulator.run(events, model, policy);
    EXPECT_EQ(r.processed_count(), 20);
    EXPECT_EQ(r.correct_count(), 20);  // accuracy 100 %
    EXPECT_TRUE(r.energy_feasible(100.0));
}

TEST(Simulator, BackToBackArrivalsAreMissedWhileBusy) {
    const auto trace = energy::PowerTrace::constant(1.0, 200.0, 1.0);
    auto cfg = abundant_config();
    cfg.mcu.mmacs_per_second = 0.01;  // 0.1 MMAC takes 10 s
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("m", 0.1, 100.0, 1.0);
    std::vector<sim::Event> events = {{0, 10.0}, {1, 12.0}, {2, 14.0},
                                      {3, 100.0}};
    sim::GreedyAffordablePolicy policy;
    const auto r = simulator.run(events, model, policy);
    EXPECT_TRUE(r.records[0].processed);
    EXPECT_FALSE(r.records[1].processed);  // arrived during event 0 compute
    EXPECT_FALSE(r.records[2].processed);
    EXPECT_TRUE(r.records[3].processed);
}

TEST(Simulator, ScarceEnergyForcesWaitThenRun) {
    // 0.02 mW harvest; inference needs 0.15 mJ -> several seconds of wait.
    const auto trace = energy::PowerTrace::constant(0.02, 500.0, 1.0);
    sim::SimConfig cfg = abundant_config();
    cfg.storage.initial_mj = 0.0;
    cfg.storage.efficiency_max = 1.0;
    cfg.storage.efficiency_half_power_mw = 0.0;
    cfg.mcu.wakeup_energy_mj = 0.0;
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("m", 0.1, 100.0, 1.0);
    std::vector<sim::Event> events = {{0, 1.0}};
    sim::GreedyAffordablePolicy policy;
    const auto r = simulator.run(events, model, policy);
    ASSERT_TRUE(r.records[0].processed);
    // 0.15 mJ at 0.02 mW needs ~7.5 s of charging after arrival.
    EXPECT_GT(r.records[0].completion_time_s - r.records[0].arrival_time_s, 5.0);
    EXPECT_TRUE(r.energy_feasible(0.0));
}

TEST(Simulator, DeadlineDropsSlowJobs) {
    const auto trace = energy::PowerTrace::constant(0.001, 400.0, 1.0);
    sim::SimConfig cfg = abundant_config();
    cfg.storage.initial_mj = 0.0;
    cfg.max_wait_s = 20.0;
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("m", 1.0, 100.0, 1.0);
    std::vector<sim::Event> events = {{0, 1.0}, {1, 100.0}};
    sim::GreedyAffordablePolicy policy;
    const auto r = simulator.run(events, model, policy);
    EXPECT_FALSE(r.records[0].processed);  // could never afford 1.5 mJ
    EXPECT_FALSE(r.records[1].processed);
    EXPECT_EQ(r.missed_count(), 2);
}

TEST(Simulator, CheckpointedModeCompletesAcrossPowerCycles) {
    // Square wave: 0.1 mW for 20 s, off for 20 s. A 2-MFLOP job (3 mJ+)
    // drains faster than it harvests, so it must span several power cycles.
    const auto trace = energy::PowerTrace::square_wave(0.1, 40.0, 0.5, 2000.0, 1.0);
    sim::SimConfig cfg;
    cfg.mode = sim::ExecutionMode::kCheckpointed;
    cfg.storage.capacity_mj = 1.0;
    cfg.storage.initial_mj = 0.0;
    cfg.storage.on_threshold_mj = 0.3;
    cfg.storage.off_threshold_mj = 0.01;
    cfg.storage.efficiency_max = 1.0;
    cfg.storage.efficiency_half_power_mw = 0.0;
    cfg.mcu.mmacs_per_second = 0.2;
    sim::Simulator simulator(trace, cfg);
    auto model = baselines::FixedBaselineModel("sonic", 2.0, 100.0, 1.0);
    std::vector<sim::Event> events = {{0, 1.0}};
    sim::GreedyAffordablePolicy policy;
    const auto r = simulator.run(events, model, policy);
    ASSERT_TRUE(r.records[0].processed);
    // Must have spanned multiple power cycles: longer than one on-period.
    EXPECT_GT(r.records[0].completion_time_s, 40.0);
    EXPECT_GE(r.records[0].energy_spent_mj, 3.0);  // compute + overheads
    EXPECT_TRUE(r.energy_feasible(0.0));
}

TEST(Simulator, CheckpointedRejectsMultiExitModels) {
    const auto trace = energy::PowerTrace::constant(1.0, 10.0, 1.0);
    sim::SimConfig cfg;
    cfg.mode = sim::ExecutionMode::kCheckpointed;
    sim::Simulator simulator(trace, cfg);
    const auto desc = core::make_paper_network_desc();
    const auto policy = compress::Policy::full_precision(desc.num_layers());
    core::OracleInferenceModel model(desc, policy, {60.0, 70.0, 73.0});
    sim::GreedyAffordablePolicy exit_policy;
    std::vector<sim::Event> events = {{0, 1.0}};
    EXPECT_THROW((void)simulator.run(events, model, exit_policy),
                 util::ContractViolation);
}

}  // namespace
