// Runtime-phase tests: oracle inference model, Q-learning exit policy,
// incremental-inference decisions, and the static trace evaluator.
#include <gtest/gtest.h>

#include "core/accuracy_model.hpp"
#include "core/experiment_setup.hpp"
#include "core/multi_exit_spec.hpp"
#include "core/oracle_model.hpp"
#include "sim/policies/qlearning.hpp"
#include "core/trace_eval.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace imx;

const compress::NetworkDesc& paper_desc() {
    static const compress::NetworkDesc desc = core::make_paper_network_desc();
    return desc;
}

core::OracleInferenceModel make_model(std::vector<double> acc = {60.0, 68.0,
                                                                 70.0}) {
    return core::OracleInferenceModel(
        paper_desc(), core::reference_nonuniform_policy(), std::move(acc));
}

TEST(OracleModel, DeterministicPerEventAndExit) {
    auto m1 = make_model();
    auto m2 = make_model();
    for (int ev = 0; ev < 50; ++ev) {
        for (int e = 0; e < 3; ++e) {
            const auto a = m1.evaluate(ev, e);
            const auto b = m2.evaluate(ev, e);
            EXPECT_EQ(a.correct, b.correct);
            EXPECT_EQ(a.confidence, b.confidence);
        }
    }
}

TEST(OracleModel, LongRunAccuracyMatchesTarget) {
    auto model = make_model({55.0, 65.0, 75.0});
    for (int e = 0; e < 3; ++e) {
        int correct = 0;
        const int n = 20000;
        for (int ev = 0; ev < n; ++ev) {
            correct += model.evaluate(ev, e).correct ? 1 : 0;
        }
        const double expected = model.exit_accuracy()[static_cast<std::size_t>(e)];
        EXPECT_NEAR(100.0 * correct / n, expected, 1.0) << "exit " << e;
    }
}

TEST(OracleModel, MonotoneAccuracyGivesMonotoneCorrectness) {
    auto model = make_model({50.0, 65.0, 80.0});
    for (int ev = 0; ev < 500; ++ev) {
        bool prev = model.evaluate(ev, 0).correct;
        for (int e = 1; e < 3; ++e) {
            const bool cur = model.evaluate(ev, e).correct;
            // Solved at a shallow exit implies solved at deeper exits.
            if (prev) {
                EXPECT_TRUE(cur) << "event " << ev << " exit " << e;
            }
            prev = cur;
        }
    }
}

TEST(OracleModel, ConfidenceCorrelatesWithCorrectness) {
    auto model = make_model();
    double conf_correct = 0.0;
    double conf_wrong = 0.0;
    int n_correct = 0;
    int n_wrong = 0;
    for (int ev = 0; ev < 2000; ++ev) {
        const auto out = model.evaluate(ev, 1);
        if (out.correct) {
            conf_correct += out.confidence;
            ++n_correct;
        } else {
            conf_wrong += out.confidence;
            ++n_wrong;
        }
    }
    EXPECT_GT(conf_correct / n_correct, conf_wrong / n_wrong + 0.1);
}

TEST(OracleModel, IncrementalMacsEqualPathDifference) {
    auto model = make_model();
    // exit0 -> exit1: exit1 total minus the shared Conv1 portion.
    const std::int64_t inc01 = model.incremental_macs(0, 1);
    const std::int64_t inc12 = model.incremental_macs(1, 2);
    const std::int64_t inc02 = model.incremental_macs(0, 2);
    EXPECT_GT(inc01, 0);
    EXPECT_LT(inc01, model.exit_macs(1));
    // Jumping 0->2 must cost no more than the sum of hops (it skips exit 1's
    // private branch).
    EXPECT_LE(inc02, inc01 + inc12);
    EXPECT_EQ(model.incremental_macs(-1, 0), model.exit_macs(0));
}

TEST(OracleModel, ModelBytesMatchAccounting) {
    auto model = make_model();
    EXPECT_NEAR(model.model_bytes(),
                compress::model_bytes(paper_desc(),
                                      core::reference_nonuniform_policy()),
                1e-6);
}

// --- Q-learning runtime policy ----------------------------------------------

sim::EnergyState state_with(double level, double capacity, double rate) {
    sim::EnergyState s;
    s.level_mj = level;
    s.capacity_mj = capacity;
    s.charge_rate_mw = rate;
    s.energy_per_mmac_mj = 1.5;
    return s;
}

TEST(QLearningPolicy, SelectsValidExitsAndHasSmallFootprint) {
    sim::RuntimeConfig cfg;
    sim::QLearningExitPolicy policy(3, cfg);
    auto model = make_model();
    for (int i = 0; i < 100; ++i) {
        const int e = policy.select_exit(
            state_with(i % 5 * 1.0, 5.0, 0.01 * (i % 4)), model);
        EXPECT_GE(e, 0);
        EXPECT_LT(e, 3);
        policy.observe(state_with(1.0, 5.0, 0.01), e, true, true);
    }
    // Paper: "the overhead of Q-learning is negligible" — LUT stays small.
    EXPECT_LE(policy.footprint_bytes(), 8u * 1024u);
}

TEST(QLearningPolicy, LearnsCheapExitWhenDeepExitsCauseMisses) {
    // Synthetic loop: deep exits always produce two missed events, cheap exit
    // none. Reward favors exit 0 despite equal correctness.
    sim::RuntimeConfig cfg;
    cfg.exit_q.epsilon = 0.3;
    cfg.exit_q.epsilon_decay = 0.999;
    cfg.miss_penalty = 1.0;
    sim::QLearningExitPolicy policy(3, cfg);
    auto model = make_model();
    const auto s = state_with(2.0, 5.0, 0.02);
    for (int i = 0; i < 3000; ++i) {
        const int e = policy.select_exit(s, model);
        policy.observe(s, e, true, true);  // always correct...
        if (e > 0) {                 // ...but deep exits starve followers
            policy.observe_missed();
            policy.observe_missed();
        }
    }
    policy.set_eval_mode(true);
    EXPECT_EQ(policy.select_exit(s, model), 0);
}

TEST(QLearningPolicy, EvalModeIsGreedyAndFrozen) {
    sim::RuntimeConfig cfg;
    sim::QLearningExitPolicy policy(3, cfg);
    auto model = make_model();
    policy.set_eval_mode(true);
    const auto s = state_with(3.0, 5.0, 0.02);
    const int first = policy.select_exit(s, model);
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(policy.select_exit(s, model), first);
        policy.observe(s, first, i % 2 == 0, true);
    }
}

TEST(QLearningPolicy, IncrementalRefusesWhenUnaffordable) {
    sim::RuntimeConfig cfg;
    cfg.enable_incremental = true;
    sim::QLearningExitPolicy policy(3, cfg);
    auto model = make_model();
    // Level far below the incremental cost of exit0 -> exit1 (~0.35 mJ).
    EXPECT_FALSE(policy.continue_inference(state_with(0.01, 5.0, 0.0), model, 0,
                                           0.1));
    // Last exit can never continue.
    EXPECT_FALSE(policy.continue_inference(state_with(5.0, 5.0, 0.0), model, 2,
                                           0.1));
}

TEST(QLearningPolicy, IncrementalDisabledByConfig) {
    sim::RuntimeConfig cfg;
    cfg.enable_incremental = false;
    sim::QLearningExitPolicy policy(3, cfg);
    auto model = make_model();
    EXPECT_FALSE(policy.continue_inference(state_with(5.0, 5.0, 0.0), model, 0,
                                           0.0));
}

// --- Static trace evaluator ---------------------------------------------------

TEST(StaticTraceEvaluator, AbundantEnergySelectsDeepestExitAlways) {
    const auto trace = energy::PowerTrace::constant(10.0, 1000.0, 1.0);
    const auto events =
        sim::generate_events({100, 900.0, sim::ArrivalKind::kUniform, 3});
    energy::StorageConfig storage;
    storage.capacity_mj = 1000.0;
    storage.initial_mj = 500.0;
    const core::StaticTraceEvaluator eval(trace, events, storage, 1.5);
    const auto r = eval.evaluate({100000, 500000, 900000}, {60.0, 68.0, 70.0});
    EXPECT_EQ(r.processed, 100);
    EXPECT_EQ(r.missed, 0);
    EXPECT_NEAR(r.exit_probability[2], 1.0, 1e-12);
    EXPECT_NEAR(r.avg_accuracy_all, 0.70, 1e-9);
}

TEST(StaticTraceEvaluator, NoEnergyMissesEverything) {
    const auto trace = energy::PowerTrace::constant(0.0001, 100.0, 1.0);
    const auto events =
        sim::generate_events({20, 90.0, sim::ArrivalKind::kUniform, 4});
    energy::StorageConfig storage;
    storage.capacity_mj = 10.0;
    storage.initial_mj = 0.0;
    const core::StaticTraceEvaluator eval(trace, events, storage, 1.5);
    const auto r = eval.evaluate({5000000}, {80.0});
    EXPECT_EQ(r.processed, 0);
    EXPECT_NEAR(r.avg_accuracy_all, 0.0, 1e-12);
}

TEST(StaticTraceEvaluator, RaccIsExitProbabilityWeightedAccuracy) {
    // Paper Eq. 10 identity.
    const auto setup = core::make_paper_setup();
    const core::StaticTraceEvaluator eval(setup.trace, setup.events,
                                          core::paper_storage_config(), 1.5);
    const auto macs =
        compress::per_exit_macs(setup.network, setup.deployed_policy);
    const auto r = eval.evaluate(macs, setup.exit_accuracy);
    double racc = 0.0;
    for (int e = 0; e < 3; ++e) {
        racc += r.exit_probability[static_cast<std::size_t>(e)] *
                setup.exit_accuracy[static_cast<std::size_t>(e)] / 100.0;
    }
    EXPECT_NEAR(r.avg_accuracy_all, racc, 1e-9);
    EXPECT_GT(r.processed, 0);
}

TEST(StaticTraceEvaluator, CheaperExitsRaiseProcessedCount) {
    const auto setup = core::make_paper_setup();
    const core::StaticTraceEvaluator eval(setup.trace, setup.events,
                                          core::paper_storage_config(), 1.5);
    const auto expensive = eval.evaluate({1500000}, {73.0});
    const auto cheap = eval.evaluate({300000}, {62.0});
    EXPECT_GT(cheap.processed, expensive.processed);
}

}  // namespace
