// Tests for the declarative experiment API: the kvfile parser, the
// experiment registry, spec-file round-trips against the registered
// built-ins (ids / dims / seeds of the expanded grids must be identical),
// malformed-spec diagnostics, and the --base-seed / --replicas resolution
// rules.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/spec_parser.hpp"
#include "util/kvfile.hpp"

#ifndef IMX_SPEC_DIR
#error "IMX_SPEC_DIR must point at examples/experiments"
#endif

namespace {

using namespace imx;

// --- util/kvfile ----------------------------------------------------------

TEST(KvFile, ParsesSectionsEntriesAndComments) {
    const auto sections = util::parse_kv_text(
        "# comment\n"
        "[alpha]\n"
        "key = value\n"
        "  padded   =   spaced out  \n"
        "; another comment\n"
        "[alpha]\n"
        "k2 = a = b\n");
    ASSERT_EQ(sections.size(), 2u);
    EXPECT_EQ(sections[0].name, "alpha");
    EXPECT_EQ(sections[0].line, 2);
    ASSERT_EQ(sections[0].entries.size(), 2u);
    EXPECT_EQ(sections[0].entries[0].key, "key");
    EXPECT_EQ(sections[0].entries[0].value, "value");
    EXPECT_EQ(sections[0].entries[1].key, "padded");
    EXPECT_EQ(sections[0].entries[1].value, "spaced out");
    EXPECT_EQ(sections[0].entries[1].line, 4);
    // Repeated section names are distinct nodes; '=' in a value survives.
    EXPECT_EQ(sections[1].entries[0].value, "a = b");
}

TEST(KvFile, RejectsMalformedLines) {
    EXPECT_THROW(util::parse_kv_text("key = 1\n"), util::KvParseError);
    EXPECT_THROW(util::parse_kv_text("[open\n"), util::KvParseError);
    EXPECT_THROW(util::parse_kv_text("[s]\nnot a kv line\n"),
                 util::KvParseError);
    EXPECT_THROW(util::parse_kv_text("[s]\n= empty key\n"),
                 util::KvParseError);
    try {
        util::parse_kv_text("[s]\nbroken\n", "my.ini");
        FAIL() << "expected KvParseError";
    } catch (const util::KvParseError& e) {
        EXPECT_NE(std::string(e.what()).find("my.ini:2"), std::string::npos);
    }
}

// --- registry -------------------------------------------------------------

TEST(ExperimentRegistry, BuiltInsAreRegistered) {
    const auto names = exp::experiment_names();
    const std::set<std::string> set(names.begin(), names.end());
    for (const char* name :
         {"fig1b-exit-accuracy", "fig4-compression-policy", "fig5-iepmj",
          "fig6-flops", "fig7a-runtime-learning", "fig7b-exit-distribution",
          "latency-table", "ablation-runtime", "ablation-search",
          "ablation-trace", "ablation-storage-deadline",
          "ablation-deadline-policy", "harvester-ablation"}) {
        EXPECT_TRUE(set.count(name)) << name;
        EXPECT_TRUE(exp::has_experiment(name)) << name;
        EXPECT_FALSE(exp::experiment_description(name).empty()) << name;
    }
}

TEST(ExperimentRegistry, UnknownNameListsEveryRegisteredName) {
    try {
        (void)exp::make_experiment("no-such-experiment");
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no-such-experiment"), std::string::npos);
        EXPECT_NE(what.find("fig5-iepmj"), std::string::npos);
        EXPECT_NE(what.find("ablation-storage-deadline"), std::string::npos);
    }
}

TEST(ExperimentRegistry, CustomExperimentsRegisterAndResolve) {
    exp::register_experiment("test-custom", [] {
        exp::Experiment e;
        e.spec.name = "test-custom";
        e.spec.description = "registered from a test";
        e.spec.systems = {{"s", "ours-static", "", 0, 0}};
        return e;
    });
    EXPECT_TRUE(exp::has_experiment("test-custom"));
    const auto experiment = exp::make_experiment("test-custom");
    EXPECT_EQ(experiment.spec.name, "test-custom");
    const auto specs = exp::build_experiment_scenarios(experiment, {});
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].id, "paper-solar/s#0");
}

// --- spec-file round-trips ------------------------------------------------

void expect_same_grid(const std::vector<exp::ScenarioSpec>& from_spec,
                      const std::vector<exp::ScenarioSpec>& from_registry) {
    ASSERT_EQ(from_spec.size(), from_registry.size());
    for (std::size_t i = 0; i < from_spec.size(); ++i) {
        EXPECT_EQ(from_spec[i].id, from_registry[i].id);
        EXPECT_EQ(from_spec[i].group, from_registry[i].group);
        EXPECT_EQ(from_spec[i].dims, from_registry[i].dims);
        EXPECT_EQ(from_spec[i].replica, from_registry[i].replica);
        EXPECT_EQ(from_spec[i].seed, from_registry[i].seed);
    }
}

TEST(SpecRoundTrip, StorageDeadlinePolicyMatchesRegisteredExperiment) {
    const auto spec = exp::load_experiment_spec(
        std::string(IMX_SPEC_DIR) + "/storage_deadline_policy.ini");
    EXPECT_EQ(spec.name, "ablation-storage-deadline");

    for (const bool quick : {false, true}) {
        exp::SweepCli cli;
        cli.quick = quick;
        cli.replicas = 2;
        cli.replicas_given = true;
        expect_same_grid(
            exp::expand_experiment(spec, cli),
            exp::build_experiment_scenarios(
                exp::make_experiment("ablation-storage-deadline"), cli));
    }
}

TEST(SpecRoundTrip, PaperBaselinesMatchesFig5Grid) {
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/paper_baselines.ini");
    exp::SweepCli cli;
    cli.quick = true;
    cli.replicas = 3;
    cli.replicas_given = true;
    expect_same_grid(exp::expand_experiment(spec, cli),
                     exp::build_experiment_scenarios(
                         exp::make_experiment("fig5-iepmj"), cli));
}

TEST(SpecRoundTrip, BurstySlackGridParsesAndExpands) {
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/bursty_slack_grid.ini");
    EXPECT_EQ(spec.name, "bursty-slack-grid");
    ASSERT_EQ(spec.traces.size(), 2u);
    EXPECT_EQ(spec.traces[1].config.arrival_source, "bursty");
    EXPECT_EQ(spec.traces[1].config.event_seed, 321u);

    const auto specs = exp::expand_experiment(spec, {});
    // 2 traces x 2 systems x (2 storage x 2 deadline) x 1 replica.
    ASSERT_EQ(specs.size(), 16u);
    EXPECT_EQ(specs[0].id,
              "uniform-arrivals/slack-blind Q/cap1.5mJ+ddl45s#0");
    EXPECT_EQ(specs[0].dims.at("storage_mj"), "1.5");
    EXPECT_EQ(specs[0].dims.at("deadline_s"), "45");
}

std::string valid_spec() {
    return "[sweep]\n"
           "name = t\n"
           "[system]\n"
           "label = s\n"
           "kind = ours-static\n";
}

void expect_parse_error(const std::string& text, const std::string& needle) {
    try {
        (void)exp::parse_experiment_spec(text, "spec.ini");
        FAIL() << "expected failure containing '" << needle << "'";
    } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << e.what();
    }
}

TEST(SpecRoundTrip, HarvesterAblationMatchesRegisteredExperiment) {
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/harvester_ablation.ini");
    EXPECT_EQ(spec.name, "harvester-ablation");
    ASSERT_EQ(spec.traces.size(), 4u);
    EXPECT_EQ(spec.traces[1].label, "rf-bursty");
    EXPECT_EQ(spec.traces[1].config.trace_source, "rf-bursty");
    EXPECT_EQ(spec.traces[1].config.trace_params.at("burst_power_mw"), "0.6");
    EXPECT_EQ(spec.traces[2].config.trace_source, "ou-wind");

    for (const bool quick : {false, true}) {
        exp::SweepCli cli;
        cli.quick = quick;
        cli.replicas = 2;
        cli.replicas_given = true;
        expect_same_grid(exp::expand_experiment(spec, cli),
                         exp::build_experiment_scenarios(
                             exp::make_experiment("harvester-ablation"), cli));
    }
}

TEST(SpecRoundTrip, CsvDemoResolvesThePathAgainstTheSpecDirectory) {
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/csv_trace_demo.ini");
    ASSERT_EQ(spec.traces.size(), 1u);
    EXPECT_EQ(spec.traces[0].config.trace_source, "csv");
    EXPECT_EQ(spec.traces[0].config.trace_params.at("path"),
              std::string(IMX_SPEC_DIR) + "/office_rf.csv");
    // The grid expands (and therefore loads the csv) without error.
    const auto specs = exp::expand_experiment(spec, {});
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].id, "office-rf/learned Q#0");
}

// --- [trace.<label>] sections ---------------------------------------------

TEST(TraceSections, LabeledHeaderCarriesSourceAndParams) {
    const auto spec = exp::parse_experiment_spec(
        valid_spec() +
        "[trace.rf-lab]\nsource = rf-bursty\nburst_power_mw = 0.7\n"
        "event_seed = 321\narrivals = bursty\n");
    ASSERT_EQ(spec.traces.size(), 1u);
    EXPECT_EQ(spec.traces[0].label, "rf-lab");
    EXPECT_EQ(spec.traces[0].config.trace_source, "rf-bursty");
    EXPECT_EQ(spec.traces[0].config.trace_params.at("burst_power_mw"), "0.7");
    // Trace keys stay trace keys — they never leak into the param map.
    EXPECT_EQ(spec.traces[0].config.trace_params.count("event_seed"), 0u);
    EXPECT_EQ(spec.traces[0].config.event_seed, 321u);
    EXPECT_EQ(spec.traces[0].config.arrival_source, "bursty");

    // Default source: solar with its canonical parameters.
    const auto plain =
        exp::parse_experiment_spec(valid_spec() + "[trace.quiet]\n");
    EXPECT_EQ(plain.traces[0].label, "quiet");
    EXPECT_EQ(plain.traces[0].config.trace_source, "solar");
    EXPECT_TRUE(plain.traces[0].config.trace_params.empty());
}

TEST(TraceSections, RejectSchemaMistakesWithFileLineDiagnostics) {
    // Unknown source, at the key's line.
    expect_parse_error(valid_spec() + "[trace.x]\nsource = nuclear\n",
                       "unknown trace source 'nuclear'");
    // Unknown key: neither a trace key nor a source parameter.
    expect_parse_error(
        valid_spec() + "[trace.x]\nsource = rf-bursty\nburst_pwr = 1\n",
        "spec.ini:8: unknown key 'burst_pwr'");
    // ... even when the source line comes after the bad key.
    expect_parse_error(
        valid_spec() + "[trace.x]\nburst_pwr = 1\nsource = rf-bursty\n",
        "unknown key 'burst_pwr'");
    // The labeled form owns its label.
    expect_parse_error(valid_spec() + "[trace.x]\nlabel = y\n",
                       "takes its label from the section header");
    expect_parse_error(valid_spec() + "[trace.]\nsource = solar\n",
                       "requires a label after the dot");
    // Bad parameter values fail at parse time, not mid-sweep.
    expect_parse_error(
        valid_spec() + "[trace.x]\nsource = rf-bursty\nburst_power_mw = -2\n",
        "must be > 0");
    expect_parse_error(valid_spec() + "[trace.x]\nsource = csv\n",
                       "requires parameter 'path'");
    expect_parse_error(
        valid_spec() + "[trace.x]\nsource = csv\npath = /no/such.csv\n",
        "cannot load");
    // A solar window shorter than the requested duration is impossible.
    expect_parse_error(valid_spec() +
                           "[trace.x]\nsource = solar\nduration_s = 50000\n",
                       "exceeds");
    // An all-zero trace cannot be rescaled to the harvest budget; this
    // must fail at parse time, not as a mid-sweep contract violation.
    expect_parse_error(valid_spec() + "[trace.x]\nsource = rf-bursty\n"
                                      "mean_off_s = 9000000\n",
                       "harvests no energy");
}

TEST(TraceSections, MixedPlainAndLabeledTracesExpandTogether) {
    const auto spec = exp::parse_experiment_spec(
        valid_spec() + "[trace]\nlabel = solar-control\n"
                       "[trace.windy]\nsource = ou-wind\nsigma = 0.002\n");
    const auto specs = exp::expand_experiment(spec, {});
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].id, "solar-control/s#0");
    EXPECT_EQ(specs[1].id, "windy/s#0");
}

// --- malformed specs ------------------------------------------------------

TEST(SpecParser, AcceptsTheMinimalSpec) {
    const auto spec = exp::parse_experiment_spec(valid_spec());
    EXPECT_EQ(spec.name, "t");
    ASSERT_EQ(spec.traces.size(), 1u);  // default paper-solar
    EXPECT_EQ(spec.traces[0].label, "paper-solar");
    EXPECT_EQ(spec.replicas, 1);
    EXPECT_EQ(spec.base_seed, exp::kDefaultBaseSeed);
}

TEST(SpecParser, RejectsRepeatedKeysWithinASection) {
    // A repeated key would silently last-win — e.g. a patch axis split
    // across two lines would run half its grid.
    expect_parse_error(
        valid_spec() + "[patch.storage]\ncapacity_mj = 3\ncapacity_mj = 6\n",
        "duplicate key 'capacity_mj'");
    expect_parse_error("[sweep]\nname = a\nname = b\n[system]\nlabel = s\n",
                       "duplicate key 'name'");
    expect_parse_error(valid_spec() + "[system]\nlabel = s2\nkind = sonic\n"
                                      "kind = lenet\n",
                       "duplicate key 'kind'");
}

TEST(SpecParser, RejectsUnknownKeysAndSections) {
    expect_parse_error("[sweep]\nname = t\nreplics = 2\n[system]\nlabel=s\n",
                       "unknown key 'replics'");
    expect_parse_error(valid_spec() + "[patches]\nx = 1\n",
                       "unknown section [patches]");
    expect_parse_error(valid_spec() + "[system]\nlabel = s2\nkinds = x\n",
                       "unknown key 'kinds'");
    expect_parse_error(valid_spec() + "[patch.storage]\ndeadline_s = 3\n",
                       "unknown key 'deadline_s'");
}

TEST(SpecParser, RejectsBadNumbers) {
    expect_parse_error("[sweep]\nname = t\nreplicas = many\n",
                       "expects an integer");
    expect_parse_error(valid_spec() + "[patch.storage]\ncapacity_mj = 3, x\n",
                       "expects a number");
    expect_parse_error(valid_spec() + "[patch.deadline]\ndeadline_s = 60,,\n",
                       "empty list element");
    expect_parse_error("[sweep]\nname = t\nbase_seed = -4\n",
                       "non-negative");
    expect_parse_error(valid_spec() + "[trace]\nlabel = x\nevent_count = 0\n",
                       "event_count must be >= 1");
}

TEST(SpecParser, RejectsStructuralMistakes) {
    expect_parse_error(valid_spec() + "[system]\nlabel = s\nkind = sonic\n",
                       "duplicate system label 's'");
    expect_parse_error(valid_spec() + "[sweep]\nname = again\n",
                       "duplicate [sweep]");
    expect_parse_error("[system]\nlabel = s\n", "missing required [sweep]");
    expect_parse_error("[sweep]\nname = t\n", "no [system]");
    expect_parse_error("[sweep]\ndescription = unnamed\n[system]\nlabel=s\n",
                       "non-empty 'name'");
    expect_parse_error(
        valid_spec() + "[patch.policy]\npolicies = greedy\n"
                       "[patch.policy]\npolicies = qlearning\n",
        "duplicate [patch.policy]");
}

TEST(SpecParser, SemanticErrorsSurfaceAtExpansion) {
    // Unknown kinds/policies parse fine (the parser owns syntax) but fail
    // loudly in make_sweep before anything runs.
    auto spec = exp::parse_experiment_spec(
        "[sweep]\nname = t\n[system]\nlabel = s\nkind = resnet\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);

    spec = exp::parse_experiment_spec(
        "[sweep]\nname = t\n[system]\nlabel = s\nkind = ours-policy\n"
        "policy = not-a-policy\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);

    // A policy axis cannot cross a checkpointed baseline.
    spec = exp::parse_experiment_spec(
        "[sweep]\nname = t\n[system]\nlabel = s\nkind = sonic\n"
        "[patch.policy]\npolicies = greedy\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);

    // ours-policy with neither a policy name nor a policy axis.
    spec = exp::parse_experiment_spec(
        "[sweep]\nname = t\n[system]\nlabel = s\nkind = ours-policy\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);
}

TEST(SpecParser, DuplicateTracesAndAxisValuesFailAtExpansion) {
    // Each duplicate would expand to colliding scenario ids, silently
    // folding distinct cells into one aggregation group.
    auto spec = exp::parse_experiment_spec(
        valid_spec() + "[trace]\nlabel = x\n[trace]\nlabel = x\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);

    spec = exp::parse_experiment_spec(
        valid_spec() + "[patch.deadline]\ndeadline_s = 60, 60\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);

    spec = exp::parse_experiment_spec(
        valid_spec() + "[patch.storage]\ncapacity_mj = 3, 3\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);

    spec = exp::parse_experiment_spec(
        "[sweep]\nname = t\n[system]\nlabel = s\nkind = ours-policy\n"
        "[patch.policy]\npolicies = greedy, greedy\n");
    EXPECT_THROW((void)exp::expand_experiment(spec, {}),
                 std::invalid_argument);
}

// --- option resolution ----------------------------------------------------

TEST(OptionResolution, SpecDefaultsYieldToExplicitCliFlags) {
    exp::ExperimentSpec spec;
    spec.name = "t";
    spec.systems = {{"s", "ours-static", "", 0, 0}};
    spec.replicas = 3;
    spec.base_seed = 42;

    // No CLI flags: the spec's defaults apply.
    auto resolved = exp::resolve_options(spec, {});
    EXPECT_EQ(resolved.replicas, 3);
    EXPECT_EQ(resolved.base_seed, 42u);

    // Explicit flags win, including --replicas 1 over a spec default of 3.
    exp::SweepCli cli;
    cli.replicas = 1;
    cli.replicas_given = true;
    cli.base_seed = 7;
    cli.base_seed_given = true;
    resolved = exp::resolve_options(spec, cli);
    EXPECT_EQ(resolved.replicas, 1);
    EXPECT_EQ(resolved.base_seed, 7u);
}

TEST(BaseSeed, ReRollsEveryStreamAndDefaultsToTheHistoricalSeed) {
    exp::ExperimentSpec spec;
    spec.name = "t";
    spec.systems = {{"s", "ours-static", "", 0, 0}};

    const auto default_grid = exp::expand_experiment(spec, {});
    ASSERT_EQ(default_grid.size(), 1u);
    EXPECT_EQ(default_grid[0].seed,
              exp::scenario_seed(exp::kDefaultBaseSeed, "paper-solar/s", 0));

    exp::SweepCli rerolled;
    rerolled.base_seed = 0xBEEF;
    rerolled.base_seed_given = true;
    const auto rerolled_grid = exp::expand_experiment(spec, rerolled);
    EXPECT_EQ(rerolled_grid[0].seed,
              exp::scenario_seed(0xBEEF, "paper-solar/s", 0));
    EXPECT_NE(rerolled_grid[0].seed, default_grid[0].seed);
}

TEST(QuickMode, ShrinksTracesAndEpisodesLikeTheHistoricalBenches) {
    const core::SetupConfig full;
    const auto quick = exp::quick_setup_config(full);
    EXPECT_DOUBLE_EQ(quick.duration_s, 4000.0);
    EXPECT_EQ(quick.event_count, 150);
    // Same harvest-per-second density as the full run.
    EXPECT_NEAR(quick.total_harvest_mj / quick.duration_s,
                full.total_harvest_mj / full.duration_s, 1e-12);

    // Shrink only: a trace already below the smoke scale is left alone.
    core::SetupConfig tiny;
    tiny.duration_s = 1000.0;
    tiny.event_count = 50;
    tiny.total_harvest_mj = 20.0;
    const auto tiny_quick = exp::quick_setup_config(tiny);
    EXPECT_DOUBLE_EQ(tiny_quick.duration_s, 1000.0);
    EXPECT_EQ(tiny_quick.event_count, 50);
    EXPECT_DOUBLE_EQ(tiny_quick.total_harvest_mj, 20.0);

    // File-backed sources keep their physics: a csv trace's length comes
    // from the file, not duration_s, so quick mode must not scale the
    // harvest budget (that would starve a same-length replay); only the
    // event cap applies.
    core::SetupConfig csv_cfg;
    csv_cfg.trace_source = "csv";
    csv_cfg.trace_params = {{"path", "some_trace.csv"}};
    const auto csv_quick = exp::quick_setup_config(csv_cfg);
    EXPECT_DOUBLE_EQ(csv_quick.duration_s, csv_cfg.duration_s);
    EXPECT_DOUBLE_EQ(csv_quick.total_harvest_mj, csv_cfg.total_harvest_mj);
    EXPECT_EQ(csv_quick.event_count, 150);

    exp::SweepCli cli;
    EXPECT_EQ(exp::sweep_episodes(cli, 16), 16);
    cli.quick = true;
    EXPECT_EQ(exp::sweep_episodes(cli, 16), 4);

    // Quick mode swaps the learning systems onto quick_train_episodes.
    exp::ExperimentSpec spec;
    spec.name = "t";
    spec.systems = {{"q", "ours-qlearning", "", 12, 3}};
    EXPECT_EQ(exp::make_sweep(spec, {}).systems[0].train_episodes, 12);
    EXPECT_EQ(exp::make_sweep(spec, cli).systems[0].train_episodes, 3);
}

}  // namespace
