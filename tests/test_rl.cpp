// RL substrate tests: tabular Q-learning (Eq. 16), discretizers, replay
// buffer, OU noise, MLP gradients, and DDPG on a continuous bandit.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/ddpg.hpp"
#include "rl/mlp.hpp"
#include "rl/qtable.hpp"
#include "util/contracts.hpp"
#include "util/stats.hpp"

namespace {

using namespace imx;

rl::QLearningConfig greedy_config() {
    rl::QLearningConfig cfg;
    cfg.alpha = 0.5;
    cfg.gamma = 0.9;
    cfg.epsilon = 0.0;
    return cfg;
}

TEST(QTable, UpdateMatchesEq16ByHand) {
    rl::QLearningConfig cfg;
    cfg.alpha = 0.25;
    cfg.gamma = 0.5;
    cfg.epsilon = 0.0;
    cfg.initial_q = 0.0;
    rl::QTable q(2, 2, cfg);
    // Prime Q(s1, *) so max_a Q(s1, a) = 2.0.
    q.update_terminal(1, 0, 4.0);  // Q(1,0) = 0 + 0.25*(4-0) = 1.0
    q.update_terminal(1, 0, 4.0);  // Q(1,0) = 1 + 0.25*3 = 1.75
    EXPECT_NEAR(q.q(1, 0), 1.75, 1e-12);
    // Eq. 16: Q(0,1) += alpha*(r + gamma*maxQ(1,.) - Q(0,1)).
    q.update(0, 1, 1.0, 1);
    EXPECT_NEAR(q.q(0, 1), 0.25 * (1.0 + 0.5 * 1.75), 1e-12);
}

TEST(QTable, GreedyPicksArgmaxLowestTie) {
    rl::QTable q(1, 3, greedy_config());
    q.update_terminal(0, 2, 1.0);
    EXPECT_EQ(q.greedy(0), 2u);
    rl::QTable tie(1, 3, greedy_config());
    EXPECT_EQ(tie.greedy(0), 0u);
}

TEST(QTable, EpsilonDecays) {
    rl::QLearningConfig cfg;
    cfg.epsilon = 0.5;
    cfg.epsilon_decay = 0.9;
    cfg.epsilon_min = 0.1;
    rl::QTable q(1, 2, cfg);
    for (int i = 0; i < 100; ++i) (void)q.select(0);
    EXPECT_NEAR(q.epsilon(), 0.1, 1e-9);
}

TEST(QTable, ConvergesOnDeterministicChain) {
    // Two states: action 1 in s0 moves to s1 with r=0; in s1, action 0
    // yields r=1 (terminal). Optimal Q(s0,1) = gamma * 1.
    rl::QLearningConfig cfg;
    cfg.alpha = 0.3;
    cfg.gamma = 0.8;
    cfg.epsilon = 0.3;
    cfg.epsilon_decay = 1.0;
    rl::QTable q(2, 2, cfg, 5);
    for (int episode = 0; episode < 600; ++episode) {
        const std::size_t a0 = q.select(0);
        if (a0 == 1) {
            q.update(0, 1, 0.0, 1);
            const std::size_t a1 = q.select(1);
            q.update_terminal(1, a1, a1 == 0 ? 1.0 : 0.0);
        } else {
            q.update_terminal(0, 0, 0.0);
        }
    }
    EXPECT_EQ(q.greedy(0), 1u);
    EXPECT_EQ(q.greedy(1), 0u);
    EXPECT_NEAR(q.q(0, 1), 0.8, 0.1);
}

TEST(QTable, FootprintIsKbScale) {
    // The paper's LUT argument: 48 states x 3 actions of doubles ~ 1.2 KB.
    rl::QTable q(48, 3, greedy_config());
    EXPECT_LE(q.footprint_bytes(), 2048u);
}

TEST(Discretizer, BinsCoverRangeAndClamp) {
    rl::Discretizer d(0.0, 1.0, 4);
    EXPECT_EQ(d.bin(-5.0), 0u);
    EXPECT_EQ(d.bin(0.0), 0u);
    EXPECT_EQ(d.bin(0.26), 1u);
    EXPECT_EQ(d.bin(0.99), 3u);
    EXPECT_EQ(d.bin(1.0), 3u);
    EXPECT_EQ(d.bin(99.0), 3u);
}

TEST(ReplayBuffer, RingOverwritesOldest) {
    rl::ReplayBuffer buf(3);
    for (int i = 0; i < 5; ++i) {
        buf.push({{static_cast<float>(i)}, {0.0F}, 0.0F, {0.0F}, false});
    }
    EXPECT_EQ(buf.size(), 3u);
    // All remaining states must be from {2, 3, 4}.
    const auto sample = buf.sample(64);
    for (const auto* t : sample) {
        EXPECT_GE(t->state[0], 2.0F);
    }
}

TEST(OuNoise, RevertsTowardZeroWithoutDiffusion) {
    rl::OuNoise noise(1, 0.5, 0.0, 1);
    // Kick the state by sampling with sigma 0 after manual excursion: the
    // state starts at 0 and stays there when sigma = 0.
    auto v = noise.sample();
    EXPECT_EQ(v[0], 0.0);
}

TEST(OuNoise, SigmaControlsSpread) {
    rl::OuNoise small(1, 0.15, 0.05, 2);
    rl::OuNoise large(1, 0.15, 0.5, 2);
    util::RunningStats s_small;
    util::RunningStats s_large;
    for (int i = 0; i < 2000; ++i) {
        s_small.add(small.sample()[0]);
        s_large.add(large.sample()[0]);
    }
    EXPECT_LT(s_small.stddev(), s_large.stddev());
}

TEST(Mlp, ForwardShapesAndBackwardGradient) {
    util::Rng rng(3);
    rl::Mlp mlp({4, 8, 2}, rl::OutputActivation::kNone, rng);
    nn::Tensor x({4}, {0.1F, -0.2F, 0.3F, 0.4F});
    const nn::Tensor y = mlp.forward(x);
    EXPECT_EQ(y.numel(), 2);

    // Finite-difference check of d(sum y)/dx.
    nn::Tensor ones = nn::Tensor::full({2}, 1.0F);
    mlp.zero_grad();
    const nn::Tensor analytic = mlp.backward(ones);
    const float eps = 1e-3F;
    for (int i = 0; i < 4; ++i) {
        nn::Tensor xp = x;
        xp[i] += eps;
        nn::Tensor xm = x;
        xm[i] -= eps;
        const nn::Tensor yp = mlp.forward(xp);
        const nn::Tensor ym = mlp.forward(xm);
        const float num = ((yp[0] + yp[1]) - (ym[0] + ym[1])) / (2 * eps);
        EXPECT_NEAR(analytic[i], num, 5e-2F);
    }
}

TEST(Mlp, SoftUpdateBlendsWeights) {
    util::Rng rng(4);
    rl::Mlp a({2, 4, 1}, rl::OutputActivation::kNone, rng);
    rl::Mlp b({2, 4, 1}, rl::OutputActivation::kNone, rng);
    const float a0 = (*a.parameters()[0])[0];
    const float b0 = (*b.parameters()[0])[0];
    b.soft_update_from(a, 0.25F);
    EXPECT_NEAR((*b.parameters()[0])[0], 0.25F * a0 + 0.75F * b0, 1e-6F);
    b.copy_weights_from(a);
    EXPECT_EQ((*b.parameters()[0])[0], a0);
}

TEST(Ddpg, LearnsContinuousBandit) {
    // Centered reward -4 (a - 0.7)^2: optimum at a = 0.7. (Centering matters:
    // with a large constant offset the critic's action gradient drowns — the
    // same reason the compression search subtracts a moving baseline.)
    rl::DdpgConfig cfg;
    cfg.state_dim = 2;
    cfg.action_dim = 1;
    cfg.actor_hidden = {16, 16};
    cfg.critic_hidden = {16, 16};
    cfg.batch_size = 32;
    cfg.replay_capacity = 512;
    cfg.ou_sigma = 0.3;
    cfg.ou_sigma_decay = 0.99;
    cfg.seed = 9;
    rl::DdpgAgent agent(cfg);
    const std::vector<float> state = {0.5F, 0.5F};
    for (int episode = 0; episode < 200; ++episode) {
        const auto a = agent.act_noisy(state);
        const float r =
            -4.0F * static_cast<float>((a[0] - 0.7) * (a[0] - 0.7));
        agent.remember({state, {static_cast<float>(a[0])}, r, state, true});
        for (int t = 0; t < 4; ++t) agent.train_step();
        agent.end_episode();
    }
    const auto a = agent.act(state);
    EXPECT_NEAR(a[0], 0.7, 0.1);
}

TEST(Ddpg, ActionsStayInUnitBox) {
    rl::DdpgConfig cfg;
    cfg.state_dim = 3;
    cfg.action_dim = 2;
    cfg.ou_sigma = 2.0;  // violent noise
    rl::DdpgAgent agent(cfg);
    const std::vector<float> state = {0.1F, 0.9F, 0.3F};
    for (int i = 0; i < 50; ++i) {
        const auto a = agent.act_noisy(state);
        for (const double v : a) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(Ddpg, RejectsWrongStateDimension) {
    rl::DdpgConfig cfg;
    cfg.state_dim = 4;
    cfg.action_dim = 1;
    rl::DdpgAgent agent(cfg);
    EXPECT_THROW((void)agent.act({1.0F, 2.0F}), util::ContractViolation);
}

}  // namespace
