// Tests for the multi-exit graph: topology, cost accounting, incremental
// inference, and joint backward.
#include <gtest/gtest.h>

#include "core/multi_exit_spec.hpp"
#include "nn/basic_layers.hpp"
#include "nn/conv2d.hpp"
#include "nn/exit_graph.hpp"
#include "nn/linear.hpp"
#include "nn/train.hpp"
#include "util/contracts.hpp"

namespace {

using namespace imx;

nn::ExitGraph two_exit_toy(util::Rng& rng) {
    nn::ExitGraph g({1, 4, 4});
    nn::Segment t0;
    t0.push(std::make_unique<nn::Conv2d>(1, 2, 3, 1, "c1", rng));
    t0.push(std::make_unique<nn::Relu>());
    nn::Segment b0;
    b0.push(std::make_unique<nn::Flatten>());
    b0.push(std::make_unique<nn::Linear>(32, 3, "e1", rng));
    g.add_exit(std::move(t0), std::move(b0));
    nn::Segment t1;
    t1.push(std::make_unique<nn::Conv2d>(2, 2, 3, 1, "c2", rng));
    t1.push(std::make_unique<nn::Relu>());
    nn::Segment b1;
    b1.push(std::make_unique<nn::Flatten>());
    b1.push(std::make_unique<nn::Linear>(32, 3, "e2", rng));
    g.add_exit(std::move(t1), std::move(b1));
    return g;
}

TEST(ExitGraph, ForwardShapesAndDeterminism) {
    util::Rng rng(1);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::Tensor x = nn::Tensor::full({1, 4, 4}, 0.5F);
    const nn::Tensor y0 = g.forward_to_exit(x, 0);
    const nn::Tensor y1 = g.forward_to_exit(x, 1);
    EXPECT_EQ(y0.numel(), 3);
    EXPECT_EQ(y1.numel(), 3);
    const nn::Tensor y0b = g.forward_to_exit(x, 0);
    EXPECT_EQ(y0[0], y0b[0]);
}

TEST(ExitGraph, ForwardAllMatchesForwardToExit) {
    util::Rng rng(2);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::Tensor x = nn::Tensor::full({1, 4, 4}, 0.3F);
    const auto all = g.forward_all(x);
    ASSERT_EQ(all.size(), 2u);
    const nn::Tensor y0 = g.forward_to_exit(x, 0);
    const nn::Tensor y1 = g.forward_to_exit(x, 1);
    for (int i = 0; i < 3; ++i) {
        EXPECT_FLOAT_EQ(all[0][i], y0[i]);
        EXPECT_FLOAT_EQ(all[1][i], y1[i]);
    }
}

TEST(ExitGraph, IncrementalRunMatchesFromScratch) {
    util::Rng rng(3);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::Tensor x = nn::Tensor::full({1, 4, 4}, 0.7F);
    nn::ExitRun run = g.begin(x);
    const nn::Tensor y0 = run.advance_to(0);
    const nn::Tensor y1 = run.advance_to(1);
    const nn::Tensor y1_direct = g.forward_to_exit(x, 1);
    for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y1[i], y1_direct[i]);
    (void)y0;
}

TEST(ExitGraph, IncrementalMacsAreTheDifference) {
    util::Rng rng(4);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::ExitRun run = g.begin(nn::Tensor::full({1, 4, 4}, 0.1F));
    const std::int64_t to_exit0 = run.incremental_macs(0);
    EXPECT_EQ(to_exit0, g.exit_macs(0));
    (void)run.advance_to(0);
    const std::int64_t inc = run.incremental_macs(1);
    // Incremental cost: trunk segment 1 + branch 1 only (shared prefix free).
    const std::int64_t branch0_macs =
        g.exit_macs(0) - (g.exit_macs(1) - inc - /*branch1*/ 0) -
        /*approximately*/ 0;
    (void)branch0_macs;
    EXPECT_LT(inc, g.exit_macs(1));
    EXPECT_GT(inc, 0);
}

TEST(ExitGraph, AdvanceBackwardThrows) {
    util::Rng rng(5);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::ExitRun run = g.begin(nn::Tensor::full({1, 4, 4}, 0.1F));
    (void)run.advance_to(1);
    EXPECT_THROW((void)run.advance_to(0), util::ContractViolation);
}

TEST(ExitGraph, ParamAndMacCountsArePositiveAndAdditive) {
    util::Rng rng(6);
    nn::ExitGraph g = two_exit_toy(rng);
    EXPECT_GT(g.param_count(), 0);
    EXPECT_GT(g.exit_macs(0), 0);
    EXPECT_GT(g.exit_macs(1), g.exit_macs(0));
    EXPECT_GE(g.total_macs(), g.exit_macs(1));
}

TEST(ExitGraph, CloneIsIndependent) {
    util::Rng rng(7);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::ExitGraph copy = g.clone();
    nn::Tensor x = nn::Tensor::full({1, 4, 4}, 0.4F);
    const float before = g.forward_to_exit(x, 1)[0];
    for (nn::Tensor* p : copy.parameters()) p->fill(0.0F);
    EXPECT_FLOAT_EQ(g.forward_to_exit(x, 1)[0], before);
}

TEST(ExitGraph, BackwardAllAccumulatesIntoSharedTrunk) {
    util::Rng rng(8);
    nn::ExitGraph g = two_exit_toy(rng);
    nn::Tensor x = nn::Tensor::full({1, 4, 4}, 0.2F);

    // Gradients of the shared trunk must be elementwise additive across the
    // two exit losses: grad(w0=1, w1=1) == grad(1, 0) + grad(0, 1).
    auto grads_for = [&](double w0, double w1) {
        g.zero_grad();
        (void)g.forward_all(x);
        std::vector<nn::Tensor> gl(2);
        gl[0] = nn::Tensor::full({3}, 1.0F);
        gl[1] = nn::Tensor::full({3}, 1.0F);
        g.backward_all(gl, {w0, w1});
        return *g.trunk_segment(0).gradients()[0];  // first conv weight grad
    };
    const nn::Tensor only0 = grads_for(1.0, 0.0);
    const nn::Tensor only1 = grads_for(0.0, 1.0);
    const nn::Tensor both = grads_for(1.0, 1.0);
    EXPECT_GT(only0.abs_max(), 0.0F);
    EXPECT_GT(only1.abs_max(), 0.0F);
    for (std::int64_t i = 0; i < both.numel(); ++i) {
        EXPECT_NEAR(both[i], only0[i] + only1[i], 1e-4F) << "index " << i;
    }
}

// --- The paper network ------------------------------------------------------

TEST(PaperGraph, ExitMacsMatchAnalyticTable) {
    util::Rng rng(9);
    nn::ExitGraph g = core::build_paper_graph(rng);
    const auto desc = core::make_paper_network_desc();
    const auto policy = compress::Policy::full_precision(desc.num_layers());
    ASSERT_EQ(g.num_exits(), 3);
    for (int e = 0; e < 3; ++e) {
        EXPECT_EQ(g.exit_macs(e), compress::exit_macs(desc, policy, e))
            << "exit " << e;
    }
    EXPECT_EQ(g.total_macs(), compress::total_macs(desc, policy));
}

TEST(PaperGraph, ExitMacsMatchPaperWithinOnePercent) {
    util::Rng rng(10);
    nn::ExitGraph g = core::build_paper_graph(rng);
    for (int e = 0; e < 3; ++e) {
        const double ours = static_cast<double>(g.exit_macs(e));
        const double paper = core::kPaperExitMacs[static_cast<std::size_t>(e)];
        EXPECT_NEAR(ours / paper, 1.0, 0.012) << "exit " << e;
    }
}

TEST(PaperGraph, ParamCountNearPaperModelSize) {
    util::Rng rng(11);
    nn::ExitGraph g = core::build_paper_graph(rng);
    // Paper: 580 KB fp32; our layer table gives ~560 KB (DESIGN.md).
    const double kb = static_cast<double>(g.param_count()) * 4.0 / 1000.0;
    EXPECT_NEAR(kb, 580.0, 25.0);
}

TEST(PaperGraph, ForwardProducesTenLogitsPerExit) {
    util::Rng rng(12);
    nn::ExitGraph g = core::build_paper_graph(rng);
    nn::Tensor x = nn::Tensor::full({3, 32, 32}, 0.5F);
    const auto logits = g.forward_all(x);
    ASSERT_EQ(logits.size(), 3u);
    for (const auto& l : logits) EXPECT_EQ(l.numel(), 10);
}

TEST(TinyGraph, MatchesItsAnalyticDesc) {
    util::Rng rng(13);
    nn::ExitGraph g = core::build_tiny_graph(rng);
    const auto desc = core::make_tiny_network_desc();
    const auto policy = compress::Policy::full_precision(desc.num_layers());
    for (int e = 0; e < 3; ++e) {
        EXPECT_EQ(g.exit_macs(e), compress::exit_macs(desc, policy, e));
    }
}

}  // namespace
