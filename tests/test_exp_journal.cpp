// Tests for the streaming-sink sweep pipeline: ordered ResultSink delivery,
// streaming-vs-batch aggregation bitwise equality, shard index arithmetic,
// the JSONL journal round-trip (bit-exact doubles), resume after a torn
// journal, and the exact-merge invariant — shard + merge is byte-identical
// to a single-process run, on a synthetic grid, a registry grid, and a
// spec-file grid.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/cli.hpp"
#include "exp/experiment.hpp"
#include "exp/journal.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/sink.hpp"
#include "exp/spec_parser.hpp"
#include "util/rng.hpp"

#ifndef IMX_SPEC_DIR
#error "IMX_SPEC_DIR must point at examples/experiments"
#endif

namespace {

using namespace imx;

std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(static_cast<bool>(out)) << path;
    out << content;
}

exp::ScenarioSpec synthetic_scenario(const std::string& group, int replica,
                                     std::uint64_t base_seed) {
    exp::ScenarioSpec spec;
    spec.group = group;
    spec.id = group + "#" + std::to_string(replica);
    spec.replica = replica;
    spec.seed = exp::scenario_seed(base_seed, group, replica);
    spec.run = [](const exp::ScenarioContext& ctx) {
        util::Rng rng(ctx.seed);
        exp::ScenarioOutcome outcome;
        double sum = 0.0;
        for (int i = 0; i < 500; ++i) sum += rng.uniform();
        outcome.metrics["sum"] = sum;
        outcome.metrics["third"] = sum / 3.0;
        return outcome;
    };
    return spec;
}

std::vector<exp::ScenarioSpec> synthetic_grid(int groups, int replicas,
                                              std::uint64_t base_seed) {
    std::vector<exp::ScenarioSpec> specs;
    for (int g = 0; g < groups; ++g) {
        for (int r = 0; r < replicas; ++r) {
            specs.push_back(synthetic_scenario("group" + std::to_string(g), r,
                                               base_seed));
        }
    }
    return specs;
}

exp::JournalHeader header_for(const std::vector<exp::ScenarioSpec>& specs,
                              const exp::ShardSpec& shard,
                              std::uint64_t base_seed) {
    exp::JournalHeader header;
    header.experiment = "journal-test";
    header.total_specs = specs.size();
    header.shard = shard;
    header.base_seed = base_seed;
    header.quick = false;
    header.replicas = 1;
    return header;
}

void expect_same_metrics(const std::vector<exp::ScenarioOutcome>& a,
                         const std::vector<exp::ScenarioOutcome>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // Bitwise equality on every metric — merge must be exact.
        EXPECT_EQ(a[i].metrics, b[i].metrics) << "spec index " << i;
    }
}

// --- Shard arithmetic -----------------------------------------------------

TEST(ParseShardSpec, AcceptsWellFormed) {
    const auto whole = exp::parse_shard_spec("0/1");
    EXPECT_EQ(whole.index, 0);
    EXPECT_EQ(whole.count, 1);
    const auto mid = exp::parse_shard_spec("2/5");
    EXPECT_EQ(mid.index, 2);
    EXPECT_EQ(mid.count, 5);
}

TEST(ParseShardSpec, RejectsMalformed) {
    const char* bad[] = {"",    "1",    "1/",    "/3",  "a/b", "1/2/3",
                         "3/3", "4/3",  "-1/3",  "1/0", "0/0", "1/-2",
                         "1.5/3", "+1/3", "0x1/3"};
    for (const char* text : bad) {
        EXPECT_THROW(exp::parse_shard_spec(text), std::invalid_argument)
            << "'" << text << "' should be rejected";
    }
}

TEST(ShardIndices, RoundRobinPartitionIsDisjointAndComplete) {
    const std::size_t total = 10;
    std::vector<std::size_t> seen;
    for (int i = 0; i < 3; ++i) {
        const auto slice = exp::shard_indices(total, {i, 3});
        for (const std::size_t j : slice) {
            EXPECT_EQ(j % 3, static_cast<std::size_t>(i));
            seen.push_back(j);
        }
    }
    EXPECT_EQ(seen.size(), total);
    EXPECT_EQ(exp::shard_indices(total, {0, 3}),
              (std::vector<std::size_t>{0, 3, 6, 9}));
    EXPECT_EQ(exp::shard_indices(total, {1, 3}),
              (std::vector<std::size_t>{1, 4, 7}));
}

TEST(ShardIndices, ShardBeyondGridIsEmpty) {
    EXPECT_TRUE(exp::shard_indices(2, {2, 3}).empty());
    EXPECT_TRUE(exp::shard_indices(0, {0, 1}).empty());
}

// --- Sink delivery --------------------------------------------------------

struct RecordingSink final : exp::ResultSink {
    std::vector<std::size_t> indices;
    int finish_calls = 0;
    void on_outcome(std::size_t spec_index, exp::ScenarioOutcome) override {
        indices.push_back(spec_index);
    }
    void finish() override { ++finish_calls; }
};

TEST(ResultSink, DeliveryIsStrictlyOrderedUnderParallelism) {
    const auto specs = synthetic_grid(4, 4, 11);
    RecordingSink sink;
    exp::run_sweep(specs, sink, {8});
    ASSERT_EQ(sink.indices.size(), specs.size());
    for (std::size_t i = 0; i < sink.indices.size(); ++i) {
        EXPECT_EQ(sink.indices[i], i);
    }
    EXPECT_EQ(sink.finish_calls, 1);
}

struct ThrowingSink final : exp::ResultSink {
    int finish_calls = 0;
    void on_outcome(std::size_t spec_index, exp::ScenarioOutcome) override {
        if (spec_index == 3) throw std::runtime_error("sink-boom");
    }
    void finish() override { ++finish_calls; }
};

TEST(ResultSink, SinkExceptionAbortsStreamWithoutFinish) {
    const auto specs = synthetic_grid(2, 4, 12);
    ThrowingSink sink;
    EXPECT_THROW(exp::run_sweep(specs, sink, {4}), std::runtime_error);
    EXPECT_EQ(sink.finish_calls, 0);
}

// --- Streaming vs batch aggregation ---------------------------------------

TEST(AggregateSink, BitwiseMatchesBatchAggregate) {
    const auto specs = synthetic_grid(3, 5, 7);
    exp::AggregateSink streaming(specs);
    exp::run_sweep(specs, streaming, {4});
    ASSERT_TRUE(streaming.finished());
    const auto batch = exp::aggregate(specs, exp::run_sweep(specs, {1}));
    const auto& live = streaming.groups();
    ASSERT_EQ(live.size(), batch.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
        EXPECT_EQ(live[i].group, batch[i].group);
        EXPECT_EQ(live[i].replicas, batch[i].replicas);
        ASSERT_EQ(live[i].metrics.size(), batch[i].metrics.size());
        for (const auto& [name, stats] : live[i].metrics) {
            const auto& other = batch[i].metrics.at(name);
            EXPECT_EQ(stats.count, other.count);
            EXPECT_EQ(stats.mean, other.mean) << name;
            EXPECT_EQ(stats.stddev, other.stddev) << name;
            EXPECT_EQ(stats.ci95, other.ci95) << name;
            EXPECT_EQ(stats.min, other.min) << name;
            EXPECT_EQ(stats.max, other.max) << name;
        }
    }
}

// --- Journal format -------------------------------------------------------

TEST(Journal, RoundTripIsBitExact) {
    exp::JournalHeader header;
    header.experiment = "round \"trip\" \\ test";
    header.total_specs = 5;
    header.shard = {1, 3};
    header.base_seed = 0xDEADBEEFCAFEF00DULL;  // > 2^53: needs the hex path
    header.quick = true;
    header.replicas = 2;

    exp::JournalEntry entry;
    entry.spec_index = 4;
    entry.id = "trace/sys\t\"q\"#1\n";
    entry.replica = 1;
    entry.metrics["a_third"] = 1.0 / 3.0;
    entry.metrics["root2"] = std::sqrt(2.0);
    entry.metrics["tiny"] = 1e-300;
    entry.metrics["huge_neg"] = -1.2345678901234567e+300;
    entry.metrics["zero"] = 0.0;

    const std::string path = temp_path("imx_journal_roundtrip.jsonl");
    write_file(path, exp::journal_header_line(header) + "\n" +
                         exp::journal_entry_line(entry) + "\n");
    const auto file = exp::read_journal(path);
    EXPECT_FALSE(file.truncated);
    EXPECT_EQ(file.header.experiment, header.experiment);
    EXPECT_EQ(file.header.total_specs, header.total_specs);
    EXPECT_EQ(file.header.shard.index, header.shard.index);
    EXPECT_EQ(file.header.shard.count, header.shard.count);
    EXPECT_EQ(file.header.base_seed, header.base_seed);
    EXPECT_EQ(file.header.quick, header.quick);
    EXPECT_EQ(file.header.replicas, header.replicas);
    ASSERT_EQ(file.entries.size(), 1u);
    EXPECT_EQ(file.entries[0].spec_index, entry.spec_index);
    EXPECT_EQ(file.entries[0].id, entry.id);
    EXPECT_EQ(file.entries[0].replica, entry.replica);
    // The %.17g round-trip must be bit-exact, not approximately equal.
    EXPECT_EQ(file.entries[0].metrics, entry.metrics);
}

TEST(Journal, TornFinalLineIsToleratedAsTruncation) {
    const auto specs = synthetic_grid(1, 2, 5);
    const auto header = header_for(specs, {0, 1}, 5);
    exp::JournalEntry entry;
    entry.spec_index = 0;
    entry.id = specs[0].id;
    entry.metrics["sum"] = 1.5;
    const std::string path = temp_path("imx_journal_torn.jsonl");
    write_file(path, exp::journal_header_line(header) + "\n" +
                         exp::journal_entry_line(entry) + "\n" +
                         "{\"spec_index\": 1, \"id\": \"gro");
    const auto file = exp::read_journal(path);
    EXPECT_TRUE(file.truncated);
    ASSERT_EQ(file.entries.size(), 1u);
    EXPECT_EQ(file.entries[0].id, specs[0].id);
}

TEST(Journal, MalformedMidFileLineThrows) {
    const auto specs = synthetic_grid(1, 2, 5);
    const auto header = header_for(specs, {0, 1}, 5);
    exp::JournalEntry entry;
    entry.spec_index = 1;
    entry.id = specs[1].id;
    const std::string path = temp_path("imx_journal_midfile.jsonl");
    write_file(path, exp::journal_header_line(header) + "\n" +
                         "not json at all\n" +
                         exp::journal_entry_line(entry) + "\n");
    EXPECT_THROW(exp::read_journal(path), std::runtime_error);
}

// --- Shard + merge on a synthetic grid ------------------------------------

TEST(ShardMerge, SyntheticGridMergesBitwise) {
    const std::uint64_t base_seed = 42;
    const auto specs = synthetic_grid(3, 3, base_seed);
    const auto full = exp::run_sweep(specs, {4});

    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        const auto header = header_for(specs, {i, 3}, base_seed);
        const std::string path =
            temp_path("imx_shard_merge_" + std::to_string(i) + ".jsonl");
        const auto shard_run =
            exp::run_shard(specs, header, {2}, path, /*resume=*/false);
        EXPECT_EQ(shard_run.reused, 0u);
        EXPECT_EQ(shard_run.specs.size(), shard_run.outcomes.size());
        paths.push_back(path);
    }

    const auto header = header_for(specs, {0, 1}, base_seed);
    const auto merged = exp::merge_journal_outcomes(header, specs, paths);
    expect_same_metrics(merged, full);

    // The rendered table and the CSV must be byte-identical, not just the
    // numbers close.
    const std::vector<std::string> metrics = {"sum", "third"};
    EXPECT_EQ(exp::aggregate_table(exp::aggregate(specs, merged), metrics, "t")
                  .to_string(),
              exp::aggregate_table(exp::aggregate(specs, full), metrics, "t")
                  .to_string());
    const std::string csv_full = temp_path("imx_merge_full.csv");
    const std::string csv_merged = temp_path("imx_merge_merged.csv");
    exp::write_aggregate_csv(csv_full, exp::aggregate(specs, full));
    exp::write_aggregate_csv(csv_merged, exp::aggregate(specs, merged));
    EXPECT_EQ(read_file(csv_full), read_file(csv_merged));
}

TEST(ShardMerge, UnevenSplitWithAnEmptyShardMerges) {
    const std::uint64_t base_seed = 17;
    const auto specs = synthetic_grid(2, 1, base_seed);  // 2 specs, 3 shards
    const auto full = exp::run_sweep(specs, {2});
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        const auto header = header_for(specs, {i, 3}, base_seed);
        const std::string path =
            temp_path("imx_shard_empty_" + std::to_string(i) + ".jsonl");
        const auto shard_run =
            exp::run_shard(specs, header, {1}, path, /*resume=*/false);
        if (i == 2) {
            EXPECT_TRUE(shard_run.specs.empty());
        }
        paths.push_back(path);
    }
    const auto merged = exp::merge_journal_outcomes(
        header_for(specs, {0, 1}, base_seed), specs, paths);
    expect_same_metrics(merged, full);
}

// --- Resume ---------------------------------------------------------------

TEST(Resume, CompletesATornJournalAndReusesThePrefix) {
    const std::uint64_t base_seed = 23;
    const auto specs = synthetic_grid(2, 3, base_seed);  // 6 specs
    const auto header = header_for(specs, {0, 2}, base_seed);
    const std::string path = temp_path("imx_resume.jsonl");

    const auto first = exp::run_shard(specs, header, {2}, path, false);
    ASSERT_EQ(first.specs.size(), 3u);  // indices 0, 2, 4

    // Simulate a crash: keep the header and the first entry, then a torn
    // partial line.
    const auto complete = exp::read_journal(path);
    ASSERT_EQ(complete.entries.size(), 3u);
    write_file(path, exp::journal_header_line(complete.header) + "\n" +
                         exp::journal_entry_line(complete.entries[0]) + "\n" +
                         "{\"spec_index\": 2, \"id");

    const auto resumed = exp::run_shard(specs, header, {2}, path, true);
    EXPECT_EQ(resumed.reused, 1u);
    expect_same_metrics(resumed.outcomes, first.outcomes);

    // The journal was rewritten without the torn tail and completed.
    const auto after = exp::read_journal(path);
    EXPECT_FALSE(after.truncated);
    EXPECT_EQ(after.entries.size(), 3u);

    // Resuming a complete journal re-runs nothing.
    const auto again = exp::run_shard(specs, header, {2}, path, true);
    EXPECT_EQ(again.reused, 3u);
    expect_same_metrics(again.outcomes, first.outcomes);
}

TEST(Resume, MissingJournalSimplyRunsEverything) {
    const std::uint64_t base_seed = 29;
    const auto specs = synthetic_grid(1, 2, base_seed);
    const auto header = header_for(specs, {0, 1}, base_seed);
    const std::string path = temp_path("imx_resume_missing.jsonl");
    std::remove(path.c_str());
    const auto run = exp::run_shard(specs, header, {1}, path, true);
    EXPECT_EQ(run.reused, 0u);
    EXPECT_EQ(run.outcomes.size(), 2u);
}

// --- Merge validation -----------------------------------------------------

class MergeValidation : public ::testing::Test {
protected:
    void SetUp() override {
        specs_ = synthetic_grid(2, 2, kSeed);
        for (int i = 0; i < 2; ++i) {
            const auto header = header_for(specs_, {i, 2}, kSeed);
            paths_.push_back(temp_path("imx_merge_validation_" +
                                       std::to_string(i) + ".jsonl"));
            exp::run_shard(specs_, header, {1}, paths_[static_cast<std::size_t>(
                                                     i)],
                           false);
        }
    }
    static constexpr std::uint64_t kSeed = 31;
    std::vector<exp::ScenarioSpec> specs_;
    std::vector<std::string> paths_;
};

TEST_F(MergeValidation, RejectsAMismatchedBaseSeed) {
    const auto wrong = header_for(specs_, {0, 1}, kSeed + 1);
    EXPECT_THROW(exp::merge_journal_outcomes(wrong, specs_, paths_),
                 std::runtime_error);
}

TEST_F(MergeValidation, RejectsOverlappingJournals) {
    const auto header = header_for(specs_, {0, 1}, kSeed);
    const std::vector<std::string> twice = {paths_[0], paths_[0], paths_[1]};
    EXPECT_THROW(exp::merge_journal_outcomes(header, specs_, twice),
                 std::runtime_error);
}

TEST_F(MergeValidation, RejectsAMissingShard) {
    const auto header = header_for(specs_, {0, 1}, kSeed);
    const std::vector<std::string> partial = {paths_[0]};
    EXPECT_THROW(exp::merge_journal_outcomes(header, specs_, partial),
                 std::runtime_error);
}

TEST_F(MergeValidation, RejectsATruncatedJournal) {
    const std::string content = read_file(paths_[0]);
    const std::string torn = temp_path("imx_merge_validation_torn.jsonl");
    write_file(torn, content + "{\"spec_index\": 0, \"i");
    const auto header = header_for(specs_, {0, 1}, kSeed);
    EXPECT_THROW(
        exp::merge_journal_outcomes(header, specs_, {torn, paths_[1]}),
        std::runtime_error);
}

// --- End-to-end: registry and spec-file grids -----------------------------

exp::SweepCli quick_options() {
    exp::SweepCli options;
    options.quick = true;
    return options;
}

exp::JournalHeader quick_header(const std::string& name, std::size_t total,
                                const exp::ShardSpec& shard) {
    exp::JournalHeader header;
    header.experiment = name;
    header.total_specs = total;
    header.shard = shard;
    header.base_seed = exp::kDefaultBaseSeed;
    header.quick = true;
    header.replicas = 1;
    return header;
}

void expect_shard_merge_exact(const std::string& name,
                              const std::vector<exp::ScenarioSpec>& specs,
                              const std::vector<std::string>& metrics,
                              const std::string& tag) {
    const auto full = exp::run_sweep(specs, {0});
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        const auto header = quick_header(name, specs.size(), {i, 3});
        const std::string path =
            temp_path("imx_e2e_" + tag + "_" + std::to_string(i) + ".jsonl");
        exp::run_shard(specs, header, {0}, path, false);
        paths.push_back(path);
    }
    const auto merged = exp::merge_journal_outcomes(
        quick_header(name, specs.size(), {0, 1}), specs, paths);
    expect_same_metrics(merged, full);
    EXPECT_EQ(exp::aggregate_table(exp::aggregate(specs, merged), metrics, "t")
                  .to_string(),
              exp::aggregate_table(exp::aggregate(specs, full), metrics, "t")
                  .to_string());
    const std::string csv_full = temp_path("imx_e2e_" + tag + "_full.csv");
    const std::string csv_merged = temp_path("imx_e2e_" + tag + "_merged.csv");
    exp::write_aggregate_csv(csv_full, exp::aggregate(specs, full));
    exp::write_aggregate_csv(csv_merged, exp::aggregate(specs, merged));
    EXPECT_EQ(read_file(csv_full), read_file(csv_merged));
}

TEST(ShardMergeEndToEnd, RegistryGridIsByteExact) {
    const auto experiment = exp::make_experiment("fig5-iepmj");
    const auto options = quick_options();
    const auto specs = exp::build_experiment_scenarios(experiment, options);
    ASSERT_FALSE(specs.empty());
    expect_shard_merge_exact(experiment.spec.name, specs,
                             experiment.spec.metrics, "registry");
}

TEST(ShardMergeEndToEnd, SpecFileGridIsByteExact) {
    const auto spec = exp::load_experiment_spec(std::string(IMX_SPEC_DIR) +
                                                "/paper_baselines.ini");
    const auto options = quick_options();
    const auto specs = exp::expand_experiment(spec, options);
    ASSERT_FALSE(specs.empty());
    expect_shard_merge_exact(spec.name, specs, spec.metrics, "specfile");
}

}  // namespace
