// Tests for the exp:: scenario-sweep engine: thread pool, seed derivation,
// parallel runner determinism (1 vs N threads bitwise identical), replica
// aggregation statistics, grid composition, and edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/paper_scenarios.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/thread_pool.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

namespace {

using namespace imx;

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
    exp::ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
    exp::ThreadPool pool(2);
    pool.wait_idle();  // must not deadlock
    EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
    exp::ThreadPool pool(0);
    EXPECT_EQ(pool.num_threads(), 1u);
    std::atomic<int> counter{0};
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 1);
}

// --- Seed derivation ------------------------------------------------------

TEST(ScenarioSeed, DeterministicAndDistinct) {
    const auto a0 = exp::scenario_seed(7, "trace/sysA", 0);
    EXPECT_EQ(a0, exp::scenario_seed(7, "trace/sysA", 0));
    EXPECT_NE(a0, exp::scenario_seed(7, "trace/sysA", 1));
    EXPECT_NE(a0, exp::scenario_seed(7, "trace/sysB", 0));
    EXPECT_NE(a0, exp::scenario_seed(8, "trace/sysA", 0));
}

// --- Runner ---------------------------------------------------------------

exp::ScenarioSpec synthetic_scenario(const std::string& group, int replica,
                                     std::uint64_t base_seed) {
    exp::ScenarioSpec spec;
    spec.group = group;
    spec.id = group + "#" + std::to_string(replica);
    spec.replica = replica;
    spec.seed = exp::scenario_seed(base_seed, group, replica);
    spec.run = [](const exp::ScenarioContext& ctx) {
        util::Rng rng(ctx.seed);
        exp::ScenarioOutcome outcome;
        double sum = 0.0;
        for (int i = 0; i < 1000; ++i) sum += rng.uniform();
        outcome.metrics["sum"] = sum;
        outcome.metrics["first"] = util::Rng(ctx.seed).uniform();
        return outcome;
    };
    return spec;
}

TEST(RunSweep, EmptyGridYieldsEmptyResults) {
    const auto outcomes = exp::run_sweep({}, {4});
    EXPECT_TRUE(outcomes.empty());
}

TEST(RunSweep, SingleScenario) {
    std::vector<exp::ScenarioSpec> specs = {synthetic_scenario("solo", 0, 1)};
    const auto outcomes = exp::run_sweep(specs, {4});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_GT(outcomes[0].metrics.at("sum"), 0.0);
}

TEST(RunSweep, ResultsInSpecOrderForAnyThreadCount) {
    std::vector<exp::ScenarioSpec> specs;
    for (int g = 0; g < 4; ++g) {
        for (int r = 0; r < 4; ++r) {
            specs.push_back(
                synthetic_scenario("group" + std::to_string(g), r, 42));
        }
    }
    const auto serial = exp::run_sweep(specs, {1});
    const auto parallel = exp::run_sweep(specs, {8});
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        // Bitwise equality: same scenario, same seed, same slot.
        EXPECT_EQ(serial[i].metrics.at("sum"), parallel[i].metrics.at("sum"))
            << "scenario " << specs[i].id;
    }
}

TEST(RunSweep, AggregatedMetricsThreadCountInvariant) {
    std::vector<exp::ScenarioSpec> specs;
    for (int g = 0; g < 3; ++g) {
        for (int r = 0; r < 5; ++r) {
            specs.push_back(
                synthetic_scenario("group" + std::to_string(g), r, 7));
        }
    }
    const auto agg1 = exp::aggregate(specs, exp::run_sweep(specs, {1}));
    const auto aggN = exp::aggregate(specs, exp::run_sweep(specs, {5}));
    ASSERT_EQ(agg1.size(), aggN.size());
    for (std::size_t i = 0; i < agg1.size(); ++i) {
        EXPECT_EQ(agg1[i].group, aggN[i].group);
        EXPECT_EQ(agg1[i].replicas, aggN[i].replicas);
        for (const auto& [name, stats] : agg1[i].metrics) {
            const auto& other = aggN[i].metrics.at(name);
            // Bitwise identical, not approximately equal.
            EXPECT_EQ(stats.mean, other.mean) << agg1[i].group << "/" << name;
            EXPECT_EQ(stats.stddev, other.stddev);
            EXPECT_EQ(stats.ci95, other.ci95);
            EXPECT_EQ(stats.min, other.min);
            EXPECT_EQ(stats.max, other.max);
        }
    }
}

TEST(RunSweep, LowestIndexExceptionWins) {
    std::vector<exp::ScenarioSpec> specs;
    for (int i = 0; i < 6; ++i) {
        exp::ScenarioSpec spec;
        spec.group = "err";
        spec.id = "err#" + std::to_string(i);
        spec.replica = i;
        spec.run = [i](const exp::ScenarioContext&) -> exp::ScenarioOutcome {
            if (i == 2) throw std::runtime_error("boom-2");
            if (i == 4) throw std::runtime_error("boom-4");
            return {};
        };
        specs.push_back(std::move(spec));
    }
    try {
        exp::run_sweep(specs, {4});
        FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "boom-2");
    }
}

// --- Aggregation statistics -----------------------------------------------

TEST(Aggregate, ReplicaStatsMatchClosedForm) {
    std::vector<exp::ScenarioSpec> specs;
    std::vector<exp::ScenarioOutcome> outcomes;
    const double values[] = {1.0, 2.0, 3.0, 4.0};
    for (int r = 0; r < 4; ++r) {
        exp::ScenarioSpec spec;
        spec.group = "g";
        spec.id = "g#" + std::to_string(r);
        spec.replica = r;
        specs.push_back(spec);
        exp::ScenarioOutcome outcome;
        outcome.metrics["m"] = values[r];
        outcomes.push_back(std::move(outcome));
    }
    const auto groups = exp::aggregate(specs, outcomes);
    ASSERT_EQ(groups.size(), 1u);
    const auto& stats = groups[0].metrics.at("m");
    EXPECT_EQ(stats.count, 4u);
    EXPECT_DOUBLE_EQ(stats.mean, 2.5);
    const double expected_sd = std::sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3.0);
    EXPECT_DOUBLE_EQ(stats.stddev, expected_sd);
    EXPECT_DOUBLE_EQ(stats.ci95, 1.96 * expected_sd / 2.0);
    EXPECT_DOUBLE_EQ(stats.min, 1.0);
    EXPECT_DOUBLE_EQ(stats.max, 4.0);
}

TEST(Aggregate, SingleReplicaHasZeroSpread) {
    exp::ScenarioSpec spec;
    spec.group = "g";
    spec.id = "g#0";
    exp::ScenarioOutcome outcome;
    outcome.metrics["m"] = 3.25;
    const auto groups = exp::aggregate({spec}, {outcome});
    ASSERT_EQ(groups.size(), 1u);
    const auto& stats = groups[0].metrics.at("m");
    EXPECT_EQ(stats.count, 1u);
    EXPECT_DOUBLE_EQ(stats.mean, 3.25);
    EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
    EXPECT_DOUBLE_EQ(stats.ci95, 0.0);
}

TEST(Aggregate, EmptyInputYieldsNoGroups) {
    EXPECT_TRUE(exp::aggregate({}, {}).empty());
}

TEST(Aggregate, CsvRoundTripsGroupsAndColumns) {
    std::vector<exp::ScenarioSpec> specs;
    std::vector<exp::ScenarioOutcome> outcomes;
    for (int r = 0; r < 3; ++r) {
        exp::ScenarioSpec spec;
        spec.group = "cell";
        spec.id = "cell#" + std::to_string(r);
        spec.replica = r;
        spec.dims = {{"system", "ours"}};
        specs.push_back(spec);
        exp::ScenarioOutcome outcome;
        outcome.metrics["iepmj"] = 0.5 + 0.1 * r;
        outcomes.push_back(std::move(outcome));
    }
    const std::string path = "test_exp_sweep_agg.csv";
    exp::write_aggregate_csv(path, exp::aggregate(specs, outcomes));
    const auto table = util::read_csv(path);
    std::remove(path.c_str());
    ASSERT_EQ(table.rows.size(), 1u);
    EXPECT_EQ(table.rows[0][table.column_index("group")], "cell");
    EXPECT_EQ(table.rows[0][table.column_index("dim_system")], "ours");
    EXPECT_NEAR(table.numeric_column("iepmj_mean")[0], 0.6, 1e-9);
    EXPECT_NEAR(table.numeric_column("iepmj_stddev")[0], 0.1, 1e-9);
}

// --- Grid composition -----------------------------------------------------

TEST(PaperGrid, ComposesTraceSystemReplicaProduct) {
    exp::PaperSweep sweep;
    sweep.traces = {{"t1", {}}, {"t2", {}}};
    sweep.systems = exp::paper_systems(2);
    sweep.replicas = 3;
    const auto specs = exp::build_paper_scenarios(sweep);
    EXPECT_EQ(specs.size(), 2u * 4u * 3u);

    std::vector<std::string> ids;
    for (const auto& spec : specs) {
        ids.push_back(spec.id);
        EXPECT_FALSE(spec.dims.at("trace").empty());
        EXPECT_FALSE(spec.dims.at("system").empty());
        EXPECT_TRUE(spec.run != nullptr);
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "scenario ids must be unique";
}

TEST(PaperGrid, SeedsIndependentOfGridPosition) {
    exp::PaperSweep small;
    small.traces = {{"t1", {}}};
    small.systems = {{"sys", exp::SystemKind::kOursStatic, 0, {}, ""}};
    small.replicas = 2;

    exp::PaperSweep large = small;
    large.systems.insert(large.systems.begin(),
                         {"other", exp::SystemKind::kSonicNet, 0, {}, ""});

    const auto specs_small = exp::build_paper_scenarios(small);
    const auto specs_large = exp::build_paper_scenarios(large);
    // The t1/sys scenarios keep their seeds when other scenarios are added.
    for (const auto& s : specs_small) {
        bool found = false;
        for (const auto& l : specs_large) {
            if (l.id == s.id) {
                EXPECT_EQ(l.seed, s.seed);
                found = true;
            }
        }
        EXPECT_TRUE(found) << s.id;
    }
}

// --- End-to-end: real simulation scenarios --------------------------------

exp::PaperSweep small_real_sweep() {
    exp::PaperSweep sweep;
    core::SetupConfig config;
    config.event_count = 60;
    config.duration_s = 1500.0;
    config.total_harvest_mj = 35.0;
    sweep.traces = {{"mini", config}};
    sweep.systems = {{"ours-static", exp::SystemKind::kOursStatic, 0, {}, ""},
                     {"ours-ql", exp::SystemKind::kOursQLearning, 2, {}, ""},
                     {"sonic", exp::SystemKind::kSonicNet, 0, {}, ""}};
    sweep.replicas = 2;
    return sweep;
}

TEST(PaperGrid, RealSimulationThreadCountInvariant) {
    const auto specs = exp::build_paper_scenarios(small_real_sweep());
    const auto agg1 = exp::aggregate(specs, exp::run_sweep(specs, {1}));
    const auto agg4 = exp::aggregate(specs, exp::run_sweep(specs, {4}));
    ASSERT_EQ(agg1.size(), agg4.size());
    for (std::size_t i = 0; i < agg1.size(); ++i) {
        for (const auto& [name, stats] : agg1[i].metrics) {
            EXPECT_EQ(stats.mean, agg4[i].metrics.at(name).mean)
                << agg1[i].group << "/" << name;
            EXPECT_EQ(stats.stddev, agg4[i].metrics.at(name).stddev)
                << agg1[i].group << "/" << name;
        }
    }
}

TEST(PaperGrid, ReplicaZeroMatchesDirectCanonicalRun) {
    // The engine's replica 0 must reproduce the historical single-run path.
    const auto sweep = small_real_sweep();
    const auto setup = core::make_paper_setup(sweep.traces[0].config);
    const auto specs = exp::build_paper_scenarios(sweep);
    const auto outcomes = exp::run_sweep(specs, {2});

    exp::SystemSpec static_spec{"ours-static", exp::SystemKind::kOursStatic,
                                0, {}, ""};
    const auto direct =
        exp::run_system_scenario(setup, static_spec, exp::ScenarioContext{});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].dims.at("system") == "ours-static" &&
            specs[i].replica == 0) {
            EXPECT_EQ(outcomes[i].metrics.at("iepmj"),
                      direct.metrics.at("iepmj"));
            EXPECT_EQ(outcomes[i].metrics.at("processed"),
                      direct.metrics.at("processed"));
        }
    }
}

TEST(PaperGrid, ReplicasDifferButAggregateDeterministic) {
    const auto specs = exp::build_paper_scenarios(small_real_sweep());
    const auto outcomes = exp::run_sweep(specs, {3});
    // Replicas of the learning system see different event streams, so their
    // metrics should not all collapse to a single value across the sweep.
    bool any_difference = false;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        for (std::size_t j = i + 1; j < specs.size(); ++j) {
            if (specs[i].group == specs[j].group &&
                outcomes[i].metrics.at("processed") !=
                    outcomes[j].metrics.at("processed")) {
                any_difference = true;
            }
        }
    }
    EXPECT_TRUE(any_difference)
        << "independent replicas should differ in at least one metric";

    // And a repeated run of the same grid is bitwise reproducible.
    const auto again = exp::run_sweep(specs, {2});
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(outcomes[i].metrics.at("iepmj"),
                  again[i].metrics.at("iepmj"));
    }
}

TEST(SimPatch, AppliesToScenarioConfigs) {
    exp::PaperSweep sweep;
    core::SetupConfig config;
    config.event_count = 40;
    config.duration_s = 1000.0;
    config.total_harvest_mj = 20.0;
    sweep.traces = {{"mini", config}};
    sweep.systems = {{"ours-static", exp::SystemKind::kOursStatic, 0, {}, ""}};
    sweep.patches = {
        {"base", [](sim::SimConfig&) {}, {}, {}, ""},
        {"tiny-storage",
         [](sim::SimConfig& c) { c.storage.capacity_mj = 0.8; },
         {},
         {},
         ""},
    };
    const auto specs = exp::build_paper_scenarios(sweep);
    ASSERT_EQ(specs.size(), 2u);
    const auto outcomes = exp::run_sweep(specs, {2});
    // A much smaller buffer changes what the greedy policy can afford.
    EXPECT_NE(outcomes[0].metrics.at("consumed_mj"),
              outcomes[1].metrics.at("consumed_mj"));
    EXPECT_EQ(specs[1].dims.at("patch"), "tiny-storage");
}

}  // namespace
